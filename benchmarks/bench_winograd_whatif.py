"""What-if bench: Winograd F(2x2,3x3) joins the comparison.

Projects the strategy that landed in cuDNN v5 (right after the
paper's study) onto the same simulated K40c, over the 3x3 stride-1
configurations where it applies.
"""

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.core.report import table
from repro.frameworks.registry import all_implementations
from repro.frameworks.winograd_ext import CuDNNWinograd

#: 3x3 stride-1 layers, from few-channel to VGG-scale.
CASES = {
    "colour 3ch": BASE_CONFIG.scaled(kernel_size=3),
    "mid 64ch": ConvConfig(batch=64, input_size=56, filters=128,
                           kernel_size=3, channels=64, padding=1),
    "VGG-scale 128ch": ConvConfig(batch=64, input_size=56, filters=256,
                                  kernel_size=3, channels=128, padding=1),
    "VGG-scale 256ch": ConvConfig(batch=64, input_size=28, filters=512,
                                  kernel_size=3, channels=256, padding=1),
}


@pytest.mark.benchmark(group="winograd-whatif")
def bench_winograd_vs_the_seven(benchmark, save_artifact):
    def run():
        impls = all_implementations() + [CuDNNWinograd()]
        rows = []
        results = {}
        for case, cfg in CASES.items():
            times = {}
            for impl in impls:
                if impl.supports(cfg):
                    times[impl.paper_name] = impl.time_iteration(cfg)
            winner = min(times, key=times.get)
            results[case] = (times, winner)
            rows.append([case, winner,
                         f"{times[winner] * 1000:.2f}",
                         f"{times['cuDNN'] * 1000:.2f}",
                         f"{times['fbfft'] * 1000:.2f}"])
        text = table(
            ["3x3 layer", "Winner", "Winner (ms)", "cuDNN (ms)",
             "fbfft (ms)"],
            rows, title="What-if: Winograd joins the seven (3x3, stride 1)")
        return results, text

    results, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("winograd_whatif", text)
    # The historical shape: Winograd wins the deep multi-channel
    # layers, not the 3-channel colour layer.
    assert results["colour 3ch"][1] != "cuDNN-Winograd (what-if)"
    assert results["VGG-scale 128ch"][1] == "cuDNN-Winograd (what-if)"
    assert results["VGG-scale 256ch"][1] == "cuDNN-Winograd (what-if)"


@pytest.mark.benchmark(group="winograd-whatif")
def bench_winograd_in_resnet_oracle(benchmark, save_artifact):
    """ResNet-18 is all 3x3 stride-1 (plus the 7x7 stem): adding the
    Winograd what-if adapter to the per-layer oracle shifts almost
    every residual layer onto it."""
    from repro.core.layer_advisor import oracle_mix
    from repro.frameworks.registry import all_implementations
    from repro.nn.models import model_registry

    def run():
        ctor, shape = model_registry()["ResNet-18"]
        impls = all_implementations() + [CuDNNWinograd()]
        return oracle_mix("ResNet-18", ctor(rng=0), (64,) + shape,
                          implementations=impls)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("winograd_resnet_oracle", report.render())
    winners = [c.winner for c in report.choices]
    winograd_share = winners.count("cuDNN-Winograd (what-if)") / len(winners)
    # Most of the network moves onto Winograd.
    assert winograd_share > 0.5
    benchmark.extra_info["winograd_layer_share"] = round(winograd_share, 3)
