"""Extension benches: largest trainable batch and energy efficiency
per implementation — two more axes on which the paper's 'no single
winner' plays out."""

import pytest

from repro.config import BASE_CONFIG
from repro.core.batch_advisor import batch_capacities, render_capacities
from repro.core.report import table
from repro.frameworks.registry import all_implementations
from repro.gpusim.device import K40C
from repro.gpusim.energy import iteration_energy


@pytest.mark.benchmark(group="capacity")
def bench_max_batch(benchmark, save_artifact):
    rows = benchmark.pedantic(batch_capacities, args=(BASE_CONFIG,),
                              rounds=1, iterations=1)
    save_artifact("batch_capacity", render_capacities(BASE_CONFIG, rows))
    caps = {r.implementation: r.max_batch for r in rows}
    # The memory rankings of Fig. 5 invert into training capacity.
    assert caps["cuda-convnet2"] >= caps["Caffe"] > caps["fbfft"]


@pytest.mark.benchmark(group="energy")
def bench_energy_efficiency(benchmark, save_artifact):
    def run():
        body = []
        effs = {}
        for impl in all_implementations():
            if not impl.supports(BASE_CONFIG):
                continue
            p = impl.profile_iteration(BASE_CONFIG)
            rep = iteration_energy(K40C, p.profiler.timings())
            eff = rep.images_per_joule(BASE_CONFIG.batch)
            effs[impl.paper_name] = eff
            body.append([impl.paper_name, f"{rep.energy_j:.2f}",
                         f"{rep.average_power_w:.0f}", f"{eff:.2f}"])
        text = table(
            ["Implementation", "J/iteration", "avg W", "images/J"],
            body, title=f"Energy efficiency at {BASE_CONFIG.tuple5} "
                        f"(K40c, 235 W TDP)")
        return effs, text

    effs, text = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("energy_efficiency", text)
    # Speed and efficiency coincide here: fbfft leads both.
    assert effs["fbfft"] == max(effs.values())
