"""Wall-clock benchmarks of the *numerical* convolution strategies.

Unlike the simulated experiments, these time the actual NumPy kernels
on this host.  They demonstrate — with real silicon rather than the
device model — the paper's core algorithmic claims:

* FFT convolution's cost is nearly independent of kernel size, while
  direct/unrolled convolution grows ~k^2 (the mechanism behind the
  Fig. 3(d) crossover);
* im2col+GEMM is the fastest spatial strategy on large shapes (why
  the unrolling family exists at all).
"""

import numpy as np
import pytest

from repro.conv import (direct_forward, fft_forward, unrolled_forward)

RNG = np.random.default_rng(42)


def make(b, c, f, i, k):
    x = RNG.standard_normal((b, c, i, i)).astype(np.float32)
    w = RNG.standard_normal((f, c, k, k)).astype(np.float32)
    return x, w


SMALL_KERNEL = make(8, 3, 16, 64, 3)
LARGE_KERNEL = make(8, 3, 16, 64, 13)


@pytest.mark.benchmark(group="numeric-small-kernel")
@pytest.mark.parametrize("strategy,fn", [
    ("direct", direct_forward),
    ("unrolled", unrolled_forward),
    ("fft", fft_forward),
])
def bench_forward_small_kernel(benchmark, strategy, fn):
    x, w = SMALL_KERNEL
    y = benchmark(fn, x, w)
    assert y.shape == (8, 16, 62, 62)


@pytest.mark.benchmark(group="numeric-large-kernel")
@pytest.mark.parametrize("strategy,fn", [
    ("direct", direct_forward),
    ("unrolled", unrolled_forward),
    ("fft", fft_forward),
])
def bench_forward_large_kernel(benchmark, strategy, fn):
    x, w = LARGE_KERNEL
    y = benchmark(fn, x, w)
    assert y.shape == (8, 16, 52, 52)


@pytest.mark.benchmark(group="numeric-kernel-scaling")
@pytest.mark.parametrize("k", [3, 7, 11])
def bench_fft_flat_in_kernel_size(benchmark, k):
    """FFT forward time should barely move with k (transform size is
    set by the input)."""
    x, w = make(4, 3, 8, 64, k)
    benchmark(fft_forward, x, w)


@pytest.mark.benchmark(group="numeric-kernel-scaling")
@pytest.mark.parametrize("k", [3, 7, 11])
def bench_unrolled_grows_with_kernel_size(benchmark, k):
    x, w = make(4, 3, 8, 64, k)
    benchmark(unrolled_forward, x, w)
