"""Serving subsystem benches: plan-cache hit path vs cold ranking, and
the throughput value of dynamic batching under saturating load.

Unlike the figure benches these do not regenerate a paper artifact —
they quantify the serving layer built on top of the paper's cost
model.  The rendered comparison is archived as
``benchmarks/results/serving_throughput.txt`` and the machine-readable
headline numbers (throughput and p50/p99 latency for both modes) as
``benchmarks/results/BENCH_serving.json``.
"""

import json
import pathlib

import pytest

from repro.core.advisor import Advisor
from repro.frameworks.registry import shared_implementations
from repro.gpusim.device import K40C
from repro.serve import (BatchPolicy, PlanCache, Server, ServerConfig,
                         TrafficSpec, batched_config, generate_trace)
from repro.serve.loadgen import MODEL_SHAPES
from repro.serve.request import shape_key

#: AlexNet conv2 at a bucketed batch — a representative cached plan key.
CONV2_KEY = shape_key(MODEL_SHAPES["AlexNet"][1][1])
#: Long enough that cold plan misses (one per shape x batch bucket)
#: amortize into a >90% steady-state hit rate.
SPEC = TrafficSpec(duration_s=6.0, rate_rps=6000, seed=7)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _latency_summary(report):
    return {"throughput_rps": round(report.throughput_rps, 1),
            "latency_p50_ms": round(report.latency_p50_ms, 3),
            "latency_p99_ms": round(report.latency_p99_ms, 3),
            "completed": report.completed}


def _advisor():
    return Advisor(K40C, shared_implementations())


@pytest.mark.benchmark(group="serving-plan-cache")
def bench_plan_cold_ranking(benchmark):
    """Full 7-way ranking on every call — the cache-miss path."""
    advisor = _advisor()
    config = batched_config(CONV2_KEY, 32)
    plan = benchmark(advisor.plan, config)
    assert plan is not None
    benchmark.extra_info["implementation"] = plan.implementation


@pytest.mark.benchmark(group="serving-plan-cache")
def bench_plan_cache_hit(benchmark):
    """Memoized lookup of the same plan — the steady-state path."""
    advisor = _advisor()
    cache = PlanCache(capacity=8)
    key = (CONV2_KEY, 32, K40C.name)
    compute = lambda: advisor.plan(batched_config(CONV2_KEY, 32))
    cache.get_or_compute(key, compute)  # warm
    plan = benchmark(cache.get_or_compute, key, compute)
    assert plan is not None
    assert cache.hit_rate > 0.99


@pytest.mark.benchmark(group="serving-throughput")
def bench_dynamic_batching_throughput(benchmark, save_artifact):
    """Batched vs forced batch=1 on the same saturating trace."""
    trace = generate_trace(SPEC)

    def run_both():
        batched = Server(ServerConfig()).run(trace)
        single = Server(ServerConfig(policy=BatchPolicy(
            max_batch=1, max_wait_s=0.0))).run(trace)
        return batched, single

    batched, single = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = batched.throughput_rps / single.throughput_rps
    lines = [
        f"serving throughput on {SPEC.rate_rps:.0f} rps x "
        f"{SPEC.duration_s:.0f} s (seed {SPEC.seed})",
        "",
        "== dynamic batching ==",
        batched.render(),
        "",
        "== forced batch=1 ==",
        single.render(),
        "",
        f"dynamic batching throughput speedup: x{speedup:.2f}",
    ]
    save_artifact("serving_throughput", "\n".join(lines))
    payload = {
        "benchmark": "serving_throughput",
        "workload": {"duration_s": SPEC.duration_s,
                     "rate_rps": SPEC.rate_rps, "seed": SPEC.seed,
                     "arrivals": len(trace)},
        "dynamic_batching": _latency_summary(batched),
        "forced_batch_1": _latency_summary(single),
        "throughput_speedup_x": round(speedup, 3),
        "plan_cache_hit_rate": round(batched.plan_cache["hit_rate"], 4),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    assert batched.throughput_rps > single.throughput_rps
    assert batched.plan_cache["hit_rate"] > 0.9
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["batched_rps"] = round(batched.throughput_rps, 1)
    benchmark.extra_info["single_rps"] = round(single.throughput_rps, 1)
