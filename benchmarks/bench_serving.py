"""Serving subsystem benches: plan-cache hit path vs cold ranking, the
throughput value of dynamic batching under saturating load, and the
host-side fast path of the simulator itself.

Unlike the figure benches these do not regenerate a paper artifact —
they quantify the serving layer built on top of the paper's cost
model.  The rendered comparison is archived as
``benchmarks/results/serving_throughput.txt`` and the machine-readable
headline numbers as ``benchmarks/results/BENCH_serving.json``.

The **fast-path mode** measures the simulator's own host throughput
(trace arrivals processed per wall-clock second) with the dispatch
memo on vs off, and against the archived pre-fast-path baseline walls
(:data:`PR6_BASELINE`, measured on the same protocol before the memo /
batched event loop / incremental stats work landed).  Its hard gate is
*byte identity*: the memo-on and memo-off runs must produce the same
``StatsReport`` JSON, byte for byte — the fast path is an optimisation,
never a behaviour change.

Run as a script (``python benchmarks/bench_serving.py [--quick]``) it
writes the results JSON and exits non-zero on any gate failure; under
pytest the ``bench_*`` entries assert the same gates.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

try:
    import pytest
except ImportError:                                   # script mode
    pytest = None

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Long enough that cold plan misses (one per shape x batch bucket)
#: amortize into a >90% steady-state hit rate.
FULL_SPEC = dict(duration_s=6.0, rate_rps=6000.0, seed=7)
QUICK_SPEC = dict(duration_s=1.5, rate_rps=6000.0, seed=7)

#: Host walls of the serving simulator *before* the fast-path work
#: (dispatch memo, batched event loop, incremental stats), measured at
#: the PR-6 head on the full workload above: warm process (advisor and
#: eval-cache models already evaluated), best of 3, otherwise-idle
#: host.  The "after" numbers are re-measured live by
#: :func:`run_fastpath`, so the speedup-vs-baseline field is only
#: meaningful on comparable hardware — the CI gates use the live
#: memo-on/off ratio and byte identity instead.
PR6_BASELINE = {
    "commit": "4fd1e26",
    "protocol": "warm best-of-3, idle host, full workload",
    "batched_wall_s": 0.411,
    "single_wall_s": 3.787,
    "combined_wall_s": 4.199,
    "combined_loadgen_rps": 17066.0,   # 2 x 35830 arrivals / 4.199 s
    "single_loadgen_rps": 9461.0,      # 35830 arrivals / 3.787 s
}

#: CI floors, deliberately conservative: shared runners are slow and
#: noisy, so the absolute floor is ~8x under this box's measured rate
#: and the memo ratio floor well under the ~2.4x measured here.
MIN_LOADGEN_RPS = 10_000.0
MIN_MEMO_SPEEDUP = 1.2


def _digest(report) -> str:
    blob = json.dumps(report.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _latency_summary(report):
    return {"throughput_rps": round(report.throughput_rps, 1),
            "latency_p50_ms": round(report.latency_p50_ms, 3),
            "latency_p99_ms": round(report.latency_p99_ms, 3),
            "completed": report.completed}


def _configs(memo: bool = True):
    from repro.serve import BatchPolicy, ServerConfig

    batched = ServerConfig(dispatch_memo=memo)
    single = ServerConfig(policy=BatchPolicy(max_batch=1, max_wait_s=0.0),
                          dispatch_memo=memo)
    return batched, single


def _timed_run(config, trace, rounds: int):
    """Best-of-``rounds`` wall time for one server mode; returns
    (wall_s, report, last_server) — every round's report digest must
    agree."""
    from repro.serve import Server

    best = float("inf")
    report = None
    server = None
    for _ in range(rounds):
        server = Server(config)
        t0 = time.perf_counter()
        out = server.run(trace)
        wall = time.perf_counter() - t0
        if report is not None and _digest(out) != _digest(report):
            raise AssertionError("same-seed serving runs diverged")
        report = out
        best = min(best, wall)
    return best, report, server


def run_fastpath(quick: bool = False) -> dict:
    """Measure the simulator's host throughput, memo on vs off."""
    from repro.serve import Server, TrafficSpec, generate_trace

    spec = TrafficSpec(**(QUICK_SPEC if quick else FULL_SPEC))
    trace = generate_trace(spec)
    rounds = 2 if quick else 3
    batched_cfg, single_cfg = _configs(memo=True)
    # Warm the process-wide advisor/eval-cache models so the walls
    # measure the serving loop, not one-time model evaluation.
    Server(batched_cfg).run(trace)

    batched_wall, batched_report, batched_server = _timed_run(
        batched_cfg, trace, rounds)
    single_wall, single_report, _ = _timed_run(single_cfg, trace, rounds)

    off_batched_cfg, off_single_cfg = _configs(memo=False)
    off_batched_wall, off_batched_report, _ = _timed_run(
        off_batched_cfg, trace, rounds)
    off_single_wall, off_single_report, _ = _timed_run(
        off_single_cfg, trace, rounds)

    combined = batched_wall + single_wall
    off_combined = off_batched_wall + off_single_wall
    loadgen_rps = 2 * len(trace) / combined if combined else 0.0
    memo = batched_server.dispatch_memo_stats()
    return {
        "workload": {"duration_s": spec.duration_s,
                     "rate_rps": spec.rate_rps, "seed": spec.seed,
                     "arrivals": len(trace), "quick": quick},
        "after": {
            "batched_wall_s": round(batched_wall, 3),
            "single_wall_s": round(single_wall, 3),
            "combined_wall_s": round(combined, 3),
            "loadgen_rps": round(loadgen_rps, 1),
            "single_loadgen_rps": round(len(trace) / single_wall, 1)
            if single_wall else 0.0,
        },
        "memo_off": {
            "batched_wall_s": round(off_batched_wall, 3),
            "single_wall_s": round(off_single_wall, 3),
            "combined_wall_s": round(off_combined, 3),
        },
        "before": dict(PR6_BASELINE),
        "memo_speedup_x": round(off_combined / combined, 2)
        if combined else 0.0,
        "speedup_vs_pr6_x": round(
            PR6_BASELINE["combined_wall_s"] / combined, 2)
        if (combined and not quick) else None,
        "single_speedup_vs_pr6_x": round(
            PR6_BASELINE["single_wall_s"] / single_wall, 2)
        if (single_wall and not quick) else None,
        "byte_identical": (
            _digest(batched_report) == _digest(off_batched_report)
            and _digest(single_report) == _digest(off_single_report)),
        "dispatch_memo": memo,
    }


def run_throughput(quick: bool = False) -> dict:
    """Batched vs forced batch=1 on the same saturating trace (the
    simulated-throughput headline, unchanged by the fast path)."""
    from repro.serve import Server, TrafficSpec, generate_trace

    spec = TrafficSpec(**(QUICK_SPEC if quick else FULL_SPEC))
    trace = generate_trace(spec)
    batched_cfg, single_cfg = _configs()
    batched = Server(batched_cfg).run(trace)
    single = Server(single_cfg).run(trace)
    speedup = (batched.throughput_rps / single.throughput_rps
               if single.throughput_rps else float("inf"))
    return {
        "workload": {"duration_s": spec.duration_s,
                     "rate_rps": spec.rate_rps, "seed": spec.seed,
                     "arrivals": len(trace)},
        "dynamic_batching": _latency_summary(batched),
        "forced_batch_1": _latency_summary(single),
        "throughput_speedup_x": round(speedup, 3),
        "plan_cache_hit_rate": round(batched.plan_cache["hit_rate"], 4),
        "_reports": (batched, single),
    }


def run_benchmark(quick: bool = False) -> dict:
    throughput = run_throughput(quick)
    batched, single = throughput.pop("_reports")
    return {
        "benchmark": "serving_throughput",
        "quick": quick,
        "workload": throughput["workload"],
        "dynamic_batching": throughput["dynamic_batching"],
        "forced_batch_1": throughput["forced_batch_1"],
        "throughput_speedup_x": throughput["throughput_speedup_x"],
        "plan_cache_hit_rate": throughput["plan_cache_hit_rate"],
        "fast_path": run_fastpath(quick),
        "_reports": (batched, single),
    }


def check_gates(payload: dict) -> list:
    failures = []
    fast = payload["fast_path"]
    if not fast["byte_identical"]:
        failures.append("memo-on and memo-off reports are not "
                        "byte-identical — the fast path changed "
                        "simulated behaviour")
    if fast["memo_speedup_x"] < MIN_MEMO_SPEEDUP:
        failures.append(
            f"dispatch memo speedup x{fast['memo_speedup_x']} below "
            f"the x{MIN_MEMO_SPEEDUP} floor")
    if fast["after"]["loadgen_rps"] < MIN_LOADGEN_RPS:
        failures.append(
            f"loadgen throughput {fast['after']['loadgen_rps']:.0f} "
            f"arrivals/s below the {MIN_LOADGEN_RPS:.0f} floor")
    if (payload["dynamic_batching"]["throughput_rps"]
            <= payload["forced_batch_1"]["throughput_rps"]):
        failures.append("dynamic batching did not beat forced batch=1")
    if not payload["quick"]:
        # Steady-state gates: the quick trace is too short to amortize
        # the one-per-(shape, bucket) cold misses.
        if fast["dispatch_memo"]["hit_rate"] < 0.9:
            failures.append("dispatch memo hit rate below 0.9 — the "
                            "key space stopped coalescing")
        if payload["plan_cache_hit_rate"] <= 0.9:
            failures.append("plan cache hit rate at or below 0.9")
    return failures


def _render_text(payload: dict, batched, single) -> str:
    w = payload["workload"]
    fast = payload["fast_path"]
    lines = [
        f"serving throughput on {w['rate_rps']:.0f} rps x "
        f"{w['duration_s']:g} s (seed {w['seed']})",
        "",
        "== dynamic batching ==",
        batched.render(),
        "",
        "== forced batch=1 ==",
        single.render(),
        "",
        f"dynamic batching throughput speedup: "
        f"x{payload['throughput_speedup_x']:.2f}",
        "",
        "== simulator fast path (host time) ==",
        f"memo on : batched {fast['after']['batched_wall_s']:.3f}s + "
        f"single {fast['after']['single_wall_s']:.3f}s = "
        f"{fast['after']['combined_wall_s']:.3f}s "
        f"({fast['after']['loadgen_rps']:,.0f} arrivals/s)",
        f"memo off: batched {fast['memo_off']['batched_wall_s']:.3f}s + "
        f"single {fast['memo_off']['single_wall_s']:.3f}s = "
        f"{fast['memo_off']['combined_wall_s']:.3f}s",
        f"memo speedup: x{fast['memo_speedup_x']:.2f}   "
        f"byte-identical reports: {fast['byte_identical']}",
    ]
    if fast["speedup_vs_pr6_x"] is not None:
        lines.append(
            f"vs pre-fast-path baseline ({fast['before']['commit']}): "
            f"combined x{fast['speedup_vs_pr6_x']:.1f}, "
            f"forced batch=1 x{fast['single_speedup_vs_pr6_x']:.1f}")
    return "\n".join(lines)


# -- pytest benchmark entries ---------------------------------------------

if pytest is not None:
    from repro.core.advisor import Advisor
    from repro.frameworks.registry import shared_implementations
    from repro.gpusim.device import K40C
    from repro.serve import PlanCache, batched_config
    from repro.serve.loadgen import MODEL_SHAPES
    from repro.serve.request import shape_key

    #: AlexNet conv2 at a bucketed batch — a representative plan key.
    CONV2_KEY = shape_key(MODEL_SHAPES["AlexNet"][1][1])

    def _advisor():
        return Advisor(K40C, shared_implementations())

    @pytest.mark.benchmark(group="serving-plan-cache")
    def bench_plan_cold_ranking(benchmark):
        """Full 7-way ranking on every call — the cache-miss path."""
        advisor = _advisor()
        config = batched_config(CONV2_KEY, 32)
        plan = benchmark(advisor.plan, config)
        assert plan is not None
        benchmark.extra_info["implementation"] = plan.implementation

    @pytest.mark.benchmark(group="serving-plan-cache")
    def bench_plan_cache_hit(benchmark):
        """Memoized lookup of the same plan — the steady-state path."""
        advisor = _advisor()
        cache = PlanCache(capacity=8)
        key = (CONV2_KEY, 32, K40C.name)
        compute = lambda: advisor.plan(batched_config(CONV2_KEY, 32))
        cache.get_or_compute(key, compute)  # warm
        plan = benchmark(cache.get_or_compute, key, compute)
        assert plan is not None
        assert cache.hit_rate > 0.99

    @pytest.mark.benchmark(group="serving-throughput")
    def bench_serving_fastpath(benchmark, save_artifact):
        """Quick-mode fast-path bench plus every CI gate."""
        payload = benchmark.pedantic(run_benchmark, args=(True,),
                                     rounds=1, iterations=1)
        batched, single = payload.pop("_reports")
        save_artifact("serving_throughput",
                      _render_text(payload, batched, single))
        failures = check_gates(payload)
        assert not failures, "; ".join(failures)
        fast = payload["fast_path"]
        benchmark.extra_info["loadgen_rps"] = fast["after"]["loadgen_rps"]
        benchmark.extra_info["memo_speedup_x"] = fast["memo_speedup_x"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="1.5 s trace instead of the full 6 s one "
                             "(skips the vs-PR6 comparison fields)")
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    batched, single = payload.pop("_reports")
    text = _render_text(payload, batched, single)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_serving.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    (RESULTS_DIR / "serving_throughput.txt").write_text(text + "\n")
    print(f"\nwrote {out}")

    failures = check_gates(payload)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
