"""Fig. 7 — CPU-GPU data-transfer overhead over Conv1..Conv5."""

import pytest

from repro.core.transfer_overhead import (render_transfer_rows,
                                          transfer_overhead_profile)


@pytest.mark.benchmark(group="fig7")
def bench_fig7_transfer_overhead(benchmark, save_artifact):
    rows = benchmark(transfer_overhead_profile)
    save_artifact("fig7_transfer_overhead", render_transfer_rows(rows))

    frac = {}
    for r in rows:
        frac.setdefault(r.implementation, {})[r.config_name] = (
            r.transfer_fraction)

    # Prefetching implementations hide everything.
    for name in ("Caffe", "cuDNN", "fbfft"):
        assert all(v < 0.01 for v in frac[name].values())
    # The Conv2 anomaly.
    assert frac["Theano-CorrMM"]["Conv2"] > 0.5
    assert all(v < 0.2 for c, v in frac["Theano-CorrMM"].items()
               if c != "Conv2")
    benchmark.extra_info["corrmm_conv2"] = round(
        frac["Theano-CorrMM"]["Conv2"], 4)
