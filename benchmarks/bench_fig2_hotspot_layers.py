"""Fig. 2 — runtime breakdown of GoogLeNet / VGG / OverFeat / AlexNet.

Regenerates the per-layer-type shares of one training iteration and
checks the paper's headline (convolution dominates, 86-94 %).
"""

import pytest

from repro.core.hotspot_layers import hotspot_layer_analysis


@pytest.mark.benchmark(group="fig2")
def bench_fig2_runtime_breakdown(benchmark, save_artifact):
    results = benchmark.pedantic(hotspot_layer_analysis, rounds=1,
                                 iterations=1)
    text = "\n\n".join(r.render() for r in results)
    save_artifact("fig2_hotspot_layers", text)
    for r in results:
        assert r.conv_share >= 0.80
    benchmark.extra_info["conv_shares"] = {
        r.model: round(r.conv_share, 4) for r in results}


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("model", ["AlexNet", "GoogLeNet", "OverFeat", "VGG"])
def bench_fig2_single_model(benchmark, model):
    """Per-model timing of the breakdown itself (simulator cost)."""
    results = benchmark(hotspot_layer_analysis, models=[model])
    assert results[0].conv_share > 0.8
