"""Fig. 5 (a-e) — peak GPU memory over the five sweeps."""

import pytest

from repro.core.memory_comparison import memory_sweep

PANELS = {
    "a_batch": "batch",
    "b_input": "input",
    "c_filters": "filters",
    "d_kernel": "kernel",
    "e_stride": "stride",
}


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("panel", sorted(PANELS))
def bench_fig5_memory_sweep(benchmark, save_artifact, panel):
    sweep = PANELS[panel]
    result = benchmark.pedantic(memory_sweep, args=(sweep,), rounds=1,
                                iterations=1)
    save_artifact(f"fig5{panel}", result.render())

    # Ranking headline at every point: ccn2 lowest; fbfft highest
    # wherever it can run at all (it sits out strides > 1).
    for i in range(len(result.xs)):
        peaks = {name: col[i] for name, col in result.peaks.items()
                 if col[i] is not None}
        assert min(peaks, key=peaks.get) == "cuda-convnet2"
        if "fbfft" in peaks:
            assert max(peaks, key=peaks.get) == "fbfft"


@pytest.mark.benchmark(group="fig5")
def bench_fig5_fbfft_fluctuation(benchmark, save_artifact):
    """The 'dramatic fluctuation': fbfft's jump past a power of two."""

    def run():
        res = memory_sweep("input")
        col = res.peaks["fbfft"]
        jumps = [(res.xs[i + 1], col[i + 1] / col[i])
                 for i in range(len(col) - 1)]
        return max(jumps, key=lambda t: t[1])

    at, ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("fig5_fbfft_jump",
                  f"largest fbfft memory step in the input sweep: "
                  f"x{ratio:.2f} at input size {at} (pow-2 padding)")
    assert ratio > 1.8
