"""Cross-GPU sensitivity benches — how robust are the paper's
conclusions to the hardware?"""

import pytest

from repro.core.sensitivity import (bandwidth_sensitivity, device_comparison,
                                    render_device_comparison)


@pytest.mark.benchmark(group="sensitivity")
def bench_device_comparison(benchmark, save_artifact):
    rows = benchmark.pedantic(device_comparison, rounds=1, iterations=1)
    save_artifact("sensitivity_devices", render_device_comparison(rows))
    # The qualitative conclusions are hardware-robust.
    for r in rows:
        assert r.base_winner == "fbfft"
        assert r.memory_low == "cuda-convnet2"


@pytest.mark.benchmark(group="sensitivity")
def bench_bandwidth_sensitivity(benchmark, save_artifact):
    results = benchmark.pedantic(bandwidth_sensitivity, rounds=1,
                                 iterations=1)
    lines = [f"bandwidth x{r.scale:<4} -> crossover k = {r.kernel_crossover}"
             for r in results]
    save_artifact("sensitivity_bandwidth", "\n".join(lines))
    crossovers = [r.kernel_crossover for r in results]
    assert crossovers == sorted(crossovers, reverse=True)
