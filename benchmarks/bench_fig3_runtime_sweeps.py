"""Fig. 3 (a-e) — runtime of the seven implementations over the five
one-parameter sweeps around (64, 128, 64, 11, 1).

Each benchmark regenerates one panel, prints the series the paper
plots and re-checks its headline observation.
"""

import pytest

from repro.core.runtime_comparison import runtime_sweep

PANELS = {
    "a_batch": "batch",
    "b_input": "input",
    "c_filters": "filters",
    "d_kernel": "kernel",
    "e_stride": "stride",
}


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("panel", sorted(PANELS))
def bench_fig3_sweep(benchmark, save_artifact, panel):
    sweep = PANELS[panel]
    result = benchmark.pedantic(runtime_sweep, args=(sweep,), rounds=1,
                                iterations=1)
    save_artifact(f"fig3{panel}", result.render())

    winners = [result.fastest_at(i) for i in range(len(result.xs))]
    if sweep in ("batch", "filters"):
        assert set(winners) == {"fbfft"}
    elif sweep == "kernel":
        assert winners[0] == "cuDNN" and winners[-1] == "fbfft"
    elif sweep == "stride":
        assert winners[0] == "fbfft"
        assert set(winners[1:]) == {"cuDNN"}
    benchmark.extra_info["winners"] = winners


@pytest.mark.benchmark(group="fig3")
def bench_fig3_headline_speedups(benchmark, save_artifact):
    """The summary numbers the paper quotes: fbfft's advantage range
    on the batch sweep and the kernel-size crossover."""

    def run():
        batch = runtime_sweep("batch")
        kernel = runtime_sweep("kernel")
        ratios = [batch.speedup("fbfft", other, i)
                  for i in range(len(batch.xs))
                  for other in batch.times if other != "fbfft"
                  if batch.speedup("fbfft", other, i) is not None]
        crossover = next(k for i, k in enumerate(kernel.xs)
                         if kernel.times["fbfft"][i] < kernel.times["cuDNN"][i])
        return min(ratios), max(ratios), crossover

    lo, hi, crossover = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (f"fbfft advantage over other implementations (batch sweep): "
            f"{lo:.2f}x .. {hi:.2f}x  (paper: 1.4x .. 9.7x)\n"
            f"cuDNN -> fbfft crossover kernel size: {crossover}  (paper: 7)")
    save_artifact("fig3_headlines", text)
    assert lo > 1.0
    assert 4 <= crossover <= 8
