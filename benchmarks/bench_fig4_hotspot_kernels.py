"""Fig. 4 — hotspot-kernel breakdown of each implementation at the
base configuration (64, 128, 64, 11, 1)."""

import pytest

from repro.config import BASE_CONFIG
from repro.core.hotspot_kernels import hotspot_kernel_analysis


@pytest.mark.benchmark(group="fig4")
def bench_fig4_hotspot_kernels(benchmark, save_artifact):
    results = benchmark(hotspot_kernel_analysis, BASE_CONFIG)
    text = "\n\n".join(r.render() for r in results)
    save_artifact("fig4_hotspot_kernels", text)

    by_name = {r.implementation: r for r in results}
    # The paper's headline: GEMM is the essence of unrolling-based
    # convolutional layers.
    for name in ("Caffe", "Torch-cunn", "Theano-CorrMM"):
        assert by_name[name].dominant_role() == "GEMM"
    assert by_name["cuda-convnet2"].dominant_role() == "direct conv"
    benchmark.extra_info["gemm_shares"] = {
        name: round(by_name[name].role_shares.get("GEMM", 0.0), 4)
        for name in ("Caffe", "Torch-cunn", "Theano-CorrMM")}
