"""Observability overhead benchmark (and CI correctness gate).

Runs the same deterministic serving workload twice — once with the
:data:`~repro.obs.tracer.NULL_TRACER` default and once fully traced —
and measures what the tracing plane costs in host wall time.  The
point of the null-object design is that *disabled* observability is
free and *enabled* observability only pays at span boundaries; this
benchmark keeps both claims honest, and gates CI on the part that
must never regress: a traced run's serving report is identical to the
untraced run's, span for span of extra bookkeeping notwithstanding.

A third leg runs the same workload span-free with windowed telemetry
rollups attached (``ServerConfig.telemetry``), gating the live-
telemetry plane on the same two claims: bounded host overhead, and a
byte-identical serving report.  It also times the two offline
consumers a recorded run feeds: the JSONL export
(:func:`repro.obs.export.jsonl_lines`) and the full analytics pass
(:func:`repro.obs.analyze.analyze_run`).

Run as a script (``python benchmarks/bench_obs_overhead.py
[--quick]``) it writes ``benchmarks/results/BENCH_obs.json`` and
exits non-zero if the traced and untraced reports diverge, the traced
run recorded no spans, or the overhead blows past the (deliberately
generous, shared-runner-safe) ceiling.  Under pytest it runs in quick
mode and asserts the same gates.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: CI ceiling on traced/untraced wall time.  Span recording costs real
#: allocations, so some overhead is expected; the gate only catches
#: "tracing made serving pathologically slow" without flaking on slow
#: shared runners.
OVERHEAD_GATE = 10.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(repeats: int = 5, duration_s: float = 1.0,
                  rate_rps: float = 1500.0) -> dict:
    """Measure untraced vs traced serving; returns the artifact payload."""
    from repro.core.evalcache import reset_cache
    from repro.obs.analyze import analyze_run, from_tracer
    from repro.obs.export import jsonl_lines
    from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace

    spec = TrafficSpec(duration_s=duration_s, rate_rps=rate_rps, seed=7)
    trace = generate_trace(spec)

    def untraced():
        reset_cache()
        return Server(ServerConfig()).run(trace)

    def traced():
        reset_cache()
        server = Server(ServerConfig())
        server.enable_tracing()
        return server.run(trace), server

    def rolled_up():
        # Windowed telemetry rollups, span-free: what `--telemetry`
        # costs on a serving loop that is otherwise on the fast path.
        from repro.obs.timeseries import TelemetryConfig
        reset_cache()
        server = Server(ServerConfig(
            telemetry=TelemetryConfig(window_s=0.05)))
        return server.run(trace), server

    untraced_report = untraced()
    untraced_s = _best_of(untraced, repeats)

    traced_report, server = traced()
    traced_s = _best_of(traced, repeats)
    tracer = server.obs.tracer

    rollups_report, rollups_server = rolled_up()
    rollups_s = _best_of(rolled_up, repeats)
    rollups = rollups_server.telemetry

    t0 = time.perf_counter()
    lines = jsonl_lines(tracer)
    export_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    analysis = analyze_run(from_tracer(tracer))
    analyze_s = time.perf_counter() - t0

    return {
        "benchmark": "obs_overhead",
        "workload": {"duration_s": duration_s, "rate_rps": rate_rps,
                     "seed": spec.seed, "arrivals": len(trace)},
        "repeats": repeats,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead_x": traced_s / untraced_s,
        "spans": tracer.span_count(),
        "per_span_us": (traced_s - untraced_s) / tracer.span_count() * 1e6,
        "export_jsonl_s": export_s,
        "export_lines": len(lines),
        "analyze_s": analyze_s,
        "critical_path_steps": len(analysis.critical),
        "rollups_s": rollups_s,
        "rollups_overhead_x": rollups_s / untraced_s,
        "rollups_windows": len(rollups.windows),
        "reports_identical":
            traced_report.to_dict() == untraced_report.to_dict(),
        "rollups_report_identical":
            rollups_report.to_dict() == untraced_report.to_dict(),
        "gate_overhead": OVERHEAD_GATE,
    }


def check_gates(payload: dict) -> list:
    """CI gates; returns the list of failures (empty = pass)."""
    failures = []
    if not payload["reports_identical"]:
        failures.append("traced serving report differs from untraced — "
                        "tracing must be observationally free")
    if not payload["rollups_report_identical"]:
        failures.append("rollups-enabled serving report differs from "
                        "plain — telemetry must be observationally free")
    if payload["spans"] <= 0:
        failures.append("traced run recorded no spans")
    if payload["rollups_windows"] <= 0:
        failures.append("rollups-enabled run flushed no windows")
    if payload["rollups_overhead_x"] > payload["gate_overhead"]:
        failures.append(
            f"rollups overhead {payload['rollups_overhead_x']:.2f}x above "
            f"the {payload['gate_overhead']:.0f}x ceiling")
    if payload["overhead_x"] > payload["gate_overhead"]:
        failures.append(
            f"tracing overhead {payload['overhead_x']:.2f}x above the "
            f"{payload['gate_overhead']:.0f}x ceiling")
    return failures


def _render_text(payload: dict) -> str:
    w = payload["workload"]
    lines = [
        "observability overhead on one serving run "
        f"({w['duration_s']:g} s @ {w['rate_rps']:g} req/s, "
        f"{w['arrivals']} arrivals)",
        f"  untraced (NULL_TRACER)    {payload['untraced_s'] * 1000:8.1f} ms",
        f"  traced                    {payload['traced_s'] * 1000:8.1f} ms   "
        f"x{payload['overhead_x']:.2f} "
        f"({payload['per_span_us']:.1f} us per span, "
        f"{payload['spans']} spans)",
        f"  rollups (telemetry)       {payload['rollups_s'] * 1000:8.1f} ms   "
        f"x{payload['rollups_overhead_x']:.2f} "
        f"({payload['rollups_windows']} windows)",
        f"  JSONL export              {payload['export_jsonl_s'] * 1000:8.1f}"
        f" ms   ({payload['export_lines']} records)",
        f"  offline analytics pass    {payload['analyze_s'] * 1000:8.1f} ms",
        f"  traced report identical to untraced: "
        f"{payload['reports_identical']}",
        f"  rollups report identical to plain:   "
        f"{payload['rollups_report_identical']}",
    ]
    return "\n".join(lines)


def bench_obs_overhead(save_artifact):
    """Benchmark-suite entry: quick mode plus the CI gates."""
    payload = run_benchmark(repeats=2, duration_s=0.5)
    save_artifact("BENCH_obs", _render_text(payload))
    assert not check_gates(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2 timing repeats over a 0.5 s workload")
    args = parser.parse_args(argv)

    payload = run_benchmark(repeats=2 if args.quick else 5,
                            duration_s=0.5 if args.quick else 1.0)
    print(_render_text(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")

    failures = check_gates(payload)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
