"""Fig. 6 — GPU performance profiling over the Table-I configurations.

Regenerates the runtime-weighted top-kernel metric estimates (achieved
occupancy, IPC, warp execution efficiency, gld/gst efficiency, shared
efficiency) for all seven implementations on Conv1..Conv5.
"""

import pytest

from repro.core.gpu_metrics import gpu_metric_profile, render_metric_rows


@pytest.mark.benchmark(group="fig6")
def bench_fig6_gpu_metrics(benchmark, save_artifact):
    rows = benchmark(gpu_metric_profile)
    save_artifact("fig6_gpu_metrics", render_metric_rows(rows))

    by_impl = {}
    for r in rows:
        by_impl.setdefault(r.implementation, []).append(r.summary)

    # Paper bands re-checked at benchmark time.
    for s in by_impl["cuda-convnet2"]:
        assert 0.10 <= s.achieved_occupancy <= 0.25
    for s in by_impl["Theano-fft"]:
        assert s.warp_execution_efficiency < 0.85
        assert s.shared_efficiency < 0.25
    assert max(s.shared_efficiency for s in by_impl["cuDNN"]) > 1.0
    benchmark.extra_info["ccn2_occupancy"] = [
        round(s.achieved_occupancy, 4) for s in by_impl["cuda-convnet2"]]
