"""Per-device advisor winner table (Fig. 3 restaged per profile).

The paper ranks the seven implementations on one GPU (the Tesla
K40c).  With the device registry the same Fig. 3-style question —
*which implementation wins this convolution?* — can be asked of every
shipped profile.  This benchmark sweeps the paper's kernel-size axis
(the axis with the interesting crossover) plus the stride and
memory-pressure corner cases through one shared :class:`Advisor`,
once per registered device, and archives the winner table.

Gates:

* the ``k40c`` column is byte-identical to ranking on the hand-built
  calibrated spec (the registry adds no drift);
* the paper's qualitative story holds on every Kepler/Maxwell-class
  device: cuDNN wins small kernels, fbfft wins large ones, stride > 1
  rules the FFT implementations out;
* the capability endpoints hold on every scenario: Pascal is never
  beaten and the K20X never wins.  (The interior is *not* monotone —
  the M40 loses the FFT-bound scenarios to the older K40c, one of the
  cross-device inversions the registry exists to surface.)

Run as a script (``python benchmarks/bench_devices.py``) it writes
``benchmarks/results/BENCH_devices.json`` plus the rendered
``device_winners.txt`` and exits non-zero on any gate failure.  Under
pytest it runs the same sweep and asserts the same gates.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Fig. 3's anchor point (batch, input, filters, kernel, stride) is
#: (64, 128, 64, 11, 1); the scenarios walk its kernel-size axis and
#: add the stride and tight-memory corners the advisor's rationale
#: covers.
SCENARIOS = (
    ("k=3", dict(batch=64, input_size=128, filters=64, kernel_size=3)),
    ("k=5", dict(batch=64, input_size=128, filters=64, kernel_size=5)),
    ("k=7", dict(batch=64, input_size=128, filters=64, kernel_size=7)),
    ("k=9", dict(batch=64, input_size=128, filters=64, kernel_size=9)),
    ("k=11", dict(batch=64, input_size=128, filters=64, kernel_size=11)),
    ("k=11,s=2", dict(batch=64, input_size=128, filters=64, kernel_size=11,
                      stride=2)),
)

#: The capability endpoints: the K20X is the weakest shipped profile
#: and Pascal the strongest.  Only the endpoints gate — the interior
#: ordering is scenario-dependent (the M40 loses FFT-bound scenarios
#: to the K40c).
SLOWEST, FASTEST = "k20x", "pascal"


def run_sweep() -> dict:
    from repro.config import ConvConfig
    from repro.core.advisor import Advisor
    from repro.devices import default_registry, get_profile
    from repro.gpusim.device import K40C, spec_digest

    advisor = Advisor()     # one advisor + shared cache for every device
    registry = default_registry()
    devices = {}
    for name in registry.names():
        profile = get_profile(name)
        rows = {}
        for label, kw in SCENARIOS:
            rec = advisor.recommend(ConvConfig(**kw), device=profile.spec)
            winner = next((c for c in rec.candidates
                           if c.implementation == rec.best), None)
            rows[label] = {
                "winner": rec.best,
                "time_ms": round(winner.time_s * 1000, 4)
                           if winner is not None else None,
                "peak_memory_mb": round(
                    winner.peak_memory_bytes / 2**20, 1)
                           if winner is not None else None,
            }
        devices[name] = {
            "display_name": profile.spec.name,
            "digest": spec_digest(profile.spec),
            "scenarios": rows,
        }

    # The legacy column: the same sweep on the hand-built constant.
    legacy = {}
    for label, kw in SCENARIOS:
        rec = advisor.recommend(ConvConfig(**kw), device=K40C)
        winner = next((c for c in rec.candidates
                       if c.implementation == rec.best), None)
        legacy[label] = {
            "winner": rec.best,
            "time_ms": round(winner.time_s * 1000, 4)
                       if winner is not None else None,
            "peak_memory_mb": round(winner.peak_memory_bytes / 2**20, 1)
                       if winner is not None else None,
        }
    return {
        "benchmark": "devices",
        "scenarios": [label for label, _ in SCENARIOS],
        "devices": devices,
        "legacy_k40c": legacy,
    }


def check_gates(payload: dict) -> list:
    failures = []
    devices = payload["devices"]

    # Gate 1: registry k40c == hand-built K40C, byte for byte.
    if devices["k40c"]["scenarios"] != payload["legacy_k40c"]:
        failures.append("k40c profile ranks differently from the "
                        "hand-built calibrated spec")

    # Gate 2: the paper's qualitative story on every device.
    for name, entry in devices.items():
        rows = entry["scenarios"]
        if rows["k=3"]["winner"] != "cuDNN":
            failures.append(f"{name}: cuDNN does not win small kernels")
        if rows["k=11"]["winner"] != "fbfft":
            failures.append(f"{name}: fbfft does not win large kernels")
        if "fft" in (rows["k=11,s=2"]["winner"] or "").lower():
            failures.append(f"{name}: an FFT implementation won a "
                            f"strided scenario")

    # Gate 3: capability endpoints — Pascal is never beaten, the K20X
    # never wins.
    for label in payload["scenarios"]:
        times = {name: entry["scenarios"][label]["time_ms"]
                 for name, entry in devices.items()}
        if any(t is None for t in times.values()):
            failures.append(f"{label}: a device had no feasible "
                            f"implementation")
            continue
        if times[FASTEST] != min(times.values()):
            failures.append(f"{label}: {FASTEST} ({times[FASTEST]} ms) "
                            f"was beaten by another device")
        if times[SLOWEST] != max(times.values()):
            failures.append(f"{label}: {SLOWEST} ({times[SLOWEST]} ms) "
                            f"was not the slowest device")
    return failures


def _render_text(payload: dict) -> str:
    names = list(payload["devices"])
    lines = [
        "advisor winner per device (Fig. 3 kernel axis + corners)",
        "",
        f"{'scenario':10s} " + " ".join(f"{n:>22s}" for n in names),
    ]
    for label in payload["scenarios"]:
        cells = []
        for name in names:
            row = payload["devices"][name]["scenarios"][label]
            cells.append(f"{row['winner'] or '-':>13s} "
                         f"{row['time_ms']:8.2f}")
        lines.append(f"{label:10s} " + " ".join(cells))
    lines.append("")
    match = payload["devices"]["k40c"]["scenarios"] == payload["legacy_k40c"]
    lines.append(f"registry k40c matches hand-built spec: {match}")
    return "\n".join(lines)


def bench_device_winners(save_artifact):
    """Benchmark-suite entry: full sweep plus the gates."""
    payload = run_sweep()
    save_artifact("device_winners", _render_text(payload))
    assert not check_gates(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)

    t0 = time.perf_counter()
    payload = run_sweep()
    payload["host_wall_s"] = round(time.perf_counter() - t0, 3)
    print(_render_text(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_devices.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (RESULTS_DIR / "device_winners.txt").write_text(
        _render_text(payload) + "\n")
    print(f"\nwrote {out}")

    failures = check_gates(payload)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
