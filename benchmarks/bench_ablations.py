"""Ablation benches for the design choices DESIGN.md calls out.

Each bench flips one modelling mechanism and shows the effect that
mechanism is responsible for in the reproduced figures.
"""

import pytest

from repro.core.ablations import ABLATIONS, run_all


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("name", sorted(ABLATIONS))
def bench_ablation(benchmark, save_artifact, name):
    result = benchmark.pedantic(ABLATIONS[name], rounds=1, iterations=1)
    save_artifact(f"ablation_{name}", result.render())
    assert result.baseline > 0 or result.ablated > 0
    benchmark.extra_info["ratio"] = round(result.ratio, 4)


@pytest.mark.benchmark(group="ablations")
def bench_all_ablations_report(benchmark, save_artifact):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact("ablations_all",
                  "\n\n".join(r.render() for r in results))
    assert len(results) == len(ABLATIONS)
