"""Tables I and II — the benchmark configurations and the per-thread
register / per-block shared-memory usage."""

import pytest

from repro import run_experiment


@pytest.mark.benchmark(group="tables")
def bench_table1_configs(benchmark, save_artifact):
    result, text = benchmark(run_experiment, "table1")
    save_artifact("table1_configs", text)
    assert result["Conv1"].tuple5 == (128, 128, 96, 11, 1)


@pytest.mark.benchmark(group="tables")
def bench_table2_resources(benchmark, save_artifact):
    _, text = benchmark(run_experiment, "table2")
    save_artifact("table2_resources", text)
    assert "116" in text  # cuda-convnet2 registers (paper Table II)
    assert "2" in text    # Theano-fft registers
