"""Per-layer oracle-mix bench: how much does "no single implementation
wins everywhere" cost in practice on whole models?"""

import pytest

from repro.core.layer_advisor import oracle_mix
from repro.nn.models import model_registry

MODELS = {"AlexNet": 128, "OverFeat": 128, "VGG-16": 64, "GoogLeNet": 64}


@pytest.mark.benchmark(group="layer-advisor")
@pytest.mark.parametrize("model", sorted(MODELS))
def bench_oracle_mix(benchmark, save_artifact, model):
    ctor, shape = model_registry()[model]
    net = ctor(rng=0)
    batch = MODELS[model]
    report = benchmark.pedantic(oracle_mix, args=(model, net,
                                                  (batch,) + shape),
                                rounds=1, iterations=1)
    save_artifact(f"oracle_mix_{model.lower().replace('-', '')}",
                  report.render())
    assert report.oracle_speedup >= 1.0
    benchmark.extra_info["best_single"] = report.best_single
    benchmark.extra_info["oracle_speedup"] = round(report.oracle_speedup, 3)
