"""Evaluation-cache speedup benchmark (and CI regression gate).

Measures ``all_runtime_sweeps`` — the five Fig. 3 panels, 546
evaluation points — in three regimes:

* **baseline** — the seed behavior: memoization off, evaluation cache
  bypassed, strictly serial; every point re-derives the full kernel
  plan → occupancy → roofline → metrics chain;
* **cold** — fresh caches, 4 workers: the shared
  :class:`~repro.core.evalcache.EvalCache` dedupes repeated points and
  the memoized model layers share sub-results;
* **warm** — an immediate rerun against the populated cache.

It also times the JSON disk round-trip (save, then a warm-start load
into a fresh cache) and verifies the rendered figures are
byte-identical across all regimes — caching must never change output.

Run as a script (``python benchmarks/bench_eval_cache.py [--quick]``)
it writes ``benchmarks/results/BENCH_eval_cache.json`` and exits
non-zero if the warm/cold speedup falls below the CI gate (2x) or any
regime's figures diverge.  Under pytest it runs in quick mode and
asserts the same gates.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: CI regression gate on the warm/cold ratio (the acceptance target is
#: 10x; 2x catches "the cache stopped working" without flaking on slow
#: shared runners).
WARM_COLD_GATE = 2.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(repeats: int = 5, workers: int = 4) -> dict:
    """Measure all regimes; returns the artifact payload."""
    from repro.core import evalcache
    from repro.core.runtime_comparison import all_runtime_sweeps
    from repro.gpusim import memo

    def fresh() -> None:
        memo.clear_all()
        evalcache.reset_cache()

    def render(sweeps) -> str:
        return "\n".join(sweeps[name].render() for name in sorted(sweeps))

    # Baseline replicates the seed: no memo layer, no shared cache, no
    # dedup, serial — each of the 546 points re-runs the whole model.
    memo.set_enabled(False)
    fresh()
    baseline_render = render(all_runtime_sweeps(cache=evalcache.DISABLED))
    baseline_s = _best_of(
        lambda: (fresh(), all_runtime_sweeps(cache=evalcache.DISABLED)),
        repeats)
    memo.set_enabled(True)

    fresh()
    cold_render = render(all_runtime_sweeps(workers=workers))
    cold_s = _best_of(
        lambda: (fresh(), all_runtime_sweeps(workers=workers)), repeats)

    # Leave the last cold run's caches in place: the warm regime.
    fresh()
    all_runtime_sweeps(workers=workers)
    warm_render = render(all_runtime_sweeps(workers=workers))
    warm_s = _best_of(lambda: all_runtime_sweeps(workers=workers), repeats)

    # Disk round-trip: persist the populated store, warm-start a fresh
    # cache from it, and rerun against the loaded records.
    store = evalcache.get_cache()
    store_path = RESULTS_DIR / "eval_cache_store.json"
    t0 = time.perf_counter()
    store.save(str(store_path))
    save_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    loaded = evalcache.EvalCache(path=str(store_path))
    load_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    disk_render = render(all_runtime_sweeps(workers=workers, cache=loaded))
    disk_warm_s = time.perf_counter() - t0

    identical = (baseline_render == cold_render == warm_render
                 == disk_render)
    return {
        "benchmark": "eval_cache",
        "workload": "all_runtime_sweeps",
        "points": 546,
        "workers": workers,
        "repeats": repeats,
        "baseline_s": baseline_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_speedup": baseline_s / cold_s,
        "warm_speedup_vs_cold": cold_s / warm_s,
        "disk": {
            "path": str(store_path),
            "entries": len(loaded),
            "save_s": save_s,
            "load_s": load_s,
            "warm_from_disk_s": disk_warm_s,
        },
        "figures_identical": identical,
        "cache_stats": store.stats(),
        "gate_warm_cold": WARM_COLD_GATE,
    }


def check_gates(payload: dict) -> list:
    """CI gates; returns the list of failures (empty = pass)."""
    failures = []
    if payload["warm_speedup_vs_cold"] < payload["gate_warm_cold"]:
        failures.append(
            f"warm/cold speedup {payload['warm_speedup_vs_cold']:.2f}x "
            f"below the {payload['gate_warm_cold']:.0f}x gate")
    if not payload["figures_identical"]:
        failures.append("cached figures differ from the no-cache baseline")
    return failures


def _render_text(payload: dict) -> str:
    lines = [
        "eval-cache speedup on all_runtime_sweeps "
        f"({payload['points']} points, {payload['workers']} workers)",
        f"  baseline (seed: no memo, no cache, serial)  "
        f"{payload['baseline_s'] * 1000:8.1f} ms",
        f"  cold (fresh caches)                         "
        f"{payload['cold_s'] * 1000:8.1f} ms   "
        f"x{payload['cold_speedup']:.2f} vs baseline",
        f"  warm (populated cache)                      "
        f"{payload['warm_s'] * 1000:8.1f} ms   "
        f"x{payload['warm_speedup_vs_cold']:.2f} vs cold",
        f"  warm from disk store                        "
        f"{payload['disk']['warm_from_disk_s'] * 1000:8.1f} ms   "
        f"({payload['disk']['entries']} records)",
        f"  figures byte-identical across regimes: "
        f"{payload['figures_identical']}",
    ]
    return "\n".join(lines)


def bench_eval_cache_speedups(save_artifact):
    """Benchmark-suite entry: quick mode plus the CI gates."""
    payload = run_benchmark(repeats=2)
    save_artifact("BENCH_eval_cache", _render_text(payload))
    assert not check_gates(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2 timing repeats instead of 5")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    payload = run_benchmark(repeats=2 if args.quick else 5,
                            workers=args.workers)
    print(_render_text(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_eval_cache.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")

    failures = check_gates(payload)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
