"""Fleet serving benchmark (and CI determinism/recovery gate).

Two scenarios over seeded traffic on a four-replica fleet:

* **policy comparison** — the same ≥100k-request trace (quick mode
  shrinks it) served once under each routing policy.  Shape-affinity
  must beat round-robin on fleet plan-cache hit rate (the point of the
  policy), and a same-seed re-run under the baseline policy must
  produce a byte-identical report digest — the determinism gate.
* **autoscaler recovery** — one replica under rate-4000 traffic it
  cannot sustain, with the 30 ms p99 rule and the autoscaler attached.
  The gate requires the SLO to be violated, the fleet to grow, and the
  violation to be *recovered* by the end of the run.

Run as a script (``python benchmarks/bench_cluster.py [--quick]``) it
writes ``benchmarks/results/BENCH_cluster.json`` plus the rendered
``cluster_policies.txt`` and exits non-zero on any gate failure.
Under pytest it runs in quick mode and asserts the same gates.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

REPLICAS = 4

#: Hard host-time ceiling for the quick (CI) run.  The fast-path work
#: brought the whole quick benchmark to a few seconds; the budget is
#: deliberately generous for slow CI hosts but fails loudly long
#: before the bench slides back to minutes.
QUICK_WALL_BUDGET_S = 30.0


def _digest(report) -> str:
    import hashlib

    blob = json.dumps(report.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def run_policy_comparison(duration_s: float, rate_rps: float) -> dict:
    from repro.cluster import POLICIES, ClusterConfig, serve_cluster
    from repro.serve import TrafficSpec, generate_trace

    spec = TrafficSpec(duration_s=duration_s, rate_rps=rate_rps, seed=7)
    trace = generate_trace(spec)
    policies = {}
    for policy in POLICIES:
        t0 = time.perf_counter()
        report = serve_cluster(trace, ClusterConfig(
            replicas=REPLICAS, policy=policy))
        policies[policy] = {
            "throughput_rps": round(report.throughput_rps, 1),
            "latency_p50_ms": round(report.latency_p50_ms, 3),
            "latency_p99_ms": round(report.latency_p99_ms, 3),
            "completion_rate": round(report.completion_rate, 4),
            "plan_cache_hit_rate":
                round(report.plan_cache["hit_rate"], 4),
            "routed": [r.routed for r in report.replicas],
            "digest": _digest(report),
            "host_wall_s": round(time.perf_counter() - t0, 3),
        }
    rerun = serve_cluster(trace, ClusterConfig(
        replicas=REPLICAS, policy="round-robin"))
    return {
        "workload": {"duration_s": duration_s, "rate_rps": rate_rps,
                     "seed": spec.seed, "arrivals": len(trace),
                     "replicas": REPLICAS},
        "policies": policies,
        "rerun_digest_matches":
            _digest(rerun) == policies["round-robin"]["digest"],
    }


def run_autoscale_recovery(duration_s: float = 2.0,
                           rate_rps: float = 4000.0) -> dict:
    from repro.cluster import (AutoscalePolicy, ClusterConfig,
                               serve_cluster)
    from repro.obs.slo import SLOPolicy, SLORule
    from repro.serve import TrafficSpec, generate_trace

    trace = generate_trace(TrafficSpec(duration_s=duration_s,
                                       rate_rps=rate_rps, seed=11))
    report = serve_cluster(trace, ClusterConfig(
        replicas=1, policy="least-loaded",
        slo=SLOPolicy(rules=(SLORule(name="p99", kind="latency_p99",
                                     threshold=0.03),), window_s=0.05),
        window_s=0.25,
        autoscale=AutoscalePolicy(min_replicas=1, max_replicas=4,
                                  cooldown_s=0.5)))
    return {
        "workload": {"duration_s": duration_s, "rate_rps": rate_rps,
                     "seed": 11, "arrivals": len(trace)},
        "violations": report.slo_violations,
        "recoveries": report.slo_recoveries,
        "in_violation_at_end": report.slo_in_violation,
        "scale_ups": report.scale_ups,
        "replicas_peak": report.replicas_peak,
        "latency_p99_ms": round(report.latency_p99_ms, 3),
        "actions": list(report.autoscale_actions),
    }


def run_million_chaos(duration_s: float = 50.0,
                      rate_rps: float = 20000.0) -> dict:
    """A million-request fleet trace with a mid-run correlated domain
    failure: an eight-replica fleet in two racks, rack0 (half the
    fleet) dying at 40% of the run, the health plane detecting,
    evacuating and restarting all four members while hedging defends
    the tail.  The archived artifact records the scorecard and a
    sha256 digest of the full report — the acceptance-scale
    self-healing run."""
    from repro.cluster import ClusterConfig, HealthConfig, serve_cluster
    from repro.faults import DomainFailureSpec, FleetFaultPlan
    from repro.serve import TrafficSpec, generate_trace

    replicas = 8
    fail_at = round(duration_s * 0.4, 3)
    plan = FleetFaultPlan(
        name="rack0-outage",
        domains={"rack0": tuple(range(replicas // 2)),
                 "rack1": tuple(range(replicas // 2, replicas))},
        domain_failures=(DomainFailureSpec(domain="rack0", at_s=fail_at),))
    spec = TrafficSpec(duration_s=duration_s, rate_rps=rate_rps, seed=13)
    trace = generate_trace(spec)
    config = ClusterConfig(
        replicas=replicas, policy="least-loaded", seed=spec.seed,
        health=HealthConfig(hedge_after_s=0.02),
        fleet_fault_plan=plan)
    t0 = time.perf_counter()
    report = serve_cluster(trace, config)
    wall = time.perf_counter() - t0
    score = report.health
    return {
        "workload": {"duration_s": duration_s, "rate_rps": rate_rps,
                     "seed": spec.seed, "arrivals": len(trace),
                     "replicas": replicas, "policy": config.policy,
                     "rack0_fails_at_s": fail_at},
        "completed": report.completed,
        "completion_rate": round(report.completion_rate, 6),
        "requeued": report.requeued,
        "throughput_rps": round(report.throughput_rps, 1),
        "latency_p50_ms": round(report.latency_p50_ms, 3),
        "latency_p99_ms": round(report.latency_p99_ms, 3),
        "replicas_started": report.replicas_started,
        "shed_by_cause": dict(sorted(report.shed_by_cause.items())),
        "health": score,
        "digest": _digest(report),
        "host_wall_s": round(wall, 3),
        "events_per_host_s": round(len(trace) / wall) if wall else None,
    }


def check_million_gates(payload: dict) -> list:
    failures = []
    if payload["workload"]["arrivals"] < 1_000_000:
        failures.append(f"trace has {payload['workload']['arrivals']} "
                        f"arrivals, under the million-request bar")
    score = payload["health"]
    half = payload["workload"]["replicas"] // 2
    if score["crashes"] != half:
        failures.append(f"rack outage observed {score['crashes']} "
                        f"crash(es), expected {half}")
    if score["restarts"] != half:
        failures.append(f"supervisor restarted {score['restarts']} of "
                        f"{half} crashed replicas")
    if score["hedges_issued"] != (score["hedge_wins"]
                                  + score["hedge_cancels"]):
        failures.append("hedge scorecard does not reconcile")
    if payload["completion_rate"] < 0.99:
        failures.append(f"completion rate {payload['completion_rate']:.4f} "
                        f"< 0.99 — the fleet did not absorb the outage")
    return failures


def run_benchmark(quick: bool = False) -> dict:
    t0 = time.perf_counter()
    if quick:
        comparison = run_policy_comparison(duration_s=1.0, rate_rps=4000.0)
    else:
        # ≥100k arrivals across the fleet, the acceptance-scale trace.
        comparison = run_policy_comparison(duration_s=10.5,
                                           rate_rps=10000.0)
    return {
        "benchmark": "cluster",
        "quick": quick,
        "policy_comparison": comparison,
        "autoscale_recovery": run_autoscale_recovery(),
        "host_wall_s": round(time.perf_counter() - t0, 3),
        "quick_wall_budget_s": QUICK_WALL_BUDGET_S,
    }


def check_gates(payload: dict) -> list:
    failures = []
    comparison = payload["policy_comparison"]
    if not comparison["rerun_digest_matches"]:
        failures.append("same-seed re-run produced a different report "
                        "digest — the fleet is nondeterministic")
    policies = comparison["policies"]
    if (policies["shape-affinity"]["plan_cache_hit_rate"]
            <= policies["round-robin"]["plan_cache_hit_rate"]):
        failures.append("shape-affinity did not beat round-robin on "
                        "plan-cache hit rate")
    recovery = payload["autoscale_recovery"]
    if recovery["violations"] < 1:
        failures.append("overload scenario never violated the SLO")
    if recovery["recoveries"] < 1 or recovery["in_violation_at_end"]:
        failures.append("autoscaler failed to recover the violated "
                        "latency SLO")
    if recovery["scale_ups"] < 1:
        failures.append("autoscaler never scaled up under overload")
    if payload["quick"] and payload["host_wall_s"] > QUICK_WALL_BUDGET_S:
        failures.append(
            f"quick run took {payload['host_wall_s']:.1f}s host time, "
            f"over the {QUICK_WALL_BUDGET_S:.0f}s budget — the "
            f"simulator fast path has regressed")
    return failures


def _render_text(payload: dict) -> str:
    comparison = payload["policy_comparison"]
    w = comparison["workload"]
    lines = [
        f"routing policies on {w['arrivals']} arrivals "
        f"({w['duration_s']:g} s @ {w['rate_rps']:g} req/s, "
        f"{w['replicas']} replicas, seed {w['seed']})",
        "",
        f"{'policy':16s} {'req/s':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
        f"{'cache hit':>10s} {'completion':>11s}",
    ]
    for name, p in comparison["policies"].items():
        lines.append(
            f"{name:16s} {p['throughput_rps']:8.0f} "
            f"{p['latency_p50_ms']:8.2f} {p['latency_p99_ms']:8.2f} "
            f"{p['plan_cache_hit_rate'] * 100:9.1f}% "
            f"{p['completion_rate'] * 100:10.1f}%")
    lines.append("")
    lines.append("same-seed re-run digest identical: "
                 f"{comparison['rerun_digest_matches']}")
    recovery = payload["autoscale_recovery"]
    lines.append(
        f"autoscale recovery: {recovery['violations']} violation(s), "
        f"{recovery['scale_ups']} scale-up(s) to peak "
        f"{recovery['replicas_peak']}, {recovery['recoveries']} "
        f"recovery(ies), end state "
        f"{'VIOLATED' if recovery['in_violation_at_end'] else 'ok'}")
    lines.append(f"host wall time: {payload['host_wall_s']:.2f} s"
                 + (f" (quick budget {payload['quick_wall_budget_s']:.0f} s)"
                    if payload["quick"] else ""))
    return "\n".join(lines)


def bench_cluster_policies(save_artifact):
    """Benchmark-suite entry: quick mode plus the CI gates."""
    payload = run_benchmark(quick=True)
    save_artifact("cluster_policies", _render_text(payload))
    assert not check_gates(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~4k-request trace instead of the "
                             "acceptance-scale 100k")
    parser.add_argument("--million", action="store_true",
                        help="archive the million-request self-healing "
                             "run (mid-run rack outage) instead of the "
                             "policy comparison")
    args = parser.parse_args(argv)

    if args.million:
        payload = run_million_chaos()
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "cluster_million_chaos.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        score = payload["health"]
        print(f"million-request rack outage: "
              f"{payload['workload']['arrivals']} arrivals, "
              f"{payload['completed']} completed "
              f"({payload['completion_rate'] * 100:.2f}%), "
              f"{score['crashes']} crash(es) -> {score['restarts']} "
              f"restart(s), {score['hedges_issued']} hedge(s), "
              f"p99 {payload['latency_p99_ms']:.2f} ms")
        print(f"report digest {payload['digest']}")
        print(f"host wall {payload['host_wall_s']:.1f} s "
              f"({payload['events_per_host_s']} req/s simulated)")
        print(f"wrote {out}")
        failures = check_million_gates(payload)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0

    payload = run_benchmark(quick=args.quick)
    print(_render_text(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_cluster.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    (RESULTS_DIR / "cluster_policies.txt").write_text(
        _render_text(payload) + "\n")
    print(f"\nwrote {out}")

    failures = check_gates(payload)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    raise SystemExit(main())
