"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures,
prints the same rows/series the paper plots, and archives the rendered
text under ``benchmarks/results/`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(artifact_dir, capsys):
    """Return a callable that prints and archives a rendered report."""

    def _save(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _save
