"""Whole-training-run projections — the paper's section-I motivation
('several weeks or months is not uncommon'), quantified on the
simulated K40c, plus the multi-GPU extension."""

import pytest

from repro.core.training_cost import estimate_training, multi_gpu_projection
from repro.workloads.datasets import IMAGENET


@pytest.mark.benchmark(group="training-cost")
@pytest.mark.parametrize("model", ["AlexNet", "GoogLeNet", "OverFeat", "VGG"])
def bench_training_cost(benchmark, save_artifact, model):
    batch = 64 if model == "VGG" else 128
    est = benchmark.pedantic(estimate_training, args=(model, IMAGENET),
                             kwargs=dict(batch=batch, epochs=90),
                             rounds=1, iterations=1)
    lines = [est.render()]
    for gpus in (2, 4, 8):
        days, eff = multi_gpu_projection(est, gpus)
        lines.append(f"  {gpus} GPUs: {days:6.2f} days "
                     f"(efficiency {eff:.0%})")
    save_artifact(f"training_cost_{model.lower()}", "\n".join(lines))
    # The paper's motivating claim: full ImageNet training takes days
    # to months on one 2016 GPU ("several weeks or months is not
    # uncommon" — VGG-19 lands at ~60 days here).
    assert 1.0 < est.total_days < 90.0
    benchmark.extra_info["days"] = round(est.total_days, 2)
