"""Setup shim: lets ``pip install -e .`` work on environments whose
setuptools predates PEP 660 editable installs (metadata lives in
pyproject.toml)."""
from setuptools import setup

setup()
