"""Every framework adapter must compute exact convolutions.

The adapters wrap different strategies (and cuda-convnet2 does a real
CHWN layout round-trip), but all seven must agree with the naive
reference on forward and both gradients.
"""

import numpy as np
import pytest

from repro.conv.reference import (conv2d_reference,
                                  conv2d_reference_backward_input,
                                  conv2d_reference_backward_weights)
from repro.frameworks import all_implementations

# Geometry satisfying every implementation's constraints (batch % 32,
# filters % 16, square, stride 1).
B, C, F, I, K = 32, 3, 16, 10, 3


@pytest.fixture(scope="module")
def tensors():
    rng = np.random.default_rng(42)
    x = rng.standard_normal((B, C, I, I))
    w = rng.standard_normal((F, C, K, K))
    bias = rng.standard_normal(F)
    y = conv2d_reference(x, w, bias)
    dy = rng.standard_normal(y.shape)
    return x, w, bias, y, dy


@pytest.mark.parametrize("impl", all_implementations(),
                         ids=lambda i: i.name)
class TestAllImplementations:
    def test_forward_matches_reference(self, impl, tensors):
        x, w, bias, y, _ = tensors
        got = impl.forward(x, w, bias)
        np.testing.assert_allclose(got, y, rtol=1e-7, atol=1e-7)

    def test_backward_input_matches_reference(self, impl, tensors):
        x, w, _, _, dy = tensors
        expected = conv2d_reference_backward_input(dy, w, (I, I))
        got = impl.backward_input(dy, w, (I, I))
        np.testing.assert_allclose(got, expected, rtol=1e-7, atol=1e-7)

    def test_backward_weights_matches_reference(self, impl, tensors):
        x, w, _, _, dy = tensors
        expected = conv2d_reference_backward_weights(dy, x, (K, K))
        got = impl.backward_weights(dy, x, (K, K))
        np.testing.assert_allclose(got, expected, rtol=1e-7, atol=1e-7)


class TestImplementationsAgreeWithEachOther:
    def test_pairwise_forward_agreement(self, tensors):
        x, w, bias, _, _ = tensors
        results = {impl.name: impl.forward(x, w, bias)
                   for impl in all_implementations()}
        names = list(results)
        ref = results[names[0]]
        for name in names[1:]:
            np.testing.assert_allclose(results[name], ref, rtol=1e-7,
                                       atol=1e-7, err_msg=name)


class TestPaddedStrided:
    """Padding for everyone; strides for the non-FFT family."""

    @pytest.mark.parametrize("impl", all_implementations(),
                             ids=lambda i: i.name)
    def test_padding(self, impl):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((B, C, 8, 8))
        w = rng.standard_normal((F, C, 3, 3))
        expected = conv2d_reference(x, w, None, 1, 1)
        got = impl.forward(x, w, None, 1, 1)
        np.testing.assert_allclose(got, expected, rtol=1e-7, atol=1e-7)

    @pytest.mark.parametrize("impl_name", ["caffe", "torch-cunn",
                                           "theano-corrmm", "cudnn",
                                           "cuda-convnet2"])
    def test_stride_2(self, impl_name):
        from repro.frameworks.registry import get_implementation
        impl = get_implementation(impl_name)
        rng = np.random.default_rng(9)
        x = rng.standard_normal((B, C, 9, 9))
        w = rng.standard_normal((F, C, 3, 3))
        expected = conv2d_reference(x, w, None, 2, 0)
        got = impl.forward(x, w, None, 2, 0)
        np.testing.assert_allclose(got, expected, rtol=1e-7, atol=1e-7)
