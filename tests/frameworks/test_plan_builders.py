"""Unit tests for the shared kernel-spec builders in
``repro.frameworks._plans``."""

import pytest

from repro.frameworks._plans import (col2im_spec, fft_spec, gemm_spec,
                                     im2col_spec, pointwise_spec,
                                     transpose_spec)
from repro.frameworks.calibration import (GEMM_CALIBRATION,
                                          TABLE2_RESOURCES)
from repro.gpusim.device import K40C
from repro.gpusim.kernels import KernelRole
from repro.gpusim.timing import time_kernel

RES = TABLE2_RESOURCES["caffe"]
CAL = GEMM_CALIBRATION["caffe"]


class TestGemmSpec:
    def test_flops_are_2mnk(self):
        s = gemm_spec("g", RES, CAL, 64, 128, 32)
        assert s.flops == 2 * 64 * 128 * 32

    def test_complex_flops_are_8mnk(self):
        s = gemm_spec("g", RES, CAL, 8, 8, 8, complex_=True)
        assert s.flops == 8 * 512

    def test_operand_bytes(self):
        s = gemm_spec("g", RES, CAL, 10, 20, 30)
        assert s.gmem_read_bytes == (10 * 30 + 30 * 20) * 4
        assert s.gmem_write_bytes == 10 * 20 * 4

    def test_carries_table2_resources(self):
        s = gemm_spec("g", RES, CAL, 64, 64, 64)
        assert s.regs_per_thread == RES.registers_per_thread
        assert s.shared_per_block == RES.shared_per_block

    def test_repeats_forwarded(self):
        s = gemm_spec("g", RES, CAL, 64, 64, 64, repeats=7)
        assert s.repeats == 7

    def test_timeable(self):
        s = gemm_spec("g", RES, CAL, 64, 4096, 363)
        assert time_kernel(K40C, s).time_s > 0


class TestUnrollSpecs:
    def test_im2col_traffic_model(self):
        """DRAM read = image (cache-served gather), write = column."""
        s = im2col_spec("i", RES, col_bytes=1e6, image_bytes=1e5)
        assert s.gmem_read_bytes == 1e5
        assert s.gmem_write_bytes == 1e6
        assert s.role is KernelRole.IM2COL
        assert s.timing_bandwidth_fraction is not None

    def test_col2im_traffic_model(self):
        s = col2im_spec("c", RES, col_bytes=1e6, image_bytes=1e5)
        assert s.gmem_read_bytes == 1e6
        assert s.gmem_write_bytes == 1e5
        assert s.role is KernelRole.COL2IM
        assert s.flops > 0  # accumulate adds

    def test_metric_patterns_badly_strided(self):
        from repro.gpusim.coalescing import access_efficiency
        s = im2col_spec("i", RES, 1e6, 1e5)
        assert access_efficiency(K40C, s.load_pattern) < 0.25


class TestStreamingSpecs:
    def test_pointwise_reads_and_writes(self):
        s = pointwise_spec("p", RES, 4e6)
        assert s.gmem_read_bytes == s.gmem_write_bytes == 4e6
        assert s.role is KernelRole.POINTWISE

    def test_pointwise_flops_per_element(self):
        s = pointwise_spec("p", RES, 4e6, flops_per_element=2.0)
        assert s.flops == (4e6 / 4) * 2.0  # elements * flops/elem

    def test_transpose_role_and_smem(self):
        s = transpose_spec("t", RES, 8e6)
        assert s.role is KernelRole.TRANSPOSE
        assert s.shared_per_block <= 4096
        assert s.shared_traffic_bytes == 16e6


class TestFftSpec:
    def test_forward_and_inverse_roles(self):
        f = fft_spec("f", TABLE2_RESOURCES["fbfft"], flops=1e9, nbytes=1e7,
                     transforms=100, efficiency=0.5)
        i = fft_spec("i", TABLE2_RESOURCES["fbfft"], flops=1e9, nbytes=1e7,
                     transforms=100, efficiency=0.5, inverse=True)
        assert f.role is KernelRole.FFT
        assert i.role is KernelRole.FFT_INVERSE

    def test_grid_matches_transform_count(self):
        s = fft_spec("f", TABLE2_RESOURCES["fbfft"], flops=1e9, nbytes=1e7,
                     transforms=123, efficiency=0.5)
        assert s.launch.grid_blocks == 123

    def test_efficiency_forwarded(self):
        s = fft_spec("f", TABLE2_RESOURCES["fbfft"], flops=1e9, nbytes=1e7,
                     transforms=10, efficiency=0.37)
        assert s.compute_efficiency == 0.37
