"""Discrete-event timeline vs the closed-form overlap model.

The event simulation and the analytic formula are two independent
derivations of the same quantity — their agreement licenses using the
cheap formula throughout the harness.
"""

import pytest

from repro.config import BASE_CONFIG, TABLE1_CONFIGS
from repro.frameworks.registry import all_implementations, get_implementation
from repro.frameworks.timeline import iteration_timeline


class TestSteadyState:
    def test_prefetcher_iteration_equals_compute(self):
        """Caffe's prefetched copies hide completely: steady-state
        iteration time == kernel time."""
        impl = get_implementation("caffe")
        tp = iteration_timeline(impl, BASE_CONFIG)
        assert tp.iteration_time_s == pytest.approx(tp.compute_time_s,
                                                    rel=1e-6)
        assert tp.transfer_fraction == pytest.approx(0.0, abs=1e-9)

    def test_synchronous_copies_extend_iterations(self):
        impl = get_implementation("torch-cunn")
        tp = iteration_timeline(impl, BASE_CONFIG)
        assert tp.iteration_time_s > tp.compute_time_s

    def test_agrees_with_closed_form(self):
        """For every implementation and Table-I config, the event
        simulation's transfer fraction matches profile_iteration's
        within 3 percentage points."""
        for impl in all_implementations():
            for name, config in TABLE1_CONFIGS.items():
                if not impl.supports(config):
                    continue
                analytic = impl.profile_iteration(config).transfer_fraction
                simulated = iteration_timeline(impl, config).transfer_fraction
                assert simulated == pytest.approx(analytic, abs=0.03), (
                    impl.name, name, analytic, simulated)

    def test_more_iterations_do_not_change_steady_state(self):
        impl = get_implementation("cuda-convnet2")
        a = iteration_timeline(impl, BASE_CONFIG, iterations=3)
        b = iteration_timeline(impl, BASE_CONFIG, iterations=8)
        assert a.iteration_time_s == pytest.approx(b.iteration_time_s,
                                                   rel=1e-9)

    def test_makespan_grows_linearly(self):
        impl = get_implementation("cudnn")
        a = iteration_timeline(impl, BASE_CONFIG, iterations=2)
        b = iteration_timeline(impl, BASE_CONFIG, iterations=4)
        assert b.makespan_s > a.makespan_s

    def test_validation(self):
        with pytest.raises(ValueError):
            iteration_timeline(get_implementation("caffe"), BASE_CONFIG,
                               iterations=1)

    def test_timeline_exportable(self):
        """The event run serialises to chrome-trace rows."""
        from repro.gpusim.trace import timeline_events
        tp = iteration_timeline(get_implementation("fbfft"), BASE_CONFIG)
        events = timeline_events(tp.timeline)
        assert len(events) > 4
        assert {e["tid"] for e in events} == {1, 2}
