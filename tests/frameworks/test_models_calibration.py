"""Tests for the GEMM/FFT analytic models and calibration tables."""

import pytest
from hypothesis import given, strategies as st

from repro.config import BASE_CONFIG
from repro.frameworks.calibration import (FFT_CALIBRATION, GEMM_CALIBRATION,
                                          TABLE2_RESOURCES, GemmCalibration)
from repro.frameworks.fft_model import (fft2_flops, iteration_workload,
                                        transform_size)
from repro.frameworks.gemm_model import (gemm_efficiency, gemm_grid_blocks,
                                         tile_quantisation)


class TestGemmModel:
    CAL = GemmCalibration(asymptote=0.7)

    def test_large_gemm_approaches_asymptote(self):
        eff = gemm_efficiency(self.CAL, 4096, 4096, 4096)
        assert 0.6 < eff <= 0.7

    def test_small_gemm_is_inefficient(self):
        assert gemm_efficiency(self.CAL, 8, 8, 8) < 0.1

    @given(m=st.integers(1, 2048), n=st.integers(1, 2048),
           k=st.integers(1, 2048))
    def test_bounded(self, m, n, k):
        eff = gemm_efficiency(self.CAL, m, n, k)
        assert 0 < eff <= self.CAL.asymptote

    @given(m=st.integers(1, 1024))
    def test_monotone_in_k(self, m):
        a = gemm_efficiency(self.CAL, m, 512, 64)
        b = gemm_efficiency(self.CAL, m, 512, 512)
        assert b >= a

    def test_tile_quantisation_exact_tiles(self):
        assert tile_quantisation(self.CAL, 128, 128) == 1.0

    def test_tile_quantisation_partial_tile(self):
        w = tile_quantisation(self.CAL, 65, 64)
        assert w == pytest.approx(128 / 65)

    def test_grid_blocks_split_k_floor(self):
        """Small outputs split along K so the device stays busy."""
        assert gemm_grid_blocks(self.CAL, 64, 64) >= 90

    def test_grid_blocks_large_output(self):
        assert gemm_grid_blocks(self.CAL, 1024, 1024) == 16 * 16

    def test_large_m_variant_switch(self):
        cal = GEMM_CALIBRATION["theano-corrmm"]
        small = gemm_efficiency(cal, 64, 8192, 256)
        large = gemm_efficiency(cal, 512, 8192, 256)
        assert large > small

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            gemm_efficiency(self.CAL, 0, 1, 1)


class TestFftModel:
    def test_fft2_flops_positive_and_growing(self):
        assert fft2_flops(64) < fft2_flops(128) < fft2_flops(256)

    def test_transform_size_pow2(self):
        cal = FFT_CALIBRATION["fbfft"]
        assert transform_size(cal, 128) == 128
        assert transform_size(cal, 129) == 256

    def test_transform_size_smooth(self):
        cal = FFT_CALIBRATION["theano-fft"]
        n = transform_size(cal, 130)
        assert n >= 130
        m = n
        for p in (2, 3, 5, 7):
            while m % p == 0:
                m //= p
        assert m == 1

    def test_workload_counts(self):
        cal = FFT_CALIBRATION["fbfft"]
        w = iteration_workload(cal, BASE_CONFIG)
        b, i, f, k, s = BASE_CONFIG.tuple5
        c = BASE_CONFIG.channels
        assert w.forward_transforms == b * c + f * c + b * f
        assert w.transform_n == 128
        assert w.cgemm_flops == 3 * 8 * b * f * c * w.freq_bins

    def test_kernel_size_invariance_fbfft(self):
        """Fig. 3(d): fbfft's work barely depends on k."""
        cal = FFT_CALIBRATION["fbfft"]
        w3 = iteration_workload(cal, BASE_CONFIG.scaled(kernel_size=3))
        w13 = iteration_workload(cal, BASE_CONFIG.scaled(kernel_size=13))
        assert w3.transform_n == w13.transform_n
        assert w3.fft_flops == w13.fft_flops

    def test_full_pad_adds_kernel_dependence(self):
        cal = FFT_CALIBRATION["theano-fft"]
        w3 = iteration_workload(cal, BASE_CONFIG.scaled(kernel_size=3))
        w13 = iteration_workload(cal, BASE_CONFIG.scaled(kernel_size=13))
        assert w13.transform_n >= w3.transform_n

    def test_spectrum_bytes_scale_with_batch(self):
        cal = FFT_CALIBRATION["fbfft"]
        a = iteration_workload(cal, BASE_CONFIG.scaled(batch=32))
        b = iteration_workload(cal, BASE_CONFIG.scaled(batch=256))
        assert b.spectrum_bytes > 4 * a.spectrum_bytes


class TestTable2:
    """Calibration must quote the paper's Table II exactly."""

    @pytest.mark.parametrize("name,regs,shared_kb", [
        ("caffe", 86, 8.5), ("cudnn", 80, 8.4), ("torch-cunn", 84, 8.1),
        ("theano-corrmm", 72, 7.0), ("cuda-convnet2", 116, 16.0),
        ("fbfft", 106, 10.0), ("theano-fft", 2, 4.5),
    ])
    def test_paper_values(self, name, regs, shared_kb):
        res = TABLE2_RESOURCES[name]
        assert res.registers_per_thread == regs
        assert res.shared_per_block == pytest.approx(shared_kb * 1024, rel=0.05)
