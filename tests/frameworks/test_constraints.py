"""Shape-limitation tests (paper section IV-B summary).

"Unrolling-based implementations are most flexible ... Cuda-convnet2
only supports square input images and square kernels, its mini-batch
size must be a multiple of 32 and its filter number must be a multiple
of 16.  FFT-based convolutions are applicable to any configuration
shapes except that their stride must be 1."
"""

import numpy as np
import pytest

from repro.config import ConvConfig
from repro.errors import UnsupportedConfigError
from repro.frameworks import (Caffe, CuDNN, CudaConvnet2, Fbfft, TheanoCorrMM,
                              TheanoFft, TorchCunn, all_implementations)


def cfg(**overrides):
    base = dict(batch=64, input_size=32, filters=64, kernel_size=5,
                stride=1, channels=8)
    base.update(overrides)
    return ConvConfig(**base)


class TestUnrollingFlexibility:
    """The unrolling family supports any shape."""

    @pytest.mark.parametrize("impl_cls", [Caffe, TorchCunn, TheanoCorrMM, CuDNN])
    @pytest.mark.parametrize("overrides", [
        {}, dict(batch=17), dict(filters=33), dict(stride=3),
        dict(batch=1, filters=1),
    ])
    def test_supports_everything(self, impl_cls, overrides):
        assert impl_cls().supports(cfg(**overrides))


class TestCudaConvnet2Rules:
    def test_batch_multiple_of_32(self):
        impl = CudaConvnet2()
        assert impl.supports(cfg(batch=32))
        assert impl.supports(cfg(batch=128))
        with pytest.raises(UnsupportedConfigError):
            impl.check_config(cfg(batch=33))
        with pytest.raises(UnsupportedConfigError):
            impl.check_config(cfg(batch=100))

    def test_filters_multiple_of_16(self):
        impl = CudaConvnet2()
        assert impl.supports(cfg(filters=16))
        with pytest.raises(UnsupportedConfigError):
            impl.check_config(cfg(filters=17))

    def test_stride_allowed(self):
        assert CudaConvnet2().supports(cfg(stride=4))

    def test_nonsquare_tensor_rejected_numerically(self, rng):
        impl = CudaConvnet2()
        x = rng.standard_normal((32, 3, 8, 10))
        w = rng.standard_normal((16, 3, 3, 3))
        with pytest.raises(UnsupportedConfigError):
            impl.forward(x, w)

    def test_nonsquare_kernel_rejected_numerically(self, rng):
        impl = CudaConvnet2()
        x = rng.standard_normal((32, 3, 8, 8))
        w = rng.standard_normal((16, 3, 3, 2))
        with pytest.raises(UnsupportedConfigError):
            impl.forward(x, w)

    def test_bad_batch_rejected_numerically(self, rng):
        impl = CudaConvnet2()
        x = rng.standard_normal((31, 3, 8, 8))
        w = rng.standard_normal((16, 3, 3, 3))
        with pytest.raises(UnsupportedConfigError):
            impl.forward(x, w)


class TestFftStrideRule:
    @pytest.mark.parametrize("impl_cls", [Fbfft, TheanoFft])
    def test_stride_1_only(self, impl_cls):
        impl = impl_cls()
        assert impl.supports(cfg(stride=1))
        for s in (2, 3, 4):
            with pytest.raises(UnsupportedConfigError):
                impl.check_config(cfg(stride=s))

    @pytest.mark.parametrize("impl_cls", [Fbfft, TheanoFft])
    def test_numeric_entry_points_reject_stride(self, impl_cls, rng):
        impl = impl_cls()
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        with pytest.raises(UnsupportedConfigError):
            impl.forward(x, w, stride=2)
        with pytest.raises(UnsupportedConfigError):
            impl.backward_input(np.zeros((2, 4, 3, 3)), w, (8, 8), stride=2)
        with pytest.raises(UnsupportedConfigError):
            impl.backward_weights(np.zeros((2, 4, 3, 3)), x, (3, 3), stride=2)


class TestStrideSweepCoverage:
    """Fig. 3(e): at stride > 1 exactly five implementations remain."""

    def test_supported_count_at_stride(self):
        c2 = cfg(stride=2)
        supported = [i.paper_name for i in all_implementations()
                     if i.supports(c2)]
        assert sorted(supported) == sorted(
            ["Caffe", "Torch-cunn", "Theano-CorrMM", "cuDNN",
             "cuda-convnet2"])
