"""Tests for the ConvImplementation interface and iteration profiles."""

import pytest

from repro.config import BASE_CONFIG
from repro.frameworks import all_implementations, get_implementation
from repro.frameworks.base import IterationProfile
from repro.frameworks.registry import IMPLEMENTATION_CLASSES, implementation_map
from repro.gpusim.transfer import TransferKind


class TestRegistry:
    def test_seven_implementations(self):
        assert len(IMPLEMENTATION_CLASSES) == 7
        assert len(all_implementations()) == 7

    def test_paper_names(self):
        names = {i.paper_name for i in all_implementations()}
        assert names == {"Caffe", "Torch-cunn", "Theano-CorrMM",
                         "Theano-fft", "cuDNN", "cuda-convnet2", "fbfft"}

    def test_map_and_lookup(self):
        m = implementation_map()
        assert set(m) == {"caffe", "torch-cunn", "theano-corrmm",
                          "theano-fft", "cudnn", "cuda-convnet2", "fbfft"}
        assert get_implementation("fbfft").name == "fbfft"

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            get_implementation("tensorflow")

    def test_fresh_instances(self):
        assert get_implementation("caffe") is not get_implementation("caffe")

    def test_strategies(self):
        from repro.frameworks.base import Strategy
        by_strategy = {}
        for impl in all_implementations():
            by_strategy.setdefault(impl.strategy, []).append(impl.name)
        assert sorted(by_strategy[Strategy.UNROLLING]) == [
            "caffe", "cudnn", "theano-corrmm", "torch-cunn"]
        assert by_strategy[Strategy.DIRECT] == ["cuda-convnet2"]
        assert sorted(by_strategy[Strategy.FFT]) == ["fbfft", "theano-fft"]


class TestIterationProfile:
    @pytest.fixture(scope="class")
    def profile(self) -> IterationProfile:
        return get_implementation("caffe").profile_iteration(BASE_CONFIG)

    def test_total_is_gpu_plus_exposed(self, profile):
        assert profile.total_time_s == pytest.approx(
            profile.gpu_time_s + profile.exposed_transfer_s)

    def test_transfer_fraction_in_unit_interval(self, profile):
        assert 0.0 <= profile.transfer_fraction <= 1.0

    def test_profiler_carries_kernels(self, profile):
        assert profile.profiler.executions
        assert profile.gpu_time_s == pytest.approx(
            profile.profiler.gpu_time())

    def test_time_iteration_matches_profile(self):
        impl = get_implementation("caffe")
        assert impl.time_iteration(BASE_CONFIG) == pytest.approx(
            impl.profile_iteration(BASE_CONFIG).total_time_s)

    def test_async_transfers_hidden(self):
        """Caffe prefetches: its input copy must be fully hidden."""
        p = get_implementation("caffe").profile_iteration(BASE_CONFIG)
        assert p.transfer_time_s > 0           # the copy happens...
        assert p.exposed_transfer_s == pytest.approx(0.0, abs=1e-6)

    def test_sync_transfers_exposed(self):
        p = get_implementation("torch-cunn").profile_iteration(BASE_CONFIG)
        assert p.exposed_transfer_s > 0


class TestTransferOps:
    def test_every_impl_loads_input(self):
        x_bytes = 64 * 3 * 128 * 128 * 4
        for impl in all_implementations():
            ops = impl.transfer_ops(BASE_CONFIG)
            h2d = [o for o in ops if o.kind is TransferKind.H2D]
            assert h2d and h2d[0].bytes == x_bytes, impl.name

    def test_corrmm_host_staging_only_on_huge_col(self):
        from repro.config import TABLE1_CONFIGS
        impl = get_implementation("theano-corrmm")
        conv2 = impl.transfer_ops(TABLE1_CONFIGS["Conv2"])
        conv4 = impl.transfer_ops(TABLE1_CONFIGS["Conv4"])
        assert len(conv2) > len(conv4)

    def test_theano_fft_roundtrips_output(self):
        impl = get_implementation("theano-fft")
        ops = impl.transfer_ops(BASE_CONFIG)
        assert any(o.kind is TransferKind.D2H for o in ops)
