"""Completeness check for the Theano-CorrMM host-staging rule.

The rule was fitted to reproduce the Fig. 7 Conv2 anomaly; this test
sweeps *every* configuration the paper measures (all five Fig. 3/5
sweeps plus Table I) and asserts the staging fires at Conv2 and
nowhere else — the 'only there' half of the paper's observation.
"""

import pytest

from repro.config import SWEEPS, TABLE1_CONFIGS, sweep_configs
from repro.frameworks.registry import get_implementation
from repro.gpusim.transfer import TransferKind


def staging_ops(impl, config):
    return [op for op in impl.transfer_ops(config)
            if "staging" in op.label]


@pytest.fixture(scope="module")
def corrmm():
    return get_implementation("theano-corrmm")


class TestStagingGrid:
    def test_no_staging_on_any_sweep_point(self, corrmm):
        for sweep in SWEEPS:
            for config in sweep_configs(sweep):
                if corrmm.supports(config):
                    assert staging_ops(corrmm, config) == [], (sweep, config)

    def test_staging_exactly_at_conv2(self, corrmm):
        for name, config in TABLE1_CONFIGS.items():
            ops = staging_ops(corrmm, config)
            if name == "Conv2":
                assert len(ops) == 2
                kinds = {op.kind for op in ops}
                assert kinds == {TransferKind.H2D, TransferKind.D2H}
            else:
                assert ops == [], name

    def test_no_other_implementation_stages(self):
        from repro.frameworks.registry import all_implementations
        for impl in all_implementations():
            if impl.name == "theano-corrmm":
                continue
            for name, config in TABLE1_CONFIGS.items():
                if impl.supports(config):
                    assert staging_ops(impl, config) == [], (impl.name, name)


class TestDeterminism:
    def test_time_iteration_deterministic(self):
        impl = get_implementation("fbfft")
        from repro.config import BASE_CONFIG
        assert impl.time_iteration(BASE_CONFIG) == impl.time_iteration(
            BASE_CONFIG)

    def test_experiment_deterministic(self):
        from repro import run_experiment
        _, a = run_experiment("fig3e")
        _, b = run_experiment("fig3e")
        assert a == b

    def test_memory_deterministic(self):
        from repro.config import BASE_CONFIG
        impl = get_implementation("theano-fft")
        assert impl.peak_memory_bytes(BASE_CONFIG) == \
            impl.peak_memory_bytes(BASE_CONFIG)
