"""Tests for the cuDNN-Winograd what-if extension adapter."""

import numpy as np
import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.conv.reference import conv2d_reference
from repro.errors import UnsupportedConfigError
from repro.frameworks.registry import IMPLEMENTATION_CLASSES, get_implementation
from repro.frameworks.winograd_ext import (EXTENSION_IMPLEMENTATIONS,
                                           CuDNNWinograd)

VGG_LAYER = ConvConfig(batch=64, input_size=56, filters=256, kernel_size=3,
                       channels=128, padding=1)


@pytest.fixture(scope="module")
def wg():
    return CuDNNWinograd()


class TestRegistration:
    def test_not_among_the_papers_seven(self):
        """The extension must not contaminate the reproduction."""
        assert CuDNNWinograd not in IMPLEMENTATION_CLASSES
        assert CuDNNWinograd in EXTENSION_IMPLEMENTATIONS

    def test_constraints(self, wg):
        assert wg.supports(VGG_LAYER)
        with pytest.raises(UnsupportedConfigError):
            wg.check_config(BASE_CONFIG)  # k = 11
        with pytest.raises(UnsupportedConfigError):
            wg.check_config(VGG_LAYER.scaled(stride=2))


class TestNumerics:
    def test_forward_exact(self, wg, rng):
        x = rng.standard_normal((4, 3, 10, 10))
        w = rng.standard_normal((8, 3, 3, 3))
        np.testing.assert_allclose(wg.forward(x, w),
                                   conv2d_reference(x, w),
                                   rtol=1e-9, atol=1e-9)

    def test_gradients_exact(self, wg, rng):
        from repro.conv.reference import (
            conv2d_reference_backward_input,
            conv2d_reference_backward_weights)
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        dy = rng.standard_normal((2, 4, 6, 6))
        np.testing.assert_allclose(
            wg.backward_input(dy, w, (8, 8)),
            conv2d_reference_backward_input(dy, w, (8, 8)),
            rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            wg.backward_weights(dy, x, (3, 3)),
            conv2d_reference_backward_weights(dy, x, (3, 3)),
            rtol=1e-9, atol=1e-9)


class TestWhatIfPerformance:
    def test_wins_on_multichannel_3x3(self, wg):
        """The historical outcome: cuDNN v5's Winograd gave ~2x on
        VGG-style layers.  The what-if adapter must beat the v3-era
        implementations on such a layer."""
        t_wg = wg.time_iteration(VGG_LAYER)
        t_cudnn = get_implementation("cudnn").time_iteration(VGG_LAYER)
        t_fbfft = get_implementation("fbfft").time_iteration(VGG_LAYER)
        assert t_wg < t_cudnn
        assert t_wg < t_fbfft
        assert 1.2 < t_cudnn / t_wg < 4.0

    def test_transform_overhead_hurts_few_channels(self, wg):
        """With c = 3 the transforms dominate and plain cuDNN keeps
        winning — Winograd is not a free lunch."""
        cfg = BASE_CONFIG.scaled(kernel_size=3)
        assert (get_implementation("cudnn").time_iteration(cfg)
                < wg.time_iteration(cfg))

    def test_kernel_plan_structure(self, wg):
        names = [s.name for s in wg.kernel_plan(VGG_LAYER)]
        assert "winograd_batched_gemm" in names
        assert "winograd_input_transform" in names
        assert "winograd_output_transform" in names

    def test_memory_has_transform_workspaces(self, wg):
        plan = dict(wg.workspace_plan(VGG_LAYER))
        assert set(plan) == {"winograd_V", "winograd_U", "winograd_M"}
        assert wg.peak_memory_bytes(VGG_LAYER) > 0
