"""Invariant tests over the calibration tables.

Calibration is the single source of implementation-specific constants;
these tests pin its structural contract so a careless edit cannot
orphan an implementation or smuggle in an out-of-range efficiency.
"""

import pytest

from repro.frameworks.calibration import (ACCESS_PATTERNS, CONTEXT_BYTES,
                                          DIRECT_CALIBRATION, DIVERGENCE,
                                          FBFFT_CGEMM, FFT_CALIBRATION,
                                          GEMM_CALIBRATION, ITEMSIZE,
                                          SHARED_PATTERNS, TABLE2_RESOURCES,
                                          THEANO_FFT_CGEMM,
                                          TRANSFER_BEHAVIOUR)
from repro.frameworks.registry import all_implementations

PAPER_SEVEN = {"caffe", "torch-cunn", "theano-corrmm", "theano-fft",
               "cudnn", "cuda-convnet2", "fbfft"}


class TestCoverage:
    def test_every_implementation_has_resources(self):
        assert PAPER_SEVEN <= set(TABLE2_RESOURCES)

    def test_every_implementation_has_transfer_behaviour(self):
        assert PAPER_SEVEN <= set(TRANSFER_BEHAVIOUR)

    def test_unrolling_family_has_gemm_calibration(self):
        assert set(GEMM_CALIBRATION) == {"caffe", "torch-cunn",
                                         "theano-corrmm", "cudnn"}

    def test_fft_family_has_fft_calibration(self):
        assert set(FFT_CALIBRATION) == {"fbfft", "theano-fft"}

    def test_registry_and_tables_agree(self):
        for impl in all_implementations():
            assert impl.name in TABLE2_RESOURCES
            assert impl.name in TRANSFER_BEHAVIOUR


class TestRanges:
    def test_gemm_asymptotes_physical(self):
        for cal in list(GEMM_CALIBRATION.values()) + [FBFFT_CGEMM,
                                                      THEANO_FFT_CGEMM]:
            assert 0.0 < cal.asymptote <= 1.0
            if cal.asymptote_large is not None:
                assert cal.asymptote < cal.asymptote_large <= 1.0
            assert cal.m_half > 0 and cal.n_half > 0 and cal.k_half > 0
            assert cal.tile_m > 0 and cal.tile_n > 0

    def test_fft_efficiencies_physical(self):
        for cal in FFT_CALIBRATION.values():
            assert 0.0 < cal.efficiency <= 1.0
            assert cal.buffer_residency >= 1.0

    def test_direct_calibration(self):
        assert 0 < DIRECT_CALIBRATION.efficiency_b32 \
            < DIRECT_CALIBRATION.efficiency_b128 <= 1.0
        assert DIRECT_CALIBRATION.batch_tile == 128

    def test_resources_fit_the_device(self):
        from repro.gpusim.device import K40C
        for name, res in TABLE2_RESOURCES.items():
            assert 0 < res.registers_per_thread <= K40C.max_registers_per_thread
            assert 0 < res.shared_per_block <= K40C.max_shared_per_block
            assert 0 < res.block_threads <= K40C.max_threads_per_block

    def test_constants(self):
        assert ITEMSIZE == 4
        assert CONTEXT_BYTES > 0


class TestPatternTables:
    def test_required_access_patterns_present(self):
        required = {"gemm_load", "gemm_store", "stream_load", "stream_store",
                    "im2col_load", "im2col_store", "col2im_load",
                    "col2im_store", "cudnn_load", "cudnn_store",
                    "ccn2_load", "ccn2_store", "fbfft_load", "fbfft_store",
                    "theano_fft_load", "theano_fft_store"}
        assert required <= set(ACCESS_PATTERNS)

    def test_required_shared_patterns_present(self):
        assert {"gemm", "cudnn", "ccn2", "fbfft", "theano-fft"} <= set(
            SHARED_PATTERNS)

    def test_divergence_profiles_valid(self):
        for prof in DIVERGENCE.values():
            assert 0.0 <= prof.divergent_fraction <= 1.0

    def test_fitted_occupancy_bands_documented(self):
        """The Table II numbers must be the paper's (guard against a
        'helpful' retuning): spot-check the extremes."""
        assert TABLE2_RESOURCES["cuda-convnet2"].registers_per_thread == 116
        assert TABLE2_RESOURCES["theano-fft"].registers_per_thread == 2


class TestTransferBehaviour:
    def test_prefetchers_are_async_pinned(self):
        for name in ("caffe", "cudnn", "fbfft"):
            beh = TRANSFER_BEHAVIOUR[name]
            assert beh.pinned and beh.async_

    def test_synchronous_family(self):
        for name in ("torch-cunn", "theano-corrmm", "theano-fft"):
            assert not TRANSFER_BEHAVIOUR[name].async_

    def test_only_corrmm_stages_through_host(self):
        stagers = [n for n, b in TRANSFER_BEHAVIOUR.items()
                   if b.host_staging_threshold]
        assert stagers == ["theano-corrmm"]
