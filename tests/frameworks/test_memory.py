"""Memory-plan tests (the Fig. 5 substrate)."""

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.errors import DeviceOOMError
from repro.frameworks import all_implementations, get_implementation
from repro.gpusim.device import K40C


@pytest.fixture(scope="module")
def peaks():
    return {impl.name: impl.peak_memory_bytes(BASE_CONFIG)
            for impl in all_implementations()}


class TestMemoryOrdering:
    """Section V-B's ranking at the base configuration."""

    def test_ccn2_lowest(self, peaks):
        others = [v for k, v in peaks.items() if k != "cuda-convnet2"]
        assert peaks["cuda-convnet2"] <= min(others)

    def test_torch_cunn_leanest_unrolling(self, peaks):
        for other in ("caffe", "cudnn", "theano-corrmm"):
            assert peaks["torch-cunn"] < peaks[other]

    def test_fft_family_highest(self, peaks):
        non_fft = [v for k, v in peaks.items()
                   if k not in ("fbfft", "theano-fft")]
        assert peaks["fbfft"] > max(non_fft)

    def test_fbfft_exceeds_theano_fft(self, peaks):
        assert peaks["fbfft"] > peaks["theano-fft"]


class TestMemoryScaling:
    def test_monotone_in_batch(self):
        impl = get_implementation("caffe")
        a = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=32))
        b = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=256))
        assert b > a

    def test_fbfft_pow2_jump(self):
        """Fig. 5(b): fbfft's footprint jumps when the input crosses a
        power of two (128 -> 144 pads 128 -> 256)."""
        impl = get_implementation("fbfft")
        below = impl.peak_memory_bytes(BASE_CONFIG.scaled(input_size=128))
        above = impl.peak_memory_bytes(BASE_CONFIG.scaled(input_size=144))
        assert above > 1.8 * below

    def test_unrolling_smooth_at_same_crossing(self):
        impl = get_implementation("caffe")
        below = impl.peak_memory_bytes(BASE_CONFIG.scaled(input_size=128))
        above = impl.peak_memory_bytes(BASE_CONFIG.scaled(input_size=144))
        assert above < 1.5 * below

    def test_theano_fft_kernel_size_fluctuation(self):
        """Fig. 5(d): Theano-fft's transform size depends on i + k - 1,
        so memory is not constant across the kernel sweep."""
        impl = get_implementation("theano-fft")
        peaks = [impl.peak_memory_bytes(BASE_CONFIG.scaled(kernel_size=k))
                 for k in range(2, 14)]
        assert len(set(peaks)) > 1

    def test_ccn2_has_no_workspace(self):
        impl = get_implementation("cuda-convnet2")
        assert impl.workspace_plan(BASE_CONFIG) == []


class TestPaperRanges:
    """Absolute footprints should sit in the right decade (Fig. 5
    quotes: ccn2 125-2076 MB, Caffe 136-3809 MB, fbfft 1632-10866 MB)."""

    def test_ccn2_batch_extremes(self):
        impl = get_implementation("cuda-convnet2")
        lo = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=32)) / 2**20
        hi = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=512)) / 2**20
        assert 60 <= lo <= 400
        assert 1500 <= hi <= 2700

    def test_caffe_batch_extremes(self):
        impl = get_implementation("caffe")
        hi = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=512)) / 2**20
        assert 3000 <= hi <= 4600

    def test_fbfft_batch_extremes(self):
        impl = get_implementation("fbfft")
        lo = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=32)) / 2**20
        hi = impl.peak_memory_bytes(BASE_CONFIG.scaled(batch=512)) / 2**20
        assert 1200 <= lo <= 2300
        assert 8000 <= hi <= 11800

    def test_fbfft_fits_k40c_over_paper_sweeps(self):
        """The paper ran fbfft on every sweep point, so none may OOM."""
        from repro.config import sweep_configs
        impl = get_implementation("fbfft")
        for sweep in ("batch", "input", "filters", "kernel"):
            for cfg in sweep_configs(sweep):
                impl.peak_memory_bytes(cfg)  # must not raise

    def test_oom_on_oversized_config(self):
        impl = get_implementation("fbfft")
        huge = ConvConfig(batch=2048, input_size=256, filters=256,
                          kernel_size=11, channels=3)
        with pytest.raises(DeviceOOMError):
            impl.peak_memory_bytes(huge)


class TestMemoryPlanContents:
    def test_plan_includes_activations(self):
        plan = dict(get_implementation("caffe").memory_plan(BASE_CONFIG))
        for tag in ("input", "weights", "output", "weight_grad"):
            assert tag in plan
        assert plan["input"] == 64 * 3 * 128 * 128 * 4

    def test_separate_gradient_policy_visible(self):
        caffe_plan = dict(get_implementation("caffe").memory_plan(BASE_CONFIG))
        torch_plan = dict(get_implementation("torch-cunn").memory_plan(BASE_CONFIG))
        assert "input_grad" in caffe_plan and "output_grad" in caffe_plan
        assert "input_grad" not in torch_plan
