"""Registry lookups, including the shared-instance dispatch path."""

import pytest

from repro.frameworks.registry import (all_implementations,
                                       get_implementation,
                                       implementation_map,
                                       resolve_implementation,
                                       shared_implementations)


class TestFreshInstances:
    def test_seven_implementations(self):
        assert len(all_implementations()) == 7

    def test_map_keys_are_registry_names(self):
        assert "cudnn" in implementation_map()

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown implementation"):
            get_implementation("tensorrt")

    def test_fresh_instances_are_new_objects(self):
        assert all_implementations()[0] is not all_implementations()[0]


class TestSharedInstances:
    def test_shared_are_memoized(self):
        a = shared_implementations()
        b = shared_implementations()
        assert [id(x) for x in a] == [id(y) for y in b]

    def test_paper_order_preserved(self):
        names = [impl.name for impl in shared_implementations()]
        assert names == [impl.name for impl in all_implementations()]

    def test_resolve_by_registry_name(self):
        assert resolve_implementation("cudnn").paper_name == "cuDNN"

    def test_resolve_by_paper_name(self):
        assert resolve_implementation("Theano-CorrMM").name == "theano-corrmm"

    def test_resolve_returns_shared_instance(self):
        assert resolve_implementation("fbfft") is resolve_implementation("fbfft")

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown implementation"):
            resolve_implementation("winograd-v9")
