"""Kernel-plan tests: the Fig. 4 structure of each implementation."""

import pytest

from repro.config import BASE_CONFIG
from repro.frameworks import all_implementations, get_implementation
from repro.frameworks.calibration import TABLE2_RESOURCES
from repro.gpusim.kernels import KernelRole


@pytest.fixture(scope="module")
def plans():
    return {impl.name: impl.kernel_plan(BASE_CONFIG)
            for impl in all_implementations()
            if impl.supports(BASE_CONFIG)}


class TestPlanStructure:
    def test_every_impl_has_a_plan(self, plans):
        assert len(plans) == 7

    @pytest.mark.parametrize("name", ["caffe", "torch-cunn", "theano-corrmm"])
    def test_unrolling_plan_kernels(self, plans, name):
        roles = {s.role for s in plans[name]}
        assert {KernelRole.GEMM, KernelRole.IM2COL,
                KernelRole.COL2IM} <= roles

    def test_cudnn_kernel_names(self, plans):
        """Fig. 4(d): wgrad_alg0_engine and cudnn_gemm dominate."""
        names = {s.name for s in plans["cudnn"]}
        assert "wgrad_alg0_engine" in names
        assert any(n.startswith("cudnn_gemm") for n in names)
        # No explicit column buffer kernels.
        roles = {s.role for s in plans["cudnn"]}
        assert KernelRole.IM2COL not in roles
        assert KernelRole.COL2IM not in roles

    def test_ccn2_kernel_names(self, plans):
        """Fig. 4(e): filterActs / img_acts / weight_acts."""
        names = {s.name for s in plans["cuda-convnet2"]}
        assert any(n.startswith("filterActs") for n in names)
        assert any(n.startswith("img_acts") for n in names)
        assert "conv_weight_acts_c_preload" in names

    def test_ccn2_color_kernel_for_3_channels(self, plans):
        assert any("color" in s.name for s in plans["cuda-convnet2"])
        many = BASE_CONFIG.scaled(channels=64)
        plan = get_implementation("cuda-convnet2").kernel_plan(many)
        assert any("sparse2" in s.name for s in plan)

    def test_fbfft_pipeline(self, plans):
        """Fig. 4(f): FFT -> transpose -> Cgemm -> inverse FFT."""
        names = [s.name for s in plans["fbfft"]]
        assert "decimateInFrequency" in names
        assert "transpose" in names
        assert "Cgemm" in names
        assert names[-1] == "decimateInFrequencyInverse"
        # The FFT stages bracket the CGEMM.
        assert (names.index("decimateInFrequency") < names.index("Cgemm")
                < names.index("decimateInFrequencyInverse"))

    def test_theano_fft_has_data_prep(self, plans):
        roles = {s.role for s in plans["theano-fft"]}
        assert KernelRole.DATA_PREP in roles

    def test_plan_uses_table2_resources(self, plans):
        """Each implementation's dominant kernels carry its Table II
        register/shared usage."""
        for name, plan in plans.items():
            res = TABLE2_RESOURCES[name]
            heavy = max(plan, key=lambda s: s.flops)
            assert heavy.regs_per_thread == res.registers_per_thread
            assert heavy.shared_per_block == res.shared_per_block

    def test_per_image_kernels_repeat_over_batch(self, plans):
        """Caffe-family im2col/GEMM launch once per image."""
        for name in ("caffe", "torch-cunn", "theano-corrmm"):
            gemms = [s for s in plans[name] if s.role is KernelRole.GEMM]
            assert all(s.repeats == BASE_CONFIG.batch for s in gemms)

    def test_cudnn_batches_in_one_launch(self, plans):
        gemms = [s for s in plans["cudnn"] if s.role is KernelRole.GEMM]
        assert all(s.repeats == 1 for s in gemms)

    def test_three_pass_flops_accounting(self, plans):
        """Unrolling plans carry ~3x the direct-conv FLOPs of one
        forward pass (fwd + dgrad + wgrad)."""
        expected = BASE_CONFIG.training_flops
        for name in ("caffe", "torch-cunn", "theano-corrmm", "cudnn"):
            flops = sum(s.total_flops for s in plans[name]
                        if s.role is KernelRole.GEMM)
            assert flops == pytest.approx(expected, rel=0.01)

    def test_direct_flops_accounting(self, plans):
        flops = sum(s.total_flops for s in plans["cuda-convnet2"]
                    if s.role is KernelRole.DIRECT_CONV)
        assert flops == pytest.approx(BASE_CONFIG.training_flops, rel=0.01)


class TestPlanValidity:
    def test_plans_reject_unsupported_configs(self):
        from repro.errors import UnsupportedConfigError
        bad = BASE_CONFIG.scaled(stride=2)
        with pytest.raises(UnsupportedConfigError):
            get_implementation("fbfft").kernel_plan(bad)

    def test_all_specs_timeable(self, plans, device):
        from repro.gpusim.timing import time_kernel
        for name, plan in plans.items():
            for spec in plan:
                t = time_kernel(device, spec)
                assert t.time_s > 0, f"{name}/{spec.name}"
