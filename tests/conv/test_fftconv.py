"""FFT-strategy-specific tests (transform sizing, pow2 mode)."""

import numpy as np
import pytest

from repro.conv import fft_forward
from repro.conv.fftconv import transform_size
from repro.conv.reference import conv2d_reference
from repro.errors import ShapeError


class TestTransformSize:
    def test_at_least_input(self):
        assert transform_size(100, 5) >= 100

    def test_pow2_mode(self):
        assert transform_size(100, 5, pow2=True) == 128
        assert transform_size(128, 11, pow2=True) == 128
        assert transform_size(129, 3, pow2=True) == 256

    def test_fast_len_mode_smooth(self):
        n = transform_size(97, 3)
        # 2/3/5/7-smooth and >= 97
        assert n >= 97
        m = n
        for p in (2, 3, 5, 7):
            while m % p == 0:
                m //= p
        assert m == 1

    def test_rejects_kernel_bigger_than_input(self):
        with pytest.raises(ShapeError):
            transform_size(4, 5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            transform_size(0, 1)


class TestPow2ModeNumerics:
    """fbfft pads to powers of two — results must not change."""

    @pytest.mark.parametrize("i,k", [(8, 3), (11, 4), (13, 5), (16, 1)])
    def test_pow2_matches_reference(self, i, k, rng):
        x = rng.standard_normal((2, 2, i, i))
        w = rng.standard_normal((3, 2, k, k))
        expected = conv2d_reference(x, w)
        got = fft_forward(x, w, pow2=True)
        np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-8)

    def test_pow2_and_fast_len_agree(self, rng):
        x = rng.standard_normal((1, 3, 10, 10))
        w = rng.standard_normal((2, 3, 3, 3))
        np.testing.assert_allclose(fft_forward(x, w, pow2=True),
                                   fft_forward(x, w, pow2=False),
                                   rtol=1e-8, atol=1e-8)


class TestShapeRules:
    def test_non_square_input_rejected(self, rng):
        x = rng.standard_normal((1, 1, 8, 10))
        w = rng.standard_normal((1, 1, 3, 3))
        with pytest.raises(ShapeError):
            fft_forward(x, w)

    def test_non_square_kernel_rejected(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 2))
        with pytest.raises(ShapeError):
            fft_forward(x, w)

    def test_output_dtype_follows_inputs(self, rng):
        x = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        assert fft_forward(x, w).dtype == np.float32
