"""Tests for the convolution-strategy registry."""

import numpy as np
import pytest

from repro.conv.registry import (STRATEGIES, get_strategy,
                                 supported_strategies)


class TestRegistry:
    def test_four_strategies(self):
        assert set(STRATEGIES) == {"direct", "unrolled", "fft", "winograd"}

    def test_get_strategy_returns_module(self):
        mod = get_strategy("fft")
        assert hasattr(mod, "forward")
        assert hasattr(mod, "backward_input")
        assert hasattr(mod, "backward_weights")

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            get_strategy("im2winograd")

    def test_supported_at_general_geometry(self):
        assert supported_strategies(5, 1) == ["direct", "unrolled", "fft"]

    def test_supported_at_3x3(self):
        assert "winograd" in supported_strategies(3, 1)

    def test_supported_at_stride_2(self):
        assert supported_strategies(3, 2) == ["direct", "unrolled"]

    def test_all_strategies_agree_where_supported(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        outs = [get_strategy(name).forward(x, w)
                for name in supported_strategies(3, 1)]
        for other in outs[1:]:
            np.testing.assert_allclose(other, outs[0], rtol=1e-8, atol=1e-8)


class TestConv2dWinogradBackend:
    def test_winograd_by_name(self, rng):
        from repro.nn import Conv2d
        ref = Conv2d(3, 4, 3, rng=0)
        win = Conv2d(3, 4, 3, backend="winograd", rng=0)
        x = rng.standard_normal((2, 3, 8, 8))
        np.testing.assert_allclose(win.forward(x), ref.forward(x),
                                   rtol=1e-9, atol=1e-9)

    def test_winograd_gradients_through_layer(self, rng):
        from repro.nn import Conv2d
        layer = Conv2d(2, 2, 3, backend="winograd", rng=1)
        x = rng.standard_normal((1, 2, 6, 6))
        y = layer.forward(x)
        dy = rng.standard_normal(y.shape)
        dx = layer.backward(dy)
        ref = Conv2d(2, 2, 3, rng=1)
        ref.forward(x)
        np.testing.assert_allclose(dx, ref.backward(dy), rtol=1e-9,
                                   atol=1e-9)
        np.testing.assert_allclose(layer.weight.grad, ref.weight.grad,
                                   rtol=1e-9, atol=1e-9)
