"""Tests for the GEMM helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.gemm import (blocked_gemm, cgemm_flops, gemm, gemm_bytes,
                             gemm_flops)
from repro.errors import ShapeError


class TestGemm:
    def test_matches_matmul(self, rng):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((5, 9))
        assert np.allclose(gemm(a, b), a @ b)

    def test_out_parameter(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        out = np.zeros((3, 2))
        ret = gemm(a, b, out=out)
        assert ret is out
        assert np.allclose(out, a @ b)

    def test_accumulate(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        out = np.ones((3, 2))
        gemm(a, b, out=out, accumulate=True)
        assert np.allclose(out, 1.0 + a @ b)

    def test_shape_errors(self, rng):
        with pytest.raises(ShapeError):
            gemm(rng.standard_normal((3, 4)), rng.standard_normal((5, 2)))
        with pytest.raises(ShapeError):
            gemm(rng.standard_normal(4), rng.standard_normal((4, 2)))
        with pytest.raises(ShapeError):
            gemm(rng.standard_normal((3, 4)), rng.standard_normal((4, 2)),
                 out=np.zeros((2, 2)))


class TestBlockedGemm:
    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(1, 40), k=st.integers(1, 40), n=st.integers(1, 40),
           block=st.sampled_from([1, 3, 8, 64]), seed=st.integers(0, 99))
    def test_matches_blas(self, m, k, n, block, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        assert np.allclose(blocked_gemm(a, b, block=block), a @ b)

    def test_rejects_bad_block(self, rng):
        with pytest.raises(ShapeError):
            blocked_gemm(rng.standard_normal((2, 2)),
                         rng.standard_normal((2, 2)), block=0)


class TestFlopCounting:
    def test_gemm_flops(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_cgemm_is_4x(self):
        assert cgemm_flops(2, 3, 4) == 4 * gemm_flops(2, 3, 4)

    def test_bytes(self):
        assert gemm_bytes(2, 3, 4, itemsize=4) == (8 + 12 + 6) * 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            gemm_flops(0, 1, 1)
        with pytest.raises(ShapeError):
            cgemm_flops(1, -1, 1)
