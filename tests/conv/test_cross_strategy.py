"""Cross-strategy agreement: the heart of the numerical test suite.

The paper's three convolution strategies are different algorithms for
the same mathematics; here hypothesis drives all of them against the
naive reference across random geometries for all three passes of a
training iteration.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import (direct_backward_input, direct_backward_weights,
                        direct_forward, fft_backward_input,
                        fft_backward_weights, fft_forward,
                        unrolled_backward_input, unrolled_backward_weights,
                        unrolled_forward)
from repro.conv.reference import (conv2d_reference,
                                  conv2d_reference_backward_input,
                                  conv2d_reference_backward_weights)

geometry = st.tuples(
    st.integers(1, 3),   # batch
    st.integers(1, 3),   # channels
    st.integers(1, 3),   # filters
    st.integers(4, 10),  # input size
    st.integers(1, 4),   # kernel
    st.integers(1, 3),   # stride
    st.integers(0, 2),   # padding
)


def tensors(geom, seed):
    b, c, f, i, k, s, p = geom
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((b, c, i, i))
    w = rng.standard_normal((f, c, k, k))
    return x, w


STRATEGIES = {
    "direct": (direct_forward, direct_backward_input, direct_backward_weights),
    "unrolled": (unrolled_forward, unrolled_backward_input,
                 unrolled_backward_weights),
    "fft": (fft_forward, fft_backward_input, fft_backward_weights),
}


@settings(max_examples=60, deadline=None)
@given(geom=geometry, seed=st.integers(0, 2**16))
@pytest.mark.parametrize("name", ["direct", "unrolled", "fft"])
def test_forward_matches_reference(name, geom, seed):
    b, c, f, i, k, s, p = geom
    if k > i + 2 * p:
        return
    if name == "fft" and s != 1:
        return
    x, w = tensors(geom, seed)
    fwd, _, _ = STRATEGIES[name]
    expected = conv2d_reference(x, w, None, s, p)
    got = fwd(x, w, None, s, p)
    np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(geom=geometry, seed=st.integers(0, 2**16))
@pytest.mark.parametrize("name", ["direct", "unrolled", "fft"])
def test_backward_input_matches_reference(name, geom, seed):
    b, c, f, i, k, s, p = geom
    if k > i + 2 * p or k <= 2 * p:
        return
    if name == "fft" and s != 1:
        return
    x, w = tensors(geom, seed)
    y = conv2d_reference(x, w, None, s, p)
    rng = np.random.default_rng(seed + 1)
    dy = rng.standard_normal(y.shape)
    expected = conv2d_reference_backward_input(dy, w, (i, i), s, p)
    _, bwd_in, _ = STRATEGIES[name]
    got = bwd_in(dy, w, (i, i), s, p)
    np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(geom=geometry, seed=st.integers(0, 2**16))
@pytest.mark.parametrize("name", ["direct", "unrolled", "fft"])
def test_backward_weights_matches_reference(name, geom, seed):
    b, c, f, i, k, s, p = geom
    if k > i + 2 * p:
        return
    if name == "fft" and s != 1:
        return
    x, w = tensors(geom, seed)
    y = conv2d_reference(x, w, None, s, p)
    rng = np.random.default_rng(seed + 2)
    dy = rng.standard_normal(y.shape)
    expected = conv2d_reference_backward_weights(dy, x, (k, k), s, p)
    _, _, bwd_w = STRATEGIES[name]
    got = bwd_w(dy, x, (k, k), s, p)
    np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-8)


class TestLinearity:
    """Convolution is bilinear; each strategy must respect that."""

    @pytest.mark.parametrize("name", ["direct", "unrolled", "fft"])
    def test_linear_in_input(self, name, rng):
        fwd, _, _ = STRATEGIES[name]
        x1 = rng.standard_normal((2, 3, 8, 8))
        x2 = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        np.testing.assert_allclose(
            fwd(x1 + 2.0 * x2, w), fwd(x1, w) + 2.0 * fwd(x2, w),
            rtol=1e-8, atol=1e-8)

    @pytest.mark.parametrize("name", ["direct", "unrolled", "fft"])
    def test_linear_in_weights(self, name, rng):
        fwd, _, _ = STRATEGIES[name]
        x = rng.standard_normal((2, 3, 8, 8))
        w1 = rng.standard_normal((4, 3, 3, 3))
        w2 = rng.standard_normal((4, 3, 3, 3))
        np.testing.assert_allclose(
            fwd(x, w1 - 0.5 * w2), fwd(x, w1) - 0.5 * fwd(x, w2),
            rtol=1e-8, atol=1e-8)


class TestAdjointness:
    """<conv(x, w), dy> == <x, conv_backward_input(dy, w)> — the
    defining property of a correct gradient."""

    @settings(max_examples=25, deadline=None)
    @given(geom=geometry, seed=st.integers(0, 2**16))
    def test_forward_backward_adjoint(self, geom, seed):
        b, c, f, i, k, s, p = geom
        if k > i + 2 * p or k <= 2 * p:
            return
        x, w = tensors(geom, seed)
        y = direct_forward(x, w, None, s, p)
        rng = np.random.default_rng(seed + 3)
        dy = rng.standard_normal(y.shape)
        dx = direct_backward_input(dy, w, (i, i), s, p)
        lhs = float((y * dy).sum())
        rhs = float((x * dx).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(geom=geometry, seed=st.integers(0, 2**16))
    def test_weight_adjoint(self, geom, seed):
        """<conv(x, w), dy> == <w, conv_backward_weights(dy, x)>."""
        b, c, f, i, k, s, p = geom
        if k > i + 2 * p:
            return
        x, w = tensors(geom, seed)
        y = direct_forward(x, w, None, s, p)
        rng = np.random.default_rng(seed + 4)
        dy = rng.standard_normal(y.shape)
        dw = direct_backward_weights(dy, x, (k, k), s, p)
        assert float((y * dy).sum()) == pytest.approx(
            float((w * dw).sum()), rel=1e-9, abs=1e-9)


class TestFftStrideRestriction:
    """Fig. 3(e): FFT-based convolution only supports stride 1."""

    def test_forward_rejects_stride(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            fft_forward(x, w, stride=2)

    def test_backward_rejects_stride(self, rng):
        w = rng.standard_normal((1, 1, 3, 3))
        dy = rng.standard_normal((1, 1, 3, 3))
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            fft_backward_input(dy, w, (8, 8), stride=2)


class TestFloat32:
    """The benchmarked frameworks run fp32; strategies must accept it."""

    @pytest.mark.parametrize("name", ["direct", "unrolled", "fft"])
    def test_float32_inputs(self, name, rng):
        fwd, _, _ = STRATEGIES[name]
        x = rng.standard_normal((2, 3, 10, 10)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        y = fwd(x, w)
        expected = conv2d_reference(x.astype(np.float64),
                                    w.astype(np.float64))
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-4)
