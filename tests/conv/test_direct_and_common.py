"""Edge-case tests for the direct strategy and shared conv helpers."""

import numpy as np
import pytest

from repro.conv import direct_forward
from repro.conv.common import (add_bias, check_conv_args, pad_input,
                               unpad_input)
from repro.conv.direct import _windows, backward_bias
from repro.errors import ShapeError


class TestWindows:
    def test_windows_are_views(self, rng):
        """Per the HPC guides: the sliding windows must not copy."""
        x = rng.standard_normal((1, 1, 6, 6))
        win = _windows(x, 3, 3, 1)
        assert np.shares_memory(win, x)

    def test_window_content(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        win = _windows(x, 2, 2, 1)
        assert win.shape == (1, 2, 4, 4, 2, 2)
        assert np.array_equal(win[0, 1, 2, 3], x[0, 1, 2:4, 3:5])

    def test_strided_windows_skip(self, rng):
        x = rng.standard_normal((1, 1, 7, 7))
        win = _windows(x, 3, 3, 2)
        assert win.shape[2:4] == (3, 3)
        assert np.array_equal(win[0, 0, 1, 1], x[0, 0, 2:5, 2:5])


class TestDirectEdgeCases:
    def test_1x1_kernel_is_channel_mix(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        w = rng.standard_normal((5, 3, 1, 1))
        y = direct_forward(x, w)
        expect = np.einsum("bchw,fc->bfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(y, expect, rtol=1e-10, atol=1e-12)

    def test_kernel_equals_input(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 5, 5))
        y = direct_forward(x, w)
        assert y.shape == (1, 3, 1, 1)
        np.testing.assert_allclose(
            y[0, :, 0, 0], np.einsum("chw,fchw->f", x[0], w),
            rtol=1e-10, atol=1e-12)

    def test_single_pixel_input(self, rng):
        x = rng.standard_normal((1, 1, 1, 1))
        w = rng.standard_normal((1, 1, 1, 1))
        assert direct_forward(x, w)[0, 0, 0, 0] == pytest.approx(
            x[0, 0, 0, 0] * w[0, 0, 0, 0])

    def test_backward_bias(self, rng):
        dy = rng.standard_normal((2, 3, 4, 4))
        np.testing.assert_allclose(backward_bias(dy), dy.sum(axis=(0, 2, 3)))

    def test_input_not_modified(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        x0 = x.copy()
        direct_forward(x, rng.standard_normal((1, 1, 3, 3)), padding=1)
        np.testing.assert_array_equal(x, x0)


class TestCommonHelpers:
    def test_check_conv_args_returns_output_dims(self, rng):
        x = rng.standard_normal((1, 2, 10, 8))
        w = rng.standard_normal((3, 2, 3, 3))
        assert check_conv_args(x, w, 1, 0) == (8, 6)

    @pytest.mark.parametrize("xshape,wshape,s,p", [
        ((2, 10, 10), (1, 1, 3, 3), 1, 0),     # bad input rank
        ((1, 1, 10, 10), (1, 3, 3), 1, 0),     # bad weight rank
        ((1, 2, 10, 10), (1, 3, 3, 3), 1, 0),  # channel mismatch
        ((1, 1, 10, 10), (1, 1, 3, 3), 0, 0),  # zero stride
        ((1, 1, 10, 10), (1, 1, 3, 3), 1, -1), # negative padding
    ])
    def test_check_conv_args_rejects(self, rng, xshape, wshape, s, p):
        with pytest.raises(ShapeError):
            check_conv_args(rng.standard_normal(xshape),
                            rng.standard_normal(wshape), s, p)

    def test_pad_unpad_roundtrip(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        assert np.array_equal(unpad_input(pad_input(x, 2), 2), x)

    def test_pad_zero_is_identity_object(self, rng):
        x = rng.standard_normal((1, 1, 2, 2))
        assert pad_input(x, 0) is x

    def test_pad_places_zeros(self, rng):
        x = np.ones((1, 1, 2, 2))
        p = pad_input(x, 1)
        assert p.shape == (1, 1, 4, 4)
        assert p[0, 0, 0, :].sum() == 0
        assert p[0, 0, 1:3, 1:3].sum() == 4

    def test_add_bias_in_place(self):
        y = np.zeros((1, 2, 2, 2))
        out = add_bias(y, np.array([1.0, 2.0]))
        assert out is y
        assert y[0, 0].sum() == 4.0 and y[0, 1].sum() == 8.0

    def test_add_bias_none_passthrough(self, rng):
        y = rng.standard_normal((1, 2, 2, 2))
        assert add_bias(y, None) is y

    def test_add_bias_shape_error(self):
        with pytest.raises(ShapeError):
            add_bias(np.zeros((1, 2, 2, 2)), np.zeros(3))
        with pytest.raises(ShapeError):
            add_bias(np.zeros((1, 2, 2, 2)), np.zeros((2, 1)))
