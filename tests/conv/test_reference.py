"""Tests for the naive reference convolution itself.

The reference must be right before anything else can be tested against
it, so it gets hand-computed cases.
"""

import numpy as np
import pytest

from repro.conv.reference import (conv2d_reference,
                                  conv2d_reference_backward_input,
                                  conv2d_reference_backward_weights)
from repro.errors import ShapeError


class TestHandComputed:
    def test_identity_kernel(self):
        """A delta kernel reproduces the input's valid region."""
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0  # centre tap
        y = conv2d_reference(x, w)
        assert np.array_equal(y[0, 0], x[0, 0, 1:3, 1:3])

    def test_box_sum(self):
        x = np.ones((1, 1, 3, 3))
        w = np.ones((1, 1, 2, 2))
        y = conv2d_reference(x, w)
        assert np.allclose(y, 4.0)

    def test_cross_correlation_not_flipped(self):
        """CNN convention: no kernel flip.  y[0,0] = sum x[i,j]*w[i,j]."""
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        w = np.array([[10.0, 20.0], [30.0, 40.0]]).reshape(1, 1, 2, 2)
        y = conv2d_reference(x, w)
        assert y[0, 0, 0, 0] == 1 * 10 + 2 * 20 + 3 * 30 + 4 * 40

    def test_channels_summed(self):
        x = np.ones((1, 2, 2, 2))
        w = np.ones((1, 2, 2, 2))
        assert conv2d_reference(x, w)[0, 0, 0, 0] == 8.0

    def test_bias(self):
        x = np.zeros((1, 1, 3, 3))
        w = np.zeros((2, 1, 2, 2))
        y = conv2d_reference(x, w, bias=np.array([1.5, -2.0]))
        assert np.allclose(y[0, 0], 1.5)
        assert np.allclose(y[0, 1], -2.0)

    def test_stride(self):
        x = np.arange(25, dtype=float).reshape(1, 1, 5, 5)
        w = np.ones((1, 1, 1, 1))
        y = conv2d_reference(x, w, stride=2)
        assert np.array_equal(y[0, 0], x[0, 0, ::2, ::2])

    def test_padding_adds_zeros(self):
        x = np.ones((1, 1, 2, 2))
        w = np.ones((1, 1, 3, 3))
        y = conv2d_reference(x, w, padding=1)
        assert y.shape == (1, 1, 2, 2)
        assert y[0, 0, 0, 0] == 4.0  # only 2x2 inside the window


class TestValidation:
    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            conv2d_reference(np.ones((1, 2, 4, 4)), np.ones((1, 3, 2, 2)))

    def test_wrong_rank(self):
        with pytest.raises(ShapeError):
            conv2d_reference(np.ones((4, 4)), np.ones((1, 1, 2, 2)))

    def test_bad_bias_shape(self):
        with pytest.raises(ShapeError):
            conv2d_reference(np.ones((1, 1, 4, 4)), np.ones((2, 1, 2, 2)),
                             bias=np.ones(3))


class TestBackwardConsistency:
    """The reference backward passes must be the exact gradients of
    the reference forward pass (checked by finite differences)."""

    def test_input_gradient_finite_difference(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((2, 2, 3, 3))
        dy = rng.standard_normal((1, 2, 3, 3))
        dx = conv2d_reference_backward_input(dy, w, (5, 5))
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 4, 4)]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = ((conv2d_reference(xp, w) - conv2d_reference(xm, w))
                   * dy).sum() / (2 * eps)
            assert dx[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_weight_gradient_finite_difference(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((1, 2, 3, 3))
        dy = rng.standard_normal((2, 1, 3, 3))
        dw = conv2d_reference_backward_weights(dy, x, (3, 3))
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 1, 2), (0, 0, 2, 2)]:
            wp, wm = w.copy(), w.copy()
            wp[idx] += eps
            wm[idx] -= eps
            num = ((conv2d_reference(x, wp) - conv2d_reference(x, wm))
                   * dy).sum() / (2 * eps)
            assert dw[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)
