"""Tests for the Winograd F(2x2, 3x3) strategy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.reference import (conv2d_reference,
                                  conv2d_reference_backward_input,
                                  conv2d_reference_backward_weights)
from repro.conv.winograd import (G, A_T, B_T, forward, backward_input,
                                 backward_weights, forward_multiplies,
                                 multiplication_reduction, transform_filters)
from repro.errors import ShapeError


class TestTransforms:
    def test_filter_transform_shape(self, rng):
        w = rng.standard_normal((4, 3, 3, 3))
        assert transform_filters(w).shape == (4, 3, 4, 4)

    def test_transform_identity_on_delta(self):
        """A centre-delta filter's transform, pushed through the
        pipeline on a constant input, must reproduce the input."""
        x = np.full((1, 1, 6, 6), 2.5)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        y = forward(x, w, padding=1)
        assert np.allclose(y, 2.5)

    def test_algebraic_identity(self):
        """F(2,3) exactness in 1-D: A^T ((G g) * (B^T d)) equals the
        two valid correlation outputs of d (len 4) with g (len 3)."""
        rng = np.random.default_rng(5)
        d = rng.standard_normal(4)
        g = rng.standard_normal(3)
        m = (G @ g) * (B_T @ d)
        y = A_T @ m
        expect = np.array([d[0:3] @ g, d[1:4] @ g])
        assert np.allclose(y, expect)

    def test_rejects_wrong_kernel(self, rng):
        with pytest.raises(ShapeError):
            transform_filters(rng.standard_normal((2, 2, 5, 5)))


class TestForward:
    @settings(max_examples=40, deadline=None)
    @given(b=st.integers(1, 3), c=st.integers(1, 3), f=st.integers(1, 3),
           i=st.integers(3, 12), p=st.integers(0, 2),
           seed=st.integers(0, 999))
    def test_matches_reference(self, b, c, f, i, p, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((b, c, i, i))
        w = rng.standard_normal((f, c, 3, 3))
        got = forward(x, w, None, 1, p)
        want = conv2d_reference(x, w, None, 1, p)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_bias(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        w = rng.standard_normal((2, 1, 3, 3))
        bias = np.array([1.0, -1.0])
        np.testing.assert_allclose(forward(x, w, bias),
                                   conv2d_reference(x, w, bias),
                                   rtol=1e-9, atol=1e-9)

    def test_odd_output_sizes_cropped(self, rng):
        """Outputs that are not multiples of the 2x2 tile are cropped
        correctly."""
        x = rng.standard_normal((1, 1, 7, 7))  # output 5x5
        w = rng.standard_normal((1, 1, 3, 3))
        got = forward(x, w)
        assert got.shape == (1, 1, 5, 5)
        np.testing.assert_allclose(got, conv2d_reference(x, w),
                                   rtol=1e-9, atol=1e-9)

    def test_rejects_stride(self, rng):
        with pytest.raises(ShapeError):
            forward(np.ones((1, 1, 8, 8)), np.ones((1, 1, 3, 3)), stride=2)

    def test_rejects_non_3x3(self):
        with pytest.raises(ShapeError):
            forward(np.ones((1, 1, 8, 8)), np.ones((1, 1, 5, 5)))


class TestBackward:
    def test_backward_input_matches_reference(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        dy = rng.standard_normal((2, 2, 6, 6))
        got = backward_input(dy, w, (8, 8))
        want = conv2d_reference_backward_input(dy, w, (8, 8))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_backward_weights_matches_reference(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        dy = rng.standard_normal((2, 2, 6, 6))
        got = backward_weights(dy, x, (3, 3))
        want = conv2d_reference_backward_weights(dy, x, (3, 3))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_backward_rejects_bad_geometry(self, rng):
        with pytest.raises(ShapeError):
            backward_input(np.ones((1, 1, 4, 4)), np.ones((1, 1, 5, 5)), (8, 8))
        with pytest.raises(ShapeError):
            backward_weights(np.ones((1, 1, 4, 4)), np.ones((1, 1, 8, 8)),
                             (5, 5))


class TestArithmetic:
    def test_reduction_is_2_25(self):
        assert multiplication_reduction() == pytest.approx(2.25)

    def test_forward_multiplies_vs_direct(self):
        """The transform-domain multiply count must be direct / 2.25
        for tile-aligned outputs."""
        b, c, f, oh, ow = 2, 3, 4, 8, 8
        direct = b * f * c * oh * ow * 9
        assert forward_multiplies(b, c, f, oh, ow) == pytest.approx(
            direct / 2.25)

    def test_multiplies_round_up_partial_tiles(self):
        full = forward_multiplies(1, 1, 1, 4, 4)
        ragged = forward_multiplies(1, 1, 1, 5, 5)
        assert ragged > full


class TestAsConvBackend:
    def test_usable_in_conv2d_layer(self, rng):
        """The strategy plugs into the NN layer like the other three."""
        from repro.conv import winograd
        from repro.nn import Conv2d
        layer = Conv2d(3, 4, 3, padding=1, backend=winograd, rng=0)
        x = rng.standard_normal((2, 3, 8, 8))
        ref = Conv2d(3, 4, 3, padding=1, rng=0)
        np.testing.assert_allclose(layer.forward(x), ref.forward(x),
                                   rtol=1e-9, atol=1e-9)
