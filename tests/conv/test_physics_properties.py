"""Physical/mathematical property tests of the convolution strategies.

Beyond matching the reference, convolution has structure — shift
equivariance, delta-kernel identity, composition of 1x1 mixes — that
each strategy must respect independently of any reference
implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import (direct_forward, fft_forward, unrolled_forward)
from repro.conv.winograd import forward as winograd_forward

ALL_STRATEGIES = [
    ("direct", direct_forward),
    ("unrolled", unrolled_forward),
    ("fft", fft_forward),
]


@pytest.mark.parametrize("name,fwd", ALL_STRATEGIES)
class TestShiftEquivariance:
    def test_translating_input_translates_output(self, name, fwd, rng):
        """conv(shift(x)) == shift(conv(x)) away from the borders."""
        x = rng.standard_normal((1, 2, 12, 12))
        w = rng.standard_normal((3, 2, 3, 3))
        y = fwd(x, w)
        x_shift = np.roll(x, shift=(2, 1), axis=(2, 3))
        y_shift = fwd(x_shift, w)
        # Interior region unaffected by roll wrap-around.
        np.testing.assert_allclose(y_shift[:, :, 3:9, 2:8],
                                   y[:, :, 1:7, 1:7],
                                   rtol=1e-6, atol=1e-6)


@pytest.mark.parametrize("name,fwd", ALL_STRATEGIES + [
    ("winograd", winograd_forward)])
class TestDeltaKernel:
    def test_delta_kernel_extracts_channel(self, name, fwd, rng):
        """A kernel that is 1 at one tap of one channel selects that
        shifted channel."""
        x = rng.standard_normal((2, 3, 8, 8))
        w = np.zeros((1, 3, 3, 3))
        w[0, 1, 0, 2] = 1.0  # channel 1, offset (0, 2)
        y = fwd(x, w)
        np.testing.assert_allclose(y[:, 0], x[:, 1, 0:6, 2:8],
                                   rtol=1e-6, atol=1e-6)


class TestComposition:
    @pytest.mark.parametrize("name,fwd", ALL_STRATEGIES)
    def test_two_1x1_convs_compose_to_matrix_product(self, name, fwd, rng):
        """conv1x1(conv1x1(x; A); B) == conv1x1(x; B @ A)."""
        x = rng.standard_normal((2, 3, 5, 5))
        a = rng.standard_normal((4, 3, 1, 1))
        b = rng.standard_normal((2, 4, 1, 1))
        two_step = fwd(fwd(x, a), b)
        ba = np.einsum("fk,kc->fc", b[:, :, 0, 0], a[:, :, 0, 0])
        one_step = fwd(x, ba[:, :, None, None])
        np.testing.assert_allclose(two_step, one_step, rtol=1e-6, atol=1e-6)


class TestScalingLaws:
    @settings(max_examples=15, deadline=None)
    @given(scale=st.floats(-3.0, 3.0), seed=st.integers(0, 99))
    def test_homogeneity(self, scale, seed):
        """conv(a x, w) == a conv(x, w) for every strategy."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        for name, fwd in ALL_STRATEGIES:
            np.testing.assert_allclose(
                fwd(scale * x, w), scale * fwd(x, w),
                rtol=1e-7, atol=1e-7, err_msg=name)

    def test_zero_input_gives_zero(self, rng):
        x = np.zeros((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        for name, fwd in ALL_STRATEGIES + [("winograd", winograd_forward)]:
            assert np.allclose(fwd(x, w), 0.0), name

    def test_channel_additivity(self, rng):
        """Splitting channels and summing the partial convolutions
        matches the full convolution."""
        x = rng.standard_normal((1, 4, 6, 6))
        w = rng.standard_normal((2, 4, 3, 3))
        full = direct_forward(x, w)
        parts = (direct_forward(x[:, :2], w[:, :2])
                 + direct_forward(x[:, 2:], w[:, 2:]))
        np.testing.assert_allclose(full, parts, rtol=1e-10, atol=1e-10)
