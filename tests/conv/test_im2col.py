"""Tests for im2col/col2im — the unrolling kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.im2col import col2im, im2col, im2col_bytes
from repro.errors import ShapeError


class TestIm2col:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        col = im2col(x, kernel=3)
        assert col.shape == (2, 3 * 9, 36)

    def test_column_content(self, rng):
        """Column (p*ow+q) holds the window producing output (p, q)."""
        x = rng.standard_normal((1, 2, 5, 5))
        col = im2col(x, kernel=3)
        window = x[0, :, 1:4, 2:5]  # output position (1, 2)
        assert np.allclose(col[0, :, 1 * 3 + 2], window.reshape(-1))

    def test_stride_skips_positions(self, rng):
        x = rng.standard_normal((1, 1, 7, 7))
        col = im2col(x, kernel=3, stride=2)
        assert col.shape == (1, 9, 9)
        assert np.allclose(col[0, :, 4], x[0, 0, 2:5, 2:5].reshape(-1))

    def test_padding(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        col = im2col(x, kernel=3, padding=1)
        assert col.shape == (1, 9, 16)
        # Corner window has 4 zeros from padding.
        corner = col[0, :, 0].reshape(3, 3)
        assert np.allclose(corner[0, :], 0.0)
        assert np.allclose(corner[:, 0], 0.0)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            im2col(np.ones((3, 3)), kernel=2)

    def test_bytes_helper(self):
        assert im2col_bytes(2, 3, 3, 4, 4) == 2 * 27 * 16 * 4


class TestCol2im:
    def test_counts_overlaps(self):
        """col2im of all-ones counts how many windows cover each
        pixel."""
        x = np.ones((1, 1, 4, 4))
        col = np.ones_like(im2col(x, kernel=3))
        folded = col2im(col, (4, 4), kernel=3)
        expected = np.array([
            [1, 2, 2, 1],
            [2, 4, 4, 2],
            [2, 4, 4, 2],
            [1, 2, 2, 1],
        ], dtype=float)
        assert np.allclose(folded[0, 0], expected)

    def test_shape_validation(self, rng):
        # Wrong number of columns for the geometry.
        with pytest.raises(ShapeError):
            col2im(rng.standard_normal((1, 9, 5)), (4, 4), kernel=3)
        # Column height not a multiple of k^2.
        with pytest.raises(ShapeError):
            col2im(rng.standard_normal((1, 10, 4)), (4, 4), kernel=3)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            col2im(np.ones((9, 4)), (4, 4), kernel=3)


class TestAdjointness:
    """col2im is the exact adjoint of im2col:
    <im2col(x), y> == <x, col2im(y)> for every x, y."""

    @settings(max_examples=40, deadline=None)
    @given(b=st.integers(1, 2), c=st.integers(1, 3), i=st.integers(3, 9),
           k=st.integers(1, 3), s=st.integers(1, 3), p=st.integers(0, 2),
           seed=st.integers(0, 2**16))
    def test_adjoint(self, b, c, i, k, s, p, seed):
        if k > i + 2 * p:
            return
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((b, c, i, i))
        col_shape = im2col(x, k, s, p).shape
        y = rng.standard_normal(col_shape)
        lhs = float((im2col(x, k, s, p) * y).sum())
        rhs = float((x * col2im(y, (i, i), k, s, p)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(i=st.integers(3, 8), k=st.integers(1, 3), seed=st.integers(0, 99))
    def test_roundtrip_is_overlap_weighting(self, i, k, seed):
        """col2im(im2col(x)) multiplies each pixel by its coverage
        count — never less than 1 for stride 1."""
        if k > i:
            return
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 1, i, i))
        folded = col2im(im2col(x, k), (i, i), k)
        counts = col2im(np.ones_like(im2col(x, k)), (i, i), k)
        assert np.allclose(folded, x * counts)
        assert counts.min() >= 1.0
