"""Miscellaneous edge-path tests across modules."""

import numpy as np
import pytest

from repro.errors import ShapeError


class TestLayerBaseClass:
    def test_abstract_methods_raise(self):
        from repro.nn.module import Layer
        layer = Layer("raw")
        with pytest.raises(NotImplementedError):
            layer.forward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            layer.backward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            layer.output_shape((1,))

    def test_call_dispatches_to_forward(self, rng):
        from repro.nn import ReLU
        r = ReLU()
        x = rng.standard_normal((2, 2))
        np.testing.assert_array_equal(r(x), r.forward(x))

    def test_parameter_count_default_zero(self):
        from repro.nn import ReLU
        assert ReLU().parameter_count() == 0

    def test_check_nchw(self, rng):
        from repro.nn import ReLU
        from repro.nn.module import check_nchw
        with pytest.raises(ShapeError):
            check_nchw(rng.standard_normal((2, 2)), ReLU())

    def test_parameter_repr_and_zero_grad(self):
        from repro.nn.module import Parameter
        p = Parameter(np.ones((2, 2)), name="w")
        p.grad[:] = 5.0
        p.zero_grad()
        assert p.grad.sum() == 0.0
        assert p.size == 4 and p.shape == (2, 2)


class TestUnrolledShapeRules:
    def test_non_square_kernel_rejected(self, rng):
        from repro.conv import unrolled_forward
        with pytest.raises(ShapeError):
            unrolled_forward(rng.standard_normal((1, 1, 6, 6)),
                             rng.standard_normal((1, 1, 3, 2)))

    def test_backward_weights_non_square_rejected(self, rng):
        from repro.conv.unrolled import backward_weights
        with pytest.raises(ShapeError):
            backward_weights(rng.standard_normal((1, 1, 4, 4)),
                             rng.standard_normal((1, 1, 6, 6)), (3, 2))


class TestFftBackwardShapeRules:
    def test_backward_weights_non_square_kernel(self, rng):
        from repro.conv.fftconv import backward_weights
        with pytest.raises(ShapeError):
            backward_weights(rng.standard_normal((1, 1, 4, 4)),
                             rng.standard_normal((1, 1, 6, 6)), (3, 2))

    def test_backward_input_non_square_input(self, rng):
        from repro.conv.fftconv import backward_input
        with pytest.raises(ShapeError):
            backward_input(rng.standard_normal((1, 1, 4, 4)),
                           rng.standard_normal((1, 1, 3, 3)), (6, 7))


class TestSweepCustomRanges:
    def test_custom_batch_range(self):
        from repro.config import sweep_batch
        cfgs = list(sweep_batch(start=64, stop=128, step=64))
        assert [c.batch for c in cfgs] == [64, 128]

    def test_custom_kernel_range(self):
        from repro.config import sweep_kernel
        assert [c.kernel_size for c in sweep_kernel(3, 5)] == [3, 4, 5]


class TestSimulateFallbacks:
    def test_unknown_layer_gets_streaming_cost(self):
        """A layer type the simulator has no model for still gets a
        bandwidth-bound estimate (the default branch)."""
        from repro.frameworks.registry import get_implementation
        from repro.nn.module import Layer
        from repro.nn.simulate import layer_time

        class Mystery(Layer):
            layer_type = "Mystery"

            def output_shape(self, s):
                return s

        t = layer_time(Mystery(), (8, 16, 32, 32), (8, 16, 32, 32),
                       get_implementation("cudnn"))
        assert t > 0

    def test_fft_impl_falls_back_on_strided_conv(self):
        """Theano-fft profiling a stride-4 conv goes through the
        CorrMM fallback instead of crashing."""
        from repro.nn import Conv2d
        from repro.nn.simulate import layer_time
        from repro.frameworks.registry import get_implementation
        conv = Conv2d(3, 96, 11, stride=4, rng=0)
        t = layer_time(conv, (32, 3, 227, 227), (32, 96, 55, 55),
                       get_implementation("theano-fft"))
        assert t > 0


class TestWorkloadValidation:
    def test_digit_batches_validation(self):
        from repro.workloads import DigitDataset
        ds = DigitDataset.generate(train=32, test=8, rng=0)
        with pytest.raises(ShapeError):
            list(ds.batches(0))

    def test_dataset_epoch_iterations_validation(self):
        from repro.workloads import MNIST
        with pytest.raises(ShapeError):
            MNIST.epoch_iterations(0)


class TestTransferOpDataclass:
    def test_iteration_profile_fraction_zero_division_guard(self):
        from repro.config import BASE_CONFIG
        from repro.frameworks.base import IterationProfile
        from repro.gpusim.profiler import Profiler
        p = IterationProfile(implementation="x", config=BASE_CONFIG,
                             profiler=Profiler(), gpu_time_s=0.0,
                             transfer_time_s=0.0, exposed_transfer_s=0.0,
                             total_time_s=0.0)
        assert p.transfer_fraction == 0.0
