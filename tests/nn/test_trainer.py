"""Tests for SGD and the training loop."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.nn import Linear, ReLU, Sequential, Flatten, SGD, Trainer
from repro.nn.module import Parameter


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[:] = [0.5, -0.5]
        SGD([p], lr=0.1, momentum=0.0).step()
        np.testing.assert_allclose(p.value, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = [1.0]
        opt.step()  # v = -1, p = -1
        opt.step()  # v = -1.5, p = -2.5
        np.testing.assert_allclose(p.value, [-2.5])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad[:] = [0.0]
        opt.step()
        np.testing.assert_allclose(p.value, [10.0 - 0.1 * 1.0])

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad[:] = [5.0]
        SGD([p]).zero_grad()
        assert p.grad[0] == 0.0

    @pytest.mark.parametrize("kwargs", [
        dict(lr=0.0), dict(lr=-1.0), dict(momentum=1.0),
        dict(momentum=-0.1), dict(weight_decay=-1.0),
    ])
    def test_invalid_hyperparams(self, kwargs):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], **kwargs)


def linear_problem(rng, n=256):
    """Linearly separable 2-class data in 4 dims."""
    x = rng.standard_normal((n, 4))
    labels = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    return x.astype(np.float64), labels


class TestTrainer:
    def test_loss_decreases_on_separable_problem(self, rng):
        x, labels = linear_problem(rng)
        model = Sequential(Linear(4, 16, rng=0), ReLU(), Linear(16, 2, rng=1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        losses = [trainer.train_step(x, labels)[0] for _ in range(40)]
        assert losses[-1] < 0.5 * losses[0]

    def test_accuracy_improves(self, rng):
        x, labels = linear_problem(rng)
        model = Sequential(Linear(4, 16, rng=0), ReLU(), Linear(16, 2, rng=1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        first_acc = trainer.train_step(x, labels)[1]
        for _ in range(60):
            _, acc = trainer.train_step(x, labels)
        assert acc > max(first_acc, 0.9)

    def test_fit_collects_history(self, rng):
        x, labels = linear_problem(rng, n=64)
        model = Sequential(Linear(4, 2, rng=0))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        result = trainer.fit([(x, labels)] * 10)
        assert len(result.losses) == 10
        assert result.final_loss == result.losses[-1]

    def test_fit_rejects_empty(self, rng):
        model = Sequential(Linear(4, 2, rng=0))
        trainer = Trainer(model, SGD(model.parameters()))
        with pytest.raises(ValueError):
            trainer.fit([])

    def test_divergence_detected(self, rng):
        x, labels = linear_problem(rng, n=32)
        model = Sequential(Linear(4, 2, rng=0))
        model.layers[0].weight.value[:] = np.nan  # poisoned checkpoint
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(ConvergenceError):
            trainer.train_step(x, labels)

    def test_evaluate_does_not_update(self, rng):
        x, labels = linear_problem(rng, n=64)
        model = Sequential(Linear(4, 2, rng=0))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        before = model.layers[0].weight.value.copy()
        trainer.evaluate(x, labels)
        np.testing.assert_array_equal(model.layers[0].weight.value, before)

    def test_callback_invoked(self, rng):
        x, labels = linear_problem(rng, n=32)
        model = Sequential(Linear(4, 2, rng=0))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
        seen = []
        trainer.fit([(x, labels)] * 3,
                    callback=lambda step, loss, acc: seen.append(step))
        assert seen == [0, 1, 2]
