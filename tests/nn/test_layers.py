"""Behavioural tests for individual layers (beyond gradient checks)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (AvgPool2d, Conv2d, Dropout, Flatten, Linear,
                      LocalResponseNorm, MaxPool2d, ReLU, softmax,
                      SoftmaxCrossEntropy)


class TestConv2d:
    def test_output_shape(self):
        layer = Conv2d(3, 8, 5, stride=2, padding=1, rng=0)
        assert layer.output_shape((4, 3, 32, 32)) == (4, 8, 15, 15)

    def test_channel_mismatch(self, rng):
        layer = Conv2d(3, 8, 3, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(rng.standard_normal((1, 4, 8, 8)))

    def test_backward_before_forward(self):
        layer = Conv2d(1, 1, 3, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 2, 2)))

    def test_conv_config_view(self):
        layer = Conv2d(3, 8, 5, stride=2, rng=0)
        cfg = layer.conv_config((4, 3, 32, 32))
        assert cfg.tuple5 == (4, 32, 8, 5, 2)
        assert cfg.channels == 3

    def test_conv_config_requires_square(self):
        layer = Conv2d(3, 8, 5, rng=0)
        with pytest.raises(ShapeError):
            layer.conv_config((4, 3, 32, 30))

    def test_he_init_scale(self):
        layer = Conv2d(16, 8, 3, rng=0)
        std = layer.weight.value.std()
        assert 0.5 * np.sqrt(2 / 144) < std < 2.0 * np.sqrt(2 / 144)

    def test_backend_by_implementation_name(self, rng):
        ref = Conv2d(2, 4, 3, rng=5)
        alt = Conv2d(2, 4, 3, backend="cudnn", rng=5)
        x = rng.standard_normal((2, 2, 8, 8))
        np.testing.assert_allclose(ref.forward(x), alt.forward(x),
                                   rtol=1e-10, atol=1e-10)

    def test_gradient_accumulates(self, rng):
        layer = Conv2d(1, 1, 2, rng=0)
        x = rng.standard_normal((1, 1, 4, 4))
        layer.forward(x)
        dy = np.ones((1, 1, 3, 3))
        layer.backward(dy)
        g1 = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(dy)
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = MaxPool2d(2, 2).forward(x)
        assert np.array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = AvgPool2d(2, 2).forward(x)
        assert np.array_equal(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_ceil_mode_shape(self):
        pool = MaxPool2d(3, 2, ceil_mode=True)
        assert pool.output_shape((1, 1, 112, 112)) == (1, 1, 56, 56)

    def test_max_backward_routes_to_argmax(self):
        x = np.zeros((1, 1, 2, 2))
        x[0, 0, 1, 1] = 5.0
        pool = MaxPool2d(2, 2)
        pool.forward(x)
        dx = pool.backward(np.ones((1, 1, 1, 1)))
        assert dx[0, 0, 1, 1] == 1.0
        assert dx.sum() == 1.0

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            MaxPool2d(0)
        with pytest.raises(ShapeError):
            MaxPool2d(3, padding=3)


class TestReLU:
    def test_clips_negatives(self):
        x = np.array([[-1.0, 2.0], [0.0, -3.0]])
        assert np.array_equal(ReLU().forward(x), [[0, 2], [0, 0]])

    def test_backward_shape_mismatch(self, rng):
        r = ReLU()
        r.forward(rng.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            r.backward(rng.standard_normal((2, 4)))


class TestLinear:
    def test_affine_values(self):
        layer = Linear(2, 2, rng=0)
        layer.weight.value = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.value = np.array([10.0, 20.0])
        y = layer.forward(np.array([[1.0, 1.0]]))
        assert np.array_equal(y, [[13.0, 27.0]])

    def test_rejects_wrong_features(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 2, rng=0).forward(rng.standard_normal((1, 5)))

    def test_rejects_4d_input(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 2, rng=0).forward(rng.standard_normal((1, 4, 1, 1)))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        d = Dropout(0.9, rng=0).eval()
        x = rng.standard_normal((8, 8))
        assert np.array_equal(d.forward(x), x)

    def test_train_mode_zeroes_and_scales(self):
        d = Dropout(0.5, rng=0)
        x = np.ones((100, 100))
        y = d.forward(x)
        zeros = (y == 0).mean()
        assert 0.35 < zeros < 0.65
        kept = y[y != 0]
        assert np.allclose(kept, 2.0)

    def test_expected_value_preserved(self):
        d = Dropout(0.3, rng=0)
        x = np.ones((200, 200))
        assert d.forward(x).mean() == pytest.approx(1.0, rel=0.05)

    def test_invalid_p(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)


class TestLRN:
    def test_normalises_downward(self, rng):
        x = np.abs(rng.standard_normal((1, 8, 4, 4))) + 1.0
        y = LocalResponseNorm(5, alpha=1.0, beta=0.75).forward(x)
        assert (np.abs(y) < np.abs(x)).all()

    def test_identity_at_tiny_alpha(self, rng):
        x = rng.standard_normal((1, 4, 3, 3))
        y = LocalResponseNorm(3, alpha=1e-12).forward(x)
        np.testing.assert_allclose(y, x, rtol=1e-6)

    def test_invalid_params(self):
        with pytest.raises(ShapeError):
            LocalResponseNorm(size=4)
        with pytest.raises(ShapeError):
            LocalResponseNorm(alpha=-1.0)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((5, 9)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        z = rng.standard_normal((3, 4))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))

    def test_loss_of_perfect_prediction_small(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss = SoftmaxCrossEntropy().forward(logits, np.array([0]))
        assert loss < 1e-6

    def test_uniform_loss_is_log_classes(self):
        logits = np.zeros((4, 10))
        loss = SoftmaxCrossEntropy().forward(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_sums_to_zero_per_row(self, rng):
        sce = SoftmaxCrossEntropy()
        sce.forward(rng.standard_normal((6, 5)), np.arange(6) % 5)
        g = sce.backward()
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_gradient_finite_difference(self, rng):
        logits = rng.standard_normal((3, 4))
        labels = np.array([0, 2, 3])
        sce = SoftmaxCrossEntropy()
        sce.forward(logits, labels)
        g = sce.backward()
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (2, 1)]:
            lp, lm = logits.copy(), logits.copy()
            lp[idx] += eps
            lm[idx] -= eps
            num = (SoftmaxCrossEntropy().forward(lp, labels)
                   - SoftmaxCrossEntropy().forward(lm, labels)) / (2 * eps)
            assert g[idx] == pytest.approx(num, rel=1e-4, abs=1e-8)

    def test_label_validation(self):
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0, 5]))
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0]))
