"""Edge cases of the Graph container: dead branches, set_output,
deep fan-in, GoogLeNet-shaped structures."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Concat, Conv2d, ReLU, Sequential
from repro.nn.network import Graph


class TestDeadBranches:
    def test_backward_skips_dead_branch(self, rng):
        """A node not on any path to the output gets no gradient and
        must not break the backward pass."""
        g = Graph()
        g.add("main", ReLU())
        g.add("dead", Conv2d(2, 4, 1, rng=0), "main")  # never consumed
        g.set_output("main")
        x = np.abs(rng.standard_normal((1, 2, 3, 3)))
        g.forward(x)
        dy = rng.standard_normal((1, 2, 3, 3))
        dx = g.backward(dy)
        np.testing.assert_allclose(dx, dy)  # pure ReLU path, positive x
        # The dead conv accumulated nothing.
        assert np.all(g._nodes["dead"].layer.weight.grad == 0)

    def test_disconnected_output_raises(self, rng):
        g = Graph()
        g.add("a", ReLU())
        # Build a second node consuming 'a', then output on a branch
        # that never reaches the input... not constructible by design:
        # all nodes trace back to input.  Instead verify the error path
        # by corrupting the consumer map is unnecessary — assert the
        # invariant that backward always reaches the input.
        x = rng.standard_normal((1, 1, 2, 2))
        g.forward(x)
        assert g.backward(np.ones_like(x)).shape == x.shape


class TestDeepFanIn:
    def test_three_way_concat_of_input(self, rng):
        g = Graph()
        g.add("r1", ReLU())
        g.add("r2", ReLU(), "input")
        g.add("r3", ReLU(), "input")
        g.add("cat", Concat(), ["r1", "r2", "r3"])
        x = np.abs(rng.standard_normal((2, 2, 3, 3)))
        y = g.forward(x)
        assert y.shape == (2, 6, 3, 3)
        dy = rng.standard_normal(y.shape)
        dx = g.backward(dy)
        np.testing.assert_allclose(dx, dy[:, :2] + dy[:, 2:4] + dy[:, 4:])

    def test_inception_like_module_shapes(self, rng):
        """A miniature inception block: four branches, concat."""
        g = Graph()
        g.add("b1", Conv2d(8, 4, 1, rng=0))
        g.add("b2a", Conv2d(8, 2, 1, rng=1), "input")
        g.add("b2b", Conv2d(2, 6, 3, padding=1, rng=2), "b2a")
        g.add("b3a", Conv2d(8, 2, 1, rng=3), "input")
        g.add("b3b", Conv2d(2, 3, 5, padding=2, rng=4), "b3a")
        g.add("b4", Conv2d(8, 3, 1, rng=5), "input")
        g.add("out", Concat(), ["b1", "b2b", "b3b", "b4"])
        x = rng.standard_normal((2, 8, 7, 7))
        y = g.forward(x)
        assert y.shape == (2, 4 + 6 + 3 + 3, 7, 7)
        dx = g.backward(rng.standard_normal(y.shape))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()

    def test_shape_walk_covers_all_nodes(self, rng):
        g = Graph()
        g.add("a", ReLU())
        g.add("b", ReLU(), "a")
        walk = g.shape_walk((1, 2, 3, 3))
        assert len(walk) == 2


class TestContainersNesting:
    def test_sequential_inside_graph(self, rng):
        inner = Sequential(ReLU(), ReLU(), name="tower")
        g = Graph()
        g.add("tower", inner)
        x = np.abs(rng.standard_normal((1, 2, 3, 3)))
        np.testing.assert_allclose(g.forward(x), x)
        assert g.output_shape(x.shape) == x.shape

    def test_train_mode_reaches_nested_layers(self):
        inner = Sequential(ReLU(), name="tower")
        g = Graph()
        g.add("tower", inner)
        g.eval()
        assert not inner.layers[0].training
