"""Test-local gradient-check shims.

The implementation graduated into the library
(:mod:`repro.nn.gradcheck`); the test modules import through this shim
so they exercise the public API.
"""

from repro.nn.gradcheck import (check_gradients as check_layer_gradients,
                                numeric_input_gradient,
                                numeric_param_gradient)

__all__ = ["check_layer_gradients", "numeric_input_gradient",
           "numeric_param_gradient"]
