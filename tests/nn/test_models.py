"""Tests for the reference CNN architectures.

The paper quotes specific structural facts about these models
(section I); they are asserted here.
"""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear
from repro.nn.models import (FIG2_MODELS, alexnet, googlenet, lenet5,
                             model_registry, overfeat, vgg16, vgg19)


def count(model, cls):
    if hasattr(model, "layers"):
        return sum(isinstance(l, cls) for l in model.layers)
    return sum(isinstance(l, cls) for l, _, _ in
               model.shape_walk((1, 3, 224, 224)))


class TestStructuralClaims:
    def test_alexnet_paper_claims(self):
        """AlexNet: 5 conv + 3 FC layers, >60M parameters."""
        m = alexnet(rng=0)
        assert count(m, Conv2d) == 5
        assert count(m, Linear) == 3
        assert m.parameter_count() > 60e6

    def test_vgg19_paper_claims(self):
        """VGG: 16 conv + 3 FC layers, ~144M parameters."""
        m = vgg19(rng=0)
        assert count(m, Conv2d) == 16
        assert count(m, Linear) == 3
        assert 140e6 < m.parameter_count() < 148e6

    def test_vgg16_structure(self):
        m = vgg16(rng=0)
        assert count(m, Conv2d) == 13
        assert 134e6 < m.parameter_count() < 142e6

    def test_googlenet_paper_claims(self):
        """GoogLeNet: ~6.8M parameters, 9 inception modules."""
        m = googlenet(rng=0)
        assert 6.0e6 < m.parameter_count() < 7.5e6
        convs = count(m, Conv2d)
        # 9 modules x 6 convs + 3 stem convs = 57
        assert convs == 57

    def test_overfeat_structure(self):
        m = overfeat(rng=0)
        assert count(m, Conv2d) == 5
        assert count(m, Linear) == 3

    def test_lenet5_structure(self):
        m = lenet5(rng=0)
        assert count(m, Conv2d) == 2
        assert count(m, Linear) == 3
        assert m.parameter_count() < 1e5


class TestShapes:
    @pytest.mark.parametrize("name", list(FIG2_MODELS))
    def test_fig2_models_classify_1000(self, name):
        ctor, shape = FIG2_MODELS[name]
        m = ctor(rng=0)
        assert m.output_shape((2,) + shape) == (2, 1000)

    def test_lenet_output(self):
        m = lenet5(rng=0)
        assert m.output_shape((4, 1, 32, 32)) == (4, 10)

    def test_registry_complete(self):
        reg = model_registry()
        assert set(reg) >= {"LeNet-5", "AlexNet", "VGG", "OverFeat",
                            "GoogLeNet"}


class TestForwardBackwardSmoke:
    """Tiny-batch forward/backward through each full architecture —
    expensive models run at reduced spatial scale via output_shape
    only; LeNet and GoogLeNet stem run numerically."""

    def test_lenet_forward_backward(self, rng):
        m = lenet5(rng=0)
        x = rng.standard_normal((2, 1, 32, 32))
        y = m.forward(x)
        assert y.shape == (2, 10)
        dx = m.backward(rng.standard_normal(y.shape))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()

    def test_googlenet_forward_backward_small_batch(self, rng):
        m = googlenet(num_classes=10, rng=0)
        x = rng.standard_normal((1, 3, 224, 224)).astype(np.float32) * 0.1
        y = m.forward(x)
        assert y.shape == (1, 10)
        dx = m.backward(rng.standard_normal(y.shape))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()

    def test_models_deterministic_given_seed(self, rng):
        a = lenet5(rng=7)
        b = lenet5(rng=7)
        x = rng.standard_normal((1, 1, 32, 32))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))
