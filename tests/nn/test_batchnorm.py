"""Tests for batch normalisation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.batchnorm import BatchNorm2d

from .gradcheck import check_layer_gradients


class TestForward:
    def test_normalises_batch_statistics(self, rng):
        bn = BatchNorm2d(4)
        x = rng.standard_normal((8, 4, 5, 5)) * 3.0 + 7.0
        y = bn.forward(x)
        assert np.allclose(y.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(y.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_affine_parameters_applied(self, rng):
        bn = BatchNorm2d(2)
        bn.gamma.value[:] = [2.0, 0.5]
        bn.beta.value[:] = [1.0, -1.0]
        x = rng.standard_normal((4, 2, 3, 3))
        y = bn.forward(x)
        assert y.mean(axis=(0, 2, 3)) == pytest.approx([1.0, -1.0], abs=1e-10)

    def test_running_stats_updated_in_train(self, rng):
        bn = BatchNorm2d(3, momentum=0.5)
        x = rng.standard_normal((16, 3, 4, 4)) + 10.0
        bn.forward(x)
        assert (bn.running_mean > 4.0).all()

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)
        x = rng.standard_normal((32, 2, 4, 4)) * 2.0 + 5.0
        bn.forward(x)            # loads running stats
        bn.eval()
        x2 = rng.standard_normal((4, 2, 4, 4)) * 2.0 + 5.0
        y = bn.forward(x2)
        # Normalised by the *training* distribution, so roughly
        # standardised but not exactly zero-mean for this new batch.
        assert abs(y.mean()) < 0.5

    def test_eval_mode_does_not_touch_running_stats(self, rng):
        bn = BatchNorm2d(2).eval()
        before = bn.running_mean.copy()
        bn.forward(rng.standard_normal((4, 2, 3, 3)) + 9.0)
        np.testing.assert_array_equal(bn.running_mean, before)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm2d(3).forward(rng.standard_normal((2, 4, 3, 3)))

    @pytest.mark.parametrize("kwargs", [
        dict(channels=0), dict(channels=2, eps=0.0),
        dict(channels=2, momentum=0.0), dict(channels=2, momentum=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ShapeError):
            BatchNorm2d(**kwargs)


class TestBackward:
    def test_gradcheck_train_mode(self, rng):
        bn = BatchNorm2d(2)
        bn.gamma.value[:] = [1.3, 0.7]
        bn.beta.value[:] = [0.2, -0.4]
        # Freeze running-stat updates' effect on the check by using a
        # fresh layer per forward (check_layer_gradients re-runs
        # forward); gradients are wrt batch statistics.
        x = rng.standard_normal((3, 2, 4, 4))
        check_layer_gradients(bn, x, rng, rtol=1e-3, atol=1e-6)

    def test_gradcheck_eval_mode(self, rng):
        bn = BatchNorm2d(2)
        bn.forward(rng.standard_normal((8, 2, 4, 4)))  # seed running stats
        bn.eval()
        x = rng.standard_normal((3, 2, 4, 4))
        check_layer_gradients(bn, x, rng, rtol=1e-4, atol=1e-7)

    def test_gradient_sums_zero_in_train_mode(self, rng):
        """Because the batch mean is subtracted, the input gradient
        sums to ~zero per channel."""
        bn = BatchNorm2d(3)
        x = rng.standard_normal((4, 3, 5, 5))
        y = bn.forward(x)
        dx = bn.backward(rng.standard_normal(y.shape))
        assert np.allclose(dx.sum(axis=(0, 2, 3)), 0.0, atol=1e-10)


class TestInNetwork:
    def test_conv_bn_relu_stack_trains(self, rng):
        from repro.nn import Conv2d, Flatten, Linear, ReLU, Sequential, SGD, Trainer
        model = Sequential(
            Conv2d(1, 4, 3, rng=0), BatchNorm2d(4), ReLU(), Flatten(),
            Linear(4 * 4 * 4, 2, rng=1))
        x = rng.standard_normal((16, 1, 6, 6))
        labels = (x.mean(axis=(1, 2, 3)) > 0).astype(int)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        losses = [trainer.train_step(x, labels)[0] for _ in range(30)]
        assert losses[-1] < losses[0]

    def test_parameters_exposed(self):
        bn = BatchNorm2d(5)
        assert len(bn.parameters()) == 2
        assert bn.parameter_count() == 10
