"""Tests for the Add layer and the ResNet extension models."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Conv2d, ReLU
from repro.nn.add import Add
from repro.nn.batchnorm import BatchNorm2d
from repro.nn.network import Graph
from repro.nn.models.resnet import resnet18, resnet34


class TestAddLayer:
    def test_sums_inputs(self, rng):
        xs = [rng.standard_normal((2, 3, 4, 4)) for _ in range(3)]
        np.testing.assert_allclose(Add().forward(xs), xs[0] + xs[1] + xs[2])

    def test_backward_fans_out_unchanged(self, rng):
        add = Add()
        xs = [rng.standard_normal((1, 2, 2, 2)) for _ in range(2)]
        add.forward(xs)
        dy = rng.standard_normal((1, 2, 2, 2))
        grads = add.backward(dy)
        assert len(grads) == 2
        for g in grads:
            np.testing.assert_array_equal(g, dy)

    def test_does_not_mutate_inputs(self, rng):
        xs = [rng.standard_normal((1, 1, 2, 2)) for _ in range(2)]
        copies = [x.copy() for x in xs]
        Add().forward(xs)
        for x, c in zip(xs, copies):
            np.testing.assert_array_equal(x, c)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ShapeError):
            Add().forward([rng.standard_normal((1, 1, 2, 2)),
                           rng.standard_normal((1, 1, 3, 3))])

    def test_output_shape(self):
        assert Add().output_shape([(1, 2, 3, 3), (1, 2, 3, 3)]) == (1, 2, 3, 3)
        with pytest.raises(ShapeError):
            Add().output_shape([(1, 2, 3, 3), (1, 3, 3, 3)])


class TestResidualGraph:
    def test_identity_residual_gradient_accumulates(self, rng):
        """d(x + f(x))/dx = 1 + f'(x): the input gradient carries both
        the shortcut and the branch."""
        g = Graph()
        g.add("branch", ReLU())
        g.add("merge", Add(), ["branch", "input"])
        x = np.abs(rng.standard_normal((1, 2, 3, 3)))  # relu transparent
        y = g.forward(x)
        np.testing.assert_allclose(y, 2 * x)
        dy = rng.standard_normal(y.shape)
        dx = g.backward(dy)
        np.testing.assert_allclose(dx, 2 * dy)


class TestResNets:
    def test_canonical_parameter_counts(self):
        assert 11.4e6 < resnet18(rng=0).parameter_count() < 12.0e6
        assert 21.4e6 < resnet34(rng=0).parameter_count() < 22.2e6

    def test_output_shape(self):
        m = resnet18(num_classes=10, rng=0)
        assert m.output_shape((4, 3, 224, 224)) == (4, 10)

    def test_all_convs_are_small_kernels(self):
        """ResNet lives in the paper's small-kernel regime: everything
        is 7x7 (stem) or 3x3/1x1."""
        m = resnet34(rng=0)
        ks = {l.kernel_size for l, _, _ in m.shape_walk((1, 3, 224, 224))
              if isinstance(l, Conv2d)}
        assert ks == {7, 3, 1}

    def test_forward_backward_finite(self, rng):
        m = resnet18(num_classes=4, rng=0)
        x = rng.standard_normal((1, 3, 224, 224)).astype(np.float32) * 0.1
        y = m.forward(x)
        dx = m.backward(rng.standard_normal(y.shape))
        assert np.isfinite(y).all() and np.isfinite(dx).all()

    def test_simulated_breakdown_conv_dominates(self):
        """Conv still dominates a simulated ResNet iteration, with
        BatchNorm visible — the extension composes with the Fig. 2
        machinery."""
        from repro.nn.simulate import breakdown_by_type, model_breakdown
        m = resnet18(rng=0)
        shares = breakdown_by_type(model_breakdown(m, (64, 3, 224, 224)))
        assert shares["Conv"] > 0.7
        assert "BatchNorm" in shares and "Add" in shares

    def test_registered_in_model_registry(self):
        from repro.nn.models import FIG2_MODELS, model_registry
        reg = model_registry()
        assert "ResNet-18" in reg and "ResNet-34" in reg
        # But NOT in the paper's Fig. 2 set.
        assert "ResNet-18" not in FIG2_MODELS

    def test_training_cost_estimable(self):
        from repro.core.training_cost import estimate_training
        from repro.workloads.datasets import CIFAR10
        est = estimate_training("ResNet-18", CIFAR10, batch=64, epochs=1)
        assert est.total_time_s > 0
