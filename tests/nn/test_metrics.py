"""Tests for the classification metrics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.metrics import (accuracy, confusion_matrix, per_class_accuracy,
                              topk_accuracy)


@pytest.fixture
def toy():
    logits = np.array([
        [3.0, 1.0, 0.0],   # pred 0
        [0.0, 2.0, 1.0],   # pred 1
        [0.0, 1.0, 2.0],   # pred 2
        [1.5, 1.0, 0.0],   # pred 0
    ])
    labels = np.array([0, 1, 1, 2])
    return logits, labels


class TestAccuracy:
    def test_top1(self, toy):
        logits, labels = toy
        assert accuracy(logits, labels) == pytest.approx(0.5)

    def test_top2_catches_runner_up(self, toy):
        logits, labels = toy
        # sample 2's label (1) is the second-highest logit.
        assert topk_accuracy(logits, labels, k=2) == pytest.approx(0.75)

    def test_topk_equals_everything_at_full_k(self, toy):
        logits, labels = toy
        assert topk_accuracy(logits, labels, k=3) == 1.0

    def test_topk_validation(self, toy):
        logits, labels = toy
        with pytest.raises(ShapeError):
            topk_accuracy(logits, labels, k=0)
        with pytest.raises(ShapeError):
            topk_accuracy(logits, labels, k=4)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_topk_geq_top1_property(self, rng):
        logits = rng.standard_normal((64, 10))
        labels = rng.integers(0, 10, 64)
        a1 = accuracy(logits, labels)
        for k in (2, 3, 5, 10):
            assert topk_accuracy(logits, labels, k) >= a1


class TestConfusionMatrix:
    def test_counts(self, toy):
        logits, labels = toy
        cm = confusion_matrix(logits, labels)
        assert cm.sum() == 4
        assert cm[0, 0] == 1   # class 0 correct
        assert cm[1, 1] == 1   # one class-1 correct
        assert cm[1, 2] == 1   # one class-1 predicted 2
        assert cm[2, 0] == 1   # class 2 predicted 0

    def test_diagonal_trace_is_correct_count(self, rng):
        logits = rng.standard_normal((100, 5))
        labels = rng.integers(0, 5, 100)
        cm = confusion_matrix(logits, labels)
        assert np.trace(cm) == round(accuracy(logits, labels) * 100)

    def test_per_class(self, toy):
        logits, labels = toy
        pca = per_class_accuracy(confusion_matrix(logits, labels))
        assert pca[0] == 1.0
        assert pca[1] == 0.5
        assert pca[2] == 0.0

    def test_per_class_nan_for_absent_class(self):
        cm = np.array([[2, 0], [0, 0]])
        pca = per_class_accuracy(cm)
        assert pca[0] == 1.0 and np.isnan(pca[1])

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            per_class_accuracy(np.zeros((2, 3)))
