"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.nn.checkpoint import (load_state_dict, load_weights, save_weights,
                                 state_dict)
from repro.nn.models import lenet5


def model():
    return Sequential(Conv2d(1, 2, 3, rng=0, name="c1"),
                      BatchNorm2d(2, name="bn1"), ReLU(),
                      Linear(2, 2, rng=1, name="fc"))


class TestStateDict:
    def test_collects_all_parameters(self):
        m = model()
        state = state_dict(m)
        assert "c1.weight" in state and "fc.bias" in state
        assert "bn1.gamma" in state
        assert "bn1.running_mean" in state

    def test_roundtrip_restores_exactly(self, rng):
        src = model()
        src.layers[0].weight.value[:] = rng.standard_normal(
            src.layers[0].weight.shape)
        src.layers[1].running_mean[:] = [1.5, -2.5]
        dst = model()
        load_state_dict(dst, state_dict(src))
        np.testing.assert_array_equal(dst.layers[0].weight.value,
                                      src.layers[0].weight.value)
        np.testing.assert_array_equal(dst.layers[1].running_mean,
                                      [1.5, -2.5])

    def test_shape_mismatch_rejected(self):
        state = state_dict(model())
        state["c1.weight"] = np.zeros((5, 5))
        with pytest.raises(ShapeError):
            load_state_dict(model(), state)

    def test_missing_key_strict(self):
        state = state_dict(model())
        del state["fc.weight"]
        with pytest.raises(ShapeError):
            load_state_dict(model(), state)
        load_state_dict(model(), state, strict=False)  # tolerated

    def test_extra_key_strict(self):
        state = state_dict(model())
        state["mystery"] = np.zeros(3)
        with pytest.raises(ShapeError):
            load_state_dict(model(), state)


class TestFileRoundtrip:
    def test_npz_roundtrip(self, tmp_path, rng):
        src = lenet5(rng=5)
        path = str(tmp_path / "lenet.npz")
        save_weights(src, path)
        dst = lenet5(rng=99)  # different init
        load_weights(dst, path)
        x = rng.standard_normal((2, 1, 32, 32))
        np.testing.assert_array_equal(src.forward(x), dst.forward(x))

    def test_checkpoint_transfers_across_backends(self, tmp_path, rng):
        """Weights trained under one conv strategy drop into another —
        the numerical interchangeability the comparison study rests
        on."""
        src = lenet5(rng=5)
        path = str(tmp_path / "lenet.npz")
        save_weights(src, path)
        fft_model = lenet5(rng=0, backend="fft")
        load_weights(fft_model, path)
        x = rng.standard_normal((2, 1, 32, 32)).astype(np.float64)
        np.testing.assert_allclose(fft_model.forward(x), src.forward(x),
                                   rtol=1e-8, atol=1e-8)
