"""Tests for the Sequential and Graph containers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (Concat, Conv2d, Flatten, Linear, ReLU, Sequential)
from repro.nn.network import Graph

from .gradcheck import numeric_input_gradient


class TestSequential:
    def test_forward_chains(self, rng):
        model = Sequential(ReLU(), Flatten())
        x = rng.standard_normal((2, 3, 2, 2))
        y = model.forward(x)
        assert y.shape == (2, 12)
        assert (y >= 0).all()

    def test_backward_full_chain_gradcheck(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=0), ReLU(), Flatten(),
                           Linear(2 * 4 * 4, 3, rng=1))
        x = rng.standard_normal((2, 1, 6, 6)) + 0.05
        y = model.forward(x)
        dy = rng.standard_normal(y.shape)
        model.forward(x)
        dx = model.backward(dy)
        np.testing.assert_allclose(
            dx, numeric_input_gradient(model, x, dy), rtol=1e-4, atol=1e-6)

    def test_parameters_collected(self):
        model = Sequential(Conv2d(1, 2, 3, rng=0), Linear(4, 2, rng=0))
        assert len(model.parameters()) == 4

    def test_shape_walk(self):
        model = Sequential(Conv2d(3, 8, 3, rng=0), ReLU())
        walk = model.shape_walk((1, 3, 8, 8))
        assert len(walk) == 2
        assert walk[0][2] == (1, 8, 6, 6)
        assert walk[1][2] == (1, 8, 6, 6)

    def test_train_eval_propagates(self):
        model = Sequential(ReLU(), ReLU())
        model.eval()
        assert all(not l.training for l in model)

    def test_add_rejects_non_layer(self):
        with pytest.raises(TypeError):
            Sequential().add("not a layer")

    def test_len_and_iter(self):
        model = Sequential(ReLU(), ReLU(), ReLU())
        assert len(model) == 3
        assert len(list(model)) == 3


class TestGraph:
    def build_branchy(self):
        """input -> conv -> {branch a: relu, branch b: conv} -> concat."""
        g = Graph()
        g.add("stem", Conv2d(1, 2, 3, rng=0))
        g.add("a", ReLU(), "stem")
        g.add("b", Conv2d(2, 3, 1, rng=1), "stem")
        g.add("merge", Concat(), ["a", "b"])
        return g

    def test_forward_shapes(self, rng):
        g = self.build_branchy()
        y = g.forward(rng.standard_normal((2, 1, 6, 6)))
        assert y.shape == (2, 5, 4, 4)

    def test_output_shape_matches_forward(self, rng):
        g = self.build_branchy()
        x = rng.standard_normal((2, 1, 6, 6))
        assert g.output_shape(x.shape) == g.forward(x).shape

    def test_backward_gradcheck_through_branches(self, rng):
        g = self.build_branchy()
        x = rng.standard_normal((1, 1, 5, 5)) + 0.05
        y = g.forward(x)
        dy = rng.standard_normal(y.shape)
        g.forward(x)
        dx = g.backward(dy)
        np.testing.assert_allclose(
            dx, numeric_input_gradient(g, x, dy), rtol=1e-4, atol=1e-6)

    def test_fanout_gradients_accumulate(self, rng):
        """A node consumed by two branches receives the sum of their
        gradients — checked against a hand-built equivalent."""
        g = Graph()
        g.add("double_a", ReLU())
        g.add("double_b", ReLU(), "input")
        g.add("merge", Concat(), ["double_a", "double_b"])
        x = np.abs(rng.standard_normal((1, 2, 3, 3)))  # all positive
        g.forward(x)
        dy = rng.standard_normal((1, 4, 3, 3))
        dx = g.backward(dy)
        np.testing.assert_allclose(dx, dy[:, :2] + dy[:, 2:])

    def test_insertion_order_enforced(self):
        g = Graph()
        with pytest.raises(ShapeError):
            g.add("x", ReLU(), "later")

    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add("x", ReLU())
        with pytest.raises(ShapeError):
            g.add("x", ReLU())

    def test_multi_input_requires_concat(self):
        g = Graph()
        g.add("a", ReLU())
        g.add("b", ReLU())
        with pytest.raises(ShapeError):
            g.add("c", ReLU(), ["a", "b"])

    def test_set_output(self, rng):
        g = Graph()
        g.add("a", ReLU())
        g.add("b", ReLU(), "a")
        g.set_output("a")
        assert g.output_node == "a"

    def test_parameters_collected(self):
        g = self.build_branchy()
        assert len(g.parameters()) == 4  # two convs x (w, b)


class TestConcat:
    def test_forward_concatenates_channels(self, rng):
        xs = [rng.standard_normal((2, c, 3, 3)) for c in (1, 2, 3)]
        y = Concat().forward(xs)
        assert y.shape == (2, 6, 3, 3)
        np.testing.assert_allclose(y[:, 1:3], xs[1])

    def test_backward_splits(self, rng):
        c = Concat()
        xs = [rng.standard_normal((1, 2, 2, 2)) for _ in range(2)]
        c.forward(xs)
        dy = rng.standard_normal((1, 4, 2, 2))
        grads = c.backward(dy)
        assert len(grads) == 2
        np.testing.assert_allclose(grads[0], dy[:, :2])
        np.testing.assert_allclose(grads[1], dy[:, 2:])

    def test_mismatched_spatial_rejected(self, rng):
        with pytest.raises(ShapeError):
            Concat().forward([rng.standard_normal((1, 1, 2, 2)),
                              rng.standard_normal((1, 1, 3, 3))])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            Concat().forward([])
