"""Tests for the nn layer's observability instrumentation."""

import numpy as np
import pytest

from repro.gpusim.timing import SimClock
from repro.nn import Flatten, Linear, ReLU, SGD, Sequential, Trainer
from repro.nn.models import lenet5
from repro.nn.simulate import model_breakdown
from repro.obs.context import Observability, obs_session
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SimTracer


SHAPE = (64, 1, 32, 32)


def traced_obs():
    return Observability(tracer=SimTracer(SimClock()),
                         registry=MetricsRegistry())


class TestModelBreakdownTracing:
    def test_iteration_span_tree(self):
        obs = traced_obs()
        with obs_session(obs):
            costs = model_breakdown(lenet5(rng=0), SHAPE)
        (root,) = obs.tracer.roots
        assert root.name == "nn.iteration"
        assert root.attrs["model"] == "Sequential"
        assert root.attrs["implementation"] == "cuDNN"
        assert root.attrs["layers"] == len(costs)
        fwd = [s for s in root.children if s.name == "nn.forward"]
        bwd = [s for s in root.children if s.name == "nn.backward"]
        assert len(fwd) == len(bwd) == len(costs)
        # forward spans in layer order, backward in BP (reverse) order
        assert [s.attrs["layer"] for s in fwd] == \
            [c.layer.name for c in costs]
        assert [s.attrs["layer"] for s in bwd] == \
            [c.layer.name for c in reversed(costs)]

    def test_spans_consume_simulated_time(self):
        obs = traced_obs()
        with obs_session(obs):
            costs = model_breakdown(lenet5(rng=0), SHAPE)
        (root,) = obs.tracer.roots
        total = sum(c.time_s for c in costs)
        assert root.duration_s == pytest.approx(total)
        fwd = [s for s in root.children if s.name == "nn.forward"]
        assert [s.duration_s for s in fwd] == \
            pytest.approx([c.forward_s for c in costs])

    def test_costs_unchanged_by_tracing(self):
        untraced = model_breakdown(lenet5(rng=0), SHAPE)
        with obs_session(traced_obs()):
            traced = model_breakdown(lenet5(rng=0), SHAPE)
        assert [c.time_s for c in traced] == [c.time_s for c in untraced]

    def test_forward_backward_split_sums_to_total(self):
        for cost in model_breakdown(lenet5(rng=0), SHAPE):
            assert cost.forward_s + cost.backward_s == \
                pytest.approx(cost.time_s)
            assert cost.forward_s >= 0.0 and cost.backward_s >= 0.0

    def test_counters_and_histogram(self):
        obs = traced_obs()
        with obs_session(obs):
            costs = model_breakdown(lenet5(rng=0), SHAPE)
        registry = obs.registry
        assert registry.value("nn_iterations_total") == 1
        per_type = registry.series("nn_layers_total")
        assert sum(m.value for _, m in per_type) == len(costs)
        assert {labels["type"] for labels, _ in per_type} == \
            {c.layer_type for c in costs}
        hist = registry.histogram("nn_layer_time_seconds")
        assert hist.count == len(costs)

    def test_no_session_no_spans(self):
        from repro.obs.context import get_obs

        costs = model_breakdown(lenet5(rng=0), SHAPE)
        assert costs
        assert get_obs().tracer.span_count() == 0


class TestTrainerInstrumentation:
    def make_step(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((16, 4))
        labels = (x[:, 0] > 0).astype(int)
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        return trainer, x, labels

    def test_step_span_tree(self):
        trainer, x, labels = self.make_step()
        obs = traced_obs()
        with obs_session(obs):
            trainer.train_step(x, labels)
        (root,) = obs.tracer.roots
        assert root.name == "train.step"
        assert root.attrs["batch"] == 16
        assert [s.name for s in root.children] == \
            ["train.forward", "train.backward", "train.update"]

    def test_step_counters_and_histograms(self):
        trainer, x, labels = self.make_step()
        obs = traced_obs()
        with obs_session(obs):
            loss, acc = trainer.train_step(x, labels)
            trainer.train_step(x, labels)
        registry = obs.registry
        assert registry.value("train_steps_total") == 2
        assert registry.value("train_samples_total") == 32
        assert registry.histogram("train_loss").count == 2
        assert registry.histogram("train_loss").observations[0] == \
            pytest.approx(loss)
        assert registry.histogram("train_batch_accuracy").count == 2

    def test_results_unchanged_by_instrumentation(self):
        trainer, x, labels = self.make_step()
        plain = trainer.train_step(x, labels)
        traced_trainer, x2, labels2 = self.make_step()
        with obs_session(traced_obs()):
            traced = traced_trainer.train_step(x2, labels2)
        assert traced == pytest.approx(plain)
