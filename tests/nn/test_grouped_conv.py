"""Tests for grouped convolution (AlexNet's two-tower split)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Conv2d
from repro.nn.models import alexnet

from .gradcheck import check_layer_gradients


class TestGroupedConv:
    def test_weight_shape_shrinks_per_group(self):
        layer = Conv2d(8, 4, 3, groups=2, rng=0)
        assert layer.weight.shape == (4, 4, 3, 3)

    def test_groups_partition_channels(self, rng):
        """A grouped conv equals two independent half-channel convs."""
        layer = Conv2d(4, 6, 3, groups=2, bias=False, rng=0)
        x = rng.standard_normal((2, 4, 6, 6))
        y = layer.forward(x)

        lo = Conv2d(2, 3, 3, bias=False, rng=1)
        hi = Conv2d(2, 3, 3, bias=False, rng=2)
        lo.weight.value = layer.weight.value[:3].copy()
        hi.weight.value = layer.weight.value[3:].copy()
        np.testing.assert_allclose(y[:, :3], lo.forward(x[:, :2]),
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(y[:, 3:], hi.forward(x[:, 2:]),
                                   rtol=1e-12, atol=1e-12)

    def test_groups_1_unchanged(self, rng):
        a = Conv2d(3, 4, 3, rng=5)
        b = Conv2d(3, 4, 3, groups=1, rng=5)
        x = rng.standard_normal((1, 3, 5, 5))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_gradcheck_grouped(self, rng):
        layer = Conv2d(4, 4, 3, groups=2, rng=1)
        x = rng.standard_normal((2, 4, 6, 6))
        check_layer_gradients(layer, x, rng)

    def test_depthwise_extreme(self, rng):
        """groups == channels: depthwise convolution."""
        layer = Conv2d(4, 4, 3, groups=4, rng=1)
        assert layer.weight.shape == (4, 1, 3, 3)
        x = rng.standard_normal((1, 4, 6, 6))
        check_layer_gradients(layer, x, rng)

    @pytest.mark.parametrize("cin,cout,g", [(3, 4, 2), (4, 3, 2), (4, 4, 0)])
    def test_invalid_grouping(self, cin, cout, g):
        with pytest.raises(ShapeError):
            Conv2d(cin, cout, 3, groups=g, rng=0)

    def test_grouped_works_with_fft_backend(self, rng):
        a = Conv2d(4, 4, 3, groups=2, rng=3)
        b = Conv2d(4, 4, 3, groups=2, backend="fft", rng=3)
        x = rng.standard_normal((1, 4, 6, 6))
        np.testing.assert_allclose(a.forward(x), b.forward(x),
                                   rtol=1e-8, atol=1e-8)


class TestGroupedAlexNet:
    def test_original_parameter_count(self):
        """Krizhevsky's grouped AlexNet has ~61 M parameters (the
        single-tower variant has ~62.4 M)."""
        grouped = alexnet(rng=0, grouped=True).parameter_count()
        single = alexnet(rng=0, grouped=False).parameter_count()
        assert grouped < single
        assert 58e6 < grouped < 62e6

    def test_same_output_shape(self):
        g = alexnet(rng=0, grouped=True)
        assert g.output_shape((2, 3, 227, 227)) == (2, 1000)

    def test_forward_backward_smoke(self, rng):
        m = alexnet(num_classes=5, rng=0, grouped=True)
        x = rng.standard_normal((1, 3, 227, 227)).astype(np.float32) * 0.1
        y = m.forward(x)
        dx = m.backward(rng.standard_normal(y.shape))
        assert np.isfinite(y).all() and np.isfinite(dx).all()
