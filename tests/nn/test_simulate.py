"""Tests for the Fig. 2 model-runtime simulator."""

import pytest

from repro.nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.nn.models import lenet5
from repro.nn.simulate import (breakdown_by_type, layer_time,
                               model_breakdown)
from repro.frameworks.registry import get_implementation


class TestLayerTime:
    def test_conv_dominates_relu(self):
        impl = get_implementation("cudnn")
        conv = Conv2d(64, 128, 3, rng=0)
        relu = ReLU()
        shape = (32, 64, 56, 56)
        out = conv.output_shape(shape)
        t_conv = layer_time(conv, shape, out, impl)
        t_relu = layer_time(relu, out, out, impl)
        assert t_conv > 5 * t_relu

    def test_flatten_is_free(self):
        impl = get_implementation("cudnn")
        assert layer_time(Flatten(), (8, 4, 4, 4), (8, 64), impl) == 0.0

    def test_fc_layer_timed_as_gemms(self):
        impl = get_implementation("cudnn")
        t = layer_time(Linear(4096, 4096, rng=0), (128, 4096), (128, 4096),
                       impl)
        assert t > 0

    def test_pool_scales_with_size(self):
        impl = get_implementation("cudnn")
        pool = MaxPool2d(2, 2)
        small = layer_time(pool, (8, 16, 16, 16), (8, 16, 8, 8), impl)
        big = layer_time(pool, (8, 16, 128, 128), (8, 16, 64, 64), impl)
        assert big > small


class TestModelBreakdown:
    def test_lenet_breakdown_covers_all_layers(self):
        m = lenet5(rng=0)
        costs = model_breakdown(m, (64, 1, 32, 32))
        assert len(costs) == len(m.layers)
        assert all(c.time_s >= 0 for c in costs)

    def test_shares_sum_to_one(self):
        m = lenet5(rng=0)
        shares = breakdown_by_type(model_breakdown(m, (64, 1, 32, 32)))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_conv_share_grows_with_depth(self):
        shallow = Sequential(Conv2d(3, 8, 3, rng=0), ReLU())
        costs = model_breakdown(shallow, (16, 3, 32, 32))
        shares = breakdown_by_type(costs)
        assert shares["Conv"] > 0.5

    def test_implementation_changes_conv_time(self):
        m = lenet5(rng=0)
        fast = sum(c.time_s for c in
                   model_breakdown(m, (64, 1, 32, 32), "cudnn"))
        slow = sum(c.time_s for c in
                   model_breakdown(m, (64, 1, 32, 32), "theano-fft"))
        assert slow > fast
