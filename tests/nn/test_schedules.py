"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.module import Parameter
from repro.nn.schedules import (ScheduledSGD, constant, poly_decay,
                                step_decay, warmup)


class TestSchedules:
    def test_constant(self):
        s = constant(0.1)
        assert s(0) == s(1000) == 0.1

    def test_step_decay(self):
        s = step_decay(1.0, drop=0.1, every=10)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_poly_decay_endpoints(self):
        s = poly_decay(1.0, total_steps=100, power=1.0)
        assert s(0) == 1.0
        assert s(50) == pytest.approx(0.5)
        assert s(100) == 0.0
        assert s(200) == 0.0  # clamps past the horizon

    def test_poly_decay_power(self):
        gentle = poly_decay(1.0, 100, power=0.5)
        steep = poly_decay(1.0, 100, power=2.0)
        assert gentle(50) > steep(50)

    def test_warmup_ramps(self):
        s = warmup(constant(1.0), steps=4)
        assert s(0) == pytest.approx(0.25)
        assert s(1) == pytest.approx(0.5)
        assert s(3) == pytest.approx(1.0)
        assert s(100) == 1.0

    @pytest.mark.parametrize("bad", [
        lambda: constant(0.0),
        lambda: step_decay(1.0, drop=0.0),
        lambda: step_decay(1.0, every=0),
        lambda: poly_decay(1.0, 0),
        lambda: warmup(constant(1.0), 0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ShapeError):
            bad()


class TestScheduledSGD:
    def test_lr_follows_schedule(self):
        p = Parameter(np.zeros(1))
        opt = ScheduledSGD([p], step_decay(1.0, 0.1, every=2), momentum=0.0)
        for _ in range(4):
            p.grad[:] = [1.0]
            opt.step()
        assert opt.lr_history == pytest.approx([1.0, 1.0, 0.1, 0.1])
        # total update: -(1 + 1 + 0.1 + 0.1)
        assert p.value[0] == pytest.approx(-2.2)

    def test_zero_lr_steps_are_noops(self):
        p = Parameter(np.array([5.0]))
        opt = ScheduledSGD([p], poly_decay(1.0, 1), momentum=0.0)
        p.grad[:] = [1.0]
        opt.step()   # lr = 1 at step 0
        first = p.value.copy()
        p.grad[:] = [1.0]
        opt.step()   # lr = 0 beyond the horizon
        np.testing.assert_array_equal(p.value, first)

    def test_trains_a_model(self, rng):
        """Warm-up + decay trains the toy problem at least as far as a
        fixed rate does."""
        from repro.nn import Linear, ReLU, Sequential, Trainer
        x = rng.standard_normal((128, 4))
        labels = (x[:, 0] > 0).astype(int)
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        opt = ScheduledSGD(model.parameters(),
                           warmup(step_decay(0.2, 0.5, every=30), steps=5))
        trainer = Trainer(model, opt)
        losses = [trainer.train_step(x, labels)[0] for _ in range(60)]
        assert losses[-1] < 0.3 * losses[0]
