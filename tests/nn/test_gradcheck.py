"""Finite-difference gradient checks for every layer type.

These are the strongest correctness tests in the NN substrate: the
analytic backward pass of each layer is compared element-by-element
against central differences of its own forward pass.
"""

import numpy as np
import pytest

from repro.nn import (AvgPool2d, Conv2d, Dropout, Flatten, Linear,
                      LocalResponseNorm, MaxPool2d, ReLU)

from .gradcheck import check_layer_gradients


class TestConvGradients:
    @pytest.mark.parametrize("backend", [None, "direct", "fft"])
    def test_small_conv(self, backend, rng):
        layer = Conv2d(2, 3, 3, backend=backend, rng=1)
        x = rng.standard_normal((2, 2, 6, 6))
        check_layer_gradients(layer, x, rng)

    def test_strided_padded_conv(self, rng):
        layer = Conv2d(2, 2, 3, stride=2, padding=1, rng=1)
        x = rng.standard_normal((1, 2, 7, 7))
        check_layer_gradients(layer, x, rng)

    def test_no_bias(self, rng):
        layer = Conv2d(1, 2, 2, bias=False, rng=1)
        assert len(layer.parameters()) == 1
        x = rng.standard_normal((1, 1, 5, 5))
        check_layer_gradients(layer, x, rng)


class TestPoolingGradients:
    def test_maxpool(self, rng):
        layer = MaxPool2d(2, 2)
        x = rng.standard_normal((2, 2, 6, 6))
        check_layer_gradients(layer, x, rng)

    def test_maxpool_overlapping(self, rng):
        layer = MaxPool2d(3, 2)  # AlexNet-style overlapping pool
        x = rng.standard_normal((1, 2, 7, 7))
        check_layer_gradients(layer, x, rng)

    def test_avgpool(self, rng):
        layer = AvgPool2d(2, 2)
        x = rng.standard_normal((2, 2, 6, 6))
        check_layer_gradients(layer, x, rng)

    def test_avgpool_with_stride_1(self, rng):
        layer = AvgPool2d(3, 1)
        x = rng.standard_normal((1, 1, 5, 5))
        check_layer_gradients(layer, x, rng)


class TestSimpleLayers:
    def test_relu(self, rng):
        x = rng.standard_normal((3, 4, 5, 5)) + 0.05  # avoid kink at 0
        check_layer_gradients(ReLU(), x, rng)

    def test_linear(self, rng):
        layer = Linear(6, 4, rng=1)
        x = rng.standard_normal((3, 6))
        check_layer_gradients(layer, x, rng)

    def test_flatten(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        check_layer_gradients(Flatten(), x, rng)

    def test_lrn(self, rng):
        layer = LocalResponseNorm(size=3, alpha=1e-2, beta=0.75)
        x = rng.standard_normal((2, 6, 3, 3))
        check_layer_gradients(layer, x, rng, rtol=1e-3, atol=1e-6)

    def test_lrn_window_wider_than_channels(self, rng):
        layer = LocalResponseNorm(size=5)
        x = rng.standard_normal((1, 3, 2, 2))
        check_layer_gradients(layer, x, rng, rtol=1e-3, atol=1e-6)

    def test_dropout_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=3)
        x = rng.standard_normal((4, 8))
        y = layer.forward(x)
        mask = layer._mask
        dy = rng.standard_normal(y.shape)
        dx = layer.backward(dy)
        assert np.allclose(dx, dy * mask)
