"""Tests for the model summary printer."""

import pytest

from repro.nn.models import alexnet, googlenet, lenet5
from repro.nn.summary import parameter_breakdown, summarize


class TestSummarize:
    def test_lenet_table(self):
        out = summarize(lenet5(rng=0), (1, 1, 32, 32))
        assert "conv1" in out and "fc5" in out
        assert "total parameters:" in out

    def test_alexnet_param_total_in_footer(self):
        out = summarize(alexnet(rng=0), (1, 3, 227, 227))
        total = alexnet(rng=0).parameter_count()
        assert f"{total:,}" in out

    def test_graph_models_supported(self):
        out = summarize(googlenet(rng=0), (1, 3, 224, 224))
        assert "inc3a/output" in out
        # Concat rows show the fan-in shapes.
        assert "+" in out

    def test_activation_memory_scales_with_batch(self):
        small = summarize(lenet5(rng=0), (1, 1, 32, 32))
        big = summarize(lenet5(rng=0), (64, 1, 32, 32))
        def act_mb(s):
            line = next(l for l in s.splitlines()
                        if l.startswith("forward activations"))
            return float(line.split(":")[1].split("MB")[0])
        assert act_mb(big) > 10 * act_mb(small)


class TestParameterBreakdown:
    def test_sorted_descending(self):
        bd = parameter_breakdown(alexnet(rng=0))
        sizes = [s for _, s in bd]
        assert sizes == sorted(sizes, reverse=True)

    def test_alexnet_fc6_is_largest(self):
        """AlexNet's famous parameter hog: fc6 (9216 x 4096)."""
        name, size = parameter_breakdown(alexnet(rng=0))[0]
        assert "fc6" in name
        assert size == 9216 * 4096
