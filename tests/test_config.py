"""Tests for repro.config: the 5-tuple space and sweeps."""

import pytest

from repro.config import (BASE_CONFIG, SWEEPS, TABLE1_CONFIGS, ConvConfig,
                          sweep_configs)
from repro.errors import ShapeError


class TestConvConfig:
    def test_base_tuple_matches_paper(self):
        assert BASE_CONFIG.tuple5 == (64, 128, 64, 11, 1)

    def test_output_size_valid_convolution(self):
        cfg = ConvConfig(batch=1, input_size=128, filters=1, kernel_size=11)
        assert cfg.output_size == 118

    def test_output_size_with_stride(self):
        cfg = ConvConfig(batch=1, input_size=227, filters=96, kernel_size=11,
                         stride=4)
        assert cfg.output_size == 55

    def test_output_size_with_padding(self):
        cfg = ConvConfig(batch=1, input_size=32, filters=1, kernel_size=3,
                         padding=1)
        assert cfg.output_size == 32

    def test_shapes(self):
        cfg = ConvConfig(batch=4, input_size=16, filters=8, kernel_size=5,
                         channels=3)
        assert cfg.input_shape == (4, 3, 16, 16)
        assert cfg.weight_shape == (8, 3, 5, 5)
        assert cfg.output_shape == (4, 8, 12, 12)

    def test_forward_macs(self):
        cfg = ConvConfig(batch=2, input_size=8, filters=4, kernel_size=3,
                         channels=3)
        o = 6
        assert cfg.forward_macs == 2 * 4 * 3 * o * o * 9
        assert cfg.forward_flops == 2 * cfg.forward_macs
        assert cfg.training_flops == 3 * cfg.forward_flops

    def test_scaled_replaces_fields(self):
        cfg = BASE_CONFIG.scaled(batch=128)
        assert cfg.batch == 128
        assert cfg.input_size == BASE_CONFIG.input_size

    @pytest.mark.parametrize("field,value", [
        ("batch", 0), ("batch", -1), ("input_size", 0), ("filters", 0),
        ("kernel_size", 0), ("stride", 0), ("channels", 0),
    ])
    def test_rejects_nonpositive(self, field, value):
        kwargs = dict(batch=1, input_size=8, filters=1, kernel_size=3)
        kwargs[field] = value
        with pytest.raises(ShapeError):
            ConvConfig(**kwargs)

    def test_rejects_negative_padding(self):
        with pytest.raises(ShapeError):
            ConvConfig(batch=1, input_size=8, filters=1, kernel_size=3,
                       padding=-1)

    def test_rejects_kernel_larger_than_padded_input(self):
        with pytest.raises(ShapeError):
            ConvConfig(batch=1, input_size=4, filters=1, kernel_size=9)

    def test_padding_can_admit_large_kernel(self):
        cfg = ConvConfig(batch=1, input_size=4, filters=1, kernel_size=6,
                         padding=1)
        assert cfg.output_size == 1

    def test_frozen(self):
        with pytest.raises(Exception):
            BASE_CONFIG.batch = 1


class TestTable1:
    def test_table1_has_five_layers(self):
        assert list(TABLE1_CONFIGS) == ["Conv1", "Conv2", "Conv3", "Conv4",
                                        "Conv5"]

    def test_table1_tuples_match_paper(self):
        expected = {
            "Conv1": (128, 128, 96, 11, 1),
            "Conv2": (128, 128, 96, 3, 1),
            "Conv3": (128, 32, 128, 9, 1),
            "Conv4": (128, 16, 128, 7, 1),
            "Conv5": (128, 13, 384, 3, 1),
        }
        for name, tup in expected.items():
            assert TABLE1_CONFIGS[name].tuple5 == tup


class TestSweeps:
    def test_sweep_names(self):
        assert set(SWEEPS) == {"batch", "input", "filters", "kernel", "stride"}

    def test_batch_sweep_range(self):
        cfgs = sweep_configs("batch")
        assert cfgs[0].batch == 32 and cfgs[-1].batch == 512
        assert all(c.batch % 32 == 0 for c in cfgs)
        # Only batch varies.
        assert {c.input_size for c in cfgs} == {128}

    def test_input_sweep_range(self):
        cfgs = sweep_configs("input")
        assert cfgs[0].input_size == 32 and cfgs[-1].input_size == 256
        assert len(cfgs) == 15

    def test_filter_sweep_step16(self):
        cfgs = sweep_configs("filters")
        assert all(c.filters % 16 == 0 for c in cfgs)
        assert cfgs[0].filters == 32 and cfgs[-1].filters == 512

    def test_kernel_sweep_range(self):
        ks = [c.kernel_size for c in sweep_configs("kernel")]
        assert ks == list(range(2, 14))

    def test_stride_sweep_range(self):
        ss = [c.stride for c in sweep_configs("stride")]
        assert ss == [1, 2, 3, 4]

    def test_unknown_sweep_raises(self):
        with pytest.raises(KeyError):
            sweep_configs("nope")
