"""Tests for the data-augmentation transforms."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.rng import make_rng
from repro.workloads.augment import (Compose, augmented_batches, cutout,
                                     gaussian_noise, random_crop, random_flip)


@pytest.fixture
def gen():
    return make_rng(11)


class TestRandomCrop:
    def test_output_size(self, rng, gen):
        x = rng.standard_normal((4, 3, 32, 32))
        out = random_crop(32, padding=4)(x, gen)
        assert out.shape == x.shape

    def test_crops_differ_per_image(self, gen):
        x = np.arange(2 * 1 * 16 * 16, dtype=float).reshape(2, 1, 16, 16)
        x[1] = x[0]
        out = random_crop(16, padding=4)(x, gen)
        assert not np.array_equal(out[0], out[1])

    def test_no_padding_no_change_when_exact(self, rng, gen):
        x = rng.standard_normal((2, 1, 8, 8))
        out = random_crop(8, padding=0)(x, gen)
        np.testing.assert_array_equal(out, x)

    def test_too_small_rejected(self, rng, gen):
        with pytest.raises(ShapeError):
            random_crop(64)(rng.standard_normal((1, 1, 8, 8)), gen)


class TestRandomFlip:
    def test_p1_flips_everything(self, rng, gen):
        x = rng.standard_normal((3, 2, 4, 4))
        out = random_flip(1.0)(x, gen)
        np.testing.assert_array_equal(out, x[:, :, :, ::-1])

    def test_p0_identity(self, rng, gen):
        x = rng.standard_normal((3, 2, 4, 4))
        np.testing.assert_array_equal(random_flip(0.0)(x, gen), x)

    def test_does_not_mutate_input(self, rng, gen):
        x = rng.standard_normal((3, 2, 4, 4))
        x0 = x.copy()
        random_flip(1.0)(x, gen)
        np.testing.assert_array_equal(x, x0)


class TestNoiseAndCutout:
    def test_noise_scale(self, rng, gen):
        x = np.zeros((8, 1, 16, 16))
        out = gaussian_noise(0.1)(x, gen)
        assert 0.05 < out.std() < 0.2

    def test_zero_sigma_identity(self, rng, gen):
        x = rng.standard_normal((1, 1, 4, 4))
        assert gaussian_noise(0.0)(x, gen) is x

    def test_cutout_zeroes_patch(self, gen):
        x = np.ones((2, 3, 16, 16))
        out = cutout(holes=1, length=8)(x, gen)
        assert (out == 0).any()
        assert (out == 1).any()

    def test_validation(self):
        with pytest.raises(ShapeError):
            gaussian_noise(-1.0)
        with pytest.raises(ShapeError):
            cutout(holes=0)
        with pytest.raises(ShapeError):
            random_flip(2.0)


class TestCompose:
    def test_applies_in_order(self, rng):
        x = rng.standard_normal((2, 1, 8, 8))
        pipeline = Compose([random_flip(1.0), random_flip(1.0)], rng=0)
        np.testing.assert_allclose(pipeline(x), x)  # double flip = id

    def test_deterministic_given_seed(self, rng):
        x = rng.standard_normal((4, 1, 16, 16))
        a = Compose([random_crop(16), gaussian_noise(0.1)], rng=5)(x)
        b = Compose([random_crop(16), gaussian_noise(0.1)], rng=5)(x)
        np.testing.assert_array_equal(a, b)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            Compose([])

    def test_rejects_non_batch(self, rng):
        with pytest.raises(ShapeError):
            Compose([random_flip()], rng=0)(rng.standard_normal((4, 4)))


class TestAugmentedBatches:
    def test_wraps_iterator(self, rng):
        batches = [(rng.standard_normal((4, 1, 8, 8)), np.arange(4))
                   for _ in range(3)]
        out = list(augmented_batches(batches, [gaussian_noise(0.1)], rng=0))
        assert len(out) == 3
        for (x_aug, y), (x, y_orig) in zip(out, batches):
            assert x_aug.shape == x.shape
            assert not np.array_equal(x_aug, x)
            np.testing.assert_array_equal(y, y_orig)

    def test_training_still_learns_with_augmentation(self):
        """Noise + flips on the digit task: the model still converges
        (and the pipeline plugs into the trainer unchanged)."""
        from repro.nn import SGD, Trainer
        from repro.nn.models import lenet5
        from repro.workloads import DigitDataset
        data = DigitDataset.generate(train=256, test=64, rng=7)
        model = lenet5(rng=3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.02,
                                     momentum=0.9))
        stream = augmented_batches(data.batches(32, epochs=4, rng=11),
                                   [gaussian_noise(0.05)], rng=13)
        result = trainer.fit(stream)
        assert result.losses[-1] < result.losses[0]
