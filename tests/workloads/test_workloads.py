"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.config import BASE_CONFIG
from repro.errors import ShapeError
from repro.workloads import (CIFAR10, DATASETS, IMAGENET, MNIST,
                             DigitDataset, batch_stream, conv_tensors,
                             digit_image, make_digits, random_batch)
from repro.workloads.digits import digit_glyph


class TestConvTensors:
    def test_shapes_follow_config(self):
        x, w, b = conv_tensors(BASE_CONFIG, rng=0)
        assert x.shape == BASE_CONFIG.input_shape
        assert w.shape == BASE_CONFIG.weight_shape
        assert b.shape == (BASE_CONFIG.filters,)

    def test_dtype_default_float32(self):
        x, w, b = conv_tensors(BASE_CONFIG, rng=0)
        assert x.dtype == np.float32 and w.dtype == np.float32

    def test_deterministic(self):
        x1, _, _ = conv_tensors(BASE_CONFIG, rng=5)
        x2, _, _ = conv_tensors(BASE_CONFIG, rng=5)
        np.testing.assert_array_equal(x1, x2)


class TestRandomBatch:
    def test_shapes_and_labels(self):
        x, y = random_batch(8, 3, 16, classes=5, rng=0)
        assert x.shape == (8, 3, 16, 16)
        assert y.shape == (8,)
        assert y.min() >= 0 and y.max() < 5

    def test_validation(self):
        with pytest.raises(ShapeError):
            random_batch(0, 3, 16)

    def test_stream_length(self):
        batches = list(batch_stream(5, 4, 1, 8, rng=0))
        assert len(batches) == 5


class TestDigits:
    def test_all_glyphs_distinct(self):
        glyphs = [digit_glyph(d).tobytes() for d in range(10)]
        assert len(set(glyphs)) == 10

    def test_glyph_validation(self):
        with pytest.raises(ShapeError):
            digit_glyph(10)

    def test_image_shape_and_noise(self):
        img = digit_image(3, rng=0)
        assert img.shape == (1, 32, 32)
        assert img.dtype == np.float32
        assert img.std() > 0.05

    def test_same_digit_varies(self):
        rng = np.random.default_rng(0)
        a = digit_image(7, rng)
        b = digit_image(7, rng)
        assert not np.array_equal(a, b)

    def test_make_digits_labels(self):
        x, y = make_digits(32, rng=0)
        assert x.shape == (32, 1, 32, 32)
        assert set(np.unique(y)) <= set(range(10))

    def test_dataset_batches(self):
        ds = DigitDataset.generate(train=64, test=16, rng=0)
        batches = list(ds.batches(16, epochs=2, rng=0))
        assert len(batches) == 8
        for x, y in batches:
            assert x.shape == (16, 1, 32, 32)

    def test_canvas_too_small(self):
        with pytest.raises(ShapeError):
            digit_image(1, rng=0, size=8)


class TestDatasets:
    def test_paper_statistics(self):
        """Section I quotes these corpus sizes exactly."""
        assert MNIST.train_images == 60_000 and MNIST.test_images == 10_000
        assert CIFAR10.train_images == 50_000 and CIFAR10.size == 32
        assert IMAGENET.train_images > 1_200_000

    def test_epoch_iterations(self):
        assert MNIST.epoch_iterations(100) == 600
        assert CIFAR10.epoch_iterations(128) == 391

    def test_synthetic_batch_geometry(self):
        x, y = CIFAR10.synthetic_batch(16, rng=0)
        assert x.shape == (16, 3, 32, 32)
        assert y.max() < 10

    def test_registry(self):
        assert set(DATASETS) == {"MNIST", "CIFAR-10", "ImageNet"}
