"""Public-API surface guard.

Every name each package advertises in ``__all__`` must actually exist,
and the headline entry points must be importable from the package
root — the contract the README's code snippets rely on.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.gpusim",
    "repro.conv",
    "repro.frameworks",
    "repro.nn",
    "repro.nn.models",
    "repro.core",
    "repro.workloads",
    "repro.tensor",
    "repro.obs",
    "repro.cluster",
    "repro.devices",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_names_resolve(pkg):
    mod = importlib.import_module(pkg)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{pkg}.__all__ lists missing {name!r}"


def test_readme_quickstart_symbols():
    from repro import (Advisor, BASE_CONFIG, EXPERIMENTS, K40C,
                       all_implementations, get_implementation,
                       run_experiment)
    assert BASE_CONFIG.tuple5 == (64, 128, 64, 11, 1)
    assert len(all_implementations()) == 7
    assert len(EXPERIMENTS) == 16


def test_version_string():
    import repro
    assert repro.__version__ == "1.0.0"


def test_module_docstrings_everywhere():
    """Every public module carries a docstring (deliverable: doc
    comments on every public item)."""
    import pathlib
    src = pathlib.Path(__file__).parent.parent / "src" / "repro"
    missing = []
    for path in src.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not text.strip():
            continue  # empty __init__ markers
        if not (stripped.startswith('"""') or stripped.startswith("'''")):
            missing.append(str(path.relative_to(src)))
    assert missing == [], f"modules without docstrings: {missing}"


def test_public_classes_have_docstrings():
    import inspect

    import repro.core as core
    import repro.gpusim as gpusim
    import repro.nn as nn
    for mod in (gpusim, nn, core):
        for name in mod.__all__:
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{mod.__name__}.{name} lacks a docstring"
