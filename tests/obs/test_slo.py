"""Tests for the simulated-time SLO engine (repro.obs.slo)."""

import json

import pytest

from repro.core.evalcache import reset_cache
from repro.gpusim.timing import SimClock
from repro.obs.context import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (DEFAULT_RULES, SLOMonitor, SLOPolicy, SLORule,
                           evaluate_rule, evaluate_slo, load_rules,
                           parse_rules)
from repro.obs.tracer import SimTracer
from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace


def snapshot(offered=0.0, completed=0.0, latency=None):
    """A hand-built metrics snapshot in registry export shape."""
    registry = MetricsRegistry()
    if offered:
        registry.counter("serve_requests_offered_total").inc(offered)
    if completed:
        registry.counter("serve_requests_completed_total").inc(completed)
    for value in latency or ():
        registry.histogram("serve_latency_seconds").observe(value)
    return registry.snapshot()


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            SLORule(name="x", kind="vibes", threshold=1.0)

    def test_histogram_stat_needs_metric(self):
        with pytest.raises(ValueError, match="needs a metric"):
            SLORule(name="x", kind="histogram_stat", threshold=1.0)

    def test_histogram_stat_unknown_stat_rejected(self):
        with pytest.raises(ValueError, match="unknown stat"):
            SLORule(name="x", kind="histogram_stat", threshold=1.0,
                    metric="serve_latency_seconds", stat="p123")

    def test_budget_burn_needs_positive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            SLORule(name="x", kind="error_budget_burn", threshold=1.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            SLOPolicy(window_s=0.0)
        with pytest.raises(ValueError, match="at least one rule"):
            SLOPolicy(rules=())


class TestEvaluate:
    def test_latency_rule_passes_and_fails(self):
        rule = SLORule(name="p99", kind="latency_p99", threshold=0.1)
        ok = evaluate_rule(rule, snapshot(latency=[0.05] * 10))
        assert ok.ok and ok.value == pytest.approx(0.05)
        bad = evaluate_rule(rule, snapshot(latency=[0.5] * 10))
        assert not bad.ok and bad.value == pytest.approx(0.5)
        assert ">" in bad.detail

    def test_absent_metric_is_vacuously_ok(self):
        rule = SLORule(name="p99", kind="latency_p99", threshold=0.1)
        verdict = evaluate_rule(rule, snapshot())
        assert verdict.ok
        assert verdict.value is None
        assert "vacuously" in verdict.detail

    def test_histogram_stat_general_form(self):
        rule = SLORule(name="wait", kind="histogram_stat", threshold=1.0,
                       metric="serve_queue_wait_seconds", stat="max")
        registry = MetricsRegistry()
        registry.histogram("serve_queue_wait_seconds").observe(2.0)
        assert not evaluate_rule(rule, registry.snapshot()).ok

    def test_shed_rate_from_offered_and_completed(self):
        rule = SLORule(name="shed", kind="shed_rate", threshold=0.1)
        assert evaluate_rule(rule, snapshot(offered=100, completed=95)).ok
        v = evaluate_rule(rule, snapshot(offered=100, completed=80))
        assert not v.ok
        assert v.value == pytest.approx(0.2)

    def test_shed_rate_sums_labelled_series(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests_offered_total").inc(50)
        registry.counter("serve_requests_completed_total",
                         implementation="cudnn").inc(20)
        registry.counter("serve_requests_completed_total",
                         implementation="fft").inc(30)
        rule = SLORule(name="shed", kind="shed_rate", threshold=0.01)
        assert evaluate_rule(rule, registry.snapshot()).value == 0.0

    def test_zero_offered_is_zero_shed(self):
        rule = SLORule(name="shed", kind="shed_rate", threshold=0.0)
        assert evaluate_rule(rule, snapshot()).ok

    def test_error_budget_burn(self):
        rule = SLORule(name="budget", kind="error_budget_burn",
                       threshold=1.0, budget=0.05)
        # 2% failures against a 5% budget: burn 0.4x
        v = evaluate_rule(rule, snapshot(offered=100, completed=98))
        assert v.ok and v.value == pytest.approx(0.4)
        # 10% failures: burn 2x, budget spent twice over
        v = evaluate_rule(rule, snapshot(offered=100, completed=90))
        assert not v.ok and v.value == pytest.approx(2.0)

    def test_evaluation_is_pure(self):
        snap = snapshot(offered=100, completed=90, latency=[0.3] * 5)
        blobs = [json.dumps(evaluate_slo(snap, DEFAULT_RULES).to_dict(),
                            sort_keys=True) for _ in range(2)]
        assert blobs[0] == blobs[1]
        assert snap == snapshot(offered=100, completed=90,
                                latency=[0.3] * 5)   # input untouched

    def test_report_shape(self):
        report = evaluate_slo(snapshot(offered=100, completed=50),
                              DEFAULT_RULES, source="test.json")
        assert not report.passed
        assert {v.rule.name for v in report.failing} == \
            {"shed-rate", "error-budget"}
        text = report.render()
        assert "[FAIL] shed-rate" in text
        assert "verdict: FAIL (1/3 rules ok)" in text


class TestRulesFiles:
    def test_parse_list_and_wrapper_forms(self):
        entry = {"name": "p99", "kind": "latency_p99", "threshold": 0.25}
        assert parse_rules([entry]) == parse_rules({"rules": [entry]})
        assert parse_rules([entry])[0].threshold == 0.25

    def test_empty_or_non_list_rejected(self):
        with pytest.raises(ValueError, match="non-empty list"):
            parse_rules([])
        with pytest.raises(ValueError, match="non-empty list"):
            parse_rules({"rules": "nope"})

    def test_unknown_and_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_rules([{"name": "x", "kind": "latency_p99",
                          "threshold": 1.0, "severity": "high"}])
        with pytest.raises(ValueError, match="missing keys"):
            parse_rules([{"name": "x"}])

    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "p99", "kind": "latency_p99", "threshold": 0.25},
            {"name": "shed", "kind": "shed_rate", "threshold": 0.05},
        ]}))
        rules = load_rules(str(path))
        assert [r.name for r in rules] == ["p99", "shed"]

    def test_load_rules_bad_json_names_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_rules(str(path))


class TestMonitor:
    def make_obs(self):
        return Observability(tracer=SimTracer(SimClock()),
                             registry=MetricsRegistry())

    def test_violation_and_recovery_are_edge_triggered(self):
        obs = self.make_obs()
        policy = SLOPolicy(rules=(SLORule(name="shed", kind="shed_rate",
                                          threshold=0.1),),
                           window_s=0.01)
        monitor = SLOMonitor(policy, obs)
        with obs.tracer.span("serve.run", cat="serve"):
            obs.registry.counter("serve_requests_offered_total").inc(10)
            obs.tracer.clock.advance(0.01)
            monitor.poll(obs.tracer.clock.now_s)   # 0 completed: violating
            obs.tracer.clock.advance(0.01)
            monitor.poll(obs.tracer.clock.now_s)   # still violating: no event
            obs.registry.counter(
                "serve_requests_completed_total").inc(10)
            obs.tracer.clock.advance(0.01)
            monitor.poll(obs.tracer.clock.now_s)   # recovered
        events = [e.name for e in obs.tracer.roots[0].events]
        assert events == ["slo.violation", "slo.recovered"]
        assert monitor.violations == 1
        assert obs.registry.value("slo_violations_total", rule="shed") == 1

    def test_polling_cadence_catches_up(self):
        obs = self.make_obs()
        policy = SLOPolicy(window_s=0.01)
        monitor = SLOMonitor(policy, obs)
        monitor.poll(0.055)     # one big clock jump: 5 windows due
        assert monitor.polls == 5

    def test_finalize_reports_without_emitting(self):
        obs = self.make_obs()
        obs.registry.counter("serve_requests_offered_total").inc(10)
        monitor = SLOMonitor(SLOPolicy(), obs)
        report = monitor.finalize(1.0)
        assert not report.passed
        assert monitor.violations == 0
        assert obs.registry.value("slo_violations_total",
                                  rule="shed-rate") == 0


class TestServerIntegration:
    SPEC = TrafficSpec(duration_s=0.05, rate_rps=200.0, seed=7)

    def run_server(self, slo=None):
        reset_cache()
        trace = generate_trace(self.SPEC)
        server = Server(ServerConfig(slo=slo))
        report = server.run(trace)
        return server, report

    def test_monitored_run_sets_report_and_stays_deterministic(self):
        plain, plain_stats = self.run_server()
        monitored, mon_stats = self.run_server(slo=SLOPolicy())
        assert plain.slo_report is None
        assert monitored.slo_report is not None
        assert monitored.slo_report.passed
        # monitoring must not perturb the simulation itself
        assert mon_stats.completed == plain_stats.completed
        assert monitored.clock.now_s == plain.clock.now_s

    def test_impossible_slo_fails_the_run(self):
        policy = SLOPolicy(rules=(SLORule(name="impossible",
                                          kind="latency_max",
                                          threshold=0.0),),
                           window_s=0.005)
        server, _ = self.run_server(slo=policy)
        report = server.slo_report
        assert not report.passed
        assert report.failing[0].rule.name == "impossible"
        assert server.obs.registry.value("slo_violations_total",
                                         rule="impossible") >= 1


class TestMonitorHooks:
    """The cluster-facing extensions: snapshot_fn, listener edges,
    recovery counting, and the exposed next-poll horizon."""

    def make_obs(self):
        return Observability(tracer=SimTracer(SimClock()),
                             registry=MetricsRegistry())

    def make_policy(self):
        return SLOPolicy(rules=(SLORule(name="shed", kind="shed_rate",
                                        threshold=0.1),),
                         window_s=0.01)

    def test_snapshot_fn_overrides_the_registry_view(self):
        obs = self.make_obs()
        # The registry itself stays empty: the monitor must judge the
        # injected snapshot (10 offered, 0 completed -> shed violation).
        monitor = SLOMonitor(self.make_policy(), obs,
                             snapshot_fn=lambda: snapshot(offered=10))
        monitor.poll(0.01)
        assert monitor.violations == 1

    def test_listener_sees_both_edges_in_order(self):
        obs = self.make_obs()
        views = [snapshot(offered=10), snapshot(offered=10, completed=10)]
        monitor = SLOMonitor(self.make_policy(), obs,
                             snapshot_fn=lambda: views[0])
        edges = []
        monitor._listener = lambda rule, failed, now_s, verdict: \
            edges.append((rule.name, failed, now_s))
        monitor.poll(0.01)
        views[0] = views[1]
        monitor.poll(0.02)
        assert edges == [("shed", True, 0.01), ("shed", False, 0.02)]

    def test_recoveries_counted_and_published(self):
        obs = self.make_obs()
        views = [snapshot(offered=10)]
        monitor = SLOMonitor(self.make_policy(), obs,
                             snapshot_fn=lambda: views[0])
        monitor.poll(0.01)
        views[0] = snapshot(offered=10, completed=10)
        monitor.poll(0.02)
        assert monitor.recoveries == 1
        assert obs.registry.value("slo_recoveries_total", rule="shed") == 1

    def test_in_violation_tracks_episodes(self):
        obs = self.make_obs()
        views = [snapshot(offered=10)]
        monitor = SLOMonitor(self.make_policy(), obs,
                             snapshot_fn=lambda: views[0])
        assert not monitor.in_violation
        monitor.poll(0.01)
        assert monitor.in_violation
        views[0] = snapshot(offered=10, completed=10)
        monitor.poll(0.02)
        assert not monitor.in_violation

    def test_next_poll_s_exposes_the_event_horizon(self):
        monitor = SLOMonitor(self.make_policy(), self.make_obs())
        assert monitor.next_poll_s == pytest.approx(0.01)
        monitor.poll(0.025)
        assert monitor.next_poll_s == pytest.approx(0.03)
