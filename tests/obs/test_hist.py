"""Tests for the shared percentile / summary math."""

import pytest

from repro.obs.hist import percentile, summarize


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_value(self):
        assert percentile([3.5], 99.0) == 3.5

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_endpoints(self):
        values = [1.0, 5.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_reexported_from_serve_stats(self):
        """Backward compatibility: the historical import site still
        serves the same function object."""
        from repro.serve.stats import percentile as serve_percentile
        assert serve_percentile is percentile


class TestSummarize:
    def test_empty_is_all_zeros(self):
        s = summarize([])
        assert s == {"count": 0, "sum": 0.0, "min": 0.0, "mean": 0.0,
                     "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_unsorted_input(self):
        s = summarize([3.0, 1.0, 2.0])
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == 2.0

    def test_percentiles_match_shared_math(self):
        values = list(range(100))
        s = summarize(values)
        ordered = sorted(float(v) for v in values)
        assert s["p95"] == percentile(ordered, 95.0)
        assert s["p99"] == percentile(ordered, 99.0)

    def test_single_sample_everywhere(self):
        """Every statistic of a one-sample series is that sample."""
        s = summarize([0.42])
        assert s["count"] == 1
        for key in ("min", "mean", "max", "p50", "p95", "p99"):
            assert s[key] == 0.42

    def test_duplicate_values_at_percentile_boundaries(self):
        """A run of equal values straddling a percentile rank must
        interpolate to exactly that value, not drift off it."""
        values = [1.0] * 50 + [2.0] * 50
        s = summarize(values)
        assert s["p95"] == 2.0
        assert s["p99"] == 2.0
        all_same = summarize([7.0] * 10)
        assert all_same["p50"] == all_same["p95"] == all_same["p99"] == 7.0

    def test_two_samples_interpolate(self):
        s = summarize([0.0, 1.0])
        assert s["p50"] == 0.5
        assert s["p99"] == pytest.approx(0.99)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            summarize([1.0, bad, 2.0])


class TestHistogramObserve:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_observation_rejected(self, bad):
        from repro.obs.metrics import Histogram

        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="finite"):
            h.observe(bad)
        assert h.count == 1              # the bad sample never lands

    def test_null_registry_still_swallows_everything(self):
        """The disabled path must stay allocation- and check-free."""
        from repro.obs.metrics import NULL_REGISTRY

        NULL_REGISTRY.histogram("x").observe(float("nan"))
