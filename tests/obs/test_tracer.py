"""Tests for the simulated-time span tracer."""

import pytest

from repro.gpusim.timing import SimClock
from repro.obs.tracer import NULL_TRACER, NullTracer, SimTracer


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracer(clock):
    return SimTracer(clock)


class TestSpans:
    def test_span_records_clock_interval(self, tracer, clock):
        with tracer.span("work") as sp:
            clock.advance(0.25)
        assert sp.start_s == 0.0
        assert sp.end_s == pytest.approx(0.25)
        assert sp.duration_s == pytest.approx(0.25)
        assert tracer.roots == [sp]

    def test_nesting_builds_a_tree(self, tracer, clock):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                clock.advance(0.1)
        assert outer.children == [inner]
        assert inner.parent_sid == outer.sid
        assert tracer.span_count() == 2
        assert [s.name for s in tracer.walk()] == ["outer", "inner"]

    def test_sids_are_unique_and_ordered(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        sids = [s.sid for s in tracer.walk()]
        assert len(sids) == len(set(sids))

    def test_current_tracks_the_open_span(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_annotate_merges_attrs(self, tracer):
        with tracer.span("s", cat="serve", batch=4) as sp:
            sp.annotate(hit=True, batch=8)
        assert sp.attrs == {"batch": 8, "hit": True}

    def test_exception_annotates_and_closes(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (sp,) = tracer.roots
        assert sp.attrs["error"] == "RuntimeError"
        assert sp.end_s is not None
        assert tracer.current is None

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            tracer._close(outer)


class TestEvents:
    def test_event_lands_on_open_span(self, tracer, clock):
        with tracer.span("s") as sp:
            clock.advance(0.5)
            tracer.event("fault.transient", attempt=1)
        (ev,) = sp.events
        assert ev.name == "fault.transient"
        assert ev.t_s == pytest.approx(0.5)
        assert ev.attrs == {"attempt": 1}

    def test_event_without_span_is_orphaned(self, tracer):
        tracer.event("stray")
        assert [e.name for e in tracer.orphan_events] == ["stray"]

    def test_span_event_helper(self, tracer):
        with tracer.span("s") as sp:
            sp.event("mark", detail="x")
        assert sp.events[0].attrs == {"detail": "x"}


class TestAddSpan:
    def test_pre_timed_leaf_attaches_under_current(self, tracer, clock):
        with tracer.span("dispatch") as sp:
            clock.advance(1.0)
            leaf = tracer.add_span("kernel", cat="gpu",
                                   start_s=0.2, end_s=0.4, role="GEMM")
        assert sp.children == [leaf]
        assert leaf.duration_s == pytest.approx(0.2)
        assert leaf.attrs["role"] == "GEMM"

    def test_rejects_negative_interval(self, tracer):
        with pytest.raises(ValueError):
            tracer.add_span("bad", cat="gpu", start_s=1.0, end_s=0.5)

    def test_without_open_span_becomes_root(self, tracer):
        leaf = tracer.add_span("free", cat="gpu", start_s=0.0, end_s=1.0)
        assert tracer.roots == [leaf]


class TestFind:
    def test_find_by_name(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert tracer.find("zzz") == []


class TestNullTracer:
    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_span_protocol_is_shared_noop(self):
        with NULL_TRACER.span("x", cat="serve", batch=4) as sp:
            sp.annotate(anything=1)
            sp.event("nothing")
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_records_nothing(self):
        NULL_TRACER.event("ev", key="value")
        NULL_TRACER.add_span("k", cat="gpu", start_s=0.0, end_s=1.0)
        assert NULL_TRACER.span_count() == 0
        assert list(NULL_TRACER.walk()) == []
        assert NULL_TRACER.find("ev") == []
        assert NULL_TRACER.current is None


class TestFirstSid:
    def test_default_block_starts_at_one(self, tracer):
        with tracer.span("a"):
            pass
        assert tracer.roots[0].sid == 1

    def test_offset_block_starts_at_first_sid(self, clock):
        tracer = SimTracer(clock, first_sid=500)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        sids = sorted(s.sid for s in tracer.walk())
        assert sids == [500, 501]

    def test_disjoint_blocks_merge_without_collisions(self, clock):
        low = SimTracer(clock, first_sid=1)
        high = SimTracer(clock, first_sid=100)
        for t in (low, high):
            for name in "abc":
                with t.span(name):
                    pass
        merged = [s.sid for s in low.walk()] + [s.sid for s in high.walk()]
        assert len(merged) == len(set(merged))

    def test_first_sid_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            SimTracer(clock, first_sid=0)
