"""Windowed telemetry rollups: fold/flush mechanics, exports, and the
never-perturb / exact-under-sampling invariants (repro.obs.timeseries)."""

import json

import pytest

from repro.core.evalcache import reset_cache
from repro.errors import TraceSchemaError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (TELEMETRY_SCHEMA_VERSION, Rollups,
                                  TelemetryConfig, _inject_label,
                                  load_window_log, render_openmetrics,
                                  shape_label, window_counter_total,
                                  window_log_lines, write_window_log)
from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace
from repro.serve.request import Completion, Request


def make_completion(finish_s, rid=0, model="AlexNet",
                    key=(224, 64, 3, 1, 3, 1)):
    request = Request(rid=rid, model=model, layer="conv1", key=key,
                      arrival_s=finish_s - 0.01, timeout_s=1.0)
    return Completion(request=request, start_s=finish_s - 0.005,
                      finish_s=finish_s, batch=1, fill=1,
                      implementation="cudnn")


class TestConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.window_s == 1.0 and config.alerts

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window_s"):
            TelemetryConfig(window_s=0.0)

    @pytest.mark.parametrize("field",
                             ["ring_windows", "ring_spans", "max_incidents"])
    def test_ring_bounds_validated(self, field):
        with pytest.raises(ValueError, match=field):
            TelemetryConfig(**{field: 0})


class TestShapeLabel:
    def test_format(self):
        assert shape_label((224, 64, 3, 1, 3, 1)) == "i224.f64.k3.s1.c3.p1"


class TestFoldFlush:
    def test_counter_delta_lands_in_the_window_it_ticked_in(self):
        registry = MetricsRegistry()
        rollups = Rollups(window_s=1.0)
        rollups.add_source("server", registry)
        rollups.poll(0.0)
        registry.counter("serve_sheds_total").inc(3)
        # Crossing into window 1 folds the ticks into window 0.
        rollups.poll(1.2)
        assert len(rollups.windows) == 1
        doc = rollups.windows[0]
        assert doc["index"] == 0
        assert doc["counters"]["server"]["serve_sheds_total"] == 3.0

    def test_increments_before_attach_are_not_counted(self):
        registry = MetricsRegistry()
        registry.counter("serve_sheds_total").inc(100)
        rollups = Rollups(window_s=1.0)
        rollups.add_source("server", registry)
        rollups.poll(0.0)
        rollups.poll(1.5)
        assert rollups.windows[0]["counters"] == {}

    def test_polls_within_one_window_do_not_flush(self):
        rollups = Rollups(window_s=1.0)
        rollups.poll(0.1)
        rollups.poll(0.9)
        assert rollups.windows == []

    def test_gap_windows_flush_empty(self):
        rollups = Rollups(window_s=1.0)
        rollups.poll(0.0)
        rollups.poll(3.5)
        assert [w["index"] for w in rollups.windows] == [0, 1, 2]
        assert all(w["completed"] == 0 for w in rollups.windows)

    def test_completion_bucketed_by_finish_time(self):
        rollups = Rollups(window_s=1.0)
        rollups.observe_completion(make_completion(2.4))
        rollups.poll(0.0)
        rollups.poll(3.0)
        by_index = {w["index"]: w for w in rollups.windows}
        assert by_index[2]["completed"] == 1
        assert by_index[0]["completed"] == by_index[1]["completed"] == 0
        assert rollups.completions_observed == 1

    def test_latency_dimensions(self):
        rollups = Rollups(window_s=1.0)
        rollups.observe_completion(make_completion(0.5), device="k40c@abc",
                                   replica="r0")
        rollups.finalize(1.0)
        latency = rollups.windows[0]["latency"]
        assert set(latency) == {"tenant", "shape", "device", "replica"}
        assert "AlexNet" in latency["tenant"]
        assert "i224.f64.k3.s1.c3.p1" in latency["shape"]
        assert "k40c@abc" in latency["device"]
        assert latency["replica"]["r0"]["count"] == 1

    def test_finalize_marks_trailing_window_partial(self):
        rollups = Rollups(window_s=1.0)
        rollups.observe_completion(make_completion(1.2))
        rollups.finalize(1.5)
        last = rollups.windows[-1]
        assert last["partial"] is True
        assert last["end_s"] == 1.5
        # A window the run fully covered is not marked.
        assert "partial" not in rollups.windows[0]

    def test_finalize_on_boundary_is_not_partial(self):
        rollups = Rollups(window_s=1.0)
        rollups.observe_completion(make_completion(0.5))
        rollups.finalize(1.0)
        assert len(rollups.windows) == 1
        assert "partial" not in rollups.windows[0]

    def test_qps_uses_partial_span(self):
        rollups = Rollups(window_s=1.0)
        rollups.observe_completion(make_completion(0.1))
        rollups.observe_completion(make_completion(0.2, rid=1))
        rollups.finalize(0.5)
        assert rollups.windows[0]["qps"] == pytest.approx(4.0)

    def test_probe_windowed_by_delta(self):
        stats = {"hits": 10, "misses": 2}
        rollups = Rollups(window_s=1.0)
        rollups.add_probe("plan_cache", lambda: dict(stats))
        rollups.poll(0.0)
        stats["hits"] = 25
        rollups.poll(1.1)
        doc = rollups.windows[0]
        assert doc["probes"]["plan_cache"] == {"hits": 15.0}

    def test_state_probe_recorded_as_of_flush(self):
        states = {"r0": "active"}
        rollups = Rollups(window_s=1.0)
        rollups.add_state_probe("replicas", lambda: dict(states))
        rollups.poll(0.0)
        states["r0"] = "down"
        rollups.poll(1.1)
        assert rollups.windows[0]["state"]["replicas"] == {"r0": "down"}

    def test_listeners_run_in_subscription_order(self):
        rollups = Rollups(window_s=1.0)
        order = []
        rollups.on_window(lambda doc: order.append("first"))
        rollups.on_window(lambda doc: order.append("second"))
        rollups.finalize(1.5)
        assert order == ["first", "second", "first", "second"]

    def test_counter_total_sums_all_label_sets(self):
        registry = MetricsRegistry()
        rollups = Rollups(window_s=1.0)
        rollups.add_source("server", registry)
        rollups.poll(0.0)
        registry.counter("serve_sheds_total", cause="deadline").inc(2)
        registry.counter("serve_sheds_total", cause="queue_full").inc(5)
        registry.counter("serve_requests_offered_total").inc(9)
        rollups.poll(1.1)
        assert rollups.counter_total("serve_sheds_total") == 7.0
        assert window_counter_total(rollups.windows[0],
                                    "serve_requests_offered_total") == 9.0
        assert rollups.counter_total("nope") == 0.0


class TestExports:
    def build(self):
        registry = MetricsRegistry()
        rollups = Rollups(window_s=0.5)
        rollups.add_source("server", registry, device="k40c@abc")
        rollups.poll(0.0)
        registry.counter("serve_sheds_total").inc(4)
        rollups.observe_completion(make_completion(0.25))
        rollups.finalize(0.4)
        return rollups

    def test_window_log_round_trip(self, tmp_path):
        rollups = self.build()
        path = str(tmp_path / "windows.jsonl")
        count = write_window_log(path, rollups)
        assert count == 1 + len(rollups.windows)
        header, windows = load_window_log(path)
        assert header["format"] == "repro-telemetry"
        assert header["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert header["window_s"] == 0.5
        assert windows == rollups.windows

    def test_log_lines_are_sorted_key_json(self):
        for line in window_log_lines(self.build()):
            doc = json.loads(line)
            assert line == json.dumps(doc, sort_keys=True)

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "not-telemetry", "type": "header"}\n')
        with pytest.raises(TraceSchemaError, match="not a telemetry"):
            load_window_log(str(path))

    def test_load_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "format": "repro-telemetry",
             "schema_version": TELEMETRY_SCHEMA_VERSION + 1}) + "\n")
        with pytest.raises(TraceSchemaError, match="schema_version"):
            load_window_log(str(path))

    def test_load_rejects_empty_and_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceSchemaError, match="empty"):
            load_window_log(str(empty))
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n")
        with pytest.raises(TraceSchemaError, match="JSONL"):
            load_window_log(str(garbage))

    def test_openmetrics_render(self):
        text = render_openmetrics(self.build())
        assert text.endswith("# EOF\n")
        assert 'serve_sheds_total{device="k40c@abc",source="server"} 4' \
            in text
        assert "repro_latency_seconds" in text
        # Deterministic: same state, same bytes.
        assert text == render_openmetrics(self.build())

    def test_inject_label(self):
        assert _inject_label("m_total", "source", "s") == \
            'm_total{source="s"}'
        assert _inject_label('m_total{result="hit"}', "source", "s") == \
            'm_total{source="s",result="hit"}'
        # A series already carrying the key keeps its own value (the
        # device-labeled evalcache counters must not get a second
        # device label injected).
        series = 'm_total{device="k40c@abc",result="hit"}'
        assert _inject_label(series, "device", "other@x") == series


def serve_with_telemetry(sample=None, window_s=0.01, seed=7):
    """One cold-cache serve run with rollups attached; returns the
    server (whose session state holds the rollups) and its report."""
    reset_cache()
    trace = generate_trace(TrafficSpec(duration_s=0.1, rate_rps=1500,
                                       seed=seed))
    server = Server(ServerConfig(timeout_s=0.25,
                                 telemetry=TelemetryConfig(
                                     window_s=window_s)))
    if sample is not None:
        server.enable_tracing(sample=sample)
    report = server.run(trace)
    return server, report


class TestServerIntegration:
    def test_windows_reconcile_with_report(self):
        server, report = serve_with_telemetry()
        windows = server.telemetry.windows
        assert windows
        assert sum(w["completed"] for w in windows) == report.completed
        assert server.telemetry.counter_total(
            "serve_requests_completed_total") == report.completed

    def test_telemetry_does_not_perturb_the_report(self):
        reset_cache()
        trace = generate_trace(TrafficSpec(duration_s=0.1, rate_rps=1500,
                                           seed=7))
        reset_cache()
        plain = Server(ServerConfig(timeout_s=0.25)).run(trace)
        reset_cache()
        server = Server(ServerConfig(
            timeout_s=0.25, telemetry=TelemetryConfig(window_s=0.01)))
        with_tel = server.run(trace)
        assert with_tel.to_dict() == plain.to_dict()

    def test_same_seed_window_logs_are_byte_identical(self):
        first = window_log_lines(serve_with_telemetry()[0].telemetry)
        second = window_log_lines(serve_with_telemetry()[0].telemetry)
        assert first == second

    def test_device_labels_in_window_counters(self):
        server, _ = serve_with_telemetry()
        label = server.device_label
        series = [s for w in server.telemetry.windows
                  for deltas in w["counters"].values() for s in deltas]
        assert any(f'device="{label}"' in s for s in series
                   if s.startswith("evalcache_requests_total"))
        assert any(f'device="{label}"' in s for s in series
                   if s.startswith("serve_plan_cache_requests_total"))


#: Engine-plane counters keyed to the dispatch path taken: sampled-out
#: batches ride the memoized fast path (timings replayed, no evalcache
#: access, no kernel launches), so these follow the actual path mix.
PATH_DEPENDENT = ("evalcache_", "gpusim_")


class TestExactUnderSampling:
    """Satellite invariant: --trace-sample N thins only the span
    stream; serving-plane windowed counters and latency percentiles
    stay exact at any rate."""

    def strip(self, windows):
        """Window docs minus probes and path-dependent engine
        counters — everything that must be exact under sampling."""
        stripped = []
        for w in windows:
            doc = {k: v for k, v in w.items() if k != "probes"}
            doc["counters"] = {
                source: {series: value for series, value in deltas.items()
                         if not series.startswith(PATH_DEPENDENT)}
                for source, deltas in w["counters"].items()}
            stripped.append(doc)
        return stripped

    @pytest.mark.parametrize("sample", [4, 16])
    def test_counters_and_latency_exact_at_any_rate(self, sample):
        full, full_report = serve_with_telemetry(sample=1)
        thinned, thin_report = serve_with_telemetry(sample=sample)
        assert thinned.obs.tracer.units_kept < thinned.obs.tracer.units_total
        assert self.strip(thinned.telemetry.windows) == \
            self.strip(full.telemetry.windows)
        # The report itself is byte-identical regardless of path mix.
        assert thin_report.to_dict() == full_report.to_dict()

    def test_span_free_run_matches_traced_serving_counters(self):
        traced, _ = serve_with_telemetry(sample=1)
        untraced, _ = serve_with_telemetry(sample=None)
        assert self.strip(untraced.telemetry.windows) == \
            self.strip(traced.telemetry.windows)

    def test_engine_counters_follow_the_dispatch_path(self):
        """Documenting the boundary of the invariant: a fully traced
        run sees evalcache hits where the memoized fast path would
        replay without touching the cache."""
        traced, _ = serve_with_telemetry(sample=1)
        untraced, _ = serve_with_telemetry(sample=None)
        assert traced.telemetry.counter_total("evalcache_requests_total") \
            > untraced.telemetry.counter_total("evalcache_requests_total")
