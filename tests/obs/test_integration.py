"""End-to-end observability: one serving run, one coherent span tree.

These are the PR's acceptance tests: a traced ``Server.run`` produces
a single tree covering admission → batching → plan lookup → advisor
ranking → evalcache accesses → dispatch with gpusim kernel leaves;
fault injections appear as span events; same-seed runs export
byte-identical artifacts; and the null tracer leaves the serving
outcome bit-identical to an untraced run.
"""

import json

import pytest

from repro.core.evalcache import reset_cache
from repro.faults import named_plan
from repro.obs.export import chrome_trace, write_chrome_trace, write_metrics
from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace


SPEC = TrafficSpec(duration_s=0.05, rate_rps=200.0, seed=7)


def traced_run(fault_plan=None, spec=SPEC):
    reset_cache()
    trace = generate_trace(spec)
    server = Server(ServerConfig(), fault_plan=fault_plan,
                    fault_seed=spec.seed)
    tracer = server.enable_tracing()
    report = server.run(trace)
    return server, tracer, report


@pytest.fixture(scope="module")
def run():
    return traced_run()


class TestSpanTree:
    def test_one_root_spanning_the_run(self, run):
        _, tracer, _ = run
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "serve.run"
        assert root.attrs["arrivals"] > 0

    def test_batches_nest_under_the_run(self, run):
        _, tracer, report = run
        batches = tracer.find("serve.batch")
        assert batches
        assert all(b.parent_sid == tracer.roots[0].sid for b in batches)

    def test_plan_lookup_contains_advisor_and_evalcache(self, run):
        _, tracer, _ = run
        plans = tracer.find("serve.plan")
        assert plans
        miss = next(p for p in plans if not p.attrs["hit"])
        (rank,) = miss.children
        assert rank.name == "advisor.rank"
        assert {c.name for c in rank.children} == {"evalcache.evaluate"}
        assert len(rank.children) == rank.attrs["implementations"]
        hit = next(p for p in plans if p.attrs["hit"])
        assert hit.children == []          # cache hit: no ranking inside

    def test_dispatch_has_gpusim_kernel_leaves(self, run):
        _, tracer, _ = run
        dispatches = tracer.find("serve.dispatch")
        assert dispatches
        for d in dispatches:
            leaves = [c for c in d.children if c.cat == "gpu"]
            assert leaves, f"dispatch {d.attrs} has no kernel leaves"
            # leaves tile the service window, back to back, inside it
            for leaf in leaves:
                assert leaf.start_s >= d.start_s - 1e-12
                assert leaf.end_s <= d.end_s + 1e-12
            for a, b in zip(leaves, leaves[1:]):
                assert b.start_s == pytest.approx(a.end_s)

    def test_admissions_recorded_as_events(self, run):
        _, tracer, report = run
        root = tracer.roots[0]
        admits = [e for e in root.events if e.name == "serve.admit"]
        assert len(admits) == report.offered

    def test_fault_free_run_has_no_fault_events(self, run):
        _, tracer, _ = run
        for span in tracer.walk():
            for ev in span.events:
                assert not ev.name.startswith("fault.")


class TestFaultAnnotations:
    def test_chaos_run_annotates_faults_as_span_events(self):
        spec = TrafficSpec(duration_s=1.0, rate_rps=1500.0, seed=7)
        plan = named_plan("chaos", duration_s=spec.duration_s)
        _, tracer, report = traced_run(fault_plan=plan, spec=spec)
        names = {ev.name for span in tracer.walk() for ev in span.events}
        names |= {ev.name for ev in tracer.orphan_events}
        assert "fault.transient" in names
        assert report.faults_injected > 0
        transients = [ev for span in tracer.walk() for ev in span.events
                      if ev.name == "fault.transient"]
        assert len(transients) == report.faults_injected
        # fault strikes land on the dispatch spans they hit
        dispatch_events = {ev.name for d in tracer.find("serve.dispatch")
                           for ev in d.events}
        assert "fault.transient" in dispatch_events


class TestDeterminism:
    def test_same_seed_byte_identical_exports(self, tmp_path):
        blobs = []
        for tag in ("a", "b"):
            _, tracer, _ = traced_run()
            path = tmp_path / f"trace_{tag}.json"
            write_chrome_trace(str(path), tracer, seed=SPEC.seed)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_same_seed_byte_identical_metrics(self, tmp_path):
        blobs = []
        for tag in ("a", "b"):
            server, _, _ = traced_run()
            path = tmp_path / f"metrics_{tag}.json"
            write_metrics(str(path), server.obs.registry)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_tracing_never_changes_the_report(self):
        reset_cache()
        trace = generate_trace(SPEC)
        plain = Server(ServerConfig()).run(trace)
        _, _, traced = traced_run()
        assert traced.to_dict() == plain.to_dict()

    def test_registry_counters_match_report(self, run):
        server, _, report = run
        registry = server.obs.registry
        assert registry.value("serve_requests_offered_total") == \
            report.offered
        assert registry.value("serve_requests_completed_total") == \
            report.completed


class TestUnifiedTimeline:
    def test_serving_and_gpu_rows_in_one_document(self, run):
        server, tracer, _ = run
        doc = chrome_trace(tracer, server.obs.registry)
        pids = {e["pid"] for e in doc["traceEvents"]
                if e.get("ph") == "X"}
        assert pids == {1, 2}              # serve + gpusim processes
        assert json.dumps(doc, sort_keys=True)  # JSON-serialisable
        assert doc["otherData"]["metrics"]["counters"][
            "serve_requests_offered_total"] > 0
