"""Multi-window burn-rate alerting (repro.obs.alerts)."""

import json

import pytest

from repro.gpusim.timing import SimClock
from repro.obs.alerts import (ALERT_LOG_FORMAT, DEFAULT_ALERT_RULES,
                              AlertManager, AlertRule, alert_log_lines,
                              write_alert_log)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Rollups
from repro.obs.tracer import SimTracer


def window(index, counters, window_s=1.0):
    """Hand-built window document with one source's counter deltas."""
    return {"type": "window", "index": index, "start_s": index * window_s,
            "end_s": (index + 1) * window_s, "completed": 0, "qps": 0.0,
            "counters": {"fleet": counters}, "probes": {}, "latency": {}}


class Pipeline:
    """A rollups pipeline driven by hand: tick counters, cross a
    window boundary, observe the alert verdicts."""

    def __init__(self, rules, window_s=1.0, tracer=None, listener=None):
        self.registry = MetricsRegistry()
        self.rollups = Rollups(window_s=window_s)
        self.rollups.add_source("fleet", self.registry)
        self.manager = AlertManager(rules, self.rollups, tracer=tracer,
                                    listener=listener)
        self.rollups.poll(0.0)
        self._windows_done = 0

    def step(self, bad=0, total=0):
        """One window's traffic, then the boundary poll that flushes it."""
        if bad:
            self.registry.counter("serve_sheds_total").inc(bad)
        if total:
            self.registry.counter("serve_requests_offered_total").inc(total)
        self._windows_done += 1
        self.rollups.poll(self._windows_done * self.rollups.window_s + 1e-9)


class TestRuleValidation:
    def test_needs_bad_metrics(self):
        with pytest.raises(ValueError, match="no bad metrics"):
            AlertRule(name="x", bad=())

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="fast_windows"):
            AlertRule(name="x", bad=("m",), fast_windows=3, slow_windows=2)
        with pytest.raises(ValueError, match="fast_windows"):
            AlertRule(name="x", bad=("m",), fast_windows=0)

    def test_positive_threshold_and_budget(self):
        with pytest.raises(ValueError, match="positive"):
            AlertRule(name="x", bad=("m",), threshold=0.0)
        with pytest.raises(ValueError, match="positive"):
            AlertRule(name="x", bad=("m",), total=("t",), budget=0.0)

    def test_default_rules_are_valid(self):
        assert [r.name for r in DEFAULT_ALERT_RULES] == \
            ["error-budget-burn", "shed-rate", "suspicion-churn"]


class TestRuleValue:
    RULE = AlertRule(name="burn", bad=("serve_sheds_total",),
                     total=("serve_requests_offered_total",),
                     budget=0.05, threshold=1.0, min_events=10)

    def test_burn_rate_math(self):
        # 10 bad / 100 total = 10% shed against a 5% budget → burn 2.0.
        docs = [window(0, {"serve_sheds_total": 10.0,
                           "serve_requests_offered_total": 100.0})]
        assert self.RULE.value(docs, 1, 1.0) == pytest.approx(2.0)

    def test_lookback_spans_windows(self):
        docs = [window(0, {"serve_sheds_total": 10.0,
                           "serve_requests_offered_total": 100.0}),
                window(1, {"serve_requests_offered_total": 100.0})]
        # Over both windows: 10/200 = 5% = exactly one budget.
        assert self.RULE.value(docs, 2, 1.0) == pytest.approx(1.0)

    def test_abstains_below_min_events(self):
        docs = [window(0, {"serve_sheds_total": 1.0,
                           "serve_requests_offered_total": 5.0})]
        assert self.RULE.value(docs, 1, 1.0) is None

    def test_abstains_on_empty_tail(self):
        assert self.RULE.value([], 1, 1.0) is None

    def test_plain_event_rate_without_total(self):
        rule = AlertRule(name="churn", bad=("serve_sheds_total",),
                         threshold=0.5)
        docs = [window(0, {"serve_sheds_total": 3.0}),
                window(1, {})]
        assert rule.value(docs, 2, 0.5) == pytest.approx(3.0)

    def test_bad_metrics_summed_across_names_and_labels(self):
        rule = AlertRule(name="churn", bad=("a_total", "b_total"),
                         threshold=0.5)
        docs = [window(0, {'a_total{x="1"}': 2.0, 'a_total{x="2"}': 3.0,
                           "b_total": 1.0})]
        assert rule.value(docs, 1, 1.0) == pytest.approx(6.0)


class TestManagerEdges:
    RULES = (AlertRule(name="burn", bad=("serve_sheds_total",),
                       total=("serve_requests_offered_total",),
                       budget=0.05, threshold=1.0,
                       fast_windows=1, slow_windows=2),)

    def test_fires_only_when_fast_and_slow_agree(self):
        pipe = Pipeline(self.RULES)
        pipe.step(bad=0, total=100)     # clean history
        pipe.step(bad=50, total=100)    # fast hot, slow = 50/200 = 5x
        assert pipe.manager.firing == ["burn"]
        events = pipe.manager.events
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["rule"] == "burn" and events[0]["window"] == 1

    def test_slow_window_suppresses_a_blip(self):
        # One hot window against a long clean history: slow lookback
        # stays under threshold, no alert.
        rules = (AlertRule(name="burn", bad=("serve_sheds_total",),
                           total=("serve_requests_offered_total",),
                           budget=0.05, threshold=4.0,
                           fast_windows=1, slow_windows=4),)
        pipe = Pipeline(rules)
        for _ in range(3):
            pipe.step(bad=0, total=100)
        pipe.step(bad=25, total=100)    # fast burn 5x, slow 25/400 → 1.25x
        assert pipe.manager.firing == []
        assert pipe.manager.events == []

    def test_resolves_on_fast_recovery(self):
        pipe = Pipeline(self.RULES)
        pipe.step(bad=50, total=100)
        pipe.step(bad=50, total=100)
        assert pipe.manager.firing == ["burn"]
        pipe.step(bad=0, total=100)
        assert pipe.manager.firing == []
        assert [e["state"] for e in pipe.manager.events] == \
            ["firing", "resolved"]

    def test_windows_stamped_with_active_alerts(self):
        pipe = Pipeline(self.RULES)
        pipe.step(bad=50, total=100)
        pipe.step(bad=50, total=100)
        pipe.step(bad=0, total=100)
        assert [w["alerts"] for w in pipe.rollups.windows] == \
            [["burn"], ["burn"], []]

    def test_report_counts(self):
        pipe = Pipeline(self.RULES)
        pipe.step(bad=50, total=100)
        pipe.step(bad=50, total=100)
        pipe.step(bad=0, total=100)
        report = pipe.manager.report()
        assert report["events"] == 2
        rule = report["rules"]["burn"]
        assert rule == {"active": False, "fired": 1, "windows_firing": 2}

    def test_edge_events_reach_tracer_and_listener(self):
        tracer = SimTracer(SimClock())
        edges = []
        pipe = Pipeline(self.RULES, tracer=lambda: tracer,
                        listener=lambda rule, firing, doc:
                            edges.append((rule.name, firing, doc["index"])))
        pipe.step(bad=50, total=100)
        pipe.step(bad=0, total=100)
        assert edges == [("burn", True, 0), ("burn", False, 1)]
        names = [e.name for e in tracer.orphan_events]
        assert names == ["alert.firing", "alert.resolved"]

    def test_abstaining_rule_never_fires(self):
        rules = (AlertRule(name="burn", bad=("serve_sheds_total",),
                           total=("serve_requests_offered_total",),
                           min_events=1000, threshold=1.0,
                           fast_windows=1, slow_windows=1),)
        pipe = Pipeline(rules)
        pipe.step(bad=50, total=100)
        assert pipe.manager.firing == []


class TestAlertLog:
    def test_log_round_trip(self, tmp_path):
        pipe = Pipeline(TestManagerEdges.RULES)
        pipe.step(bad=50, total=100)
        pipe.step(bad=50, total=100)
        pipe.step(bad=0, total=100)
        path = str(tmp_path / "alerts.jsonl")
        count = write_alert_log(path, pipe.manager)
        lines = open(path).read().splitlines()
        assert count == len(lines) == 3
        header = json.loads(lines[0])
        assert header["format"] == ALERT_LOG_FORMAT
        assert header["rules"] == ["burn"]
        records = [json.loads(line) for line in lines[1:]]
        assert records == pipe.manager.events

    def test_lines_are_sorted_key_json(self):
        pipe = Pipeline(TestManagerEdges.RULES)
        pipe.step(bad=50, total=100)
        for line in alert_log_lines(pipe.manager):
            assert line == json.dumps(json.loads(line), sort_keys=True)
