"""Tests for trace diff / regression attribution (repro.obs.diff)."""

import json

import pytest

from repro.core.evalcache import reset_cache
from repro.faults import named_plan
from repro.obs.analyze import from_tracer, parse_jsonl
from repro.obs.diff import diff_runs, diff_traces, profile_run
from repro.obs.export import jsonl_lines
from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace


SPEC = TrafficSpec(duration_s=0.05, rate_rps=200.0, seed=7)


def traced_run(fault_plan=None, spec=SPEC):
    reset_cache()
    trace = generate_trace(spec)
    server = Server(ServerConfig(), fault_plan=fault_plan,
                    fault_seed=spec.seed)
    tracer = server.enable_tracing()
    server.run(trace)
    return tracer


@pytest.fixture(scope="module")
def baseline():
    return from_tracer(traced_run())


class TestProfile:
    def test_paths_are_implementation_labelled(self, baseline):
        profile = profile_run(baseline)
        dispatch = [p for p in profile.paths if "serve.dispatch[" in p]
        assert dispatch, sorted(profile.paths)
        assert profile.batch_count > 0
        assert profile.arrivals > 0
        assert profile.plan_hits + profile.plan_misses > 0

    def test_gpu_roles_keyed_by_impl_and_role(self, baseline):
        profile = profile_run(baseline)
        assert profile.gpu_roles
        for key, (count, secs) in profile.gpu_roles.items():
            impl, role = key.split("/", 1)
            assert impl != "(unattributed)"
            assert count > 0 and secs >= 0.0, (key, count, secs)


class TestIdenticalRuns:
    def test_same_seed_runs_diff_to_identical(self, baseline):
        other = from_tracer(traced_run())
        diff = diff_traces(baseline, other)
        assert diff.identical
        assert diff.deltas == ()
        assert diff.findings == ()
        assert diff.d_duration_s == 0.0

    def test_identical_render_says_so(self, baseline):
        diff = diff_traces(baseline, from_tracer(traced_run()))
        assert "runs are identical: zero deltas, zero findings" \
            in diff.render()

    def test_jsonl_round_trip_stays_identical(self, baseline):
        reloaded = parse_jsonl(jsonl_lines(traced_run()), source="reload")
        assert diff_traces(baseline, reloaded).identical

    def test_self_diff_is_identical(self, baseline):
        assert diff_traces(baseline, baseline).identical


class TestChaosAttribution:
    @pytest.fixture(scope="class")
    def chaos_pair(self):
        spec = TrafficSpec(duration_s=1.0, rate_rps=1500.0, seed=7)
        plan = named_plan("chaos", duration_s=spec.duration_s)
        quiet = from_tracer(traced_run(spec=spec))
        chaos = from_tracer(traced_run(fault_plan=plan, spec=spec))
        return quiet, chaos

    def test_chaos_twin_is_not_identical(self, chaos_pair):
        quiet, chaos = chaos_pair
        diff = diff_traces(quiet, chaos)
        assert not diff.identical
        assert diff.deltas

    def test_slowdown_attributed_to_fault_events(self, chaos_pair):
        quiet, chaos = chaos_pair
        diff = diff_traces(quiet, chaos)
        causes = [f.cause for f in diff.findings]
        assert "fault_injections" in causes
        fault = next(f for f in diff.findings
                     if f.cause == "fault_injections")
        assert fault.magnitude_s > 0.0
        assert fault.evidence["candidate_events"].get("fault.transient",
                                                      0) > 0
        # fault handling dominates the attribution for a chaos twin
        assert causes[0] == "fault_injections"

    def test_findings_ranked_by_magnitude(self, chaos_pair):
        quiet, chaos = chaos_pair
        mags = [f.magnitude_s for f in diff_traces(quiet, chaos).findings]
        assert mags == sorted(mags, reverse=True)


class TestWorkloadChange:
    def test_different_load_flagged_not_like_for_like(self, baseline):
        other_spec = TrafficSpec(duration_s=0.05, rate_rps=400.0, seed=7)
        other = from_tracer(traced_run(spec=other_spec))
        diff = diff_traces(baseline, other)
        causes = {f.cause for f in diff.findings}
        assert "workload_change" in causes
        wl = next(f for f in diff.findings if f.cause == "workload_change")
        assert wl.evidence["d_arrivals"] != 0


class TestDeterminism:
    def test_to_dict_is_reproducible(self, baseline):
        spec = TrafficSpec(duration_s=0.05, rate_rps=400.0, seed=11)
        blobs = []
        for _ in range(2):
            cand = from_tracer(traced_run(spec=spec))
            diff = diff_runs(profile_run(baseline), profile_run(cand))
            blobs.append(json.dumps(diff.to_dict(), sort_keys=True))
        assert blobs[0] == blobs[1]

    def test_deltas_sorted_by_impact(self, baseline):
        spec = TrafficSpec(duration_s=0.05, rate_rps=400.0, seed=7)
        diff = diff_traces(baseline, from_tracer(traced_run(spec=spec)))
        impacts = [abs(d.d_total_s) for d in diff.deltas]
        assert impacts == sorted(impacts, reverse=True)
