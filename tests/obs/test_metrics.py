"""Tests for the labeled metrics registry."""

import json

import pytest

from repro.obs.metrics import (MetricsRegistry, NULL_REGISTRY, NullRegistry)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("serve_retries_total")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_same_name_same_series(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_labels_split_series(self, registry):
        registry.counter("serve_sheds_total", cause="timeout").inc(2)
        registry.counter("serve_sheds_total", cause="memory").inc()
        assert registry.value("serve_sheds_total", cause="timeout") == 2
        assert registry.value("serve_sheds_total", cause="memory") == 1

    def test_negative_increment_raises(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x_total").inc(-1)

    def test_set_adopts_external_total(self, registry):
        c = registry.counter("adopted_total")
        c.set(17)
        assert c.value == 17


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("queue_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_snapshot_summarises(self, registry):
        h = registry.histogram("latency_seconds")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        s = h.snapshot_value()
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(0.2)
        assert h.count == 3
        assert h.sum == pytest.approx(0.6)


class TestKindSafety:
    def test_kind_mismatch_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("thing")


class TestQueries:
    def test_value_of_untouched_series_is_zero(self, registry):
        assert registry.value("never_seen_total") == 0

    def test_series_lists_all_label_sets_sorted(self, registry):
        registry.counter("n_total", impl="cudnn").inc()
        registry.counter("n_total", impl="caffe").inc(2)
        registry.counter("other_total").inc()
        series = registry.series("n_total")
        assert [labels for labels, _ in series] == [
            {"impl": "caffe"}, {"impl": "cudnn"}]

    def test_len_counts_series(self, registry):
        registry.counter("a_total")
        registry.counter("a_total", k="v")
        registry.gauge("b")
        assert len(registry) == 3


class TestSnapshot:
    def test_shape_and_determinism(self, registry):
        registry.counter("z_total").inc()
        registry.counter("a_total", cause="x").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert list(snap["counters"]) == ['a_total{cause="x"}', "z_total"]
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        # identical mutations in a different order → identical bytes
        other = MetricsRegistry()
        other.histogram("h").observe(0.5)
        other.gauge("g").set(1.5)
        other.counter("a_total", cause="x").inc(2)
        other.counter("z_total").inc()
        assert json.dumps(snap, sort_keys=True) == \
            json.dumps(other.snapshot(), sort_keys=True)

    def test_render_one_line_per_series(self, registry):
        registry.counter("a_total").inc()
        registry.histogram("h").observe(1.0)
        text = registry.render()
        assert "a_total" in text
        assert "count=1" in text
        assert len(text.splitlines()) == 2


class TestNullRegistry:
    def test_all_calls_are_noops(self):
        NULL_REGISTRY.counter("x", k="v").inc(5)
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.value("x", k="v") == 0
        assert NULL_REGISTRY.series("x") == []
        assert NULL_REGISTRY.snapshot() == {"counters": {}, "gauges": {},
                                            "histograms": {}}
        assert NULL_REGISTRY.render() == ""

    def test_shared_metric_object(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.histogram("b")
        assert isinstance(NULL_REGISTRY, NullRegistry)


class TestContext:
    def test_default_context_is_null(self):
        from repro.obs.context import NULL_OBS, get_obs
        assert get_obs() is NULL_OBS
        assert NULL_OBS.tracing is False

    def test_obs_session_installs_and_restores(self):
        from repro.obs.context import (NULL_OBS, Observability, get_obs,
                                       obs_session)
        obs = Observability()
        with obs_session(obs):
            assert get_obs() is obs
        assert get_obs() is NULL_OBS

    def test_session_restores_on_exception(self):
        from repro.obs.context import NULL_OBS, Observability, get_obs, \
            obs_session
        with pytest.raises(RuntimeError):
            with obs_session(Observability()):
                raise RuntimeError("boom")
        assert get_obs() is NULL_OBS

    def test_default_observability_has_real_registry(self):
        """Serving default: tracing off, but a live registry (the
        serving stats are a view over it)."""
        from repro.obs.context import Observability
        obs = Observability()
        assert obs.tracing is False
        assert isinstance(obs.registry, MetricsRegistry)
