"""Tests for the Chrome-trace / JSONL / metrics exporters."""

import json

import pytest

from repro.gpusim.timing import SimClock
from repro.obs.export import (chrome_trace, ensure_monotonic, jsonl_lines,
                              metadata_events, sort_events, span_events,
                              write_chrome_trace, write_jsonl, write_metrics)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SimTracer


@pytest.fixture
def traced():
    """A small mixed-category span forest."""
    clock = SimClock()
    tracer = SimTracer(clock)
    with tracer.span("serve.run", cat="serve"):
        with tracer.span("serve.batch", cat="serve", fill=2):
            clock.advance(0.001)
            tracer.event("fault.transient", attempt=1)
            clock.advance(0.001)
            tracer.add_span("sgemm_fwd", cat="gpu",
                            start_s=0.001, end_s=0.0015, role="GEMM")
        clock.advance(0.001)
    return tracer


class TestSpanEvents:
    def test_spans_become_complete_events(self, traced):
        events = span_events(traced)
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"serve.run", "serve.batch",
                                           "sgemm_fwd"}

    def test_categories_map_to_rows(self, traced):
        events = span_events(traced)
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["serve.run"]["pid"] == 1
        assert by_name["sgemm_fwd"]["pid"] == 2

    def test_span_events_become_instants(self, traced):
        instants = [e for e in span_events(traced) if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["fault.transient"]
        assert instants[0]["args"] == {"attempt": 1}

    def test_timestamps_in_microseconds(self, traced):
        by_name = {e["name"]: e for e in span_events(traced)
                   if e["ph"] == "X"}
        assert by_name["sgemm_fwd"]["ts"] == pytest.approx(1000.0)
        assert by_name["sgemm_fwd"]["dur"] == pytest.approx(500.0)


class TestOrdering:
    def test_sort_events_puts_enclosing_span_first(self):
        events = [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0,
             "name": "child"},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 5.0,
             "name": "parent"},
        ]
        assert [e["name"] for e in sort_events(events)] == \
            ["parent", "child"]

    def test_ensure_monotonic_nudges_collisions(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "ts": 1.0, "dur": 0.0},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 1.0, "dur": 0.0},
            {"ph": "X", "pid": 0, "tid": 2, "ts": 1.0, "dur": 0.0},
        ]
        out = ensure_monotonic(events)
        row1 = [e["ts"] for e in out if e["tid"] == 1]
        assert row1[1] > row1[0]
        # other rows are independent
        assert [e["ts"] for e in out if e["tid"] == 2] == [1.0]

    def test_ensure_monotonic_keeps_metadata_in_front(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "ts": 1.0, "dur": 0.0},
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "p"}},
        ]
        assert ensure_monotonic(events)[0]["ph"] == "M"


class TestMetadata:
    def test_rows_named(self):
        events = metadata_events({1: ("serve", {1: "scheduler"}),
                                  2: ("gpusim", {1: "compute"})})
        names = [(e["name"], e["args"]["name"]) for e in events]
        assert ("process_name", "serve") in names
        assert ("thread_name", "compute") in names


class TestChromeTrace:
    def test_document_shape(self, traced):
        doc = chrome_trace(traced, seed=7)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["seed"] == 7
        assert doc["otherData"]["spans"] == 3
        assert doc["otherData"]["events"] == 1
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta
                if e["name"] == "process_name"} == {"serve", "gpusim"}

    def test_registry_snapshot_embedded(self, traced):
        registry = MetricsRegistry()
        registry.counter("serve_retries_total").inc(2)
        doc = chrome_trace(traced, registry)
        assert doc["otherData"]["metrics"]["counters"][
            "serve_retries_total"] == 2

    def test_write_round_trips_and_is_deterministic(self, traced, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        text1 = write_chrome_trace(str(p1), traced, seed=7)
        text2 = write_chrome_trace(str(p2), traced, seed=7)
        assert p1.read_text() == p2.read_text()
        assert text1 == text2
        doc = json.loads(p1.read_text())
        assert doc["otherData"]["spans"] == 3


class TestJsonl:
    def test_header_record_first(self, traced):
        from repro.obs.export import SCHEMA_VERSION

        head = json.loads(jsonl_lines(traced)[0])
        assert head == {"type": "header", "format": "repro-trace",
                        "schema_version": SCHEMA_VERSION}

    def test_one_line_per_span_and_event(self, traced):
        lines = jsonl_lines(traced)
        parsed = [json.loads(line) for line in lines]
        assert sum(1 for d in parsed if d["type"] == "span") == 3
        assert sum(1 for d in parsed if d["type"] == "event") == 1

    def test_parent_links_preserved(self, traced):
        parsed = [json.loads(line) for line in jsonl_lines(traced)]
        by_name = {d["name"]: d for d in parsed if d["type"] == "span"}
        assert by_name["serve.run"]["parent"] is None
        assert by_name["serve.batch"]["parent"] == \
            by_name["serve.run"]["sid"]

    def test_write_returns_line_count(self, traced, tmp_path):
        path = tmp_path / "events.jsonl"
        n = write_jsonl(str(path), traced)
        assert n == 5                      # header + 3 spans + 1 event
        assert len(path.read_text().splitlines()) == 5


class TestMetricsSnapshotRoundTrip:
    def test_schema_version_round_trips(self, tmp_path):
        from repro.obs.export import SCHEMA_VERSION, load_metrics_snapshot

        registry = MetricsRegistry()
        registry.counter("serve_requests_offered_total").inc(5)
        path = tmp_path / "metrics.json"
        write_metrics(str(path), registry)
        doc = load_metrics_snapshot(str(path))
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["counters"]["serve_requests_offered_total"] == 5

    def test_unknown_version_rejected(self, tmp_path):
        from repro.errors import TraceSchemaError
        from repro.obs.export import load_metrics_snapshot

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(
            {"counters": {}, "gauges": {}, "histograms": {},
             "schema_version": 99}))
        with pytest.raises(TraceSchemaError, match="schema_version"):
            load_metrics_snapshot(str(path))

    def test_preversioning_snapshot_loads(self, tmp_path):
        from repro.obs.export import load_metrics_snapshot

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(
            {"counters": {"a_total": 1}, "gauges": {}, "histograms": {}}))
        assert load_metrics_snapshot(str(path))["counters"]["a_total"] == 1

    def test_chrome_trace_embedded_snapshot_loads(self, traced, tmp_path):
        from repro.obs.export import load_metrics_snapshot

        registry = MetricsRegistry()
        registry.counter("serve_retries_total").inc(2)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced, registry)
        doc = load_metrics_snapshot(str(path))
        assert doc["counters"]["serve_retries_total"] == 2

    def test_not_a_snapshot_rejected(self, tmp_path):
        from repro.errors import TraceSchemaError
        from repro.obs.export import load_metrics_snapshot

        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TraceSchemaError, match="not a metrics snapshot"):
            load_metrics_snapshot(str(path))


class TestMetricsExport:
    def test_write_metrics_sorted_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc(2)
        path = tmp_path / "metrics.json"
        write_metrics(str(path), registry)
        doc = json.loads(path.read_text())
        assert list(doc["counters"]) == ["a_total", "b_total"]
