"""Tests for the offline trace analytics (repro.obs.analyze)."""

import json

import pytest

from repro.config import BASE_CONFIG
from repro.core.evalcache import evaluate, reset_cache
from repro.core.hotspot_kernels import CANONICAL_ROLES, hotspot_kernel_analysis
from repro.errors import TraceSchemaError
from repro.frameworks.registry import get_implementation
from repro.gpusim.device import K40C
from repro.gpusim.timing import SimClock
from repro.obs.analyze import (analyze_run, critical_path, fault_census,
                               from_tracer, hotspot_shares, hotspot_table,
                               load_jsonl, parse_jsonl, reconcile_hotspots,
                               span_aggregates)
from repro.obs.export import jsonl_lines, write_jsonl
from repro.obs.tracer import SimTracer
from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace


SPEC = TrafficSpec(duration_s=0.05, rate_rps=200.0, seed=7)


def traced_run(fault_plan=None, spec=SPEC):
    reset_cache()
    trace = generate_trace(spec)
    server = Server(ServerConfig(), fault_plan=fault_plan,
                    fault_seed=spec.seed)
    tracer = server.enable_tracing()
    server.run(trace)
    return tracer


@pytest.fixture(scope="module")
def run():
    """One serving trace, reloaded through the JSONL round trip."""
    return parse_jsonl(jsonl_lines(traced_run()), source="fixture")


def small_tracer():
    clock = SimClock()
    tracer = SimTracer(clock)
    with tracer.span("root", cat="serve"):
        with tracer.span("short", cat="serve"):
            clock.advance(0.010)
        with tracer.span("long", cat="serve"):
            clock.advance(0.020)
            with tracer.span("leaf", cat="gpu", role="GEMM"):
                pass
        clock.advance(0.005)
    return tracer


class TestLoading:
    def test_round_trip_preserves_tree(self, run):
        live = from_tracer(traced_run())
        assert run.span_count() == live.span_count()
        assert run.duration_s == pytest.approx(live.duration_s)
        assert [s.name for s in run.walk()] == [s.name for s in live.walk()]

    def test_load_jsonl_from_disk(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(str(path), traced_run())
        run = load_jsonl(str(path))
        assert run.source == str(path)
        assert run.span_count() > 0

    def test_bad_json_rejected(self):
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            parse_jsonl(["{nope"])

    def test_record_without_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="no 'type'"):
            parse_jsonl(['{"sid": 1}'])

    def test_unknown_record_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown record type"):
            parse_jsonl(['{"type": "mystery"}'])

    def test_duplicate_sid_rejected(self):
        span = json.dumps({"type": "span", "sid": 1, "parent": None,
                           "name": "a", "cat": "serve",
                           "start_s": 0.0, "end_s": 1.0, "attrs": {}})
        with pytest.raises(TraceSchemaError, match="duplicate span sid"):
            parse_jsonl([span, span])

    def test_dangling_event_reference_rejected(self):
        ev = json.dumps({"type": "event", "span": 42, "name": "x",
                         "t_s": 0.0, "attrs": {}})
        with pytest.raises(TraceSchemaError, match="unknown span 42"):
            parse_jsonl([ev])

    def test_unsupported_schema_version_rejected(self):
        header = json.dumps({"type": "header", "format": "repro-trace",
                             "schema_version": 99})
        with pytest.raises(TraceSchemaError, match="schema_version 99"):
            parse_jsonl([header])

    def test_header_not_first_rejected(self):
        span = json.dumps({"type": "span", "sid": 1, "parent": None,
                           "name": "a", "cat": "serve",
                           "start_s": 0.0, "end_s": 1.0, "attrs": {}})
        header = json.dumps({"type": "header", "schema_version": 1})
        with pytest.raises(TraceSchemaError, match="first record"):
            parse_jsonl([span, header])

    def test_legacy_log_without_header_loads_as_v1(self):
        span = json.dumps({"type": "span", "sid": 1, "parent": None,
                           "name": "a", "cat": "serve",
                           "start_s": 0.0, "end_s": 1.0, "attrs": {}})
        run = parse_jsonl([span])
        assert run.schema_version == 1
        assert run.span_count() == 1


class TestCriticalPath:
    def test_descends_into_dominant_child(self):
        run = from_tracer(small_tracer())
        steps = critical_path(run.roots[0])
        assert [s.name for s in steps] == ["root", "long", "leaf"]
        assert steps[0].duration_s == pytest.approx(0.035)
        assert steps[0].self_s == pytest.approx(0.005)

    def test_tie_breaks_on_earliest_start(self):
        clock = SimClock()
        tracer = SimTracer(clock)
        with tracer.span("root", cat="serve"):
            with tracer.span("first", cat="serve"):
                clock.advance(0.010)
            with tracer.span("second", cat="serve"):
                clock.advance(0.010)
        steps = critical_path(from_tracer(tracer).roots[0])
        assert [s.name for s in steps] == ["root", "first"]


class TestAggregates:
    def test_self_time_excludes_children(self):
        stats = {s.name: s for s in span_aggregates(from_tracer(
            small_tracer()))}
        assert stats["root"].total_s == pytest.approx(0.035)
        assert stats["root"].self_s == pytest.approx(0.005)
        assert stats["long"].self_s == pytest.approx(0.020)

    def test_sorted_longest_first(self, run):
        stats = span_aggregates(run)
        totals = [s.total_s for s in stats]
        assert totals == sorted(totals, reverse=True)
        assert stats[0].name == "serve.run"


class TestHotspots:
    def test_leaves_attributed_to_dispatch_implementation(self, run):
        table = hotspot_table(run)
        assert table
        assert "(unattributed)" not in table
        for roles in table.values():
            assert all(t >= 0 for t in roles.values())

    def test_shares_sum_to_one(self, run):
        for impl, shares in hotspot_shares(hotspot_table(run)).items():
            assert sum(shares.values()) == pytest.approx(1.0), impl

    def test_roles_reconcile_with_canonical_taxonomy(self, run):
        rec = reconcile_hotspots(hotspot_table(run))
        assert rec["taxonomy_ok"], rec["unknown_roles"]
        assert rec["canonical_roles"] == list(CANONICAL_ROLES)

    def test_unknown_role_flagged(self):
        rec = reconcile_hotspots({"x": {"warp drive": 1.0}})
        assert not rec["taxonomy_ok"]
        assert rec["unknown_roles"] == ["warp drive"]

    def test_trace_shares_match_fig4_breakdown(self):
        """A trace built from one implementation's kernel plan must
        reproduce the paper pipeline's Fig. 4 role shares exactly —
        the two derivations read the same kernels."""
        reset_cache()
        impl = get_implementation("cudnn")
        record = evaluate(impl, BASE_CONFIG, K40C)
        tracer = SimTracer(SimClock())
        with tracer.span("serve.dispatch", cat="serve",
                         implementation=impl.paper_name):
            t = 0.0
            for k in record.kernels:
                spec = getattr(k, "spec", None)
                name = spec.name if spec is not None else k.name
                role = spec.role.value if spec is not None else k.role
                tracer.add_span(name, cat="gpu", start_s=t,
                                end_s=t + k.time_s, role=role)
                t += k.time_s
        shares = hotspot_shares(hotspot_table(from_tracer(tracer)))
        (breakdown,) = hotspot_kernel_analysis(BASE_CONFIG,
                                               implementations=[impl])
        assert set(shares[impl.paper_name]) == set(breakdown.role_shares)
        for role, share in breakdown.role_shares.items():
            assert shares[impl.paper_name][role] == pytest.approx(share)


class TestFaultCensus:
    def test_fault_free_run_has_no_fault_time(self, run):
        events, fault_time = fault_census(run)
        assert fault_time == 0.0
        assert not any(name.startswith("fault.") for name in events)

    def test_chaos_run_attributes_fault_time(self):
        from repro.faults import named_plan

        spec = TrafficSpec(duration_s=1.0, rate_rps=1500.0, seed=7)
        plan = named_plan("chaos", duration_s=spec.duration_s)
        run = from_tracer(traced_run(fault_plan=plan, spec=spec))
        events, fault_time = fault_census(run)
        assert events.get("fault.transient", 0) > 0
        assert fault_time > 0.0


class TestAnalyzeRun:
    def test_full_analysis_shape(self, run):
        analysis = analyze_run(run)
        assert analysis.span_count == run.span_count()
        assert analysis.critical[0].name == "serve.run"
        assert analysis.plan_lookups["hits"] + \
            analysis.plan_lookups["misses"] > 0
        assert analysis.batches["count"] > 0
        assert analysis.reconciliation["taxonomy_ok"]

    def test_deterministic_output(self):
        blobs = []
        for _ in range(2):
            run = parse_jsonl(jsonl_lines(traced_run()), source="x")
            blobs.append(json.dumps(analyze_run(run).to_dict(),
                                    sort_keys=True))
        assert blobs[0] == blobs[1]

    def test_render_is_textual(self, run):
        text = analyze_run(run).render()
        assert "critical path" in text
        assert "span aggregates" in text
        assert "Fig. 4 view" in text
