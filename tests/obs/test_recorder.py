"""Flight recorder rings and incident bundles (repro.obs.recorder)."""

import json

from repro.gpusim.timing import SimClock
from repro.obs.recorder import (FlightRecorder, sampler_stats, span_records,
                                write_incident_bundle)
from repro.obs.timeseries import Rollups
from repro.obs.tracer import SimTracer, TraceSampler


def traced(n=3, clock=None):
    """A tracer with ``n`` finished ``serve.batch`` roots."""
    tracer = SimTracer(clock or SimClock())
    for i in range(n):
        with tracer.span("serve.batch", rid=i):
            with tracer.span("serve.dispatch"):
                pass
    return tracer


class TestSpanRecords:
    def test_none_and_disabled_tracers_yield_nothing(self):
        assert span_records(None, 10) == []

        class Disabled:
            enabled = False
        assert span_records(Disabled(), 10) == []

    def test_records_match_export_shape(self):
        records = span_records(traced(1), 10)
        assert [r["name"] for r in records] == ["serve.batch",
                                                "serve.dispatch"]
        root = records[0]
        assert root["type"] == "span" and root["parent"] is None
        assert set(root) == {"type", "sid", "parent", "name", "cat",
                             "start_s", "end_s", "attrs"}

    def test_limit_keeps_the_tail(self):
        records = span_records(traced(4), 3)
        assert len(records) == 3
        # The newest root's subtree survives whole.
        assert records[-2]["name"] == "serve.batch"
        assert records[-2]["attrs"]["rid"] == 3

    def test_sampler_delegates(self):
        tracer = TraceSampler(traced(2), every=1)
        assert len(span_records(tracer, 10)) == 4


class TestSamplerStats:
    def test_plain_tracer_has_none(self):
        assert sampler_stats(SimTracer(SimClock())) is None
        assert sampler_stats(None) is None

    def test_sampler_reports_kept_counts(self):
        tracer = TraceSampler(SimTracer(SimClock()), every=2)
        for i in range(4):
            with tracer.span("serve.batch", rid=i):
                pass
        stats = sampler_stats(tracer)
        assert stats == {"units_total": 4, "units_kept": 2, "every": 2}


class TestFlightRecorder:
    def window(self, index):
        return {"type": "window", "index": index, "end_s": float(index + 1)}

    def test_window_ring_is_bounded(self):
        recorder = FlightRecorder("r0", ring_windows=3)
        for i in range(5):
            recorder.observe_window(self.window(i))
        bundle = recorder.bundle("test", 5.0)
        assert [w["index"] for w in bundle["windows"]] == [2, 3, 4]

    def test_bundle_shape(self):
        recorder = FlightRecorder("r0", tracer=traced(2), ring_spans=8)
        recorder.observe_window(self.window(0))
        bundle = recorder.bundle("eviction", 1.5,
                                 scorecard={"evictions": 1},
                                 alerts=["burn"], replica="r0")
        assert bundle["reason"] == "eviction" and bundle["t_s"] == 1.5
        assert bundle["recorder"] == "r0"
        assert bundle["context"] == {"replica": "r0"}
        assert bundle["scorecard"] == {"evictions": 1}
        assert bundle["alerts_active"] == ["burn"]
        assert bundle["spans_partial"] is False
        assert len(bundle["spans"]) == 4

    def test_span_ring_is_bounded(self):
        recorder = FlightRecorder("r0", tracer=traced(4), ring_spans=2)
        assert len(recorder.bundle("test", 0.0)["spans"]) == 2

    def test_sampled_stream_marked_partial(self):
        tracer = TraceSampler(SimTracer(SimClock()), every=2)
        for i in range(4):
            with tracer.span("serve.batch", rid=i):
                pass
        bundle = FlightRecorder("r0", tracer=tracer).bundle("test", 0.0)
        assert bundle["spans_partial"] is True
        assert bundle["sampler"]["units_kept"] == 2

    def test_sampler_that_kept_everything_is_not_partial(self):
        tracer = TraceSampler(SimTracer(SimClock()), every=1)
        with tracer.span("serve.batch"):
            pass
        bundle = FlightRecorder("r0", tracer=tracer).bundle("test", 0.0)
        assert bundle["spans_partial"] is False
        assert bundle["sampler"]["units_total"] == 1

    def test_recorder_subscribes_to_rollups(self):
        rollups = Rollups(window_s=1.0)
        recorder = FlightRecorder("fleet")
        rollups.on_window(recorder.observe_window)
        rollups.poll(0.0)
        rollups.poll(2.5)
        assert [w["index"] for w in recorder.window_ring] == [0, 1]


class TestWriteBundle:
    def test_byte_deterministic_and_loadable(self, tmp_path):
        recorder = FlightRecorder("fleet", tracer=traced(1))
        recorder.observe_window({"type": "window", "index": 0})
        bundle = recorder.bundle("alert:burn", 2.0)
        path = str(tmp_path / "incident.json")
        text = write_incident_bundle(path, bundle)
        assert open(path).read() == text + "\n"
        assert text == json.dumps(bundle, indent=1, sort_keys=True)
        assert json.loads(text) == json.loads(
            write_incident_bundle(str(tmp_path / "again.json"), bundle))
