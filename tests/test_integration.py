"""End-to-end integration tests.

These tie the whole stack together: the NN substrate trains a real
LeNet-5 on the procedural digit workload; the analysis harness runs a
full experiment end-to-end; and the three conv backends are swappable
inside a training run without changing its result.
"""

import numpy as np
import pytest

from repro.nn import SGD, Trainer
from repro.nn.models import lenet5
from repro.workloads import DigitDataset


@pytest.fixture(scope="module")
def digits():
    return DigitDataset.generate(train=384, test=96, rng=7)


class TestLeNetTraining:
    def test_lenet_learns_digits(self, digits):
        """The headline integration check: LeNet-5 on procedural
        digits reaches high accuracy within a few epochs."""
        model = lenet5(rng=3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.02,
                                     momentum=0.9))
        result = trainer.fit(digits.batches(32, epochs=6, rng=11))
        # Loss must have collapsed ...
        assert result.final_loss < 0.35
        # ... and held-out accuracy must be far above the 10 % chance
        # level.
        _, test_acc = trainer.evaluate(digits.test_x, digits.test_y)
        assert test_acc > 0.9

    def test_training_is_reproducible(self, digits):
        def run():
            model = lenet5(rng=3)
            trainer = Trainer(model, SGD(model.parameters(), lr=0.05,
                                         momentum=0.9))
            return trainer.fit(digits.batches(32, epochs=1, rng=11)).losses

        assert run() == run()


class TestBackendSwap:
    """Swapping the convolution backend changes speed, never results —
    the premise of the whole comparison study."""

    def test_backends_agree_through_lenet(self, digits):
        x = digits.train_x[:8]
        outputs = []
        for backend in (None, "direct", "fft"):
            model = lenet5(rng=3, backend=backend)
            outputs.append(model.forward(x))
        np.testing.assert_allclose(outputs[0], outputs[1], rtol=1e-8,
                                   atol=1e-8)
        # NumPy >= 2 computes single-precision FFTs for float32 input
        # (as the real fp32 frameworks did), so the FFT path agrees to
        # fp32 accuracy.
        np.testing.assert_allclose(outputs[0], outputs[2], rtol=1e-4,
                                   atol=1e-5)

    def test_framework_backend_through_lenet(self, digits):
        x = digits.train_x[:32]  # cuda-convnet2 needs batch % 32
        ref = lenet5(rng=3).forward(x)
        # cuDNN adapter (unrolling) should match bit-for-bit; fbfft to
        # fp tolerance.
        got = lenet5(rng=3, backend="cudnn").forward(x)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)


class TestHarnessEndToEnd:
    def test_fig3e_experiment_runs_and_reports(self):
        from repro import run_experiment
        result, text = run_experiment("fig3e")
        assert "fbfft" in text
        # The stride-1 row carries fbfft; the others show it missing.
        assert "-" in text

    def test_advisor_end_to_end(self):
        from repro import Advisor, BASE_CONFIG
        rec = Advisor().recommend(BASE_CONFIG)
        assert rec.best == "fbfft"
        assert len(rec.candidates) == 7
