"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (AllocationError, ConvergenceError, DeviceOOMError,
                          ProfilerError, ReproError, ShapeError,
                          UnsupportedConfigError)


def test_all_derive_from_repro_error():
    for exc in (ShapeError("x"), UnsupportedConfigError("impl", "why"),
                DeviceOOMError(1, 2, 3), AllocationError("x"),
                ProfilerError("x"), ConvergenceError("x")):
        assert isinstance(exc, ReproError)


def test_shape_error_is_value_error():
    assert isinstance(ShapeError("x"), ValueError)


def test_oom_is_memory_error_and_carries_state():
    e = DeviceOOMError(requested=100, in_use=200, capacity=250)
    assert isinstance(e, MemoryError)
    assert e.requested == 100 and e.in_use == 200 and e.capacity == 250
    assert "100" in str(e)


def test_unsupported_config_message():
    e = UnsupportedConfigError("cuda-convnet2", "batch must be a multiple of 32")
    assert "cuda-convnet2" in str(e)
    assert e.reason.startswith("batch")
