"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (AllocationError, ConvergenceError, DeviceOOMError,
                          ProfilerError, ReproError, ShapeError,
                          UnsupportedConfigError)


def test_all_derive_from_repro_error():
    for exc in (ShapeError("x"), UnsupportedConfigError("impl", "why"),
                DeviceOOMError(1, 2, 3), AllocationError("x"),
                ProfilerError("x"), ConvergenceError("x")):
        assert isinstance(exc, ReproError)


def test_shape_error_is_value_error():
    assert isinstance(ShapeError("x"), ValueError)


def test_oom_is_memory_error_and_carries_state():
    e = DeviceOOMError(requested=100, in_use=200, capacity=250)
    assert isinstance(e, MemoryError)
    assert e.requested == 100 and e.in_use == 200 and e.capacity == 250
    assert "100" in str(e)


def test_unsupported_config_message():
    e = UnsupportedConfigError("cuda-convnet2", "batch must be a multiple of 32")
    assert "cuda-convnet2" in str(e)
    assert e.reason.startswith("batch")


def test_memory_pressure_is_an_oom_with_reserved_context():
    from repro.errors import MemoryPressureError
    e = MemoryPressureError(requested=100, in_use=200, capacity=1000,
                            reserved=700)
    assert isinstance(e, DeviceOOMError)
    assert isinstance(e, ReproError)
    assert e.reserved == 700
    assert e.requested == 100 and e.in_use == 200 and e.capacity == 1000
    assert "pressure" in str(e)


def test_transient_kernel_error_carries_retry_cost():
    from repro.errors import TransientKernelError
    e = TransientKernelError("cuDNN", at_s=1.25, retry_cost_s=500e-6)
    assert isinstance(e, ReproError)
    assert isinstance(e, RuntimeError)
    assert e.implementation == "cuDNN"
    assert e.at_s == 1.25
    assert e.retry_cost_s == 500e-6
    assert "cuDNN" in str(e)


def test_server_closed_error_is_a_repro_error():
    from repro.errors import ServerClosedError
    e = ServerClosedError("queue is closed")
    assert isinstance(e, ReproError)
    assert isinstance(e, RuntimeError)


def test_pressure_error_caught_by_plain_oom_handlers():
    from repro.errors import MemoryPressureError
    try:
        raise MemoryPressureError(1, 2, 3, 4)
    except DeviceOOMError as caught:
        assert caught.reserved == 4
