"""Acceptance tests: the paper's qualitative findings must hold.

Each test asserts one claim from the paper's results sections against
the simulated reproduction (DESIGN.md section 5 lists these as the
acceptance criteria).  Absolute numbers are allowed to differ; the
*shape* — who wins, where crossovers fall, which bands metrics land in
— must match.
"""

import pytest

from repro.config import BASE_CONFIG, TABLE1_CONFIGS
from repro.core.gpu_metrics import gpu_metric_profile
from repro.core.hotspot_kernels import hotspot_kernel_analysis
from repro.core.hotspot_layers import hotspot_layer_analysis
from repro.core.memory_comparison import memory_sweep
from repro.core.runtime_comparison import runtime_sweep
from repro.core.transfer_overhead import transfer_overhead_profile


# ---------------------------------------------------------------------------
# Fig. 2 — convolutional layers dominate training time
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig2():
    return {r.model: r for r in hotspot_layer_analysis()}


class TestFig2:
    def test_conv_dominates_all_models(self, fig2):
        """Paper: conv layers take 86-94 % in the four models."""
        for name, r in fig2.items():
            assert r.conv_share >= 0.80, (name, r.conv_share)
            assert r.conv_share <= 0.97, (name, r.conv_share)

    def test_expected_layer_types_present(self, fig2):
        assert "Concat" in fig2["GoogLeNet"].shares
        assert "FC" in fig2["AlexNet"].shares
        assert "LRN" in fig2["AlexNet"].shares


# ---------------------------------------------------------------------------
# Fig. 3 — runtime comparison
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def batch_sweep():
    return runtime_sweep("batch")


@pytest.fixture(scope="module")
def input_sweep():
    return runtime_sweep("input")


@pytest.fixture(scope="module")
def filter_sweep():
    return runtime_sweep("filters")


@pytest.fixture(scope="module")
def kernel_sweep():
    return runtime_sweep("kernel")


@pytest.fixture(scope="module")
def stride_sweep():
    return runtime_sweep("stride")


class TestFig3aBatch:
    def test_fbfft_fastest_everywhere(self, batch_sweep):
        """Paper: fbfft wins at every mini-batch size (k=11)."""
        for i in range(len(batch_sweep.xs)):
            assert batch_sweep.fastest_at(i) == "fbfft"

    def test_fbfft_advantage_band(self, batch_sweep):
        """Paper: 1.4x to 9.7x over the other implementations.  Our
        measured band is 2.7x-12.4x — same decade, slightly wider at
        the top (EXPERIMENTS.md, fig3a)."""
        ratios = []
        for i in range(len(batch_sweep.xs)):
            for other in batch_sweep.times:
                if other == "fbfft":
                    continue
                r = batch_sweep.speedup("fbfft", other, i)
                if r is not None:
                    ratios.append(r)
        assert min(ratios) >= 1.2
        assert max(ratios) <= 15.0

    def test_theano_fft_slowest(self, batch_sweep):
        for i in range(len(batch_sweep.xs)):
            times = {k: v[i] for k, v in batch_sweep.times.items()
                     if v[i] is not None}
            assert max(times, key=times.get) == "Theano-fft"

    def test_cudnn_best_unrolling(self, batch_sweep):
        """Paper: cuDNN has consistent superior performance among the
        unrolling implementations at all batch sizes."""
        for i in range(len(batch_sweep.xs)):
            cudnn = batch_sweep.times["cuDNN"][i]
            for other in ("Caffe", "Torch-cunn", "Theano-CorrMM"):
                assert cudnn < batch_sweep.times[other][i]

    def test_ccn2_batch128_sweet_spot(self, batch_sweep):
        """Paper: cuda-convnet2 performs well only when the batch is a
        multiple of 128 — per-image time drops there."""
        per_image = {b: t / b for b, t in
                     zip(batch_sweep.xs, batch_sweep.times["cuda-convnet2"])}
        aligned = [v for b, v in per_image.items() if b % 128 == 0]
        unaligned = [v for b, v in per_image.items() if b % 128 != 0]
        assert max(aligned) < min(unaligned)


class TestFig3bInput:
    def test_fbfft_fastest_almost_everywhere(self, input_sweep):
        """Paper: fbfft wins at every input size.  Our pow-2 padding
        model concedes at most one point just past a power-of-two
        boundary (i = 144 pads 144 -> 256), where fbfft still stays
        within 1.3x of the winner (EXPERIMENTS.md, fig3b)."""
        losses = []
        for i in range(len(input_sweep.xs)):
            best = input_sweep.fastest_at(i)
            if best != "fbfft":
                losses.append(i)
        assert len(losses) <= 1
        for i in losses:
            best = input_sweep.fastest_at(i)
            ratio = input_sweep.speedup(best, "fbfft", i)
            assert ratio is not None and ratio < 1.3
            # The concession is a pow-2 padding artefact.
            assert input_sweep.xs[i] % 128 != 0


class TestFig3cFilters:
    def test_fbfft_fastest(self, filter_sweep):
        """Paper: fbfft consistently 1.19-5.1x faster."""
        for i in range(len(filter_sweep.xs)):
            assert filter_sweep.fastest_at(i) == "fbfft"

    def test_corrmm_overtakes_cudnn_at_large_f(self, filter_sweep):
        """Paper: Theano-CorrMM slightly outperforms cuDNN for large
        filter counts (> 160 in their experiment; the crossover must
        exist and sit in a plausible range)."""
        ratio = [filter_sweep.times["Theano-CorrMM"][i]
                 / filter_sweep.times["cuDNN"][i]
                 for i in range(len(filter_sweep.xs))]
        # cuDNN clearly ahead at small f...
        assert ratio[0] > 1.2
        # ...and CorrMM ahead at the top of the sweep.
        assert ratio[-1] < 1.0
        crossover_f = next(f for f, r in zip(filter_sweep.xs, ratio) if r < 1.0)
        assert 128 < crossover_f <= 400


class TestFig3dKernel:
    def test_cudnn_wins_small_kernels(self, kernel_sweep):
        """Paper: for k < 7, cuDNN beats fbfft (1.21-2.62x); our
        measured crossover sits at k = 5 (EXPERIMENTS.md, fig3d)."""
        for i, k in enumerate(kernel_sweep.xs):
            if k < 5:
                assert (kernel_sweep.times["cuDNN"][i]
                        < kernel_sweep.times["fbfft"][i]), k

    def test_crossover_in_plausible_band(self, kernel_sweep):
        """The cuDNN/fbfft crossover must exist and fall near the
        paper's k = 7."""
        crossover = next(k for i, k in enumerate(kernel_sweep.xs)
                         if (kernel_sweep.times["fbfft"][i]
                             < kernel_sweep.times["cuDNN"][i]))
        assert 4 <= crossover <= 8

    def test_fbfft_wins_large_kernels(self, kernel_sweep):
        """Paper: for k >= 7 fbfft is increasingly faster."""
        for i, k in enumerate(kernel_sweep.xs):
            if k >= 8:
                assert (kernel_sweep.times["fbfft"][i]
                        < kernel_sweep.times["cuDNN"][i]), k

    def test_advantage_grows_with_k(self, kernel_sweep):
        r8 = kernel_sweep.speedup("fbfft", "cuDNN", kernel_sweep.xs.index(8))
        r13 = kernel_sweep.speedup("fbfft", "cuDNN", kernel_sweep.xs.index(13))
        assert r13 > r8 > 1.0

    def test_fbfft_runtime_flat_in_k(self, kernel_sweep):
        """Paper: 'the runtime of fbfft tends to be a constant
        value'."""
        col = kernel_sweep.times["fbfft"]
        assert max(col) / min(col) < 1.15

    def test_ccn2_close_to_cudnn(self, kernel_sweep):
        """Paper: 'the performances of cuda-convnet2 and cuDNN are very
        close with all given kernel sizes'."""
        for i in range(len(kernel_sweep.xs)):
            r = (kernel_sweep.times["cuda-convnet2"][i]
                 / kernel_sweep.times["cuDNN"][i])
            assert 0.4 < r < 2.0


class TestFig3eStride:
    def test_fbfft_only_at_stride_1(self, stride_sweep):
        assert stride_sweep.times["fbfft"][0] is not None
        assert stride_sweep.times["fbfft"][1] is None

    def test_fbfft_wins_stride_1(self, stride_sweep):
        assert stride_sweep.fastest_at(0) == "fbfft"

    def test_cudnn_wins_larger_strides(self, stride_sweep):
        """Paper: 'For greater stride, cuDNN results in the best
        performance'."""
        for i, s in enumerate(stride_sweep.xs):
            if s > 1:
                assert stride_sweep.fastest_at(i) == "cuDNN"


# ---------------------------------------------------------------------------
# Fig. 4 — hotspot kernels
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig4():
    return {r.implementation: r for r in hotspot_kernel_analysis(BASE_CONFIG)}


class TestFig4:
    def test_gemm_dominates_explicit_unrolling(self, fig4):
        """Paper: GEMM takes 87/83/80 % in Caffe/Torch-cunn/CorrMM."""
        for name in ("Caffe", "Torch-cunn", "Theano-CorrMM"):
            share = fig4[name].role_shares["GEMM"]
            assert 0.65 <= share <= 0.95, (name, share)

    def test_unrolling_remainder_is_im2col_col2im(self, fig4):
        for name in ("Caffe", "Torch-cunn", "Theano-CorrMM"):
            shares = fig4[name].role_shares
            rest = shares.get("im2col", 0) + shares.get("col2im", 0)
            assert rest > 0.05

    def test_cudnn_dominated_by_its_gemm_engines(self, fig4):
        ks = fig4["cuDNN"].kernel_shares
        top2 = sorted(ks, key=ks.get, reverse=True)[:2]
        assert set(top2) <= {"wgrad_alg0_engine", "cudnn_gemm_fwd",
                             "cudnn_gemm_bgrad"}

    def test_ccn2_three_direct_kernels(self, fig4):
        shares = fig4["cuda-convnet2"].role_shares
        assert shares["direct conv"] > 0.9

    def test_fbfft_pipeline_components(self, fig4):
        shares = fig4["fbfft"].role_shares
        for role in ("FFT", "FFT inverse", "transpose", "CGEMM"):
            assert shares.get(role, 0) > 0.02, role

    def test_theano_fft_data_prep_heavy(self, fig4):
        """Paper: 'most of the runtime is spent on data preparation
        and data transfer' in Theano-fft."""
        assert fig4["Theano-fft"].role_shares["data prep"] > 0.2


# ---------------------------------------------------------------------------
# Fig. 5 — memory usage
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mem_batch():
    return memory_sweep("batch")


class TestFig5:
    def test_ccn2_lowest_everywhere(self, mem_batch):
        for i in range(len(mem_batch.xs)):
            ccn2 = mem_batch.peaks["cuda-convnet2"][i]
            others = [col[i] for name, col in mem_batch.peaks.items()
                      if name != "cuda-convnet2" and col[i] is not None]
            assert ccn2 <= min(others)

    def test_fbfft_highest_everywhere(self, mem_batch):
        for i in range(len(mem_batch.xs)):
            fb = mem_batch.peaks["fbfft"][i]
            others = [col[i] for name, col in mem_batch.peaks.items()
                      if name != "fbfft" and col[i] is not None]
            assert fb >= max(others)

    def test_torch_cunn_leanest_unrolling(self, mem_batch):
        for i in range(len(mem_batch.xs)):
            tc = mem_batch.peaks["Torch-cunn"][i]
            for other in ("Caffe", "cuDNN", "Theano-CorrMM"):
                assert tc < mem_batch.peaks[other][i]

    def test_no_ooms_on_paper_sweeps(self, mem_batch):
        for name, col in mem_batch.ooms.items():
            assert not any(col), name

    def test_fbfft_pow2_fluctuation_in_input_sweep(self):
        """Paper: 'dramatic fluctuations in memory usage of fbfft over
        certain input size' (Fig. 5(b))."""
        res = memory_sweep("input")
        col = res.peaks["fbfft"]
        steps = [col[i + 1] / col[i] for i in range(len(col) - 1)]
        assert max(steps) > 1.8  # a discontinuous jump exists
        caffe_steps = [res.peaks["Caffe"][i + 1] / res.peaks["Caffe"][i]
                       for i in range(len(col) - 1)]
        assert max(caffe_steps) < 1.6  # unrolling grows smoothly

    def test_theano_fft_kernel_sweep_fluctuation(self):
        """Paper: the same fluctuation appears for the FFT family in
        the kernel sweep (Fig. 5(d))."""
        res = memory_sweep("kernel")
        col = res.peaks["Theano-fft"]
        assert len(set(col)) > 1


# ---------------------------------------------------------------------------
# Fig. 6 — GPU metrics
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig6():
    rows = gpu_metric_profile()
    out = {}
    for r in rows:
        out.setdefault(r.implementation, []).append(r.summary)
    return out


class TestFig6:
    def test_occupancy_mostly_below_40pct(self, fig6):
        """Paper: 'most implementations have relatively low achieved
        occupancy (less than 30 %)' — Theano-fft excepted."""
        for name, summaries in fig6.items():
            if name == "Theano-fft":
                continue
            for s in summaries:
                assert s.achieved_occupancy < 0.45, (name, s.achieved_occupancy)

    def test_ccn2_occupancy_band(self, fig6):
        """Paper: cuda-convnet2 at 14-22 %."""
        for s in fig6["cuda-convnet2"]:
            assert 0.10 <= s.achieved_occupancy <= 0.25

    def test_theano_fft_highest_occupancy_but_slow(self, fig6):
        """Paper: Theano-fft has 39-59 % occupancy yet the worst
        performance — occupancy does not imply speed.  We assert its
        occupancy band and that it stays well behind its
        strategy-mate fbfft on every Table-I configuration (at Conv3
        its FFT mathematics genuinely beats the per-image unrolling
        loops, so "slowest overall" is only asserted on the Fig. 3
        colour-input sweeps)."""
        for s in fig6["Theano-fft"]:
            assert s.achieved_occupancy >= 0.35
        for config_idx in range(5):
            tfft = fig6["Theano-fft"][config_idx].runtime_s
            fb = fig6["fbfft"][config_idx].runtime_s
            assert tfft > 3.0 * fb

    def test_wee_bands(self, fig6):
        """Paper: WEE over 97 % everywhere except Theano-fft's
        66-81 %."""
        for name, summaries in fig6.items():
            for s in summaries:
                if name == "Theano-fft":
                    assert 0.60 <= s.warp_execution_efficiency <= 0.85
                else:
                    assert s.warp_execution_efficiency > 0.93

    def test_theano_fft_shared_efficiency_low(self, fig6):
        """Paper: 8-20 % shared efficiency (bank conflicts)."""
        for s in fig6["Theano-fft"]:
            assert s.shared_efficiency < 0.25

    def test_cudnn_shared_efficiency_above_100pct(self, fig6):
        """Paper: cuDNN's shared efficiency exceeds 100 % (wide
        accesses in 64-bit bank mode)."""
        assert max(s.shared_efficiency for s in fig6["cuDNN"]) > 1.0

    def test_unrolling_gld_efficiency_low(self, fig6):
        """Paper: Caffe/Torch-cunn/Theano-CorrMM show low global load
        efficiency (strided im2col gathers)."""
        for name in ("Caffe", "Torch-cunn", "Theano-CorrMM"):
            for s in fig6[name]:
                assert s.gld_efficiency < 0.6, name

    def test_bank_conflict_events_only_where_expected(self, fig6):
        for s in fig6["Theano-fft"]:
            assert (s.shared_load_bank_conflicts
                    + s.shared_store_bank_conflicts) > 0


# ---------------------------------------------------------------------------
# Fig. 7 — transfer overhead
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig7():
    rows = transfer_overhead_profile()
    out = {}
    for r in rows:
        out.setdefault(r.implementation, {})[r.config_name] = (
            r.transfer_fraction)
    return out


class TestFig7:
    def test_prefetching_impls_hide_transfers(self, fig7):
        """Paper: Caffe, cuDNN and fbfft at ~0 %."""
        for name in ("Caffe", "cuDNN", "fbfft"):
            for frac in fig7[name].values():
                assert frac < 0.01, name

    def test_synchronous_impls_pay_modest_overhead(self, fig7):
        """Paper: Torch-cunn, cuda-convnet2, Theano-fft at 1-15 %
        (we allow a slightly wider band)."""
        for name in ("Torch-cunn", "cuda-convnet2", "Theano-fft"):
            fracs = list(fig7[name].values())
            assert max(fracs) > 0.01, name
            assert max(fracs) < 0.30, name

    def test_corrmm_conv2_anomaly(self, fig7):
        """Paper: Theano-CorrMM exceeds 60 % at Conv2 and only
        there."""
        corrmm = fig7["Theano-CorrMM"]
        assert corrmm["Conv2"] > 0.5
        for cname, frac in corrmm.items():
            if cname != "Conv2":
                assert frac < 0.2, cname
