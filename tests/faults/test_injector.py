"""The injector: seeded draws, observer wiring, counters."""

import pytest

from repro.errors import MemoryPressureError, TransientKernelError
from repro.faults import (CacheCorruptionSpec, FaultInjector, FaultPlan,
                          MemoryPressureSpec, StragglerSpec,
                          TransientFaultSpec, TOP_RANKED)
from repro.gpusim.allocator import DeviceAllocator
from repro.gpusim.device import K40C
from repro.gpusim.kernels import replay_cost_s
from repro.gpusim.timing import SimClock
from repro.serve.plan_cache import PlanCache


def transient_plan(rate=1.0, implementation="cuDNN", **kw):
    return FaultPlan(name="t", transients=(
        TransientFaultSpec(implementation=implementation, rate=rate, **kw),))


class TestCheckLaunch:
    def test_certain_fault_raises_with_replay_cost(self):
        inj = FaultInjector(transient_plan(rate=1.0))
        with pytest.raises(TransientKernelError) as exc:
            inj.check_launch(0.5, "cuDNN")
        assert exc.value.implementation == "cuDNN"
        assert exc.value.at_s == 0.5
        assert exc.value.retry_cost_s == pytest.approx(replay_cost_s(K40C))
        assert inj.faults_injected == 1

    def test_non_matching_implementation_never_draws(self):
        inj = FaultInjector(transient_plan(rate=1.0, implementation="fbfft"))
        state = inj._rng.bit_generator.state
        inj.check_launch(0.0, "cuDNN")
        assert inj._rng.bit_generator.state == state
        assert inj.faults_injected == 0

    def test_inactive_window_never_draws(self):
        inj = FaultInjector(transient_plan(rate=1.0, start_s=5.0, end_s=6.0))
        state = inj._rng.bit_generator.state
        inj.check_launch(0.0, "cuDNN")
        assert inj._rng.bit_generator.state == state

    def test_top_ranked_spares_fallback_dispatches(self):
        inj = FaultInjector(transient_plan(rate=1.0,
                                           implementation=TOP_RANKED))
        inj.check_launch(0.0, "cuDNN", rank=1)   # no fault, no draw
        with pytest.raises(TransientKernelError):
            inj.check_launch(0.0, "cuDNN", rank=0)

    def test_same_seed_same_fault_sequence(self):
        def sequence(seed):
            inj = FaultInjector(transient_plan(rate=0.5), seed=seed)
            out = []
            for i in range(50):
                try:
                    inj.check_launch(0.0, "cuDNN")
                    out.append(False)
                except TransientKernelError:
                    out.append(True)
            return out

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)


class TestPressureAndStragglers:
    PLAN = FaultPlan(
        name="p",
        pressures=(MemoryPressureSpec(reserve_bytes=2**30,
                                      start_s=1.0, end_s=2.0),
                   MemoryPressureSpec(reserve_bytes=2**28,
                                      start_s=1.5, end_s=3.0)),
        stragglers=(StragglerSpec(slowdown=2.0, start_s=1.0, end_s=2.0),
                    StragglerSpec(slowdown=3.0, start_s=1.5, end_s=2.5)))

    def test_reserve_sums_active_windows(self):
        inj = FaultInjector(self.PLAN)
        assert inj.reserve_bytes(0.0) == 0
        assert inj.reserve_bytes(1.0) == 2**30
        assert inj.reserve_bytes(1.5) == 2**30 + 2**28
        assert inj.reserve_bytes(2.5) == 2**28
        assert not inj.pressure_active(5.0)

    def test_slowdown_compounds(self):
        inj = FaultInjector(self.PLAN)
        assert inj.slowdown(0.0) == 1.0
        assert inj.slowdown(1.2) == 2.0
        assert inj.slowdown(1.8) == 6.0
        assert inj.slowdown(2.2) == 3.0

    def test_installed_allocator_raises_pressure_error(self):
        inj = FaultInjector(self.PLAN)
        clock = SimClock()
        alloc = DeviceAllocator(K40C)
        inj.install(clock, allocator=alloc)
        big = K40C.global_memory_bytes - 2**29   # fits, unless squeezed
        buf = alloc.alloc(big)
        alloc.free(buf)
        clock.advance_to(1.0)                    # inside the 1 GiB squeeze
        with pytest.raises(MemoryPressureError) as exc:
            alloc.alloc(big)
        assert exc.value.reserved == 2**30


class TestCorruptions:
    def test_clock_observer_fires_events_in_order(self):
        plan = FaultPlan(name="c", corruptions=(
            CacheCorruptionSpec(at_s=2.0, entries=2),
            CacheCorruptionSpec(at_s=1.0, entries=1)))
        inj = FaultInjector(plan)
        clock = SimClock()
        cache = PlanCache(capacity=8)
        for i in range(4):
            cache.get_or_compute(("k", i), lambda: (i,))
        inj.install(clock, allocator=None, plan_cache=cache)
        clock.advance_to(0.5)
        assert inj.entries_corrupted == 0
        clock.advance_to(1.0)
        assert inj.entries_corrupted == 1
        clock.advance_to(10.0)                   # both fired, once each
        assert inj.entries_corrupted == 3
        clock.advance(1.0)
        assert inj.entries_corrupted == 3
        assert cache.stats()["corruptions"] == 3
        assert cache.stats()["entries"] == 1

    def test_noop_plan_installs_no_observers(self):
        inj = FaultInjector()
        clock = SimClock()
        alloc = DeviceAllocator(K40C)
        inj.install(clock, allocator=alloc, plan_cache=PlanCache(4))
        assert clock._observer is None
        assert alloc._pressure is None
