"""Fault plans: frozen schedules, window semantics, the catalogue."""

import math

import pytest

from repro.faults import (ANY, NONE, PLAN_NAMES, TOP_RANKED,
                          CacheCorruptionSpec, FaultPlan,
                          MemoryPressureSpec, StragglerSpec,
                          TransientFaultSpec, named_plan)


class TestTransientSpec:
    def test_defaults_cover_all_time(self):
        spec = TransientFaultSpec()
        assert spec.active(0.0)
        assert spec.active(1e9)

    def test_window_bounds_are_half_open(self):
        spec = TransientFaultSpec(start_s=1.0, end_s=2.0)
        assert not spec.active(0.999)
        assert spec.active(1.0)
        assert spec.active(1.999)
        assert not spec.active(2.0)

    def test_any_matches_everything(self):
        spec = TransientFaultSpec(implementation=ANY)
        assert spec.matches("cuDNN", 0)
        assert spec.matches("fbfft", 3)

    def test_top_ranked_matches_only_rank_zero(self):
        spec = TransientFaultSpec(implementation=TOP_RANKED)
        assert spec.matches("cuDNN", 0)
        assert spec.matches("anything", 0)
        assert not spec.matches("cuDNN", 1)

    def test_named_target_ignores_rank(self):
        spec = TransientFaultSpec(implementation="fbfft")
        assert spec.matches("fbfft", 0)
        assert spec.matches("fbfft", 2)
        assert not spec.matches("cuDNN", 0)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TransientFaultSpec(rate=0.0)
        with pytest.raises(ValueError):
            TransientFaultSpec(rate=1.5)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TransientFaultSpec(start_s=-1.0)
        with pytest.raises(ValueError):
            TransientFaultSpec(start_s=2.0, end_s=2.0)


class TestOtherSpecs:
    def test_pressure_requires_positive_reserve(self):
        with pytest.raises(ValueError):
            MemoryPressureSpec(reserve_bytes=0)

    def test_straggler_requires_slowdown_at_least_one(self):
        with pytest.raises(ValueError):
            StragglerSpec(slowdown=0.5)
        assert StragglerSpec(slowdown=1.0).active(0.0)

    def test_corruption_validation(self):
        with pytest.raises(ValueError):
            CacheCorruptionSpec(at_s=-0.1)
        with pytest.raises(ValueError):
            CacheCorruptionSpec(at_s=1.0, entries=0)


class TestFaultPlan:
    def test_empty_plan_is_noop(self):
        assert FaultPlan(name="x").is_noop
        assert NONE.is_noop

    def test_any_event_family_defeats_noop(self):
        assert not FaultPlan(
            name="x", transients=(TransientFaultSpec(),)).is_noop
        assert not FaultPlan(
            name="x", corruptions=(CacheCorruptionSpec(at_s=1.0),)).is_noop

    def test_plans_are_frozen(self):
        with pytest.raises(Exception):
            NONE.name = "other"

    def test_describe_mentions_each_family(self):
        text = named_plan("chaos").describe()
        for word in ("transient", "pressure", "straggler", "corruption"):
            assert word in text


class TestNamedPlans:
    def test_every_catalogue_name_builds(self):
        for name in PLAN_NAMES:
            plan = named_plan(name)
            assert plan.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            named_plan("earthquake")

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            named_plan("chaos", duration_s=0.0)

    def test_windows_scale_with_duration(self):
        short = named_plan("memory-pressure", duration_s=1.0)
        long = named_plan("memory-pressure", duration_s=10.0)
        assert short.pressures[0].start_s == pytest.approx(0.2)
        assert long.pressures[0].start_s == pytest.approx(2.0)
        # Same fraction of the run in both cases.
        assert (short.pressures[0].end_s / 1.0
                == pytest.approx(long.pressures[0].end_s / 10.0))

    def test_transient_top_targets_the_top_rank(self):
        plan = named_plan("transient-top")
        assert plan.transients[0].implementation == TOP_RANKED
        assert plan.transients[0].end_s == math.inf

    def test_building_a_plan_is_deterministic(self):
        assert named_plan("chaos", 5.0) == named_plan("chaos", 5.0)
