"""Fleet fault plan semantics: spec validation, event expansion,
named plans, degrade windows and the first-event boundary."""

import pytest

from repro.faults import (FLEET_NONE, FLEET_PLAN_NAMES, DomainFailureSpec,
                          FleetFaultPlan, ReplicaCrashSpec,
                          ReplicaDegradeSpec, ReplicaFlapSpec,
                          named_fleet_plan)


class TestSpecs:
    def test_crash_spec_validates(self):
        ReplicaCrashSpec(replica=0, at_s=1.0)
        with pytest.raises(ValueError):
            ReplicaCrashSpec(replica=-1, at_s=1.0)
        with pytest.raises(ValueError):
            ReplicaCrashSpec(replica=0, at_s=-0.5)

    def test_degrade_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            ReplicaDegradeSpec(replica=0, factor=0.5, start_s=0, end_s=1)

    def test_degrade_window_active(self):
        spec = ReplicaDegradeSpec(replica=0, factor=4.0,
                                  start_s=1.0, end_s=2.0)
        assert not spec.active(0.5)
        assert spec.active(1.0)
        assert spec.active(1.99)
        assert not spec.active(2.0)

    def test_flap_transitions_alternate(self):
        spec = ReplicaFlapSpec(replica=1, period_s=1.0, down_s=0.25,
                               start_s=0.0, end_s=2.5)
        transitions = spec.transitions()
        downs = [t for t, down in transitions if down]
        ups = [t for t, down in transitions if not down]
        assert downs == [0.0, 1.0, 2.0]
        assert ups == [0.25, 1.25, 2.25]

    def test_flap_down_must_fit_in_period(self):
        with pytest.raises(ValueError):
            ReplicaFlapSpec(replica=0, period_s=0.2, down_s=0.3,
                            start_s=0.0, end_s=1.0)


class TestPlan:
    def test_domain_failure_expands_to_members(self):
        plan = FleetFaultPlan(
            name="rack", domains={"rack0": (0, 1)},
            domain_failures=(DomainFailureSpec(domain="rack0", at_s=0.5),))
        assert plan.crash_events() == [(0.5, 0), (0.5, 1)]

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            FleetFaultPlan(
                name="bad",
                domain_failures=(DomainFailureSpec(domain="rackX",
                                                   at_s=0.5),))

    def test_degrade_factor_takes_worst_window(self):
        plan = FleetFaultPlan(name="slow", degrades=(
            ReplicaDegradeSpec(replica=0, factor=2.0, start_s=0, end_s=2),
            ReplicaDegradeSpec(replica=0, factor=8.0, start_s=1, end_s=1.5)))
        assert plan.degrade_factor(0, 0.5) == 2.0
        assert plan.degrade_factor(0, 1.2) == 8.0
        assert plan.degrade_factor(0, 1.8) == 2.0
        assert plan.degrade_factor(1, 1.2) == 1.0

    def test_needs_health(self):
        assert not FLEET_NONE.needs_health
        degrade_only = FleetFaultPlan(name="slow", degrades=(
            ReplicaDegradeSpec(replica=0, factor=2.0, start_s=0, end_s=1),))
        assert not degrade_only.needs_health
        crash = FleetFaultPlan(name="boom", crashes=(
            ReplicaCrashSpec(replica=0, at_s=0.5),))
        assert crash.needs_health

    def test_first_event_s(self):
        assert FLEET_NONE.first_event_s() is None
        plan = FleetFaultPlan(
            name="mix",
            crashes=(ReplicaCrashSpec(replica=0, at_s=2.0),),
            degrades=(ReplicaDegradeSpec(replica=1, factor=2.0,
                                         start_s=0.75, end_s=1.5),))
        assert plan.first_event_s() == 0.75


class TestNamedPlans:
    @pytest.mark.parametrize("name", FLEET_PLAN_NAMES)
    def test_every_named_plan_builds(self, name):
        plan = named_fleet_plan(name, duration_s=4.0, replicas=4)
        assert plan.name == name
        assert plan.describe()

    def test_none_plan_is_noop(self):
        assert named_fleet_plan("none", duration_s=4.0).is_noop

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            named_fleet_plan("nope", duration_s=4.0)

    def test_events_scale_with_duration(self):
        short = named_fleet_plan("crash", duration_s=1.0)
        long = named_fleet_plan("crash", duration_s=10.0)
        assert short.crash_events()[0][0] < long.crash_events()[0][0]
