"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ConvConfig
from repro.gpusim.device import K40C


@pytest.fixture
def rng():
    """Deterministic per-test generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_config():
    """A conv config small enough for exact numeric work in tests."""
    return ConvConfig(batch=2, input_size=12, filters=4, kernel_size=3,
                      stride=1, channels=3)


@pytest.fixture
def device():
    return K40C
