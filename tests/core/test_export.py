"""Tests for the CSV exporters."""

import csv
import io

import pytest

from repro.config import TABLE1_CONFIGS
from repro.core.export import (breakdown_csv, memory_sweep_csv, metrics_csv,
                               runtime_sweep_csv, transfer_csv)
from repro.core.gpu_metrics import gpu_metric_profile
from repro.core.hotspot_layers import hotspot_layer_analysis
from repro.core.memory_comparison import memory_sweep
from repro.core.runtime_comparison import runtime_sweep
from repro.core.transfer_overhead import transfer_overhead_profile


def parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestRuntimeCsv:
    @pytest.fixture(scope="class")
    def sweep(self):
        return runtime_sweep("stride")

    def test_structure(self, sweep):
        rows = parse(runtime_sweep_csv(sweep))
        assert rows[0][0] == "stride"
        assert len(rows) == 1 + len(sweep.xs)
        assert len(rows[0]) == 1 + len(sweep.times)

    def test_unsupported_cells_empty(self, sweep):
        rows = parse(runtime_sweep_csv(sweep))
        fbfft_col = rows[0].index("fbfft")
        assert rows[1][fbfft_col] != ""   # stride 1
        assert rows[2][fbfft_col] == ""   # stride 2

    def test_writes_file(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        runtime_sweep_csv(sweep, str(path))
        assert path.exists()
        assert parse(path.read_text())[0][0] == "stride"


class TestMemoryCsv:
    def test_values_in_mb(self):
        res = memory_sweep("stride")
        rows = parse(memory_sweep_csv(res))
        caffe_col = rows[0].index("Caffe")
        mb = float(rows[1][caffe_col])
        assert 100 < mb < 10000


class TestBreakdownCsv:
    def test_long_format(self):
        results = hotspot_layer_analysis(models=["AlexNet"])
        rows = parse(breakdown_csv(results))
        assert rows[0] == ["model", "batch", "layer_type", "share"]
        types = {r[2] for r in rows[1:]}
        assert "Conv" in types
        shares = sum(float(r[3]) for r in rows[1:])
        assert shares == pytest.approx(1.0, abs=1e-3)


class TestMetricsCsv:
    def test_columns(self):
        rows_in = gpu_metric_profile(
            configs={"Conv5": TABLE1_CONFIGS["Conv5"]})
        rows = parse(metrics_csv(rows_in))
        assert "achieved_occupancy" in rows[0]
        assert len(rows) == 1 + len(rows_in)


class TestTransferCsv:
    def test_fractions(self):
        rows_in = transfer_overhead_profile(
            configs={"Conv5": TABLE1_CONFIGS["Conv5"]})
        rows = parse(transfer_csv(rows_in))
        assert rows[0][2] == "transfer_fraction"
        for r in rows[1:]:
            assert 0.0 <= float(r[2]) < 1.0
