"""Tests for the implementation audit machinery."""

import pytest

from repro.config import BASE_CONFIG
from repro.core.validation import (AuditReport, audit_all,
                                   audit_implementation)
from repro.frameworks.registry import all_implementations, get_implementation
from repro.frameworks.winograd_ext import CuDNNWinograd


class TestAuditAll:
    @pytest.fixture(scope="class")
    def reports(self):
        return audit_all(BASE_CONFIG)

    def test_all_seven_pass(self, reports):
        for r in reports:
            assert r.ok, r.render()

    def test_every_report_ran_checks(self, reports):
        for r in reports:
            assert len(r.checks) >= 6

    def test_render(self, reports):
        assert "OK" in reports[0].render()


class TestAuditSingle:
    def test_extension_adapter_passes(self):
        cfg = BASE_CONFIG.scaled(kernel_size=3)
        report = audit_implementation(CuDNNWinograd(), cfg)
        assert report.ok, report.render()

    def test_unsupported_config_reported(self):
        report = audit_implementation(get_implementation("fbfft"),
                                      BASE_CONFIG.scaled(stride=2))
        assert not report.ok
        assert "supports-config" in report.failures[0]

    def test_failure_rendering(self):
        r = AuditReport(implementation="x", config=BASE_CONFIG)
        r.record("check-a", True)
        r.record("check-b", False, "went wrong")
        assert not r.ok
        out = r.render()
        assert "FAILED" in out and "went wrong" in out

    def test_fft_arithmetic_advantage_checked(self):
        """The audit itself verifies the FFT strategy's raison d'etre:
        fewer FLOPs than direct at k = 11."""
        report = audit_implementation(get_implementation("fbfft"),
                                      BASE_CONFIG)
        assert "fft-beats-direct-arithmetic" in report.checks
        assert report.ok
