"""Tests for the per-layer implementation advisor / oracle mix."""

import pytest

from repro.core.layer_advisor import (conv_configs_of, oracle_mix,
                                      per_layer_choices)
from repro.gpusim.occupancy import optimal_block_size
from repro.gpusim.device import K40C
from repro.nn.models import alexnet, lenet5, model_registry


@pytest.fixture(scope="module")
def alexnet_report():
    return oracle_mix("AlexNet", alexnet(rng=0), (128, 3, 227, 227))


class TestConvConfigsOf:
    def test_alexnet_five_convs(self):
        configs = conv_configs_of(alexnet(rng=0), (128, 3, 227, 227))
        assert len(configs) == 5
        assert configs[0][1].tuple5 == (128, 227, 96, 11, 4)

    def test_lenet_two_convs(self):
        configs = conv_configs_of(lenet5(rng=0), (32, 1, 32, 32))
        assert [n for n, _ in configs] == ["conv1", "conv2"]


class TestPerLayerChoices:
    def test_all_layers_choose_their_winner(self, alexnet_report):
        for c in alexnet_report.choices:
            assert c.winner in c.times
            assert c.times[c.winner] == min(c.times.values())

    def test_strided_conv1_excludes_fft(self, alexnet_report):
        conv1 = alexnet_report.choices[0]
        assert "fbfft" not in conv1.times     # stride 4
        assert "Theano-fft" not in conv1.times

    def test_small_kernel_layers_pick_fft_or_winograd_regime(self, alexnet_report):
        """AlexNet's 3x3/5x5 stride-1 layers all pick an FFT winner in
        this model (small inputs, many channels)."""
        for c in alexnet_report.choices[1:]:
            assert c.winner == "fbfft"


class TestOracleMix:
    def test_oracle_never_slower_than_best_single(self, alexnet_report):
        assert alexnet_report.oracle_total <= alexnet_report.best_single_total
        assert alexnet_report.oracle_speedup >= 1.0

    def test_alexnet_mix_saves_substantially(self, alexnet_report):
        """Strided conv1 + FFT-friendly tail: the mix wins >1.3x."""
        assert alexnet_report.oracle_speedup > 1.3

    def test_single_totals_only_universal_impls(self, alexnet_report):
        # FFT impls can't run conv1, so they can't be 'single' choices.
        assert "fbfft" not in alexnet_report.single_totals
        assert "cuDNN" in alexnet_report.single_totals

    def test_render(self, alexnet_report):
        out = alexnet_report.render()
        assert "oracle mix" in out and "winner" in out

    def test_vgg_oracle_close_to_fbfft(self):
        ctor, shape = model_registry()["VGG-16"]
        rep = oracle_mix("VGG-16", ctor(rng=0), (64,) + shape)
        # All layers stride-1 3x3: fbfft is near-universal, mix gains
        # little.
        assert rep.oracle_speedup < 1.2


class TestOptimalBlockSize:
    def test_prefers_full_occupancy(self):
        assert optimal_block_size(K40C, 16, 0) in (128, 256)

    def test_respects_register_budget(self):
        block = optimal_block_size(K40C, 116, 16384)
        # Must be launchable.
        from repro.gpusim.occupancy import occupancy
        occupancy(K40C, block, 116, 16384)

    def test_unlaunchable_budget_raises(self):
        with pytest.raises(ValueError):
            optimal_block_size(K40C, 255, 48 * 1024, candidates=(1024,))
