"""Tests for the memory-timeline analysis."""

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.core.memory_timeline import (dominant_allocation, memory_timeline)
from repro.frameworks.registry import get_implementation


class TestMemoryTimeline:
    @pytest.fixture(scope="class")
    def fbfft_tl(self):
        return memory_timeline(get_implementation("fbfft"), BASE_CONFIG)

    def test_footprint_monotone_during_allocation(self, fbfft_tl):
        footprints = [e.in_use_bytes for e in fbfft_tl.events]
        assert footprints == sorted(footprints)

    def test_peak_matches_fig5_machinery(self, fbfft_tl):
        impl = get_implementation("fbfft")
        # peak_memory_bytes includes the CUDA-context baseline; the
        # timeline starts from zero.
        from repro.frameworks.calibration import CONTEXT_BYTES
        assert fbfft_tl.peak_bytes == (
            impl.peak_memory_bytes(BASE_CONFIG) - CONTEXT_BYTES)

    def test_fbfft_dominant_allocation_is_spectra_or_pool(self, fbfft_tl):
        dom = dominant_allocation(fbfft_tl)
        assert dom.tag in ("frequency_spectra", "buffer_pool")

    def test_caffe_dominant_is_activations(self):
        tl = memory_timeline(get_implementation("caffe"),
                             BASE_CONFIG.scaled(batch=256))
        assert dominant_allocation(tl).tag in ("output", "output_grad")

    def test_headroom(self, fbfft_tl):
        assert fbfft_tl.headroom_bytes == (
            fbfft_tl.capacity_bytes - fbfft_tl.peak_bytes)
        assert fbfft_tl.headroom_bytes > 0

    def test_oom_recorded_not_raised(self):
        impl = get_implementation("fbfft")
        huge = ConvConfig(batch=2048, input_size=256, filters=256,
                          kernel_size=11, channels=3)
        tl = memory_timeline(impl, huge)
        assert tl.oom
        assert tl.events[-1].tag.endswith("(OOM)")

    def test_render(self, fbfft_tl):
        out = fbfft_tl.render()
        assert "fbfft" in out and "MB" in out

    def test_peak_event(self, fbfft_tl):
        assert fbfft_tl.peak_event().in_use_bytes == max(
            e.in_use_bytes for e in fbfft_tl.events)
