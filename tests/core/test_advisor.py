"""Tests for the implementation advisor."""

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.core.advisor import Advisor


@pytest.fixture(scope="module")
def advisor():
    return Advisor()


class TestEvaluate:
    def test_all_candidates_listed(self, advisor):
        cands = advisor.evaluate(BASE_CONFIG)
        assert len(cands) == 7

    def test_feasible_sorted_by_time(self, advisor):
        cands = [c for c in advisor.evaluate(BASE_CONFIG) if c.feasible]
        times = [c.time_s for c in cands]
        assert times == sorted(times)

    def test_unsupported_marked(self, advisor):
        cands = advisor.evaluate(BASE_CONFIG.scaled(stride=2))
        infeasible = {c.implementation for c in cands if not c.supported}
        assert infeasible == {"fbfft", "Theano-fft"}


class TestRecommend:
    def test_large_kernel_prefers_fft(self, advisor):
        """Paper summary: fbfft for large kernels."""
        rec = advisor.recommend(BASE_CONFIG)  # k = 11
        assert rec.best == "fbfft"
        assert "FFT" in rec.rationale or "fft" in rec.rationale

    def test_small_kernel_prefers_cudnn(self, advisor):
        """Paper summary: cuDNN for small kernels."""
        rec = advisor.recommend(BASE_CONFIG.scaled(kernel_size=3))
        assert rec.best == "cuDNN"

    def test_stride_rules_out_fft(self, advisor):
        rec = advisor.recommend(BASE_CONFIG.scaled(stride=2))
        assert rec.best not in ("fbfft", "Theano-fft")
        assert "stride" in rec.rationale

    def test_memory_budget_changes_pick(self, advisor):
        """Paper summary: cuda-convnet2 when memory is limited."""
        free = advisor.recommend(BASE_CONFIG)
        tight = advisor.recommend(BASE_CONFIG, memory_budget=400 * 2**20)
        assert free.best == "fbfft"
        assert tight.best == "cuda-convnet2"

    def test_impossible_budget(self, advisor):
        rec = advisor.recommend(BASE_CONFIG, memory_budget=1)
        assert rec.best is None

    def test_render(self, advisor):
        out = advisor.recommend(BASE_CONFIG).render()
        assert "Recommendation" in out
        assert "fbfft" in out


class TestPlan:
    """The cacheable ranking entry point used by repro.serve."""

    def test_plan_matches_recommend(self, advisor):
        plan = advisor.plan(BASE_CONFIG)
        rec = advisor.recommend(BASE_CONFIG)
        assert plan.implementation == rec.best
        best = [c for c in rec.candidates if c.feasible][0]
        assert plan.time_s == best.time_s
        assert plan.peak_memory_bytes == best.peak_memory_bytes

    def test_plan_respects_budget(self, advisor):
        plan = advisor.plan(BASE_CONFIG, memory_budget=400 * 2**20)
        assert plan.implementation == "cuda-convnet2"

    def test_infeasible_returns_none(self, advisor):
        assert advisor.plan(BASE_CONFIG, memory_budget=1) is None

    def test_plan_is_a_value_object(self, advisor):
        a = advisor.plan(BASE_CONFIG)
        b = advisor.plan(BASE_CONFIG)
        assert a == b and hash(a) == hash(b)

    def test_invalid_plan_time_rejected(self):
        from repro.core.advisor import RankedPlan
        with pytest.raises(ValueError):
            RankedPlan(implementation="x", time_s=0.0, peak_memory_bytes=0)
