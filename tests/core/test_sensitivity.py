"""Tests for the device zoo and sensitivity analysis."""

import pytest

from repro.core.sensitivity import (bandwidth_sensitivity, device_comparison,
                                    headlines, perturb,
                                    render_device_comparison)
from repro.gpusim.device import DEVICES, K20X, K40C, M40, TITAN_X


class TestDeviceZoo:
    def test_four_devices(self):
        # >= 4: the devices registry (repro.devices) publishes extra
        # profiles (e.g. pascal) into DEVICES once imported.
        assert len(DEVICES) >= 4
        assert "Tesla K40c" in DEVICES

    def test_k20x_is_smaller_k40(self):
        assert K20X.peak_flops < K40C.peak_flops
        assert K20X.global_memory_bytes == 6 * 2**30

    def test_maxwell_parts_share_sm_shape(self):
        assert TITAN_X.cores_per_sm == M40.cores_per_sm == 128
        assert TITAN_X.peak_flops > K40C.peak_flops


class TestHeadlines:
    @pytest.fixture(scope="class")
    def rows(self):
        return device_comparison()

    def test_qualitative_conclusions_robust(self, rows):
        """The paper's rankings hold on every modelled device: fbfft
        fastest at the base config, cuda-convnet2 least memory, fbfft
        most memory."""
        for r in rows:
            assert r.base_winner == "fbfft"
            assert r.memory_low == "cuda-convnet2"
            assert r.memory_high == "fbfft"

    def test_crossover_exists_everywhere(self, rows):
        for r in rows:
            assert r.kernel_crossover is not None
            assert 3 <= r.kernel_crossover <= 9

    def test_render(self, rows):
        out = render_device_comparison(rows)
        assert "K40c" in out and "crossover" in out


class TestPerturbation:
    def test_more_bandwidth_earlier_crossover(self):
        """fbfft is bandwidth-heavy: feeding it more DRAM bandwidth
        moves the kernel-size crossover earlier."""
        results = bandwidth_sensitivity((0.5, 1.0, 2.0))
        crossovers = [r.kernel_crossover for r in results]
        assert crossovers[0] >= crossovers[1] >= crossovers[2]

    def test_clock_scaling_preserves_winner(self):
        assert perturb("clock_hz", 1.5).base_winner == "fbfft"

    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            perturb("magic", 2.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            perturb("clock_hz", 0.0)
