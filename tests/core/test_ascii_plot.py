"""Tests for the ASCII chart renderer."""

import pytest

from repro.core.report import ascii_plot


class TestAsciiPlot:
    def test_markers_for_each_series(self):
        out = ascii_plot([1, 2, 3], {"one": [1.0, 2.0, 3.0],
                                     "two": [3.0, 2.0, 1.0]})
        assert "a=one" in out and "b=two" in out
        assert "a" in out.splitlines()[1] or any(
            "a" in line for line in out.splitlines())

    def test_none_points_absent(self):
        out = ascii_plot([1, 2, 3], {"s": [1.0, None, 3.0]})
        # Two plotted points only.
        body = "\n".join(l.split("|", 1)[1] for l in out.splitlines()
                         if "|" in l)
        assert body.count("a") == 2

    def test_extremes_on_top_and_bottom_rows(self):
        out = ascii_plot([0, 1], {"s": [0.0, 10.0]}, height=6)
        lines = [l for l in out.splitlines() if "|" in l]
        assert "a" in lines[0]    # max on top row
        assert "a" in lines[-1]   # min on bottom row

    def test_log_scale(self):
        out = ascii_plot([1, 2, 3], {"s": [1.0, 10.0, 100.0]}, logy=True,
                         height=5)
        lines = [l for l in out.splitlines() if "|" in l]
        # log-spaced: middle point lands on the middle row.
        assert "a" in lines[2]

    def test_title_and_axis_labels(self):
        out = ascii_plot([2, 13], {"s": [5.0, 9.0]}, title="T")
        assert out.splitlines()[0] == "T"
        assert "2" in out and "13" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"s": [None, None]})
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"s": [1.0, 2.0]}, width=4)

    def test_sweep_result_render_plot(self):
        from repro.core.runtime_comparison import runtime_sweep
        out = runtime_sweep("stride").render_plot()
        assert "fbfft" in out
        assert "|" in out

    def test_fig3_experiment_includes_plot(self):
        from repro import run_experiment
        _, text = run_experiment("fig3e")
        assert "+--" in text  # the chart's x-axis
