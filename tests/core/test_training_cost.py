"""Tests for the whole-run training-cost estimator and ablations."""

import pytest

from repro.core.ablations import ABLATIONS, run_all
from repro.core.training_cost import estimate_training, multi_gpu_projection
from repro.workloads.datasets import CIFAR10, IMAGENET, MNIST


class TestTrainingEstimate:
    @pytest.fixture(scope="class")
    def alexnet_imagenet(self):
        return estimate_training("AlexNet", IMAGENET, batch=128, epochs=90)

    def test_iteration_arithmetic(self, alexnet_imagenet):
        e = alexnet_imagenet
        assert e.iterations_per_epoch == -(-IMAGENET.train_images // 128)
        assert e.epoch_time_s == pytest.approx(
            e.iteration_time_s * e.iterations_per_epoch)
        assert e.total_time_s == pytest.approx(e.epoch_time_s * 90)

    def test_paper_motivation_scale(self, alexnet_imagenet):
        """Section I: training large CNNs takes days-to-weeks.  A
        90-epoch AlexNet/ImageNet run on one K40c must land in the
        single-digit-days to few-weeks range (history: ~6 days)."""
        assert 1.0 < alexnet_imagenet.total_days < 30.0

    def test_vgg_costs_more_than_alexnet(self):
        a = estimate_training("AlexNet", IMAGENET, batch=64, epochs=1)
        v = estimate_training("VGG", IMAGENET, batch=64, epochs=1)
        assert v.total_time_s > 2 * a.total_time_s

    def test_small_dataset_is_fast(self):
        e = estimate_training("LeNet-5", MNIST, batch=128, epochs=10)
        assert e.total_days < 0.5

    def test_implementation_changes_cost(self):
        fast = estimate_training("AlexNet", CIFAR10, batch=128, epochs=1,
                                 implementation="cudnn")
        slow = estimate_training("AlexNet", CIFAR10, batch=128, epochs=1,
                                 implementation="theano-fft")
        assert slow.total_time_s > fast.total_time_s

    def test_render(self, alexnet_imagenet):
        out = alexnet_imagenet.render()
        assert "AlexNet" in out and "days" in out

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            estimate_training("ResNet", MNIST)

    def test_validation(self):
        with pytest.raises(Exception):
            estimate_training("AlexNet", MNIST, batch=0)


class TestMultiGpuProjection:
    def test_more_gpus_fewer_days(self):
        e = estimate_training("AlexNet", CIFAR10, batch=128, epochs=1)
        d1 = e.total_days
        d4, eff4 = multi_gpu_projection(e, 4)
        assert d4 < d1
        assert 0 < eff4 <= 1.0

    def test_googlenet_scales_better_than_vgg(self):
        """Fewer parameters -> cheaper all-reduce -> better efficiency
        (the 'one weird trick' effect)."""
        g = estimate_training("GoogLeNet", CIFAR10, batch=64, epochs=1)
        v = estimate_training("VGG", CIFAR10, batch=64, epochs=1)
        _, eff_g = multi_gpu_projection(g, 8)
        _, eff_v = multi_gpu_projection(v, 8)
        assert eff_g > eff_v


class TestAblations:
    @pytest.fixture(scope="class")
    def results(self):
        return {r.name: r for r in run_all()}

    def test_all_registered_ablations_run(self, results):
        assert len(results) == len(ABLATIONS)

    def test_gradient_buffer_ablation_shows_gap(self, results):
        r = next(v for k, v in results.items() if "gradient-buffer" in k)
        assert 1.5 < r.ratio < 2.2

    def test_fft_padding_ablation(self, results):
        r = next(v for k, v in results.items() if "FFT padding" in k)
        assert r.ablated == 256 and r.baseline < 200

    def test_batch_tiling_ablation(self, results):
        r = next(v for k, v in results.items() if "batch tiling" in k)
        assert r.ratio > 1.2

    def test_transfer_ablation_hides_everything(self, results):
        r = next(v for k, v in results.items() if "transfer" in k)
        assert r.ablated == pytest.approx(0.0, abs=1e-6)
        assert r.baseline > 0

    def test_occupancy_ablation(self, results):
        r = next(v for k, v in results.items() if "occupancy" in k)
        assert r.ratio > 1.5  # higher-occupancy impl is *slower*

    def test_render(self, results):
        for r in results.values():
            assert r.unit in r.render()
