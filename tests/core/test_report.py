"""Tests for the ASCII report renderers."""

import pytest

from repro.core.report import bar_breakdown, series, table


class TestTable:
    def test_basic_rendering(self):
        out = table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in out

    def test_title(self):
        out = table(["h"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            table([], [])

    def test_column_alignment(self):
        out = table(["name", "v"], [["long-name-here", 1], ["x", 22]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[3])  # header and row same width


class TestSeries:
    def test_missing_values_render_dash(self):
        out = series("k", [1, 2], {"impl": [1.0, None]})
        assert "-" in out.splitlines()[-1]

    def test_all_columns_present(self):
        out = series("x", [1], {"a": [1.0], "b": [2.0]})
        assert "a" in out and "b" in out


class TestBarBreakdown:
    def test_sorted_desc(self):
        out = bar_breakdown({"small": 0.1, "big": 0.9})
        lines = out.splitlines()
        assert "big" in lines[0]
        assert "small" in lines[1]

    def test_percentages(self):
        out = bar_breakdown({"only": 1.0})
        assert "100.00%" in out

    def test_bar_lengths_proportional(self):
        out = bar_breakdown({"a": 0.75, "b": 0.25}, width=40)
        bars = [line.split("|")[1] for line in out.splitlines()]
        assert len(bars[0]) == 3 * len(bars[1])
