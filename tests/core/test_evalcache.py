"""Tests for the shared analytic-evaluation cache."""

import json
import threading

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.core import evalcache
from repro.core.evalcache import (EvalCache, EvalRecord, cache_key,
                                  cacheable, compute_record, config_key,
                                  evaluate)
from repro.core.parallel import SweepExecutor
from repro.frameworks.registry import (resolve_implementation,
                                       shared_implementations)
from repro.gpusim.device import DEVICES, K40C, DeviceSpec

SMALL = ConvConfig(batch=16, input_size=32, filters=16, kernel_size=3,
                   stride=1, channels=3)


@pytest.fixture
def cudnn():
    return resolve_implementation("cudnn")


class TestKeys:
    def test_equal_but_distinct_configs_key_identically(self):
        a = ConvConfig(batch=64, input_size=128, filters=64, kernel_size=11,
                       stride=1, channels=3)
        b = ConvConfig(batch=64, input_size=128, filters=64, kernel_size=11,
                       stride=1, channels=3)
        assert a is not b
        assert config_key(a) == config_key(b)
        assert cache_key("cudnn", a, K40C) == cache_key("cudnn", b, K40C)

    def test_every_config_field_is_keyed(self):
        base = cache_key("cudnn", SMALL, K40C)
        for field in ("batch", "input_size", "filters", "kernel_size",
                      "stride", "channels", "padding"):
            changed = SMALL.scaled(**{field: getattr(SMALL, field) + 1})
            assert cache_key("cudnn", changed, K40C) != base

    def test_implementation_and_device_are_keyed(self):
        assert (cache_key("cudnn", SMALL, K40C)
                != cache_key("caffe", SMALL, K40C))
        other = next(d for d in DEVICES.values() if d.name != K40C.name)
        assert (cache_key("cudnn", SMALL, K40C)
                != cache_key("cudnn", SMALL, other))

    def test_key_embeds_version(self):
        assert f"v{evalcache.EVALCACHE_VERSION}|" in cache_key(
            "cudnn", SMALL, K40C)

    def test_device_accepts_name_or_spec(self):
        assert (cache_key("cudnn", SMALL, K40C)
                == cache_key("cudnn", SMALL, K40C.name))


class TestCounters:
    def test_miss_then_hit(self, cudnn):
        cache = EvalCache()
        first = cache.evaluate(cudnn, SMALL)
        second = cache.evaluate(cudnn, SMALL)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1
        assert len(cache) == 1
        assert cache.hit_rate == 0.5

    def test_stats_shape(self, cudnn):
        cache = EvalCache()
        cache.evaluate(cudnn, SMALL)
        assert cache.stats() == {"entries": 1, "hits": 0, "misses": 1,
                                 "hit_rate": 0.0}

    def test_peek_does_not_count(self, cudnn):
        cache = EvalCache()
        key = cache_key(cudnn.name, SMALL, K40C)
        assert cache.peek(key) is None
        assert cache.misses == 0

    def test_clear_resets_everything(self, cudnn):
        cache = EvalCache()
        cache.evaluate(cudnn, SMALL)
        cache.evaluate(cudnn, SMALL)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_distinct_configs_are_distinct_entries(self, cudnn):
        cache = EvalCache()
        cache.evaluate(cudnn, SMALL)
        cache.evaluate(cudnn, SMALL.scaled(batch=32))
        assert len(cache) == 2 and cache.misses == 2


class TestRecords:
    def test_supported_record_is_complete(self, cudnn):
        record = compute_record(cudnn, SMALL)
        assert record.supported and not record.oom
        assert record.time_s > 0
        assert record.peak_memory_bytes > 0
        assert record.kernels
        summary = record.summary(top_n=5)
        assert 0 < summary.achieved_occupancy <= 1

    def test_unsupported_record(self):
        fbfft = resolve_implementation("fbfft")
        record = compute_record(fbfft, SMALL.scaled(stride=2))
        assert not record.supported
        assert record.time_s is None and record.kernels == ()
        with pytest.raises(ValueError):
            record.summary()

    def test_record_matches_direct_model_run(self, cudnn):
        record = compute_record(cudnn, SMALL)
        profile = cudnn.profile_iteration(SMALL)
        assert record.time_s == profile.total_time_s
        assert record.peak_memory_bytes == cudnn.peak_memory_bytes(SMALL)


class TestDiskRoundTrip:
    def _populated(self, cudnn):
        cache = EvalCache()
        cache.evaluate(cudnn, SMALL)
        cache.evaluate(cudnn, SMALL.scaled(kernel_size=5))
        cache.evaluate(resolve_implementation("fbfft"), SMALL.scaled(stride=2))
        return cache

    def test_round_trip_preserves_records(self, tmp_path, cudnn):
        cache = self._populated(cudnn)
        path = str(tmp_path / "store.json")
        cache.save(path)
        fresh = EvalCache()
        assert fresh.load(path) == 3
        for key in cache._store:
            assert fresh.peek(key).to_dict() == cache.peek(key).to_dict()

    def test_loaded_record_supports_summaries(self, tmp_path, cudnn):
        cache = self._populated(cudnn)
        path = str(tmp_path / "store.json")
        cache.save(path)
        fresh = EvalCache(path=path)
        key = cache_key(cudnn.name, SMALL, K40C)
        original = cache.peek(key).summary(top_n=5)
        loaded = fresh.peek(key).summary(top_n=5)
        assert loaded.achieved_occupancy == pytest.approx(
            original.achieved_occupancy)
        assert loaded.ipc == pytest.approx(original.ipc)

    def test_constructor_warm_start_serves_hits(self, tmp_path, cudnn):
        cache = self._populated(cudnn)
        path = str(tmp_path / "store.json")
        cache.save(path)
        warm = EvalCache(path=path)
        warm.evaluate(cudnn, SMALL)
        assert warm.hits == 1 and warm.misses == 0

    def test_version_mismatch_loads_nothing(self, tmp_path, cudnn):
        cache = self._populated(cudnn)
        path = str(tmp_path / "store.json")
        cache.save(path)
        with open(path) as fh:
            payload = json.load(fh)
        payload["version"] = evalcache.EVALCACHE_VERSION + 1
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert EvalCache().load(path) == 0

    def test_save_requires_a_path(self):
        with pytest.raises(ValueError):
            EvalCache().save()


class TestPoisoningGuard:
    def test_registry_points_are_cacheable(self, cudnn):
        assert cacheable(cudnn, K40C)

    def test_impostor_class_is_not(self, cudnn):
        class Impostor(type(cudnn)):
            pass

        assert not cacheable(Impostor(), K40C)

    def test_adhoc_device_reusing_a_name_is_not(self, cudnn):
        from dataclasses import replace
        fake = replace(K40C, sm_count=K40C.sm_count * 2)
        assert not cacheable(cudnn, fake)

    def test_uncacheable_point_bypasses_store(self, cudnn):
        class Impostor(type(cudnn)):
            pass

        cache = EvalCache()
        record = evaluate(Impostor(), SMALL, cache=cache)
        assert record.supported
        assert len(cache) == 0 and cache.misses == 0

    def test_disabled_bypasses_store(self, cudnn):
        previous = evalcache.set_cache(EvalCache())
        try:
            record = evaluate(cudnn, SMALL, cache=evalcache.DISABLED)
            assert record.supported
            assert len(evalcache.get_cache()) == 0
        finally:
            evalcache.set_cache(previous)


class TestThreadSafety:
    def test_concurrent_evaluate_computes_once_per_point(self, cudnn):
        cache = EvalCache()
        configs = [SMALL.scaled(batch=16 * (1 + i % 4)) for i in range(16)]
        results = [None] * len(configs)

        def worker(i):
            results[i] = cache.evaluate(cudnn, configs[i])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(configs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 4
        for cfg, record in zip(configs, results):
            assert record.to_dict() == cache.evaluate(cudnn, cfg).to_dict()

    def test_parallel_executor_shares_one_store(self):
        cache = EvalCache()
        impls = shared_implementations()
        configs = [SMALL.scaled(batch=16 * (1 + i)) for i in range(3)]
        executor = SweepExecutor(workers=4, kind="thread")
        grid = executor.map_grid(impls, configs, K40C, cache=cache)
        expected = len(impls) * len(configs)
        assert len(cache) == expected
        assert cache.misses == expected
        # a rerun is all hits, no recomputation
        again = executor.map_grid(impls, configs, K40C, cache=cache)
        assert cache.misses == expected
        for name in grid:
            assert [r.time_s for r in again[name]] == \
                   [r.time_s for r in grid[name]]


class TestSharedDefault:
    def test_pipelines_share_the_default_store(self):
        from repro.core.advisor import Advisor
        previous = evalcache.set_cache(EvalCache())
        try:
            Advisor().evaluate(BASE_CONFIG)
            store = evalcache.get_cache()
            assert len(store) == 7
            hits_before = store.hits
            Advisor().evaluate(BASE_CONFIG)     # a different Advisor instance
            assert len(store) == 7
            assert store.hits > hits_before
        finally:
            evalcache.set_cache(previous)


class TestQuarantine:
    """A damaged disk store must never take the process down."""

    def _saved(self, tmp_path, cudnn):
        cache = EvalCache()
        cache.evaluate(cudnn, SMALL)
        path = str(tmp_path / "store.json")
        cache.save(path)
        return path

    def test_truncated_store_quarantines_and_warms_empty(self, tmp_path,
                                                         cudnn):
        path = self._saved(tmp_path, cudnn)
        blob = open(path).read()
        with open(path, "w") as fh:
            fh.write(blob[:len(blob) // 2])   # cut mid-JSON
        fresh = EvalCache()
        with pytest.warns(UserWarning, match="quarantined"):
            assert fresh.load(path) == 0
        import os
        assert not os.path.exists(path)
        assert os.path.exists(path + ".bad")
        # The store is usable (and saveable) after the warm start.
        fresh.evaluate(cudnn, SMALL)
        fresh.save(path)

    def test_garbage_json_quarantines(self, tmp_path, cudnn):
        path = str(tmp_path / "store.json")
        with open(path, "w") as fh:
            fh.write("not json at all {{{")
        with pytest.warns(UserWarning, match="quarantined"):
            assert EvalCache().load(path) == 0

    def test_wrong_root_type_quarantines(self, tmp_path):
        path = str(tmp_path / "store.json")
        with open(path, "w") as fh:
            json.dump(["a", "list"], fh)
        with pytest.warns(UserWarning, match="quarantined"):
            assert EvalCache().load(path) == 0

    def test_version_mismatch_quarantines(self, tmp_path, cudnn):
        path = self._saved(tmp_path, cudnn)
        with open(path) as fh:
            payload = json.load(fh)
        payload["version"] = evalcache.EVALCACHE_VERSION + 1
        with open(path, "w") as fh:
            json.dump(payload, fh)
        import os
        with pytest.warns(UserWarning, match="quarantined"):
            assert EvalCache().load(path) == 0
        assert os.path.exists(path + ".bad")

    def test_missing_file_is_not_quarantined(self, tmp_path):
        path = str(tmp_path / "absent.json")
        with pytest.warns(UserWarning, match="unreadable"):
            assert EvalCache().load(path) == 0

    def test_constructor_warm_start_survives_damage(self, tmp_path, cudnn):
        path = self._saved(tmp_path, cudnn)
        with open(path, "w") as fh:
            fh.write("{")
        with pytest.warns(UserWarning):
            cache = EvalCache(path=path)
        cache.evaluate(cudnn, SMALL)
        assert cache.misses == 1
