"""Tests for the analysis-harness modules (Figs. 2-7 machinery).

These exercise the harness plumbing: result structure, rendering,
support/OOM handling, experiment registry.  The *scientific* claims are
asserted separately in tests/test_acceptance.py.
"""

import pytest

from repro.config import BASE_CONFIG, TABLE1_CONFIGS
from repro.core.gpu_metrics import (gpu_metric_profile, render_metric_rows,
                                    table2_resources)
from repro.core.hotspot_kernels import hotspot_kernel_analysis
from repro.core.hotspot_layers import hotspot_layer_analysis
from repro.core.memory_comparison import memory_sweep
from repro.core.runtime_comparison import runtime_sweep
from repro.core.transfer_overhead import (render_transfer_rows,
                                          transfer_overhead_profile)
from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.frameworks.registry import get_implementation


@pytest.fixture(scope="module")
def kernel_sweep():
    return runtime_sweep("kernel")


@pytest.fixture(scope="module")
def stride_sweep():
    return runtime_sweep("stride")


class TestRuntimeSweep:
    def test_all_seven_series(self, kernel_sweep):
        assert len(kernel_sweep.times) == 7

    def test_x_axis(self, kernel_sweep):
        assert kernel_sweep.xs == list(range(2, 14))

    def test_fft_impls_missing_beyond_stride_1(self, stride_sweep):
        for impl in ("fbfft", "Theano-fft"):
            col = stride_sweep.times[impl]
            assert col[0] is not None
            assert all(t is None for t in col[1:])

    def test_fastest_at(self, stride_sweep):
        # At stride 2 the winner must be a non-FFT implementation.
        assert stride_sweep.fastest_at(1) not in ("fbfft", "Theano-fft")

    def test_speedup_none_when_unsupported(self, stride_sweep):
        assert stride_sweep.speedup("fbfft", "cuDNN", 1) is None

    def test_render_contains_units(self, kernel_sweep):
        assert "ms" in kernel_sweep.render()

    def test_unknown_sweep(self):
        with pytest.raises(KeyError):
            runtime_sweep("bogus")


class TestMemorySweep:
    def test_structure(self):
        res = memory_sweep("stride")
        assert set(res.peaks) == set(res.ooms)
        assert len(res.xs) == 4

    def test_render(self):
        assert "MB" in memory_sweep("stride").render()


class TestHotspotLayers:
    @pytest.fixture(scope="class")
    def results(self):
        return hotspot_layer_analysis(models=["AlexNet"])

    def test_single_model_selection(self, results):
        assert len(results) == 1
        assert results[0].model == "AlexNet"

    def test_shares_normalised(self, results):
        assert sum(results[0].shares.values()) == pytest.approx(1.0)

    def test_render(self, results):
        out = results[0].render()
        assert "AlexNet" in out and "%" in out

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            hotspot_layer_analysis(models=["ResNet"])


class TestHotspotKernels:
    @pytest.fixture(scope="class")
    def results(self):
        return hotspot_kernel_analysis(BASE_CONFIG)

    def test_all_implementations_present(self, results):
        assert len(results) == 7

    def test_shares_normalised(self, results):
        for r in results:
            assert sum(r.role_shares.values()) == pytest.approx(1.0)
            assert sum(r.kernel_shares.values()) == pytest.approx(1.0)

    def test_dominant_role_exists(self, results):
        for r in results:
            assert r.dominant_role() in r.role_shares


class TestGpuMetrics:
    @pytest.fixture(scope="class")
    def rows(self):
        return gpu_metric_profile(configs={"Conv5": TABLE1_CONFIGS["Conv5"]})

    def test_rows_per_implementation(self, rows):
        assert len(rows) == 7

    def test_metric_bounds(self, rows):
        for r in rows:
            s = r.summary
            assert 0 < s.achieved_occupancy <= 1
            assert 0 < s.warp_execution_efficiency <= 1
            assert 0 <= s.gld_efficiency <= 1
            assert 0 <= s.gst_efficiency <= 1
            assert s.ipc > 0
            assert s.shared_efficiency > 0

    def test_render(self, rows):
        out = render_metric_rows(rows)
        assert "Occupancy" in out and "IPC" in out

    def test_table2_render(self):
        out = table2_resources()
        assert "116" in out  # cuda-convnet2's registers
        assert "cuDNN" in out


class TestTransferOverhead:
    def test_rows_and_render(self):
        rows = transfer_overhead_profile(
            configs={"Conv5": TABLE1_CONFIGS["Conv5"]})
        assert len(rows) == 7
        for r in rows:
            assert 0.0 <= r.transfer_fraction < 1.0
        assert "Conv5" in render_transfer_rows(rows)


class TestExperimentRegistry:
    def test_all_sixteen_artifacts(self):
        assert len(EXPERIMENTS) == 16
        assert {"fig2", "fig4", "fig6", "fig7", "table1", "table2"} <= set(EXPERIMENTS)
        for sweep in "abcde":
            assert f"fig3{sweep}" in EXPERIMENTS
            assert f"fig5{sweep}" in EXPERIMENTS

    def test_run_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    @pytest.mark.parametrize("exp_id", ["table1", "table2", "fig3e", "fig5e"])
    def test_cheap_experiments_run(self, exp_id):
        result, text = run_experiment(exp_id)
        assert result is not None
        assert isinstance(text, str) and text
