"""Tests for the parallel sweep executor."""

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.core.evalcache import EvalCache
from repro.core.parallel import SweepExecutor, _chunked, make_executor
from repro.frameworks.registry import (resolve_implementation,
                                       shared_implementations)
from repro.gpusim.device import K40C

SMALL = ConvConfig(batch=16, input_size=32, filters=16, kernel_size=3,
                   stride=1, channels=3)


class TestConstruction:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SweepExecutor(kind="fibers")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)

    def test_single_worker_is_serial(self):
        assert SweepExecutor(workers=1, kind="auto").kind == "serial"
        assert SweepExecutor(workers=1, kind="thread").kind == "serial"

    def test_make_executor_defaults_to_serial(self):
        assert make_executor(None).kind == "serial"
        assert make_executor(None).workers == 1

    def test_make_executor_passes_workers_through(self):
        ex = make_executor(4, kind="thread")
        assert ex.workers == 4 and ex.kind == "thread"


class TestChunking:
    def test_covers_everything_in_order(self):
        items = list(range(10))
        chunks = _chunked(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == 3

    def test_no_empty_chunks(self):
        assert [len(c) for c in _chunked([1, 2], 8)] == [1, 1]


class TestDeterminism:
    @pytest.fixture(scope="class")
    def points(self):
        impls = shared_implementations()
        configs = [SMALL.scaled(batch=16 * (1 + i)) for i in range(3)]
        return [(impl, cfg, K40C) for impl in impls for cfg in configs]

    def test_thread_pool_matches_serial(self, points):
        serial = SweepExecutor(workers=1).map_records(
            points, cache=EvalCache())
        threaded = SweepExecutor(workers=4, kind="thread").map_records(
            points, cache=EvalCache())
        assert [r.to_dict() for r in serial] == \
               [r.to_dict() for r in threaded]

    def test_records_come_back_in_input_order(self, points):
        records = SweepExecutor(workers=4, kind="thread").map_records(
            points, cache=EvalCache())
        for (impl, cfg, dev), record in zip(points, records):
            assert record.implementation == impl.name
            assert record.config == cfg
            assert record.device == dev.name


class TestDedup:
    def test_duplicate_points_compute_once(self):
        cudnn = resolve_implementation("cudnn")
        cache = EvalCache()
        points = [(cudnn, SMALL, K40C)] * 6
        records = SweepExecutor(workers=1).map_records(points, cache=cache)
        assert cache.misses == 1 and len(cache) == 1
        assert all(r is records[0] for r in records)

    def test_cache_spans_batches(self):
        cudnn = resolve_implementation("cudnn")
        cache = EvalCache()
        executor = SweepExecutor(workers=1)
        executor.map_records([(cudnn, SMALL, K40C)], cache=cache)
        executor.map_records([(cudnn, SMALL, K40C)], cache=cache)
        assert cache.misses == 1 and cache.hits == 1

    def test_uncacheable_points_still_evaluate(self):
        cudnn = resolve_implementation("cudnn")

        class Impostor(type(cudnn)):
            pass

        cache = EvalCache()
        points = [(Impostor(), SMALL, K40C), (cudnn, SMALL, K40C)]
        records = SweepExecutor(workers=1).map_records(points, cache=cache)
        assert len(records) == 2
        assert records[0].time_s == pytest.approx(records[1].time_s)
        assert len(cache) == 1   # only the registry point entered the store


class TestMapGrid:
    def test_grid_shape(self):
        impls = shared_implementations()
        configs = [SMALL, SMALL.scaled(batch=32)]
        grid = SweepExecutor(workers=1).map_grid(
            impls, configs, K40C, cache=EvalCache())
        assert set(grid) == {impl.name for impl in impls}
        for records in grid.values():
            assert len(records) == len(configs)

    def test_unsupported_points_carry_none_times(self):
        fbfft = resolve_implementation("fbfft")
        grid = SweepExecutor(workers=1).map_grid(
            [fbfft], [BASE_CONFIG.scaled(stride=2)], K40C,
            cache=EvalCache())
        record = grid["fbfft"][0]
        assert not record.supported and record.time_s is None


class TestPipelineParity:
    def test_runtime_sweep_parallel_matches_serial(self):
        from repro.core.runtime_comparison import runtime_sweep
        serial = runtime_sweep("batch", cache=EvalCache())
        threaded = runtime_sweep("batch", workers=4, cache=EvalCache())
        assert serial.times == threaded.times

    def test_memory_sweep_parallel_matches_serial(self):
        from repro.core.memory_comparison import memory_sweep
        serial = memory_sweep("batch", cache=EvalCache())
        threaded = memory_sweep("batch", workers=4, cache=EvalCache())
        assert serial.peaks == threaded.peaks
        assert serial.ooms == threaded.ooms
