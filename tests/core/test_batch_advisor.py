"""Tests for the largest-batch advisor."""

import pytest

from repro.config import BASE_CONFIG, ConvConfig
from repro.core.batch_advisor import (batch_capacities, fits, max_batch,
                                      render_capacities)
from repro.frameworks.registry import get_implementation


class TestFits:
    def test_small_config_fits(self):
        assert fits(get_implementation("caffe"), BASE_CONFIG)

    def test_huge_config_does_not(self):
        huge = ConvConfig(batch=8192, input_size=256, filters=512,
                          kernel_size=11, channels=3)
        assert not fits(get_implementation("fbfft"), huge)

    def test_unsupported_shape_does_not_fit(self):
        assert not fits(get_implementation("fbfft"),
                        BASE_CONFIG.scaled(stride=2))


class TestMaxBatch:
    @pytest.fixture(scope="class")
    def capacities(self):
        return {r.implementation: r.max_batch
                for r in batch_capacities(BASE_CONFIG)}

    def test_result_fits_and_next_granule_does_not(self, capacities):
        impl = get_implementation("fbfft")
        b = capacities["fbfft"]
        assert fits(impl, BASE_CONFIG.scaled(batch=b))
        assert not fits(impl, BASE_CONFIG.scaled(batch=b + 32))

    def test_granularity_respected(self, capacities):
        for b in capacities.values():
            assert b is None or b % 32 == 0

    def test_memory_ranking_inverts_capacity(self, capacities):
        """The memory-hungry implementations train the smallest
        batches: fbfft < theano-fft < caffe <= torch-cunn."""
        assert capacities["fbfft"] < capacities["Theano-fft"]
        assert capacities["Theano-fft"] < capacities["Caffe"]
        assert capacities["Caffe"] <= capacities["Torch-cunn"]

    def test_ccn2_trains_largest(self, capacities):
        others = [v for k, v in capacities.items() if k != "cuda-convnet2"]
        assert capacities["cuda-convnet2"] >= max(others)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_batch(get_implementation("caffe"), BASE_CONFIG,
                      granularity=0)
        with pytest.raises(ValueError):
            max_batch(get_implementation("caffe"), BASE_CONFIG,
                      limit=16, granularity=32)

    def test_none_when_nothing_fits(self):
        giant = ConvConfig(batch=32, input_size=512, filters=1024,
                           kernel_size=11, channels=64)
        assert max_batch(get_implementation("fbfft"), giant) is None

    def test_render(self, capacities):
        rows = batch_capacities(BASE_CONFIG)
        out = render_capacities(BASE_CONFIG, rows)
        assert "Max batch" in out and "fbfft" in out
