"""Tests for tensor layout conversions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ShapeError
from repro.tensor.layout import (Layout, chwn_to_nchw, convert, nchw_to_chwn,
                                 transpose_bytes)


def small_tensor():
    return arrays(np.float64,
                  st.tuples(st.integers(1, 4), st.integers(1, 4),
                            st.integers(1, 4), st.integers(1, 4)),
                  elements=st.floats(-10, 10))


class TestConvert:
    def test_nchw_to_chwn_moves_axes(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        y = nchw_to_chwn(x)
        assert y.shape == (3, 4, 5, 2)
        assert y[1, 2, 3, 0] == x[0, 1, 2, 3]

    @given(x=small_tensor())
    def test_chwn_roundtrip(self, x):
        assert np.array_equal(chwn_to_nchw(nchw_to_chwn(x)), x)

    @given(x=small_tensor())
    def test_hwbd_roundtrip(self, x):
        y = convert(x, Layout.NCHW, Layout.HWBD)
        back = convert(y, Layout.HWBD, Layout.NCHW)
        assert np.array_equal(back, x)

    def test_identity_conversion(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        assert np.array_equal(convert(x, Layout.NCHW, Layout.NCHW), x)

    def test_bdhw_aliases_nchw(self):
        assert Layout.BDHW is Layout.NCHW

    def test_copy_is_contiguous(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        y = convert(x, Layout.NCHW, Layout.CHWN, copy=True)
        assert y.flags["C_CONTIGUOUS"]

    def test_view_mode_shares_memory(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        y = convert(x, Layout.NCHW, Layout.CHWN, copy=False)
        assert np.shares_memory(x, y)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ShapeError):
            convert(rng.standard_normal((2, 3)), Layout.NCHW, Layout.CHWN)

    def test_hwbd_axis_semantics(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        y = convert(x, Layout.NCHW, Layout.HWBD)
        assert y.shape == (4, 5, 2, 3)
        assert y[1, 2, 0, 1] == x[0, 1, 1, 2]


class TestTransposeBytes:
    def test_read_plus_write(self):
        assert transpose_bytes((2, 3, 4, 5)) == 2 * 120 * 4

    def test_itemsize(self):
        assert transpose_bytes((10,), itemsize=8) == 160
