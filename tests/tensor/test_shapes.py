"""Tests for conv/pool shape arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.tensor.shapes import (conv_input_gradient_size, conv_output_size,
                                 pool_output_size, same_padding)


class TestConvOutputSize:
    @pytest.mark.parametrize("i,k,s,p,expected", [
        (128, 11, 1, 0, 118),
        (227, 11, 4, 0, 55),
        (32, 3, 1, 1, 32),
        (224, 7, 2, 3, 112),
        (5, 5, 1, 0, 1),
        (13, 3, 1, 0, 11),
    ])
    def test_known_geometries(self, i, k, s, p, expected):
        assert conv_output_size(i, k, s, p) == expected

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            conv_output_size(4, 5)

    @pytest.mark.parametrize("kwargs", [
        dict(input_size=0, kernel_size=1),
        dict(input_size=8, kernel_size=0),
        dict(input_size=8, kernel_size=3, stride=0),
        dict(input_size=8, kernel_size=3, padding=-1),
    ])
    def test_invalid_args(self, kwargs):
        with pytest.raises(ShapeError):
            conv_output_size(**kwargs)

    @given(i=st.integers(1, 64), k=st.integers(1, 16), s=st.integers(1, 4),
           p=st.integers(0, 4))
    def test_inverse_roundtrip(self, i, k, s, p):
        """conv_input_gradient_size recovers an input the forward pass
        could have come from (exactly, modulo stride remainder)."""
        if k > i + 2 * p or k <= 2 * p:
            return
        o = conv_output_size(i, k, s, p)
        recovered = conv_input_gradient_size(o, k, s, p)
        # The recovered size is the smallest input with this output.
        assert recovered <= i
        assert i - recovered < s
        assert conv_output_size(recovered, k, s, p) == o


class TestPoolOutputSize:
    def test_even_pool(self):
        assert pool_output_size(32, 2, 2) == 16

    def test_ceil_mode_partial_window(self):
        # Caffe: 112 -> pool 3/2 ceil -> 56.
        assert pool_output_size(112, 3, 2, ceil_mode=True) == 56
        # floor mode gives 55.
        assert pool_output_size(112, 3, 2, ceil_mode=False) == 55

    def test_ceil_clips_out_of_range_window(self):
        # A window that would start past the input is dropped.
        assert pool_output_size(7, 3, 2, padding=1, ceil_mode=True) == 4

    def test_default_stride_equals_window(self):
        assert pool_output_size(12, 3) == 4

    def test_window_too_large(self):
        with pytest.raises(ShapeError):
            pool_output_size(4, 9)

    @given(i=st.integers(2, 100), w=st.integers(1, 8), s=st.integers(1, 8))
    def test_ceil_geq_floor(self, i, w, s):
        if w > i:
            return
        assert (pool_output_size(i, w, s, ceil_mode=True)
                >= pool_output_size(i, w, s, ceil_mode=False))


class TestSamePadding:
    @pytest.mark.parametrize("k,p", [(1, 0), (3, 1), (5, 2), (11, 5)])
    def test_odd_kernels(self, k, p):
        assert same_padding(k) == p
        assert conv_output_size(32, k, 1, p) == 32

    def test_even_kernel_rejected(self):
        with pytest.raises(ShapeError):
            same_padding(4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ShapeError):
            same_padding(0)
