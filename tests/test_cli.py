"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_advise_args(self):
        args = build_parser().parse_args(
            ["advise", "64", "128", "64", "11", "1"])
        assert (args.b, args.i, args.f, args.k, args.s, args.c) == (
            64, 128, 64, 11, 1, 3)

    def test_channels_optional(self):
        args = build_parser().parse_args(
            ["compare", "64", "128", "64", "11", "1", "16"])
        assert args.c == 16

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.duration == 10.0
        assert args.rate == 2000.0
        assert args.max_batch == 64
        assert not args.json

    def test_loadgen_defaults_to_saturating_rate(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.rate == 6000.0

    def test_no_subcommand_prints_usage_and_fails(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage" in err and "subcommand" in err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3d" in out and "table2" in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Conv5" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 1

    def test_advise(self, capsys):
        assert main(["advise", "64", "128", "64", "11", "1"]) == 0
        assert "Recommendation: fbfft" in capsys.readouterr().out

    def test_advise_lists_all_seven_candidates(self, capsys):
        assert main(["advise", "64", "128", "64", "11", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Scenario:")
        for name in ("Caffe", "Torch-cunn", "Theano-CorrMM", "Theano-fft",
                     "cuDNN", "cuda-convnet2", "fbfft"):
            assert name in out

    def test_advise_with_budget(self, capsys):
        assert main(["advise", "64", "128", "64", "11", "1",
                     "--memory", "400"]) == 0
        out = capsys.readouterr().out
        assert "cuda-convnet2" in out

    def test_compare(self, capsys):
        assert main(["compare", "64", "128", "64", "11", "2"]) == 0
        out = capsys.readouterr().out
        assert "fbfft" in out and "-" in out  # fbfft unsupported at s=2

    def test_compare_table_shape(self, capsys):
        assert main(["compare", "64", "128", "64", "11", "1"]) == 0
        out = capsys.readouterr().out
        assert "Implementation" in out and "Time (ms)" in out \
            and "Memory (MB)" in out

    def test_compare_json(self, capsys):
        assert main(["compare", "64", "128", "64", "11", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["results"]) == 7
        by_name = {r["implementation"]: r for r in data["results"]}
        assert by_name["fbfft"]["time_ms"] is None  # stride 2 unsupported
        assert by_name["cuDNN"]["time_ms"] > 0

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        assert "gradient-buffer" in capsys.readouterr().out


class TestExtendedCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "K40c" in out and "TITAN X" in out

    def test_export(self, tmp_path, capsys):
        target = str(tmp_path / "csv")
        assert main(["export", target]) == 0
        import os
        files = os.listdir(target)
        assert "fig3_kernel.csv" in files
        assert "fig6_metrics.csv" in files
        assert len(files) == 13

    def test_report(self, tmp_path, capsys):
        """The one-command study regeneration (paper artifacts only —
        fig2's full sweep is exercised by the benchmarks)."""
        from repro.core.full_report import generate_report
        text = generate_report(include_extensions=False,
                               experiments=["table1", "table2", "fig3e"])
        assert "table2" in text and "```" in text
        assert "Conv5" in text

    def test_report_unknown_experiment(self):
        from repro.core.full_report import generate_report
        import pytest as _pytest
        with _pytest.raises(KeyError):
            generate_report(experiments=["figZZ"])

    def test_audit(self, capsys):
        assert main(["audit", "64", "128", "64", "11", "1"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "audit of" in out

    def test_audit_covers_every_implementation(self, capsys):
        assert main(["audit", "64", "128", "64", "11", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("audit of") == 7

    def test_audit_strided_config(self, capsys):
        # Stride 2 rules out the FFT pair; the audit must still pass
        # (unsupported is consistent, not broken).
        assert main(["audit", "64", "128", "64", "11", "2"]) == 0


class TestServingCommands:
    SERVE_ARGS = ["--duration", "0.5", "--rate", "800", "--seed", "7"]

    def test_serve(self, capsys):
        assert main(["serve"] + self.SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "plan cache" in out
        assert "trace:" in out

    def test_serve_json(self, capsys):
        assert main(["serve"] + self.SERVE_ARGS + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["traffic"]["seed"] == 7
        assert data["stats"]["offered"] > 0
        assert data["stats"]["completed"] > 0
        assert set(data["stats"]["latency_ms"]) == {"p50", "p95", "p99"}

    def test_serve_bursty_pattern(self, capsys):
        assert main(["serve", "--duration", "0.5", "--rate", "800",
                     "--pattern", "bursty", "--seed", "7"]) == 0
        assert "bursty" in capsys.readouterr().out

    def test_loadgen_compares_batched_vs_single(self, capsys):
        assert main(["loadgen", "--duration", "0.5", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "== dynamic batching ==" in out
        assert "== forced batch=1 ==" in out
        assert "throughput speedup" in out

    def test_loadgen_is_deterministic(self, capsys):
        args = ["loadgen", "--duration", "0.5", "--seed", "7"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestObservabilityFlags:
    SERVE_ARGS = ["--duration", "0.2", "--rate", "500", "--seed", "7"]

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.duration == 1.0
        assert args.rate == 1000.0
        assert args.out == "serving_trace.json"
        assert args.fault_plan is None

    def test_serve_obs_flags_default_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace is None
        assert args.metrics is None

    def test_metrics_bare_flag_means_print(self):
        args = build_parser().parse_args(["serve", "--metrics"])
        assert args.metrics == "-"

    def test_serve_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["serve"] + self.SERVE_ARGS +
                    ["--trace", str(trace), "--metrics", str(metrics)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["otherData"]["spans"] > 0
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "X"}
        assert "serve.run" in names and "serve.batch" in names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["serve_requests_offered_total"] > 0

    def test_serve_jsonl_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["serve"] + self.SERVE_ARGS +
                    ["--trace", str(path)]) == 0
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert any(d["type"] == "span" and d["name"] == "serve.run"
                   for d in lines)

    def test_serve_json_embeds_metrics(self, capsys):
        assert main(["serve"] + self.SERVE_ARGS +
                    ["--json", "--metrics"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "counters" in data["metrics"]

    def test_serve_metrics_print(self, capsys):
        assert main(["serve"] + self.SERVE_ARGS + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "serve_requests_offered_total" in out

    def test_trace_command_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--duration", "0.2", "--rate", "500",
                     "--seed", "7", "--out", str(out_path)]) == 0
        assert "spans ->" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "serve" in cats and "gpu" in cats

    def test_chaos_trace_carries_fault_events(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        assert main(["chaos", "--quick", "--seed", "7",
                     "--trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        instants = {e["name"] for e in doc["traceEvents"]
                    if e.get("ph") == "i"}
        assert any(name.startswith("fault.") for name in instants)

    def test_compare_trace_and_metrics(self, tmp_path, capsys):
        path = tmp_path / "cmp.json"
        assert main(["compare", "64", "128", "64", "11", "1",
                     "--trace", str(path), "--json", "--metrics"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "gpusim_kernel_launches_total" in str(data["metrics"]) or \
            data["cache"]["hits"] > 0   # warm-cache runs launch nothing
        doc = json.loads(path.read_text())
        assert any(e.get("name") == "parallel.map"
                   for e in doc["traceEvents"])


class TestChaosCommand:
    QUICK = ["chaos", "--quick", "--seed", "7"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.fault_plan == "chaos"
        assert args.fault_seed is None
        assert not args.quick

    def test_parser_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--fault-plan", "earthquake"])

    def test_human_output(self, capsys):
        assert main(self.QUICK) == 0
        out = capsys.readouterr().out
        assert "fault plan: chaos" in out
        assert "== fault-free ==" in out
        assert "== under 'chaos' ==" in out
        assert "completion ratio" in out
        assert "deterministic re-run: True" in out

    def test_json_output_meets_resilience_bar(self, capsys):
        assert main(self.QUICK + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["deterministic"] is True
        assert data["unhandled_errors"] == 0
        assert data["completion_ratio"] >= 0.95
        res = data["chaos"]["resilience"]
        assert res["fallback_completions"] > 0
        assert res["breaker_trips"] > 0
        assert data["fault_free"]["resilience"]["faults_injected"] == 0

    def test_none_plan_matches_serve_stats(self, capsys):
        serve_args = ["--duration", "0.5", "--rate", "800", "--seed", "7"]
        assert main(["serve"] + serve_args + ["--json"]) == 0
        served = json.loads(capsys.readouterr().out)["stats"]
        assert main(["chaos", "--fault-plan", "none"] + serve_args
                    + ["--json"]) == 0
        chaos = json.loads(capsys.readouterr().out)
        assert chaos["chaos"] == served
        assert chaos["fault_free"] == served
        assert chaos["completion_ratio"] == 1.0

    def test_chaos_is_deterministic_across_processes(self, capsys):
        assert main(self.QUICK + ["--json"]) == 0
        first = json.loads(capsys.readouterr().out)["digest"]
        assert main(self.QUICK + ["--json"]) == 0
        assert json.loads(capsys.readouterr().out)["digest"] == first


class TestChaosClusterMode:
    """``chaos --cluster``: fleet chaos with the self-healing plane."""

    ARGS = ["chaos", "--cluster", "--duration", "1.5", "--rate", "1800",
            "--seed", "7", "--replicas", "3"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "--cluster"])
        assert args.fleet_plan == "fleet-chaos"
        assert args.replicas == 4
        assert args.hedge_after_ms == 20.0

    def test_human_output_has_recovery_and_scorecard(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "fleet plan: fleet-chaos" in out
        assert "== fault-free fleet ==" in out
        assert "== under 'fleet-chaos' ==" in out
        assert "self-healing" in out
        assert "recovered" in out
        assert "scorecard reconciled: True" in out
        assert "deterministic re-run: True" in out

    def test_json_gates_pass_and_scorecard_reconciles(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["deterministic"] is True
        assert doc["scorecard_reconciled"] is True
        assert doc["recovery"]["recovered"] is True
        score = doc["chaos"]["health"]
        assert score["crashes"] == (score["restarts"]
                                    + score["restarts_pending"]
                                    + score["restarts_denied"])
        assert score["hedges_issued"] == (score["hedge_wins"]
                                          + score["hedge_cancels"])
        assert doc["fault_free"]["health"]["crashes"] == 0

    def test_json_runs_are_byte_identical(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        assert capsys.readouterr().out == first


class TestAnalyzeCommand:
    TRACE_ARGS = ["trace", "--duration", "0.2", "--rate", "500",
                  "--seed", "7"]

    def write_trace(self, path, extra=()):
        assert main(self.TRACE_ARGS + list(extra)
                    + ["--out", str(path)]) == 0

    def test_parser_defaults(self):
        args = build_parser().parse_args(["analyze", "run.jsonl"])
        assert args.trace == "run.jsonl"
        assert args.baseline is None
        assert args.top == 10

    def test_analyze_renders_report(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        self.write_trace(path)
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "Fig. 4 view" in out

    def test_same_seed_baseline_reports_identical(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.write_trace(a)
        self.write_trace(b)
        capsys.readouterr()
        assert main(["analyze", str(a), "--baseline", str(b)]) == 0
        assert "runs are identical: zero deltas, zero findings" \
            in capsys.readouterr().out

    def test_json_output_is_byte_identical(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.write_trace(a)
        self.write_trace(b)
        capsys.readouterr()
        assert main(["analyze", str(a), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["reconciliation"]["taxonomy_ok"]
        assert main(["analyze", str(b), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        # identical runs analyze identically (source path aside)
        first.pop("source"), second.pop("source")
        assert second == first

    def test_chaos_baseline_attributes_faults(self, tmp_path, capsys):
        quiet, chaos = tmp_path / "q.jsonl", tmp_path / "c.jsonl"
        args = ["trace", "--duration", "1.0", "--rate", "1500",
                "--seed", "7"]
        assert main(args + ["--out", str(quiet)]) == 0
        assert main(args + ["--fault-plan", "chaos",
                            "--out", str(chaos)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(chaos), "--baseline", str(quiet),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        causes = [f["cause"] for f in doc["diff"]["findings"]]
        assert "fault_injections" in causes

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["analyze", "/nonexistent/run.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_garbage_trace_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        assert main(["analyze", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestSloCommand:
    SERVE_ARGS = ["serve", "--duration", "0.2", "--rate", "500",
                  "--seed", "7"]

    def write_metrics(self, path):
        assert main(self.SERVE_ARGS + ["--metrics", str(path)]) == 0

    def test_default_rules_pass_on_healthy_run(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        self.write_metrics(path)
        capsys.readouterr()
        assert main(["slo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[PASS] p99-latency" in out
        assert "verdict: PASS" in out

    def test_failing_rule_exits_non_zero(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        self.write_metrics(metrics)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"name": "impossible", "kind": "latency_max",
             "threshold": 0.0}]))
        capsys.readouterr()
        assert main(["slo", str(metrics), "--rules", str(rules)]) == 1
        assert "[FAIL] impossible" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        self.write_metrics(path)
        capsys.readouterr()
        assert main(["slo", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert {r["name"] for r in doc["rules"]} == \
            {"p99-latency", "shed-rate", "error-budget"}

    def test_malformed_rules_fail_cleanly(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        self.write_metrics(metrics)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{"name": "x"}]))
        capsys.readouterr()
        assert main(["slo", str(metrics), "--rules", str(rules)]) == 1
        assert "missing keys" in capsys.readouterr().err

    def test_serve_with_slo_monitor(self, capsys):
        assert main(self.SERVE_ARGS + ["--slo"]) == 0
        out = capsys.readouterr().out
        assert "SLO check" in out
        assert "verdict: PASS" in out

    def test_serve_with_failing_slo_exits_non_zero(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"name": "impossible", "kind": "latency_max",
             "threshold": 0.0}]))
        assert main(self.SERVE_ARGS + ["--slo", str(rules),
                                       "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["slo"]["passed"] is False


class TestRegressionCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["regression"])
        assert args.baseline == "benchmarks/calibration_baseline.json"
        assert args.tolerance == 0.05
        assert not args.save

    def test_save_then_check_round_trip(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(["regression", "--save", "--baseline",
                     str(path)]) == 0
        assert "headline quantities" in capsys.readouterr().out
        assert main(["regression", "--baseline", str(path)]) == 0
        assert "within" in capsys.readouterr().out

    def test_drift_fails_with_table(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(["regression", "--save", "--baseline",
                     str(path)]) == 0
        doc = json.loads(path.read_text())
        key = sorted(doc)[0]
        doc[key] = doc[key] * 2 + 1.0    # force a drift on one quantity
        path.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["regression", "--baseline", str(path)]) == 1
        assert "drift" in capsys.readouterr().out

    def test_json_verdict(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(["regression", "--save", "--baseline", str(path)]) == 0
        capsys.readouterr()
        assert main(["regression", "--baseline", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["quantities"] > 0
        assert doc["drifts"] == []

    def test_missing_baseline_fails_cleanly(self, capsys):
        assert main(["regression", "--baseline",
                     "/nonexistent/baseline.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_checked_in_baseline_still_calibrated(self):
        """The CI gate: the repo's stored baseline matches the current
        simulator within tolerance."""
        assert main(["regression"]) == 0


class TestClusterCommand:
    ARGS = ["cluster", "--duration", "0.3", "--rate", "900", "--seed", "7",
            "--replicas", "2"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.replicas == 4
        assert args.policy == "round-robin"
        assert args.slo is None and not args.autoscale
        assert args.window_ms == 1000.0

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--policy", "dice"])

    def test_human_output_lists_replicas(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "2 replica(s) started" in out
        assert "replica0" in out and "replica1" in out
        assert "routed per replica" in out

    def test_json_report_shape(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        cluster = doc["cluster"]
        assert cluster["offered"] == doc["traffic"]["arrivals"]
        assert cluster["policy"] == "round-robin"
        assert len(cluster["replicas"]) == 2
        assert set(cluster["latency_ms"]) == {"p50", "p95", "p99"}

    def test_json_runs_are_byte_identical(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        assert capsys.readouterr().out == first

    def test_health_flag_attaches_scorecard(self, capsys):
        assert main(self.ARGS + ["--health", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        score = doc["cluster"]["health"]
        assert score["probes"] > 0 and score["crashes"] == 0

    def test_fleet_plan_restarts_crashed_replica(self, capsys):
        # Longer run (last --duration wins) so the supervisor's restart
        # delay elapses before the trace ends.
        assert main(self.ARGS + ["--duration", "1.2",
                                 "--fleet-plan", "crash", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        score = doc["cluster"]["health"]
        assert score["crashes"] == 1
        assert score["restarts"] == 1
        incarnations = {r["incarnation"]
                        for r in doc["cluster"]["replicas"]}
        assert 1 in incarnations

    def test_repeatable_kill_pairs(self, capsys):
        assert main(self.ARGS + ["--kill-replica", "0", "--kill-at", "0.1",
                                 "--kill-replica", "1", "--kill-at", "0.2",
                                 "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cluster"]["kills"] == 2

    def test_mismatched_kill_pair_rejected(self, capsys):
        assert main(self.ARGS + ["--kill-replica", "0"]) == 1
        assert "--kill-at" in capsys.readouterr().err

    def test_trace_export_has_one_row_per_replica(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(self.ARGS + ["--trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "process_name"}
        assert {"cluster", "replica0", "replica1"} <= procs

    def test_jsonl_trace_merges_all_tracers(self, tmp_path, capsys):
        path = tmp_path / "fleet.jsonl"
        assert main(self.ARGS + ["--trace", str(path)]) == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        names = {d["name"] for d in records if d.get("type") == "span"}
        assert "cluster.run" in names and "replica.run" in names
        sids = [d["sid"] for d in records if d.get("type") == "span"]
        assert len(sids) == len(set(sids))

    def test_metrics_file_has_fleet_and_replica_sections(self, tmp_path,
                                                         capsys):
        path = tmp_path / "fleet_metrics.json"
        assert main(self.ARGS + ["--metrics", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert "fleet" in doc and set(doc["replicas"]) == {"replica0",
                                                           "replica1"}

    def test_json_embeds_metrics(self, capsys):
        assert main(self.ARGS + ["--json", "--metrics"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "fleet" in doc["metrics"]

    def test_autoscale_without_slo_fails(self, capsys):
        assert main(["cluster", "--quick", "--autoscale"]) == 1
        assert "--autoscale needs --slo" in capsys.readouterr().err

    def test_kill_without_time_fails(self, capsys):
        assert main(["cluster", "--quick", "--kill-replica", "1"]) == 1
        assert "--kill-at" in capsys.readouterr().err

    def test_kill_is_reported(self, capsys):
        assert main(self.ARGS + ["--kill-replica", "1",
                                 "--kill-at", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "kill schedule: replica 1 @ 0.150s" in out
        assert "killed" in out

    def test_autoscale_recovery_scenario(self, capsys):
        """The CI gate: overload one replica, require the autoscaler
        to recover the violated latency SLO by the end of the run."""
        assert main(["cluster", "--duration", "2", "--rate", "4000",
                     "--seed", "11", "--replicas", "1", "--slo",
                     "--autoscale", "--max-replicas", "4",
                     "--cooldown-ms", "500", "--window-ms", "250",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)["cluster"]
        assert doc["slo"]["violations"] >= 1
        assert doc["slo"]["recoveries"] >= 1
        assert doc["slo"]["in_violation"] is False
        assert doc["autoscaler"]["scale_ups"] >= 1

    def test_fault_plan_restricted_to_replica(self, capsys):
        assert main(self.ARGS + ["--fault-plan", "straggler",
                                 "--fault-replica", "0"]) == 0
        assert "straggler on replica(s) 0" in capsys.readouterr().out
