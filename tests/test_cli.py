"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_advise_args(self):
        args = build_parser().parse_args(
            ["advise", "64", "128", "64", "11", "1"])
        assert (args.b, args.i, args.f, args.k, args.s, args.c) == (
            64, 128, 64, 11, 1, 3)

    def test_channels_optional(self):
        args = build_parser().parse_args(
            ["compare", "64", "128", "64", "11", "1", "16"])
        assert args.c == 16


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3d" in out and "table2" in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Conv5" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 1

    def test_advise(self, capsys):
        assert main(["advise", "64", "128", "64", "11", "1"]) == 0
        assert "Recommendation: fbfft" in capsys.readouterr().out

    def test_advise_with_budget(self, capsys):
        assert main(["advise", "64", "128", "64", "11", "1",
                     "--memory", "400"]) == 0
        out = capsys.readouterr().out
        assert "cuda-convnet2" in out

    def test_compare(self, capsys):
        assert main(["compare", "64", "128", "64", "11", "2"]) == 0
        out = capsys.readouterr().out
        assert "fbfft" in out and "-" in out  # fbfft unsupported at s=2

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        assert "gradient-buffer" in capsys.readouterr().out


class TestExtendedCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "K40c" in out and "TITAN X" in out

    def test_export(self, tmp_path, capsys):
        target = str(tmp_path / "csv")
        assert main(["export", target]) == 0
        import os
        files = os.listdir(target)
        assert "fig3_kernel.csv" in files
        assert "fig6_metrics.csv" in files
        assert len(files) == 13

    def test_report(self, tmp_path, capsys):
        """The one-command study regeneration (paper artifacts only —
        fig2's full sweep is exercised by the benchmarks)."""
        from repro.core.full_report import generate_report
        text = generate_report(include_extensions=False,
                               experiments=["table1", "table2", "fig3e"])
        assert "table2" in text and "```" in text
        assert "Conv5" in text

    def test_report_unknown_experiment(self):
        from repro.core.full_report import generate_report
        import pytest as _pytest
        with _pytest.raises(KeyError):
            generate_report(experiments=["figZZ"])

    def test_audit(self, capsys):
        assert main(["audit", "64", "128", "64", "11", "1"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "audit of" in out
