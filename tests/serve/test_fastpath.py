"""Fast-path invariants: the dispatch memo, the lazy head heap, bulk
histogram observation, allocation replay, and sampled tracing must all
be invisible in the simulated results — same seed, same bytes."""

import json

import pytest

from repro.gpusim.allocator import DeviceAllocator
from repro.gpusim.device import TITAN_X
from repro.errors import DeviceOOMError
from repro.faults.plan import named_plan
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracer import SimTracer, TraceSampler
from repro.serve import (Arrival, BatchPolicy, Server, ServerConfig,
                         TrafficSpec, generate_trace)
from repro.serve.loadgen import MODEL_SHAPES
from repro.serve.queue import AdmissionQueue
from repro.serve.request import fast_request, shape_key

KEY = shape_key(MODEL_SHAPES["AlexNet"][1][1])
KEY2 = shape_key(MODEL_SHAPES["AlexNet"][0][1])

TRACE = generate_trace(TrafficSpec(duration_s=1.0, rate_rps=4000.0, seed=7))


def report_bytes(dispatch_memo, fault_plan=None, max_batch=64,
                 trace_sample=0):
    policy = (BatchPolicy() if max_batch > 1
              else BatchPolicy(max_batch=1, max_wait_s=0.0))
    config = ServerConfig(policy=policy, dispatch_memo=dispatch_memo)
    server = Server(config, fault_plan=fault_plan, fault_seed=11)
    if trace_sample:
        server.enable_tracing(sample=trace_sample)
    report = server.run(TRACE)
    return json.dumps(report.to_dict(), sort_keys=True)


class TestMemoByteIdentity:
    def test_plain_run_identical(self):
        assert report_bytes(True) == report_bytes(False)

    def test_batch1_run_identical(self):
        assert (report_bytes(True, max_batch=1)
                == report_bytes(False, max_batch=1))

    @pytest.mark.parametrize("plan", ["straggler", "transient-top",
                                      "memory-pressure", "cache-chaos",
                                      "chaos"])
    def test_fault_plans_identical(self, plan):
        # The ISSUE's headline case: chaos runs must not observe the
        # memo — the fault ladder replays byte-exactly.
        assert (report_bytes(True, named_plan(plan))
                == report_bytes(False, named_plan(plan)))

    def test_memo_counts_hits(self):
        server = Server(ServerConfig(dispatch_memo=True))
        server.run(TRACE)
        stats = server.dispatch_memo_stats()
        assert stats["hits"] > 0
        assert stats["entries"] == stats["misses"]
        # One cold miss per distinct point, everything else a hit.
        assert stats["hit_rate"] > 0.5

    def test_memo_off_reports_none(self):
        server = Server(ServerConfig(dispatch_memo=False))
        server.run(TRACE)
        assert server.dispatch_memo_stats() is None

    def test_cache_corruption_rolls_memo_epoch(self):
        # The memo key embeds the plan-cache corruption counter; a
        # chaos corruption must start a fresh epoch, not serve stale
        # plans from before the flush.
        # Long enough for the plan's corruption events to fire.
        trace = generate_trace(TrafficSpec(duration_s=3.0, rate_rps=4000.0,
                                           seed=7))
        plain = Server(ServerConfig(dispatch_memo=True))
        plain.run(trace)
        chaos = Server(ServerConfig(dispatch_memo=True),
                       fault_plan=named_plan("cache-chaos"), fault_seed=11)
        chaos.run(trace)
        assert chaos.plan_cache.corruptions > 0
        # cache-chaos leaves timing untouched, so the dispatch points
        # repeat — every corruption re-misses them under the new epoch.
        assert (chaos.dispatch_memo_stats()["entries"]
                > plain.dispatch_memo_stats()["entries"])


class TestHeadHeap:
    def offer(self, queue, rid, key, arrival_s, timeout_s=10.0):
        return queue.offer(fast_request(rid, "m", "l", key, arrival_s,
                                        timeout_s))

    def scan_oldest(self, queue):
        """The O(lanes) reference the heap replaced."""
        best = None
        for key, lane in queue._lanes.items():
            if lane and (best is None or lane[0].arrival_s < best[1].arrival_s):
                best = (key, lane[0])
        return best

    def test_matches_linear_scan_through_churn(self):
        queue = AdmissionQueue(max_depth=512)
        rid = 0
        for step in range(200):
            key = KEY if step % 3 else KEY2
            self.offer(queue, rid, key, 0.001 * step)
            rid += 1
            if step % 5 == 4:
                head = queue.oldest_lane()
                assert head == self.scan_oldest(queue)
                queue.take(head[0], 2)
            assert queue.oldest_lane() == self.scan_oldest(queue)

    def test_tie_breaks_by_lane_creation_order(self):
        queue = AdmissionQueue()
        self.offer(queue, 0, KEY, 1.0)
        self.offer(queue, 1, KEY2, 1.0)  # same arrival, later lane
        assert queue.oldest_lane()[0] == KEY

    def test_push_front_restores_oldest(self):
        queue = AdmissionQueue()
        self.offer(queue, 0, KEY, 1.0)
        self.offer(queue, 1, KEY2, 2.0)
        taken = queue.take(KEY, 4)
        assert queue.oldest_lane()[0] == KEY2
        queue.push_front(KEY, taken)  # OOM split returns the batch
        assert queue.oldest_lane()[0] == KEY
        assert queue.oldest_arrival() == 1.0

    def test_shed_rebuilds_heap(self):
        queue = AdmissionQueue()
        self.offer(queue, 0, KEY, 0.0, timeout_s=0.1)
        self.offer(queue, 1, KEY, 5.0)
        self.offer(queue, 2, KEY2, 1.0)
        dropped = queue.shed_expired(2.0)
        assert [r.rid for r in dropped] == [0]
        assert queue.oldest_lane() == self.scan_oldest(queue)
        assert queue.oldest_lane()[1].rid == 2

    def test_out_of_order_offer_keeps_min_deadline(self):
        queue = AdmissionQueue()
        self.offer(queue, 0, KEY, 0.0, timeout_s=10.0)
        # Earlier deadline appended behind a later one (cluster
        # requeue shape): the lane goes unsorted but still sheds.
        self.offer(queue, 1, KEY, 0.1, timeout_s=0.1)
        dropped = queue.shed_expired(1.0)
        assert [r.rid for r in dropped] == [1]
        assert queue.oldest_lane()[1].rid == 0

    def test_drain_clears_heap(self):
        queue = AdmissionQueue()
        self.offer(queue, 0, KEY, 1.0)
        queue.drain()
        assert queue.oldest_lane() is None
        assert queue._head_heap == []


class TestObserveMany:
    def test_equivalent_to_loop(self):
        reg = MetricsRegistry()
        one, many = reg.histogram("one"), reg.histogram("many")
        values = [0.5, 1.25, 3.0]
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert one.observations == many.observations
        assert one.snapshot_value() == many.snapshot_value()

    def test_rejects_non_finite_and_stays_clean(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            hist.observe_many([1.0, float("nan"), 2.0])
        # All-or-nothing: a rejected batch must not half-apply.
        assert hist.observations == []

    def test_null_registry_noop(self):
        reg = NullRegistry()
        hist = reg.histogram("h")
        hist.observe_many([1.0, float("inf")])  # must not raise or record
        assert hist.observations == []
        assert len(reg) == 0


class TestReplayTransient:
    SIZES = [10 << 20, 900 << 20, 30 << 20]

    def real_episode(self, allocator, sizes):
        buffers = [allocator.alloc(s, tag="t") for s in sizes]
        for buf in buffers:
            allocator.free(buf)

    def test_same_peak_as_real_loop(self):
        real = DeviceAllocator(TITAN_X)
        fast = DeviceAllocator(TITAN_X)
        self.real_episode(real, self.SIZES)
        rounded = [((s + 511) // 512) * 512 for s in self.SIZES]
        fast.replay_transient(rounded, sum(rounded))
        assert fast.peak == real.peak
        assert fast.in_use == real.in_use == real.baseline

    def test_same_oom_at_same_buffer(self):
        sizes = [8 << 30, 6 << 30]  # second exceeds the 12 GB card
        real = DeviceAllocator(TITAN_X)
        with pytest.raises(DeviceOOMError) as real_err:
            self.real_episode(real, sizes)
        fast = DeviceAllocator(TITAN_X)
        with pytest.raises(DeviceOOMError) as fast_err:
            fast.replay_transient(sizes, sum(sizes))
        assert fast_err.value.requested == real_err.value.requested
        # The partially-allocated prefix is charged to the peak either
        # way (the real loop's caller frees the prefix afterwards).
        assert fast.peak == real.peak


class TestTraceSampler:
    def run_traced(self, sample):
        server = Server(ServerConfig(dispatch_memo=True))
        tracer = server.enable_tracing(sample=sample)
        report = server.run(TRACE)
        return tracer, json.dumps(report.to_dict(), sort_keys=True)

    def test_sample_1_is_plain_tracer(self):
        tracer, _ = self.run_traced(1)
        assert isinstance(tracer, SimTracer)

    def test_sampling_thins_spans_keeps_exact_report(self):
        full, full_report = self.run_traced(1)
        sampled, sampled_report = self.run_traced(4)
        assert isinstance(sampled, TraceSampler)
        # Exact unit accounting, thinned span forest.
        assert sampled.units_total == len(full.find("serve.batch"))
        kept = len(sampled.find("serve.batch"))
        assert kept == sampled.units_kept
        assert kept == (sampled.units_total + 3) // 4
        assert sampled.span_count() < full.span_count()
        # Sampling is host-side only: the report bytes do not move.
        assert sampled_report == full_report

    def test_untraced_report_matches_traced(self):
        # Tracing (full or sampled) must not perturb simulated results.
        assert report_bytes(True) == self.run_traced(1)[1]
        assert report_bytes(True) == report_bytes(True, trace_sample=4)

    def test_sample_validation(self):
        server = Server(ServerConfig())
        with pytest.raises(ValueError):
            server.enable_tracing(sample=0)
