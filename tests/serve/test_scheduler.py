"""Scheduler: virtual clock, determinism, batching wins, memory."""

import pytest

from repro.core.advisor import RankedPlan
from repro.serve import (Arrival, BatchPolicy, Server, ServerConfig,
                         TrafficSpec, generate_trace)
from repro.serve.loadgen import MODEL_SHAPES
from repro.serve.request import shape_key

#: AlexNet conv2 — strong batching amortization, supported everywhere.
KEY = shape_key(MODEL_SHAPES["AlexNet"][1][1])


def arrivals(times, key=KEY):
    return [Arrival(rid=i, t_s=t, model="AlexNet", layer="conv2", key=key)
            for i, t in enumerate(times)]


def small_config(**kwargs):
    defaults = dict(policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
                    queue_depth=64, timeout_s=0.25)
    defaults.update(kwargs)
    return ServerConfig(**defaults)


class TestClock:
    def test_completions_respect_causality(self):
        rep_server = Server(small_config())
        trace = arrivals([0.001 * i for i in range(20)])
        stats = rep_server.run(trace)
        assert stats.completed == 20
        # The clock never rewinds: makespan covers the last arrival.
        assert rep_server.clock.now_s >= trace[-1].t_s
        assert stats.duration_s == rep_server.clock.now_s

    def test_latency_includes_queueing_and_service(self):
        # While the second arrival is still pending the first request
        # waits out the full max_wait (2 ms) before release; its
        # latency must include that queueing delay.
        stats = Server(small_config()).run(arrivals([0.0, 0.01]))
        assert stats.latency_p99_ms > 2.0

    def test_lone_request_released_in_drain_mode(self):
        stats = Server(small_config()).run(arrivals([0.0]))
        # No pending arrivals -> no max_wait hold: service only.
        assert stats.latency_p50_ms < 2.0

    def test_empty_trace(self):
        stats = Server(small_config()).run([])
        assert stats.completed == 0
        assert stats.duration_s == 0.0


class TestDeterminism:
    def test_same_trace_same_report(self):
        spec = TrafficSpec(duration_s=1.0, rate_rps=800, seed=13)
        trace = generate_trace(spec)
        a = Server(small_config()).run(trace).to_dict()
        b = Server(small_config()).run(trace).to_dict()
        assert a == b

    def test_end_to_end_seeded_determinism(self):
        spec = TrafficSpec(duration_s=1.0, rate_rps=800, seed=21)
        a = Server(small_config()).run(generate_trace(spec)).to_dict()
        b = Server(small_config()).run(generate_trace(spec)).to_dict()
        assert a == b


class TestBatchingWins:
    @pytest.fixture(scope="class")
    def saturating_reports(self):
        # Long enough that the cold-start plan misses (one per
        # (shape, bucket) key) are amortized into steady state.
        trace = generate_trace(TrafficSpec(duration_s=6.0, rate_rps=6000,
                                           seed=7))
        batched = Server(ServerConfig()).run(trace)
        single = Server(ServerConfig(policy=BatchPolicy(
            max_batch=1, max_wait_s=0.0))).run(trace)
        return batched, single

    def test_throughput_strictly_higher(self, saturating_reports):
        batched, single = saturating_reports
        assert batched.throughput_rps > single.throughput_rps

    def test_batched_sheds_less(self, saturating_reports):
        batched, single = saturating_reports
        assert batched.shed_rate < single.shed_rate

    def test_batches_actually_form(self, saturating_reports):
        batched, _ = saturating_reports
        assert batched.mean_batch_fill > 4
        assert max(batched.batch_histogram) > 1

    def test_plan_cache_steady_state(self, saturating_reports):
        batched, _ = saturating_reports
        assert batched.plan_cache["hit_rate"] > 0.9

    def test_winner_shifts_with_batching(self, saturating_reports):
        batched, single = saturating_reports
        # The Fig. 3a story: FFT wins at large batch, never at batch 1.
        assert "fbfft" in batched.implementations
        assert "fbfft" not in single.implementations


class TestLoadControl:
    def test_tiny_queue_rejects(self):
        config = small_config(queue_depth=2)
        stats = Server(config).run(arrivals([0.0] * 50))
        assert stats.rejected > 0
        assert stats.completed + stats.rejected + stats.shed == 50

    def test_tight_timeout_sheds(self):
        # 50 simultaneous arrivals, batches of 2, sub-millisecond
        # timeout: most requests expire before service starts.
        config = small_config(
            policy=BatchPolicy(max_batch=2, max_wait_s=0.0),
            timeout_s=0.0005, queue_depth=64)
        stats = Server(config).run(arrivals([0.0] * 50))
        assert stats.shed > 0

    def test_accounting_balances(self):
        trace = generate_trace(TrafficSpec(duration_s=0.5, rate_rps=2000,
                                           seed=3))
        stats = Server(small_config(queue_depth=16)).run(trace)
        assert (stats.completed + stats.rejected + stats.shed
                + stats.oom_shed == stats.offered == len(trace))


class TestMemory:
    def test_oom_forces_split(self):
        server = Server(ServerConfig(policy=BatchPolicy(max_batch=64,
                                                        max_wait_s=0.0)))
        # Occupy most of the 12 GB device so a batch-64 plan cannot
        # allocate, but batch 1 still can.
        hog = server._allocator.alloc(int(11.3 * 2**30), tag="hog")
        stats = server.run(arrivals([0.0] * 64))
        server._allocator.free(hog)
        assert stats.oom_splits > 0
        assert stats.completed == 64

    def test_infeasible_budget_sheds(self):
        config = small_config(memory_budget=1)
        stats = Server(config).run(arrivals([0.0] * 4))
        assert stats.completed == 0
        assert stats.oom_shed == 4

    def test_memory_timeline_recording(self):
        server = Server(small_config(), record_timeline=True)
        server.run(arrivals([0.0] * 8))
        assert server.memory_timeline
        times = [t for t, _ in server.memory_timeline]
        assert times == sorted(times)
        # Allocations during a batch raise in_use above the baseline.
        assert max(m for _, m in server.memory_timeline) > \
            min(m for _, m in server.memory_timeline)

    def test_peak_memory_reported(self):
        stats = Server(small_config()).run(arrivals([0.0] * 8))
        assert stats.peak_memory_mb > 0


class TestServiceTime:
    def test_forward_only_scales_plan_time(self):
        server = Server(ServerConfig(forward_only=True))
        plan = RankedPlan(implementation="cuDNN", time_s=0.009,
                          peak_memory_bytes=1)
        assert server._service_time(plan) == pytest.approx(0.003)

    def test_full_iteration_mode(self):
        server = Server(ServerConfig(forward_only=False))
        plan = RankedPlan(implementation="cuDNN", time_s=0.009,
                          peak_memory_bytes=1)
        assert server._service_time(plan) == pytest.approx(0.009)
