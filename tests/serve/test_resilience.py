"""The recovery ladder: retries, fallback, breaker, chaos determinism."""

import json

import pytest

from repro.faults import (FaultPlan, MemoryPressureSpec, StragglerSpec,
                          TransientFaultSpec, TOP_RANKED, named_plan)
from repro.gpusim.device import K40C
from repro.serve import (BreakerState, CircuitBreaker, ResilienceConfig,
                         Server, ServerConfig, TrafficSpec, generate_trace,
                         serve_trace)

SPEC = TrafficSpec(duration_s=0.5, rate_rps=1200.0, seed=11)


def report_digest(report):
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SPEC)


@pytest.fixture(scope="module")
def fault_free(trace):
    return serve_trace(trace, ServerConfig())


class TestResilienceConfig:
    def test_backoff_is_exponential(self):
        cfg = ResilienceConfig(backoff_base_s=1e-4, backoff_factor=2.0)
        assert cfg.backoff_s(1) == pytest.approx(1e-4)
        assert cfg.backoff_s(3) == pytest.approx(4e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(max_fallbacks=-1)
        with pytest.raises(ValueError):
            ResilienceConfig().backoff_s(0)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        cb = CircuitBreaker(threshold=3, cooldown_s=1.0)
        for _ in range(2):
            cb.record_failure("cuDNN", 0.0)
        assert cb.state("cuDNN") is BreakerState.CLOSED
        cb.record_failure("cuDNN", 0.0)
        assert cb.state("cuDNN") is BreakerState.OPEN
        assert cb.trips == 1

    def test_success_resets_the_streak(self):
        cb = CircuitBreaker(threshold=2)
        cb.record_failure("cuDNN", 0.0)
        cb.record_success("cuDNN")
        cb.record_failure("cuDNN", 0.0)
        assert cb.state("cuDNN") is BreakerState.CLOSED

    def test_open_refuses_until_cooldown(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=1.0)
        cb.record_failure("cuDNN", 10.0)
        assert not cb.allow("cuDNN", 10.5)
        assert cb.skips == 1
        assert cb.allow("cuDNN", 11.0)          # half-open probe
        assert cb.state("cuDNN") is BreakerState.HALF_OPEN

    def test_half_open_probe_outcomes(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=1.0)
        cb.record_failure("cuDNN", 0.0)
        assert cb.allow("cuDNN", 2.0)
        cb.record_failure("cuDNN", 2.0)         # probe faults: re-trip
        assert cb.state("cuDNN") is BreakerState.OPEN
        assert cb.trips == 2
        assert cb.allow("cuDNN", 4.0)
        cb.record_success("cuDNN")              # probe succeeds: close
        assert cb.state("cuDNN") is BreakerState.CLOSED

    def test_breakers_are_per_implementation(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=1.0)
        cb.record_failure("cuDNN", 0.0)
        assert not cb.allow("cuDNN", 0.0)
        assert cb.allow("fbfft", 0.0)
        assert cb.snapshot() == {"cuDNN": "open", "fbfft": "closed"}


class TestFaultFreeIdentity:
    """Tier-1 guard: the fault plane must be invisible when disabled."""

    def test_none_plan_is_bit_identical(self, trace, fault_free):
        with_none = serve_trace(trace, ServerConfig(),
                                fault_plan=named_plan("none"))
        assert report_digest(with_none) == report_digest(fault_free)

    def test_noop_custom_plan_is_bit_identical(self, trace, fault_free):
        noop = FaultPlan(name="empty")
        assert report_digest(serve_trace(trace, ServerConfig(),
                                         fault_plan=noop)) \
            == report_digest(fault_free)

    def test_fault_free_run_reports_no_resilience_activity(self, fault_free):
        assert fault_free.faults_injected == 0
        assert fault_free.retries == 0
        assert fault_free.fallback_completions == 0
        assert fault_free.breaker_trips == 0
        assert fault_free.unhandled_errors == 0


class TestDeterminismUnderChaos:
    def test_same_inputs_same_report_bytes(self, trace):
        plan = named_plan("chaos", duration_s=SPEC.duration_s)
        digests = [
            report_digest(serve_trace(trace, ServerConfig(),
                                      fault_plan=plan, fault_seed=99))
            for _ in range(2)]
        assert digests[0] == digests[1]

    def test_fault_seed_changes_the_run(self, trace):
        plan = named_plan("transient-top", duration_s=SPEC.duration_s)
        a = serve_trace(trace, ServerConfig(), fault_plan=plan, fault_seed=1)
        b = serve_trace(trace, ServerConfig(), fault_plan=plan, fault_seed=2)
        assert report_digest(a) != report_digest(b)
        # ... but the service level stays in the same regime.
        assert a.offered == b.offered


class TestTransientRecovery:
    @pytest.fixture(scope="class")
    def chaotic(self, trace):
        plan = named_plan("transient-top", duration_s=SPEC.duration_s)
        return serve_trace(trace, ServerConfig(), fault_plan=plan)

    def test_faults_strike_and_retries_absorb_most(self, chaotic):
        assert chaotic.faults_injected > 0
        assert chaotic.retries > 0

    def test_fallback_completions_happen(self, chaotic):
        assert chaotic.fallback_batches > 0
        assert chaotic.fallback_completions >= chaotic.fallback_batches

    def test_breaker_trips_are_recorded(self, trace):
        # A certain fault burns the whole retry budget on every batch,
        # so the top implementation's streak trips its breaker fast.
        plan = FaultPlan(name="always-top", transients=(
            TransientFaultSpec(implementation=TOP_RANKED, rate=1.0),))
        cfg = ServerConfig(resilience=ResilienceConfig(breaker_threshold=3))
        report = serve_trace(trace, cfg, fault_plan=plan)
        assert report.breaker_trips > 0
        assert report.breaker_skips > 0
        assert report.fallback_completions > 0

    def test_completion_rate_stays_high(self, chaotic, fault_free):
        assert fault_free.completed > 0
        assert chaotic.completed >= 0.95 * fault_free.completed

    def test_nothing_goes_unhandled(self, chaotic):
        assert chaotic.unhandled_errors == 0

    def test_retries_spend_simulated_time(self, chaotic, fault_free):
        assert chaotic.duration_s > fault_free.duration_s


class TestMemoryPressure:
    def test_pressure_window_degrades_or_sheds(self, trace, fault_free):
        plan = named_plan("memory-pressure", duration_s=SPEC.duration_s)
        report = serve_trace(trace, ServerConfig(), fault_plan=plan)
        assert report.pressure_events > 0
        assert report.unhandled_errors == 0
        # Degradation and OOM-splitting absorb the squeeze; anything
        # shed is attributed to the memory cause, never silent.
        dropped = report.offered - report.completed
        accounted = (report.shed + report.rejected + report.oom_shed
                     + report.shed_by_cause.get("fault", 0)
                     + report.shed_by_cause.get("error", 0))
        assert dropped == accounted

    def test_memory_sheds_have_their_own_cause(self, trace):
        # Leave ~10 MB of usable memory: even single samples cannot
        # allocate, so everything sheds under the ``memory`` cause.
        squeeze = FaultPlan(name="squeeze", pressures=(
            MemoryPressureSpec(
                reserve_bytes=K40C.global_memory_bytes - 70 * 2**20),))
        report = serve_trace(trace, ServerConfig(), fault_plan=squeeze)
        assert report.oom_shed > 0
        assert report.shed_by_cause.get("memory") == report.oom_shed
        assert report.unhandled_errors == 0


class TestStragglers:
    def test_whole_run_slowdown_stretches_the_makespan(self, trace,
                                                       fault_free):
        plan = FaultPlan(name="molasses",
                         stragglers=(StragglerSpec(slowdown=4.0),))
        report = serve_trace(trace, ServerConfig(), fault_plan=plan)
        assert report.duration_s > fault_free.duration_s
        assert report.latency_p50_ms > fault_free.latency_p50_ms
        assert report.faults_injected == 0

    def test_windowed_straggler_raises_tail_latency_only(self, trace,
                                                         fault_free):
        plan = named_plan("straggler", duration_s=SPEC.duration_s)
        report = serve_trace(trace, ServerConfig(), fault_plan=plan)
        assert report.latency_p99_ms >= fault_free.latency_p99_ms
        assert report.completed == fault_free.completed


class TestCacheCorruption:
    def test_corruptions_are_counted_and_recomputed(self, trace, fault_free):
        plan = named_plan("cache-chaos", duration_s=SPEC.duration_s)
        report = serve_trace(trace, ServerConfig(), fault_plan=plan)
        assert report.cache_corruptions > 0
        assert report.plan_cache["corruptions"] == report.cache_corruptions
        # Evicted plans are recomputed, so service is unaffected.
        assert report.completed == fault_free.completed
        assert report.plan_cache["misses"] > fault_free.plan_cache["misses"]


class TestServerReuse:
    def test_counters_do_not_leak_across_runs(self, trace):
        plan = named_plan("transient-top", duration_s=SPEC.duration_s)
        server = Server(ServerConfig(), fault_plan=plan)
        first = server.run(trace)
        second = server.run(trace)
        assert first.faults_injected > 0
        # Deltas, not cumulative totals.
        assert second.faults_injected < 2 * first.faults_injected
        assert second.breaker_trips <= first.breaker_trips + 5


class TestRecoveryLadderEdges:
    def test_no_retry_budget_forces_immediate_fallback(self, trace):
        plan = FaultPlan(name="always", transients=(
            TransientFaultSpec(implementation=TOP_RANKED, rate=1.0),))
        cfg = ServerConfig(resilience=ResilienceConfig(max_attempts=1))
        report = serve_trace(trace, cfg, fault_plan=plan)
        assert report.retries == 0
        assert report.fallback_completions > 0
        assert report.unhandled_errors == 0

    def test_every_impl_faulting_sheds_with_fault_cause(self, trace):
        plan = FaultPlan(name="all-down", transients=(
            TransientFaultSpec(implementation="*", rate=1.0),))
        cfg = ServerConfig(resilience=ResilienceConfig(
            max_attempts=1, breaker_threshold=1000))
        report = serve_trace(trace, cfg, fault_plan=plan)
        assert report.completed == 0
        assert report.shed_by_cause.get("fault", 0) > 0
        assert report.unhandled_errors == 0
