"""Dynamic batcher: max-batch / max-wait policy and bucket padding."""

import pytest

from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher, next_pow2
from repro.serve.queue import AdmissionQueue
from repro.serve.request import Request

KEY_A = (27, 256, 5, 1, 96, 2)
KEY_B = (13, 384, 3, 1, 256, 1)


def req(rid, key=KEY_A, arrival=0.0, timeout=10.0):
    return Request(rid=rid, model="m", layer="l", key=key,
                   arrival_s=arrival, timeout_s=timeout)


def filled_queue(n, key=KEY_A, arrival=0.0):
    q = AdmissionQueue(max_depth=1024)
    for i in range(n):
        q.offer(req(i, key=key, arrival=arrival))
    return q


class TestNextPow2:
    @pytest.mark.parametrize("n,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (33, 64)])
    def test_values(self, n, expected):
        assert next_pow2(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_pow2(0)


class TestPolicy:
    def test_padded_buckets(self):
        p = BatchPolicy(max_batch=32, bucket=True)
        assert p.padded(5) == 8
        assert p.padded(32) == 32

    def test_padded_clips_to_max_batch(self):
        p = BatchPolicy(max_batch=24, bucket=True)
        assert p.padded(20) == 24

    def test_no_bucket_passthrough(self):
        p = BatchPolicy(max_batch=32, bucket=False)
        assert p.padded(5) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1)


class TestRelease:
    def test_empty_queue_yields_none(self):
        b = DynamicBatcher(BatchPolicy())
        assert b.next_batch(AdmissionQueue(), now_s=0.0) is None

    def test_holds_until_wait_expires(self):
        b = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_s=0.005))
        q = filled_queue(3, arrival=0.0)
        assert b.next_batch(q, now_s=0.001) is None
        batch = b.next_batch(q, now_s=0.005)
        assert batch is not None and batch.fill == 3

    def test_releases_when_full(self):
        b = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=10.0))
        q = filled_queue(4)
        batch = b.next_batch(q, now_s=0.0)
        assert batch is not None
        assert batch.fill == 4 and batch.batch == 4

    def test_caps_at_max_batch(self):
        b = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=10.0))
        q = filled_queue(10)
        batch = b.next_batch(q, now_s=0.0)
        assert batch.fill == 4
        assert len(q) == 6

    def test_drain_releases_immediately(self):
        b = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_s=10.0))
        q = filled_queue(2)
        assert b.next_batch(q, now_s=0.0) is None
        batch = b.next_batch(q, now_s=0.0, drain=True)
        assert batch is not None and batch.fill == 2

    def test_padding_and_counter(self):
        b = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_s=0.0))
        q = filled_queue(5)
        batch = b.next_batch(q, now_s=1.0)
        assert batch.fill == 5 and batch.batch == 8
        assert batch.fill_fraction == pytest.approx(5 / 8)
        assert b.padded_slots == 3

    def test_oldest_lane_served_first(self):
        b = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_s=0.0))
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A, arrival=0.5))
        q.offer(req(2, key=KEY_B, arrival=0.1))
        batch = b.next_batch(q, now_s=1.0)
        assert batch.key == KEY_B

    def test_batch_config_uses_padded_size(self):
        b = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_s=0.0))
        batch = b.next_batch(filled_queue(3), now_s=1.0)
        assert batch.config().batch == 4

    def test_release_at_tracks_oldest_head(self):
        policy = BatchPolicy(max_batch=8, max_wait_s=0.004)
        b = DynamicBatcher(policy)
        q = filled_queue(1, arrival=0.010)
        assert b.release_at(q) == pytest.approx(0.014)
        assert b.release_at(AdmissionQueue()) is None

    def test_release_time_is_reachable(self):
        """advance_to(release_at()) must satisfy the release guard —
        the exact float comparison the scheduler relies on."""
        policy = BatchPolicy(max_batch=8, max_wait_s=0.002)
        b = DynamicBatcher(policy)
        q = filled_queue(1, arrival=0.026088123456)
        release = b.release_at(q)
        assert b.next_batch(q, now_s=release) is not None
