"""Plan cache: LRU eviction, counters, cached infeasibility."""

import pytest

from repro.core.advisor import RankedPlan
from repro.serve.plan_cache import PlanCache, _MISSING


def plan(name="cudnn", t=0.001):
    return RankedPlan(implementation=name, time_s=t, peak_memory_bytes=100)


class TestBasics:
    def test_miss_then_hit(self):
        c = PlanCache(capacity=4)
        assert c.get("k") is _MISSING
        c.put("k", plan())
        assert c.get("k").implementation == "cudnn"
        assert (c.hits, c.misses) == (1, 1)

    def test_hit_rate(self):
        c = PlanCache(capacity=4)
        assert c.hit_rate == 0.0
        c.put("k", plan())
        c.get("k")
        c.get("nope")
        assert c.hit_rate == pytest.approx(0.5)

    def test_cached_infeasibility_is_a_hit(self):
        c = PlanCache(capacity=4)
        c.put("bad", None)
        assert c.get("bad") is None
        assert c.hits == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestLRU:
    def test_evicts_least_recently_used(self):
        c = PlanCache(capacity=2)
        c.put("a", plan("a"))
        c.put("b", plan("b"))
        c.get("a")            # refresh a
        c.put("c", plan("c"))  # evicts b
        assert "a" in c and "c" in c and "b" not in c
        assert c.evictions == 1

    def test_put_refreshes_recency(self):
        c = PlanCache(capacity=2)
        c.put("a", plan("a"))
        c.put("b", plan("b"))
        c.put("a", plan("a2"))  # rewrite refreshes
        c.put("c", plan("c"))   # evicts b, not a
        assert "a" in c and "b" not in c

    def test_capacity_bound_holds(self):
        c = PlanCache(capacity=3)
        for i in range(10):
            c.put(i, plan(str(i)))
        assert len(c) == 3
        assert c.evictions == 7


class TestGetOrCompute:
    def test_computes_once(self):
        c = PlanCache(capacity=4)
        calls = []

        def compute():
            calls.append(1)
            return plan()

        assert c.get_or_compute("k", compute).implementation == "cudnn"
        assert c.get_or_compute("k", compute).implementation == "cudnn"
        assert len(calls) == 1
        assert (c.hits, c.misses) == (1, 1)

    def test_caches_none_result(self):
        c = PlanCache(capacity=4)
        calls = []

        def compute():
            calls.append(1)
            return None

        assert c.get_or_compute("k", compute) is None
        assert c.get_or_compute("k", compute) is None
        assert len(calls) == 1

    def test_stats_dict(self):
        c = PlanCache(capacity=4)
        c.get_or_compute("k", plan)
        stats = c.stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert set(stats) == {"capacity", "entries", "hits", "misses",
                              "evictions", "corruptions", "hit_rate"}
