"""Admission queue: bounded depth, FIFO lanes, timeout shedding."""

import pytest

from repro.errors import ServerClosedError
from repro.serve.queue import AdmissionQueue
from repro.serve.request import Request

KEY_A = (27, 256, 5, 1, 96, 2)
KEY_B = (13, 384, 3, 1, 256, 1)


def req(rid, key=KEY_A, arrival=0.0, timeout=0.05):
    return Request(rid=rid, model="m", layer="l", key=key,
                   arrival_s=arrival, timeout_s=timeout)


class TestAdmission:
    def test_offer_admits(self):
        q = AdmissionQueue(max_depth=4)
        assert q.offer(req(1))
        assert len(q) == 1
        assert q.admitted == 1

    def test_bounded_depth_rejects(self):
        q = AdmissionQueue(max_depth=2)
        assert q.offer(req(1))
        assert q.offer(req(2))
        assert not q.offer(req(3))
        assert len(q) == 2
        assert q.rejected == 1

    def test_depth_bound_is_global_across_lanes(self):
        q = AdmissionQueue(max_depth=2)
        q.offer(req(1, key=KEY_A))
        q.offer(req(2, key=KEY_B))
        assert not q.offer(req(3, key=KEY_A))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)


class TestLanes:
    def test_take_is_fifo(self):
        q = AdmissionQueue()
        for i in range(5):
            q.offer(req(i, arrival=i * 0.001))
        taken = q.take(KEY_A, 3)
        assert [r.rid for r in taken] == [0, 1, 2]
        assert len(q) == 2

    def test_take_respects_lane(self):
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A))
        q.offer(req(2, key=KEY_B))
        assert [r.rid for r in q.take(KEY_B, 10)] == [2]
        assert len(q) == 1

    def test_take_empty_lane(self):
        q = AdmissionQueue()
        assert q.take(KEY_A, 4) == []

    def test_oldest_lane_picks_longest_waiting_head(self):
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A, arrival=0.010))
        q.offer(req(2, key=KEY_B, arrival=0.002))
        key, head = q.oldest_lane()
        assert key == KEY_B and head.rid == 2

    def test_oldest_lane_tie_breaks_by_insertion(self):
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A, arrival=0.5))
        q.offer(req(2, key=KEY_B, arrival=0.5))
        key, _ = q.oldest_lane()
        assert key == KEY_A

    def test_push_front_preserves_order(self):
        q = AdmissionQueue()
        q.offer(req(3))
        q.push_front(KEY_A, [req(1), req(2)])
        assert [r.rid for r in q.take(KEY_A, 10)] == [1, 2, 3]


class TestShedding:
    def test_shed_expired_drops_only_expired(self):
        q = AdmissionQueue()
        q.offer(req(1, arrival=0.0, timeout=0.010))
        q.offer(req(2, arrival=0.0, timeout=0.100))
        dropped = q.shed_expired(0.050)
        assert [r.rid for r in dropped] == [1]
        assert len(q) == 1
        assert q.shed == 1

    def test_shed_nothing_before_deadline(self):
        q = AdmissionQueue()
        q.offer(req(1, arrival=0.0, timeout=0.1))
        assert q.shed_expired(0.1) == []  # deadline is exclusive

    def test_shed_spans_lanes(self):
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A, timeout=0.01))
        q.offer(req(2, key=KEY_B, timeout=0.01))
        assert len(q.shed_expired(1.0)) == 2
        assert len(q) == 0


class TestShutdown:
    def test_drain_returns_everything_in_lane_order(self):
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A))
        q.offer(req(2, key=KEY_B))
        q.offer(req(3, key=KEY_A))
        drained = q.drain()
        assert [r.rid for r in drained] == [1, 3, 2]
        assert len(q) == 0
        assert q.closed_out == 3

    def test_drain_leaves_the_queue_open(self):
        q = AdmissionQueue()
        q.offer(req(1))
        q.drain()
        assert not q.is_closed
        assert q.offer(req(2))

    def test_close_drains_and_refuses_further_offers(self):
        q = AdmissionQueue()
        q.offer(req(1))
        drained = q.close()
        assert [r.rid for r in drained] == [1]
        assert q.is_closed
        with pytest.raises(ServerClosedError):
            q.offer(req(2))
        assert q.closed_out == 1

    def test_close_twice_is_a_noop(self):
        q = AdmissionQueue()
        q.offer(req(1))
        assert len(q.close()) == 1
        assert q.close() == []
        assert q.closed_out == 1

    def test_nothing_is_silently_dropped(self):
        q = AdmissionQueue(max_depth=8)
        for i in range(5):
            q.offer(req(i))
        drained = q.close()
        assert q.admitted == len(drained) + len(q)


class TestRequeueDrain:
    """drain(for_requeue=True): a cluster replica handing its queue
    back to the router, not shutting down."""

    def test_requeue_drain_returns_everything(self):
        q = AdmissionQueue()
        q.offer(req(1, key=KEY_A))
        q.offer(req(2, key=KEY_B))
        q.offer(req(3, key=KEY_A))
        assert [r.rid for r in q.drain(for_requeue=True)] == [1, 3, 2]
        assert len(q) == 0

    def test_requeue_drain_stays_out_of_closed_accounting(self):
        q = AdmissionQueue()
        for i in range(4):
            q.offer(req(i))
        q.drain(for_requeue=True)
        # Not a shutdown: nothing was 'closed out' and the queue
        # still accepts traffic.
        assert q.closed_out == 0
        assert not q.is_closed
        assert q.offer(req(9))

    def test_shutdown_drain_still_counts_closed_out(self):
        q = AdmissionQueue()
        q.offer(req(1))
        q.drain()
        assert q.closed_out == 1

    def test_requeued_requests_keep_their_identity(self):
        q = AdmissionQueue()
        original = req(7, arrival=0.003)
        q.offer(original)
        assert q.drain(for_requeue=True) == [original]
