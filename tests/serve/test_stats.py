"""Serving stats: percentiles, accumulation, report rendering."""

import json

import pytest

from repro.serve.request import Completion, Request
from repro.serve.stats import ServingStats, percentile

KEY = (27, 256, 5, 1, 96, 2)


def completion(rid, arrival, start, finish, batch=4, fill=3, impl="cuDNN"):
    req = Request(rid=rid, model="m", layer="l", key=KEY,
                  arrival_s=arrival, timeout_s=1.0)
    return Completion(request=req, start_s=start, finish_s=finish,
                      batch=batch, fill=fill, implementation=impl)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([3.0], 99) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        vals = [float(i) for i in range(1, 101)]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 100.0
        assert percentile(vals, 95) == pytest.approx(95.05)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestReport:
    def make_report(self):
        stats = ServingStats()
        stats.offered = 5
        stats.record_batch(4, 3, "cuDNN")
        stats.record_completions([
            completion(0, 0.0, 0.001, 0.002),
            completion(1, 0.0, 0.001, 0.003),
            completion(2, 0.001, 0.001, 0.004),
        ])
        cache_stats = {"capacity": 8, "entries": 2, "hits": 9, "misses": 1,
                       "evictions": 0, "hit_rate": 0.9}
        return stats.finalize(duration_s=2.0, plan_cache_stats=cache_stats,
                              peak_memory_bytes=256 * 2**20)

    def test_counts_and_throughput(self):
        rep = self.make_report()
        assert rep.offered == 5
        assert rep.completed == 3
        assert rep.throughput_rps == pytest.approx(1.5)
        assert rep.peak_memory_mb == pytest.approx(256.0)

    def test_latency_is_arrival_to_finish(self):
        rep = self.make_report()
        assert rep.latency_p50_ms == pytest.approx(3.0)

    def test_batch_accounting(self):
        rep = self.make_report()
        assert rep.mean_batch_fill == pytest.approx(3.0)
        assert rep.mean_batch_size == pytest.approx(4.0)
        assert rep.batch_histogram == {4: 1}
        assert rep.implementations == {"cuDNN": 3}

    def test_shed_rate(self):
        stats = ServingStats()
        stats.offered = 10
        stats.rejected = 1
        stats.shed = 2
        stats.oom_shed = 1
        rep = stats.finalize(1.0, {"capacity": 1, "entries": 0, "hits": 0,
                                   "misses": 0, "evictions": 0,
                                   "hit_rate": 0.0}, 0)
        assert rep.shed_rate == pytest.approx(0.4)

    def test_render_mentions_key_lines(self):
        text = self.make_report().render()
        for needle in ("throughput", "latency p50/p95/p99", "plan cache",
                       "batch histogram", "dispatch mix"):
            assert needle in text

    def test_to_dict_is_json_serializable(self):
        d = self.make_report().to_dict()
        restored = json.loads(json.dumps(d))
        assert restored["completed"] == 3
        assert restored["latency_ms"]["p50"] == pytest.approx(3.0)
        assert restored["plan_cache"]["hit_rate"] == pytest.approx(0.9)

    def test_empty_run_report(self):
        stats = ServingStats()
        rep = stats.finalize(0.0, {"capacity": 1, "entries": 0, "hits": 0,
                                   "misses": 0, "evictions": 0,
                                   "hit_rate": 0.0}, 0)
        assert rep.throughput_rps == 0.0
        assert rep.shed_rate == 0.0
        assert rep.mean_batch_fill == 0.0
