"""Load generator: determinism, arrival processes, shape mix."""

import pytest

from repro.config import ConvConfig
from repro.serve.loadgen import (MODEL_SHAPES, Arrival, TrafficSpec,
                                 generate_trace, trace_summary)
from repro.serve.request import shape_key


class TestShapes:
    def test_all_shapes_are_batch_one(self):
        for layers in MODEL_SHAPES.values():
            for _, config in layers:
                assert config.batch == 1

    def test_shapes_are_valid_configs(self):
        for layers in MODEL_SHAPES.values():
            for _, config in layers:
                assert isinstance(config, ConvConfig)
                assert config.output_size >= 1


class TestSpec:
    def test_defaults(self):
        spec = TrafficSpec()
        assert spec.pattern == "poisson"

    @pytest.mark.parametrize("kwargs", [
        {"duration_s": 0}, {"rate_rps": -1}, {"pattern": "diurnal"},
        {"burst_factor": 0.5}, {"models": ("ResNet-999",)}])
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            TrafficSpec(**kwargs)


class TestGeneration:
    def test_deterministic_per_seed(self):
        spec = TrafficSpec(duration_s=2.0, rate_rps=500, seed=7)
        assert generate_trace(spec) == generate_trace(spec)

    def test_different_seeds_differ(self):
        a = generate_trace(TrafficSpec(duration_s=2.0, rate_rps=500, seed=1))
        b = generate_trace(TrafficSpec(duration_s=2.0, rate_rps=500, seed=2))
        assert a != b

    def test_sorted_and_bounded(self):
        spec = TrafficSpec(duration_s=2.0, rate_rps=500, seed=3)
        trace = generate_trace(spec)
        times = [a.t_s for a in trace]
        assert times == sorted(times)
        assert all(0 < t < spec.duration_s for t in times)
        assert [a.rid for a in trace] == list(range(len(trace)))

    def test_rate_is_approximately_honoured(self):
        spec = TrafficSpec(duration_s=20.0, rate_rps=300, seed=11)
        trace = generate_trace(spec)
        mean_rate = len(trace) / spec.duration_s
        assert mean_rate == pytest.approx(300, rel=0.15)

    def test_mix_covers_all_requested_models(self):
        trace = generate_trace(TrafficSpec(duration_s=5.0, rate_rps=500, seed=5))
        assert {a.model for a in trace} == {"AlexNet", "VGG", "GoogLeNet"}

    def test_single_model_mix(self):
        trace = generate_trace(TrafficSpec(duration_s=2.0, rate_rps=500,
                                           models=("VGG",), seed=5))
        assert {a.model for a in trace} == {"VGG"}

    def test_keys_match_model_shapes(self):
        trace = generate_trace(TrafficSpec(duration_s=1.0, rate_rps=500, seed=5))
        valid = {shape_key(cfg) for layers in MODEL_SHAPES.values()
                 for _, cfg in layers}
        assert {a.key for a in trace} <= valid


class TestBursty:
    def test_bursty_clusters_in_burst_phase(self):
        spec = TrafficSpec(duration_s=10.0, rate_rps=300, pattern="bursty",
                           burst_factor=4.0, burst_period_s=1.0, seed=9)
        trace = generate_trace(spec)
        in_burst = sum(1 for a in trace
                       if (a.t_s % spec.burst_period_s) < 0.5)
        # Burst phase runs at 16x the off phase rate; well over half of
        # all arrivals must land there.
        assert in_burst / len(trace) > 0.7

    def test_bursty_deterministic(self):
        spec = TrafficSpec(duration_s=3.0, rate_rps=300, pattern="bursty", seed=4)
        assert generate_trace(spec) == generate_trace(spec)


class TestSummary:
    def test_summary_mentions_counts(self):
        spec = TrafficSpec(duration_s=2.0, rate_rps=500, seed=7)
        trace = generate_trace(spec)
        text = trace_summary(trace, spec)
        assert f"{len(trace)} arrivals" in text
        assert "AlexNet" in text and "seed 7" in text
