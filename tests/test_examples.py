"""The example scripts must actually run.

Each example is executed in a subprocess (the fast ones end-to-end,
the slow ones with arguments that keep them quick) and its output
spot-checked.  This is the executable guarantee behind the README's
examples table.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "fbfft" in out
        assert "Recommendation" in out

    def test_reproduce_figure_lists(self):
        out = run_example("reproduce_figure.py")
        assert "fig3d" in out

    def test_reproduce_figure_single(self):
        out = run_example("reproduce_figure.py", "table2")
        assert "116" in out  # cuda-convnet2 registers

    def test_reproduce_figure_unknown_fails(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_figure.py"), "figX"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 1

    def test_choose_implementation(self):
        out = run_example("choose_implementation.py")
        assert "Recommendation" in out
        # The four scenarios produce at least two distinct winners.
        import re
        winners = set(re.findall(r"Recommendation: (\S+)", out))
        assert len(winners) >= 2

    def test_per_layer_mix(self):
        out = run_example("per_layer_mix.py", "AlexNet", "64")
        assert "oracle mix" in out
        assert "Verdict" in out

    def test_profile_model(self):
        out = run_example("profile_model.py", "AlexNet", "cudnn")
        assert "Conv" in out and "hottest conv layer" in out

    def test_serve_traffic_short(self):
        # Full example simulates 60 s of traffic (~30 s wall); a 3 s
        # trace exercises the same code paths.
        out = run_example("serve_traffic.py", "7", "3")
        assert "== dynamic batching ==" in out
        assert "== forced batch=1 ==" in out
        assert "throughput speedup" in out

    def test_trace_serving(self, tmp_path):
        out_path = tmp_path / "trace.json"
        out = run_example("trace_serving.py", "7", str(out_path))
        assert "span tree:" in out
        assert "serve.batch" in out and "evalcache.evaluate" in out
        assert "gpusim kernel leaves" in out
        import json
        doc = json.loads(out_path.read_text())
        assert doc["otherData"]["spans"] > 0
        metrics = json.loads(
            (tmp_path / "trace_metrics.json").read_text())
        assert metrics["counters"]["serve_requests_offered_total"] > 0

    def test_train_lenet5_short(self):
        # Full example trains 6 epochs (~1-2 min); exercised instead by
        # tests/test_integration.py.  Here just check the help path via
        # a tiny import-run with an unknown backend raising cleanly.
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "train_lenet5.py"), "nonsense"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode != 0
        assert "unknown" in proc.stderr.lower() or "KeyError" in proc.stderr
