"""Calibration-regression tests.

``benchmarks/calibration_baseline.json`` snapshots the headline
quantities the reproduction was calibrated to.  Any change to the
simulator or the calibration tables that moves them more than 5 %
fails here — update the baseline deliberately (see
``repro.core.regression.save_baseline``) after re-checking
EXPERIMENTS.md.
"""

import pathlib

import pytest

from repro.core.regression import (capture_headlines, check_against, compare,
                                   load_baseline, save_baseline)

BASELINE = pathlib.Path(__file__).parent.parent / "benchmarks" / \
    "calibration_baseline.json"


class TestCompare:
    def test_no_drift_on_identical(self):
        head = {"a": 1.0, "b": 2.0}
        assert compare(head, dict(head)) == []

    def test_drift_detected(self):
        drifts = compare({"a": 1.0}, {"a": 1.2}, rel_tolerance=0.05)
        assert len(drifts) == 1
        assert drifts[0].relative == pytest.approx(0.2)

    def test_within_tolerance_ignored(self):
        assert compare({"a": 100.0}, {"a": 103.0}, rel_tolerance=0.05) == []

    def test_added_and_removed_keys_flagged(self):
        drifts = compare({"a": 1.0}, {"b": 1.0})
        assert {d.key for d in drifts} == {"a", "b"}

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare({}, {}, rel_tolerance=-0.1)


class TestBaselineFile:
    def test_baseline_exists(self):
        assert BASELINE.exists(), (
            "regenerate with repro.core.regression.save_baseline")

    def test_current_model_matches_baseline(self):
        """THE regression gate: the simulator reproduces its own
        calibration snapshot."""
        drifts = check_against(str(BASELINE), rel_tolerance=0.05)
        assert drifts == [], "\n".join(
            f"{d.key}: baseline {d.baseline} -> current {d.current} "
            f"({d.relative:.1%})" for d in drifts)

    def test_roundtrip(self, tmp_path):
        head = capture_headlines()
        path = tmp_path / "base.json"
        save_baseline(str(path), head)
        assert load_baseline(str(path)) == head

    def test_baseline_covers_the_headlines(self):
        base = load_baseline(str(BASELINE))
        assert "crossover_k" in base
        assert "corrmm_conv2_transfer" in base
        assert any(k.startswith("base_ms/") for k in base)
