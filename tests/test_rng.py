"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, make_rng, spawn


def test_default_seed_is_deterministic():
    a = make_rng().standard_normal(8)
    b = make_rng().standard_normal(8)
    assert np.array_equal(a, b)


def test_int_seed_controls_sequence():
    assert not np.array_equal(make_rng(1).standard_normal(8),
                              make_rng(2).standard_normal(8))


def test_generator_passthrough():
    gen = np.random.default_rng(7)
    assert make_rng(gen) is gen


def test_rejects_bad_seed_type():
    with pytest.raises(TypeError):
        make_rng("seed")


def test_spawn_independent_streams():
    children = spawn(make_rng(3), 4)
    assert len(children) == 4
    draws = [c.standard_normal(4) for c in children]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_rejects_negative():
    with pytest.raises(ValueError):
        spawn(make_rng(), -1)
