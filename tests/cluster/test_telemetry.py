"""Fleet telemetry plane: never-perturb, byte-determinism, incident
capture and report wiring (repro.cluster.telemetry)."""

import json

from repro.cluster import (Cluster, ClusterConfig, ClusterReport,
                           HealthConfig, serve_cluster)
from repro.core.evalcache import reset_cache
from repro.faults import (FleetFaultPlan, ReplicaCrashSpec,
                          named_fleet_plan)
from repro.obs import (TelemetryConfig, alert_log_lines,
                       render_dashboard, render_dashboard_from_log,
                       window_log_lines, write_window_log)
from repro.serve import (BatchPolicy, ServerConfig, TrafficSpec,
                         generate_trace)


def small_server(**kwargs):
    defaults = dict(policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
                    queue_depth=64, timeout_s=0.25)
    defaults.update(kwargs)
    return ServerConfig(**defaults)


def small_trace(duration=0.5, rate=1600, seed=42):
    return generate_trace(TrafficSpec(duration_s=duration, rate_rps=rate,
                                      seed=seed))


def run(trace, **kwargs):
    """One cold-cache cluster run (the cache is process-global; in a
    single process the second run would otherwise see different
    evalcache hit/miss engine counters in its window log)."""
    reset_cache()
    kwargs.setdefault("server", small_server())
    kwargs.setdefault("replicas", 3)
    return serve_cluster(trace, ClusterConfig(**kwargs))


def telemetry(**kwargs):
    kwargs.setdefault("window_s", 0.05)
    return TelemetryConfig(**kwargs)


def outage_kwargs(**extra):
    plan = named_fleet_plan("domain-outage", duration_s=0.5, replicas=3)
    kwargs = dict(health=HealthConfig(), fleet_fault_plan=plan,
                  telemetry=telemetry())
    kwargs.update(extra)
    return kwargs


def dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestNeverPerturb:
    def test_report_identical_with_telemetry_off(self):
        trace = small_trace()
        with_tel = run(trace, telemetry=telemetry()).to_dict()
        without = run(trace).to_dict()
        assert with_tel.pop("telemetry") is not None
        # Telemetry off leaves the serialized shape untouched: no key.
        assert "telemetry" not in without
        assert with_tel == without

    def test_chaos_report_identical_with_telemetry_off(self):
        trace = small_trace()
        with_tel = run(trace, **outage_kwargs()).to_dict()
        without = run(trace, **outage_kwargs(telemetry=None)).to_dict()
        with_tel.pop("telemetry")
        assert "telemetry" not in without
        assert with_tel == without


class TestByteDeterminism:
    def artifacts(self):
        cluster = Cluster(ClusterConfig(**outage_kwargs(
            server=small_server(), replicas=3)))
        reset_cache()
        report = cluster.run(small_trace())
        tel = cluster.telemetry
        return (dumps(report), window_log_lines(tel.rollups),
                alert_log_lines(tel.alerts),
                [json.dumps(b, sort_keys=True) for b in tel.incidents])

    def test_same_seed_artifacts_are_byte_identical(self):
        assert self.artifacts() == self.artifacts()


class TestIncidents:
    def test_outage_produces_eviction_incidents(self):
        cluster = Cluster(ClusterConfig(**outage_kwargs(
            server=small_server(), replicas=3)))
        reset_cache()
        report = cluster.run(small_trace())
        tel = cluster.telemetry
        reasons = [b["reason"] for b in tel.incidents]
        assert "eviction" in reasons
        assert report.health["evictions"] >= reasons.count("eviction") > 0
        eviction = next(b for b in tel.incidents if b["reason"] == "eviction")
        assert eviction["scorecard"]["evictions"] >= 1
        assert eviction["windows"]  # ring context captured
        assert all("alerts" in w for w in eviction["windows"])
        assert eviction["spans_partial"] is False
        assert [b["sequence"] for b in tel.incidents] == \
            list(range(len(tel.incidents)))

    def test_max_incidents_cap(self):
        cluster = Cluster(ClusterConfig(**outage_kwargs(
            server=small_server(), replicas=3,
            telemetry=telemetry(max_incidents=1))))
        reset_cache()
        cluster.run(small_trace())
        tel = cluster.telemetry
        assert len(tel.incidents) == 1
        assert tel.incidents_suppressed >= 1
        assert tel.report()["incidents_suppressed"] == \
            tel.incidents_suppressed

    def test_write_incidents_names_are_deterministic(self, tmp_path):
        cluster = Cluster(ClusterConfig(**outage_kwargs(
            server=small_server(), replicas=3)))
        reset_cache()
        cluster.run(small_trace())
        paths = cluster.telemetry.write_incidents(str(tmp_path / "bundles"))
        assert paths
        for seq, path in enumerate(paths):
            reason = cluster.telemetry.incidents[seq]["reason"]
            slug = reason.replace(":", "-").replace("/", "-")
            assert path.endswith(f"incident-{seq:03d}-{slug}.json")
        loaded = json.load(open(paths[0]))
        assert loaded == cluster.telemetry.incidents[0]


class TestReconciliation:
    def test_window_completions_sum_to_report(self):
        cluster = Cluster(ClusterConfig(telemetry=telemetry(),
                                        server=small_server(), replicas=3))
        reset_cache()
        report = cluster.run(small_trace())
        tel = cluster.telemetry
        assert sum(w["completed"] for w in tel.rollups.windows) == \
            report.completed
        assert tel.rollups.completions_observed == report.completed

    def test_sources_cover_fleet_and_replicas(self):
        cluster = Cluster(ClusterConfig(telemetry=telemetry(),
                                        server=small_server(), replicas=2))
        reset_cache()
        cluster.run(small_trace())
        sources = cluster.telemetry.report()["sources"]
        assert "fleet" in sources
        names = [r.name for r in cluster.replicas]
        assert all(name in sources for name in names)
        # Each replica also carries its device identity.
        for name in names:
            assert "@" in cluster.telemetry.rollups.device_of(name)

    def test_restarted_replicas_join_the_pipeline(self):
        plan = FleetFaultPlan(name="boom", crashes=(
            ReplicaCrashSpec(replica=1, at_s=0.1),))
        cluster = Cluster(ClusterConfig(
            server=small_server(), replicas=3, health=HealthConfig(),
            fleet_fault_plan=plan, telemetry=telemetry()))
        reset_cache()
        report = cluster.run(small_trace())
        assert report.health["restarts"] >= 1
        sources = cluster.telemetry.report()["sources"]
        restarted = [r.name for r in cluster.replicas if r.incarnation > 0]
        assert restarted
        assert all(name in sources for name in restarted)

    def test_replica_states_recorded_per_window(self):
        cluster = Cluster(ClusterConfig(**outage_kwargs(
            server=small_server(), replicas=3)))
        reset_cache()
        cluster.run(small_trace())
        states = [w["state"]["replicas"] for w in
                  cluster.telemetry.rollups.windows]
        seen = {state for doc in states for state in doc.values()}
        assert "active" in seen
        assert seen - {"active"}  # the outage shows up in the states


class TestReportWiring:
    def test_report_section_and_round_trip(self):
        rep = run(small_trace(), **outage_kwargs())
        doc = rep.to_dict()["telemetry"]
        assert doc["window_s"] == 0.05
        assert doc["windows"] > 0
        assert "alerts" in doc and "incidents" in doc
        loaded = ClusterReport.from_dict(json.loads(dumps(rep)))
        assert dumps(loaded) == dumps(rep)

    def test_render_mentions_telemetry(self):
        rep = run(small_trace(), telemetry=telemetry())
        assert "telemetry" in rep.render()
        plain = run(small_trace())
        assert "telemetry" not in plain.render()

    def test_alerts_disabled(self):
        cluster = Cluster(ClusterConfig(
            telemetry=telemetry(alerts=False),
            server=small_server(), replicas=2))
        reset_cache()
        rep = cluster.run(small_trace())
        assert cluster.telemetry.alerts is None
        assert "alerts" not in rep.to_dict()["telemetry"]


class TestDashboard:
    def test_renders_live_and_from_log(self, tmp_path):
        cluster = Cluster(ClusterConfig(**outage_kwargs(
            server=small_server(), replicas=3)))
        reset_cache()
        cluster.run(small_trace())
        tel = cluster.telemetry
        live = render_dashboard(tel.rollups.windows)
        assert "fleet telemetry" in live
        path = str(tmp_path / "windows.jsonl")
        write_window_log(path, tel.rollups)
        replayed = render_dashboard_from_log(path)
        assert "window" in replayed
        # Same windows in, same panel content out (the replayed
        # header lines additionally name the log path and its
        # window width).
        assert live.splitlines()[3:] == replayed.splitlines()[3:]
