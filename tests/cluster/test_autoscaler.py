"""Autoscaler unit tests against a scripted fake fleet."""

import pytest

from repro.cluster.autoscaler import AutoscalePolicy, Autoscaler
from repro.obs.slo import SLORule, SLOVerdict

P99 = SLORule(name="p99", kind="latency_p99", threshold=0.05)
SHED = SLORule(name="shed", kind="shed_rate", threshold=0.05)


def verdict(rule, ok):
    return SLOVerdict(rule=rule, ok=ok, value=0.0, detail="")


class FakeFleet:
    """Records scale calls; routable count tracks them."""

    def __init__(self, replicas=2):
        self.routable_count = replicas
        self.calls = []

    def scale_up(self, now_s, rule=""):
        self.calls.append(("up", now_s, rule))
        self.routable_count += 1
        return self.routable_count - 1

    def scale_down(self, now_s, rule=""):
        if self.routable_count <= 1:
            return None
        self.calls.append(("down", now_s, rule))
        self.routable_count -= 1
        return self.routable_count


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = AutoscalePolicy()
        assert policy.min_replicas == 1 and policy.max_replicas == 8

    def test_rejects_zero_min(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=4, max_replicas=2)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(cooldown_s=-0.1)


class TestScaleUp:
    def test_violation_edge_adds_a_replica(self):
        fleet = FakeFleet(2)
        scaler = Autoscaler(AutoscalePolicy(max_replicas=4), fleet)
        scaler.on_edge(P99, True, 1.0, verdict(P99, False))
        assert fleet.calls == [("up", 1.0, "p99")]
        assert scaler.scale_ups == 1 and scaler.in_violation

    def test_bounded_by_max_replicas(self):
        fleet = FakeFleet(4)
        scaler = Autoscaler(AutoscalePolicy(max_replicas=4), fleet)
        scaler.on_edge(P99, True, 1.0, verdict(P99, False))
        assert fleet.calls == []
        assert scaler.in_violation          # tracked even when capped

    def test_cooldown_paces_successive_ups(self):
        fleet = FakeFleet(1)
        scaler = Autoscaler(AutoscalePolicy(cooldown_s=0.5, max_replicas=8),
                            fleet)
        scaler.on_edge(P99, True, 1.0, verdict(P99, False))
        scaler.on_edge(SHED, True, 1.2, verdict(SHED, False))  # too soon
        scaler.on_edge(SHED, True, 1.6, verdict(SHED, False))
        # The second edge at 1.2 is inside the cooldown; only the
        # edges at 1.0 and 1.6 act.
        assert [c[1] for c in fleet.calls] == [1.0, 1.6]


class TestScaleDown:
    def test_recovery_drains_one_replica(self):
        fleet = FakeFleet(3)
        scaler = Autoscaler(AutoscalePolicy(cooldown_s=0.0), fleet)
        scaler.on_edge(P99, True, 1.0, verdict(P99, False))
        scaler.on_edge(P99, False, 2.0, verdict(P99, True))
        assert ("down", 2.0, "p99") in fleet.calls
        assert scaler.drains == 1 and not scaler.in_violation

    def test_no_drain_while_another_rule_violated(self):
        fleet = FakeFleet(4)
        scaler = Autoscaler(AutoscalePolicy(cooldown_s=0.0,
                                            max_replicas=4), fleet)
        scaler.on_edge(P99, True, 1.0, verdict(P99, False))
        scaler.on_edge(SHED, True, 1.1, verdict(SHED, False))
        scaler.on_edge(P99, False, 2.0, verdict(P99, True))
        assert scaler.drains == 0 and scaler.in_violation
        scaler.on_edge(SHED, False, 3.0, verdict(SHED, True))
        assert scaler.drains == 1 and not scaler.in_violation

    def test_bounded_by_min_replicas(self):
        fleet = FakeFleet(2)
        scaler = Autoscaler(AutoscalePolicy(min_replicas=2, cooldown_s=0.0),
                            fleet)
        scaler.on_edge(P99, False, 1.0, verdict(P99, True))
        assert fleet.calls == []

    def test_fleet_refusal_is_not_recorded(self):
        fleet = FakeFleet(1)
        # min_replicas=1 with one routable: scale_down returns None.
        # The fleet can refuse when only one candidate is drainable.
        scaler = Autoscaler(AutoscalePolicy(min_replicas=1, cooldown_s=0.0,
                                            max_replicas=8), fleet)
        fleet.routable_count = 2
        fleet.scale_down = lambda now_s, rule="": None
        scaler.on_edge(P99, False, 1.0, verdict(P99, True))
        assert scaler.drains == 0 and scaler.actions == []


class TestLedger:
    def test_actions_carry_context(self):
        fleet = FakeFleet(1)
        scaler = Autoscaler(AutoscalePolicy(cooldown_s=0.0), fleet)
        scaler.on_edge(P99, True, 0.4, verdict(P99, False))
        scaler.on_edge(P99, False, 0.9, verdict(P99, True))
        assert [a["action"] for a in scaler.actions] == ["scale_up", "drain"]
        up = scaler.actions[0]
        assert up["t_s"] == 0.4 and up["rule"] == "p99"
        assert up["replicas"] == 2          # count after the action
