"""Fleet integration: determinism across policies and fault plans,
shape-affinity's cache win, autoscaling end-to-end, chaos kills, and
the merged observability exports."""

import json

import pytest

from repro.cluster import (AutoscalePolicy, Cluster, ClusterConfig,
                           REPLICA_SID_STRIDE, serve_cluster)
from repro.faults import named_plan
from repro.faults.plan import PLAN_NAMES
from repro.obs.export import (CLUSTER_PID, REPLICA_PID_BASE,
                              cluster_chrome_trace, cluster_jsonl_lines,
                              cluster_metrics_doc)
from repro.obs.slo import SLOPolicy, SLORule
from repro.serve import BatchPolicy, ServerConfig, TrafficSpec, generate_trace


def small_server(**kwargs):
    defaults = dict(policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
                    queue_depth=64, timeout_s=0.25)
    defaults.update(kwargs)
    return ServerConfig(**defaults)


def small_trace(duration=0.5, rate=1200, seed=42):
    return generate_trace(TrafficSpec(duration_s=duration, rate_rps=rate,
                                      seed=seed))


def run_recorded(trace, config):
    """One fleet run with the routing-decision ledger switched on."""
    cluster = Cluster(config)
    cluster.router.decisions = []
    report = cluster.run(trace)
    return report, cluster.router.decisions


STRAGGLER = named_plan("straggler", 0.5)


class TestConfigValidation:
    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            ClusterConfig(replicas=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ClusterConfig(policy="coin-flip")

    def test_autoscale_requires_slo(self):
        with pytest.raises(ValueError):
            ClusterConfig(autoscale=AutoscalePolicy())

    def test_initial_size_must_fit_autoscale_bounds(self):
        slo = SLOPolicy(rules=(SLORule(name="p99", kind="latency_p99",
                                       threshold=0.25),))
        with pytest.raises(ValueError):
            ClusterConfig(replicas=9, slo=slo,
                          autoscale=AutoscalePolicy(max_replicas=8))

    def test_cluster_runs_one_trace_only(self):
        cluster = Cluster(ClusterConfig(replicas=1, server=small_server()))
        cluster.run([])
        with pytest.raises(RuntimeError):
            cluster.run([])


class TestDeterminism:
    """Satellite: every router policy x a replica-straggler fault plan
    must give byte-identical reports AND identical routing decisions
    on same-seed runs."""

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded",
                                        "p2c", "shape-affinity"])
    def test_policy_with_straggler_replica_is_deterministic(self, policy):
        trace = small_trace()
        config = ClusterConfig(replicas=3, policy=policy,
                               server=small_server(),
                               fault_plans={0: STRAGGLER})
        rep_a, dec_a = run_recorded(trace, config)
        rep_b, dec_b = run_recorded(trace, config)
        assert dec_a == dec_b
        assert (json.dumps(rep_a.to_dict(), sort_keys=True)
                == json.dumps(rep_b.to_dict(), sort_keys=True))

    def test_different_seeds_differ_under_p2c(self):
        trace = small_trace()
        base = dict(replicas=3, policy="p2c", server=small_server())
        _, dec_a = run_recorded(trace, ClusterConfig(seed=1, **base))
        _, dec_b = run_recorded(trace, ClusterConfig(seed=2, **base))
        assert dec_a != dec_b

    def test_fleet_conserves_every_arrival(self):
        trace = small_trace()
        report = serve_cluster(trace, ClusterConfig(
            replicas=4, server=small_server()))
        # Every arrival either completes somewhere or is terminally
        # shed somewhere; 'requeued' is a hand-off, not an outcome.
        terminal_sheds = sum(
            n for r in report.replicas
            for cause, n in r.report.shed_by_cause.items()
            if cause != "requeued")
        accounted = report.completed + terminal_sheds + \
            report.no_replica_shed
        assert accounted == len(trace)
        assert report.offered == len(trace)

    def test_straggler_replica_shows_in_its_latency_tail(self):
        trace = small_trace(rate=2000)
        report = serve_cluster(trace, ClusterConfig(
            replicas=3, policy="round-robin", server=small_server(),
            fault_plans={1: named_plan("straggler", 0.5)}))
        straggler = report.replicas[1].report
        healthy = report.replicas[2].report
        # Equal traffic in (round-robin), but the slowdown window
        # stretches the slowed replica's tail.
        assert straggler.offered == healthy.offered
        assert straggler.latency_p99_ms > healthy.latency_p99_ms


class TestShapeAffinity:
    def test_beats_round_robin_on_plan_cache_hit_rate(self):
        """Satellite: pinning shapes to replicas keeps their plan
        caches warm; round-robin pays the ranking cost on every
        replica for every shape."""
        trace = small_trace(duration=1.0, rate=1000, seed=7)
        base = dict(replicas=4, server=small_server())
        aff = serve_cluster(trace, ClusterConfig(policy="shape-affinity",
                                                 **base))
        rr = serve_cluster(trace, ClusterConfig(policy="round-robin",
                                                **base))
        assert aff.plan_cache["hit_rate"] > rr.plan_cache["hit_rate"]
        assert aff.plan_cache["misses"] < rr.plan_cache["misses"]


class TestAutoscaling:
    SLO = SLOPolicy(rules=(SLORule(name="p99", kind="latency_p99",
                                   threshold=0.03),), window_s=0.05)

    def overload_config(self, cooldown_s=0.5, **kwargs):
        # A single replica saturates just under 4000 rps with the
        # default server config, so rate-4000 traffic violates the
        # 30 ms p99 until the autoscaler grows the fleet — the
        # scenario the CI recovery gate replays through the CLI.
        defaults = dict(
            replicas=1, policy="least-loaded", server=ServerConfig(),
            slo=self.SLO, window_s=0.25,
            autoscale=AutoscalePolicy(min_replicas=1, max_replicas=4,
                                      cooldown_s=cooldown_s))
        defaults.update(kwargs)
        return ClusterConfig(**defaults)

    def test_violation_scales_up_and_recovers(self):
        """The CI gate's scenario: an overloaded single replica must
        violate the latency SLO, grow the fleet, and end recovered.
        The 0.5 s cooldown stops the recovery edge from immediately
        draining the fleet back into overload."""
        trace = small_trace(duration=2.0, rate=4000, seed=11)
        report = serve_cluster(trace, self.overload_config())
        assert report.slo_violations >= 1
        assert report.scale_ups >= 1
        assert report.slo_recoveries >= 1
        assert report.slo_in_violation is False
        assert report.replicas_peak > 1

    def test_recovery_drains_back_down(self):
        # A short cooldown lets the recovery edge drain a replica —
        # which re-overloads the fleet: the classic flapping loop,
        # reproduced deterministically.
        trace = small_trace(duration=2.0, rate=4000, seed=11)
        report = serve_cluster(trace, self.overload_config(cooldown_s=0.2))
        assert report.drains >= 1
        assert any(r.outcome == "drained" for r in report.replicas)
        # Drained replicas' queues were handed back, not dropped.
        drained = [r for r in report.replicas if r.outcome == "drained"]
        assert report.requeued >= sum(
            r.report.shed_by_cause.get("requeued", 0) for r in drained)

    def test_autoscale_actions_appear_as_spans(self):
        trace = small_trace(duration=2.0, rate=4000, seed=11)
        cluster = Cluster(self.overload_config(cooldown_s=0.2))
        cluster.enable_tracing()
        report = cluster.run(trace)
        names = [s.name for s in cluster.obs.tracer.walk()]
        assert names.count("autoscale.scale_up") == report.scale_ups
        assert names.count("autoscale.drain") >= 1

    def test_no_slo_leaves_report_unmonitored(self):
        report = serve_cluster(small_trace(), ClusterConfig(
            replicas=2, server=small_server()))
        assert report.slo_in_violation is None
        assert report.slo_violations == 0


class TestKills:
    def test_scheduled_kill_retires_replica(self):
        trace = small_trace(rate=2000)
        report = serve_cluster(trace, ClusterConfig(
            replicas=3, server=small_server(), kills={1: 0.25}))
        victim = report.replicas[1]
        assert victim.outcome == "killed"
        assert victim.retired_s >= 0.25
        assert report.kills == 1
        assert report.replicas_final == 2

    def test_survivors_absorb_the_evacuated_queue(self):
        # A long max-wait keeps queues populated so the kill actually
        # catches requests in flight.
        trace = small_trace(rate=2000)
        with_kill = serve_cluster(trace, ClusterConfig(
            replicas=3, server=small_server(
                policy=BatchPolicy(max_batch=64, max_wait_s=0.01)),
            kills={1: 0.25}))
        assert with_kill.requeued > 0
        # Router never sends new traffic to the dead replica.
        assert with_kill.replicas[1].report.duration_s <= \
            with_kill.duration_s

    def test_killing_the_whole_fleet_sheds_no_replica(self):
        trace = small_trace(rate=800)
        report = serve_cluster(trace, ClusterConfig(
            replicas=2, server=small_server(),
            kills={0: 0.1, 1: 0.1}))
        assert report.replicas_final == 0
        assert report.no_replica_shed > 0

    def test_kill_of_retired_replica_is_a_noop(self):
        trace = small_trace(duration=0.2, rate=500)
        report = serve_cluster(trace, ClusterConfig(
            replicas=2, server=small_server(),
            kills={1: 0.05, 0: 10.0}))   # 0's kill lands after the run
        assert report.kills == 1
        assert report.replicas[0].outcome == "ran"


class TestFaultPlanMatrix:
    @pytest.mark.parametrize("plan", [p for p in PLAN_NAMES if p != "none"])
    def test_every_named_plan_runs_deterministically(self, plan):
        trace = small_trace(duration=0.3, rate=800)
        config = ClusterConfig(replicas=2, server=small_server(),
                               default_fault_plan=named_plan(plan, 0.3))
        a = serve_cluster(trace, config).to_dict()
        b = serve_cluster(trace, config).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_per_replica_fault_seeds_differ(self):
        # Same plan on every replica, but independent fault streams:
        # the replicas must not fail in lockstep.
        trace = small_trace(duration=0.5, rate=1500)
        report = serve_cluster(trace, ClusterConfig(
            replicas=3, server=small_server(),
            default_fault_plan=named_plan("transient-top", 0.5)))
        faults = [r.report.faults_injected for r in report.replicas]
        assert len(set(faults)) > 1


class TestWindowSnapshot:
    def test_window_prunes_old_traffic(self):
        cluster = Cluster(ClusterConfig(replicas=1, server=small_server(),
                                        window_s=0.1))
        cluster._win_offered.extend([0.0, 0.05, 0.2])
        cluster._win_completions.extend([
            (0.0, 0.01, 0.001), (0.21, 0.02, 0.002)])
        cluster.clock.advance_to(0.25)
        snap = cluster._window_snapshot()
        assert snap["counters"]["serve_requests_offered_total"] == 1.0
        assert snap["counters"]["serve_requests_completed_total"] == 1.0
        assert snap["histograms"]["serve_latency_seconds"]["count"] == 1

    def test_snapshot_shape_matches_registry_snapshot(self):
        cluster = Cluster(ClusterConfig(replicas=1, server=small_server()))
        snap = cluster._window_snapshot()
        assert set(snap) == {"counters", "histograms"}
        assert "p99" in snap["histograms"]["serve_latency_seconds"]


class TestExports:
    def traced_run(self):
        cluster = Cluster(ClusterConfig(replicas=2, server=small_server()))
        cluster.enable_tracing()
        cluster.run(small_trace(duration=0.3, rate=800))
        return cluster

    def test_each_replica_gets_its_own_process_row(self):
        cluster = self.traced_run()
        doc = cluster_chrome_trace(cluster.obs.tracer,
                                   cluster.replica_tracers)
        procs = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "process_name"}
        assert procs[CLUSTER_PID] == "cluster"
        assert procs[REPLICA_PID_BASE] == "replica0"
        assert procs[REPLICA_PID_BASE + 1] == "replica1"

    def test_span_ids_never_collide_across_tracers(self):
        cluster = self.traced_run()
        lines = cluster_jsonl_lines(cluster.obs.tracer,
                                    cluster.replica_tracers)
        sids = [json.loads(l)["sid"] for l in lines
                if json.loads(l).get("type") == "span"]
        assert len(sids) == len(set(sids))
        # Replica spans live in their reserved blocks.
        assert any(REPLICA_SID_STRIDE <= s < 2 * REPLICA_SID_STRIDE
                   for s in sids)
        assert any(s >= 2 * REPLICA_SID_STRIDE for s in sids)

    def test_metrics_doc_carries_fleet_and_replica_sections(self):
        cluster = self.traced_run()
        doc = cluster_metrics_doc(
            cluster.obs.registry,
            [(r.name, r.server.obs.registry) for r in cluster.replicas])
        assert set(doc["replicas"]) == {"replica0", "replica1"}
        fleet_counters = doc["fleet"]["counters"]
        assert any(k.startswith("cluster_routed_total")
                   for k in fleet_counters)
        rep0 = doc["replicas"]["replica0"]["counters"]
        assert "serve_requests_completed_total" in rep0

    def test_exports_are_byte_identical_across_runs(self):
        docs = []
        for _ in range(2):
            cluster = self.traced_run()
            docs.append(json.dumps(
                cluster_chrome_trace(cluster.obs.tracer,
                                     cluster.replica_tracers),
                sort_keys=True))
        assert docs[0] == docs[1]
