"""Heterogeneous-fleet determinism and device threading.

Satellite requirements: same-seed ``--fleet`` runs are byte-identical
across every router policy, and a one-device fleet reproduces the
homogeneous cluster report byte-for-byte.
"""

import json

import pytest

from repro.cluster import (POLICIES, Cluster, ClusterConfig, DeviceAffinity,
                           ReplicaSummary, make_policy)
from repro.core.advisor import Advisor
from repro.frameworks.registry import shared_implementations
from repro.gpusim.device import K40C, TITAN_X
from repro.serve.loadgen import TrafficSpec, generate_trace

TRACE = generate_trace(TrafficSpec(duration_s=0.5, rate_rps=2000.0, seed=11))


def run_fleet(devices, policy="round-robin", seed=11):
    config = ClusterConfig(replicas=len(devices), policy=policy,
                           devices=devices, seed=seed)
    return Cluster(config).run(TRACE)


def report_json(report):
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


class TestConfigValidation:
    def test_devices_must_match_replicas(self):
        with pytest.raises(ValueError, match="one per replica"):
            ClusterConfig(replicas=3, devices=("k40c", "maxwell"))

    def test_empty_devices_is_homogeneous(self):
        ClusterConfig(replicas=3, devices=())

    def test_unknown_device_rejected_at_build(self):
        with pytest.raises(KeyError):
            Cluster(ClusterConfig(replicas=1, devices=("h100",)))


class TestHeterogeneousDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_same_seed_byte_identical(self, policy):
        devices = ("k40c", "k40c", "maxwell", "maxwell")
        a = report_json(run_fleet(devices, policy=policy))
        b = report_json(run_fleet(devices, policy=policy))
        assert a == b

    def test_replicas_carry_their_devices(self):
        report = run_fleet(("k40c", "maxwell"))
        assert [r.device for r in report.replicas] == \
            ["Tesla K40c", "GTX TITAN X (Maxwell)"]
        doc = report.to_dict()
        assert [r["device"] for r in doc["replicas"]] == \
            ["Tesla K40c", "GTX TITAN X (Maxwell)"]

    def test_round_trip_preserves_device(self):
        report = run_fleet(("k40c", "maxwell"))
        doc = report.to_dict()["replicas"][1]
        assert ReplicaSummary.from_dict(doc).device == \
            "GTX TITAN X (Maxwell)"


class TestHomogeneousByteIdentity:
    """A one-device ``--fleet`` must reproduce the plain homogeneous
    cluster byte-for-byte — no device fields, same numbers."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_one_device_fleet_equals_homogeneous(self, policy):
        legacy = Cluster(ClusterConfig(replicas=3, policy=policy,
                                       seed=11)).run(TRACE)
        fleet = run_fleet(("k40c", "k40c", "k40c"), policy=policy)
        assert report_json(fleet) == report_json(legacy)

    def test_homogeneous_report_has_no_device_keys(self):
        report = run_fleet(("k40c", "k40c"))
        assert all(r.device is None for r in report.replicas)
        assert all("device" not in r
                   for r in report.to_dict()["replicas"])


class TestDeviceThreading:
    def test_hetero_replicas_get_distinct_specs(self):
        cluster = Cluster(ClusterConfig(replicas=2,
                                        devices=("k40c", "maxwell")))
        cluster.run(TRACE)
        assert cluster.replicas[0].server.config.device == K40C
        assert cluster.replicas[1].server.config.device == TITAN_X

    def test_plan_caches_keyed_per_device(self):
        """The shared advisor serves both devices; each replica's plan
        cache holds plans ranked for its own hardware."""
        cluster = Cluster(ClusterConfig(replicas=2,
                                        devices=("k40c", "maxwell"),
                                        policy="round-robin"))
        cluster.run(TRACE)
        k40c_plans = cluster.replicas[0].server.plan_cache._entries
        maxwell_plans = cluster.replicas[1].server.plan_cache._entries
        shared = set(k40c_plans) & set(maxwell_plans)
        assert not shared            # digest-bearing keys never collide
        # Maxwell is strictly faster: its winning plan for any common
        # shape must be faster than K40c's.
        by_shape = {}
        for (key, batch, dev), plans in k40c_plans.items():
            if plans:
                by_shape[(key, batch)] = plans[0].time_s
        compared = 0
        for (key, batch, dev), plans in maxwell_plans.items():
            if plans and (key, batch) in by_shape:
                assert plans[0].time_s < by_shape[(key, batch)]
                compared += 1
        assert compared > 0


class TestDeviceAffinityPolicy:
    def test_in_policy_list(self):
        assert "device-affinity" in POLICIES
        assert isinstance(make_policy("device-affinity", 0),
                          DeviceAffinity)

    def test_prefers_faster_device(self):
        """On a K40c+Maxwell fleet, every shape pins to a Maxwell
        replica (Maxwell wins every shape in the trace)."""
        config = ClusterConfig(replicas=4,
                               devices=("k40c", "k40c",
                                        "maxwell", "maxwell"),
                               policy="device-affinity", seed=11)
        cluster = Cluster(config)
        report = cluster.run(TRACE)
        routed = {r.index: r.routed for r in report.replicas}
        assert routed[0] == 0 and routed[1] == 0
        assert routed[2] > 0 and routed[3] > 0

    def test_degrades_to_shape_affinity_without_advisor(self):
        policy = make_policy("device-affinity", 0)
        assert policy._advisor is None
        # Build a tiny homogeneous fleet and compare decision-for-
        # decision with shape-affinity.
        devices = ("k40c", "k40c", "k40c")
        a = report_json(run_fleet(devices, policy="device-affinity"))
        b = report_json(run_fleet(devices, policy="shape-affinity"))
        # Only the recorded policy name differs.
        assert a.replace('"device-affinity"', '"shape-affinity"') == b

    def test_homogeneous_equals_shape_affinity_with_advisor(self):
        advisor = Advisor(device=K40C,
                          implementations=shared_implementations())
        policy = make_policy("device-affinity", 0, advisor=advisor)
        assert policy._advisor is advisor
