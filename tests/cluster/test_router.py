"""Routing policies: determinism, balance, affinity, failover."""

import pytest

from repro.cluster.router import (POLICIES, LeastLoaded, PowerOfTwo,
                                  RoundRobin, Router, ShapeAffinity,
                                  make_policy)
from repro.obs.context import Observability
from repro.serve.request import Request

KEY_A = (27, 256, 5, 1, 96, 2)
KEY_B = (13, 384, 3, 1, 256, 1)


class FakeReplica:
    """Just enough surface for the policies: index, load, routable."""

    def __init__(self, index, depth=0, busy=0.0, routable=True):
        self.index = index
        self._depth = depth
        self._busy = busy
        self.routable = routable

    def load(self, now_s):
        return (self._depth, self._busy)


def req(rid, key=KEY_A):
    return Request(rid=rid, model="m", layer="l", key=key,
                   arrival_s=0.0, timeout_s=0.25)


def fleet(n=4, **kwargs):
    return [FakeReplica(i, **kwargs) for i in range(n)]


class TestMakePolicy:
    def test_every_name_constructs(self):
        for name in POLICIES:
            assert make_policy(name, seed=7).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_policy("random", seed=7)


class TestRoundRobin:
    def test_rotates_in_index_order(self):
        policy = RoundRobin()
        replicas = fleet(3)
        picks = [policy.choose(replicas, req(i), 0.0).index
                 for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_cursor_survives_fleet_resize(self):
        policy = RoundRobin()
        replicas = fleet(4)
        policy.choose(replicas, req(0), 0.0)
        policy.choose(replicas, req(1), 0.0)
        # A replica drains: the cursor keeps advancing over the
        # smaller eligible set without resetting.
        assert policy.choose(replicas[:2], req(2), 0.0).index == 0


class TestLeastLoaded:
    def test_prefers_smallest_queue(self):
        replicas = [FakeReplica(0, depth=3), FakeReplica(1, depth=1),
                    FakeReplica(2, depth=2)]
        assert LeastLoaded().choose(replicas, req(0), 0.0).index == 1

    def test_busy_seconds_break_queue_ties(self):
        replicas = [FakeReplica(0, depth=1, busy=0.004),
                    FakeReplica(1, depth=1, busy=0.001)]
        assert LeastLoaded().choose(replicas, req(0), 0.0).index == 1

    def test_full_tie_goes_to_lowest_index(self):
        assert LeastLoaded().choose(fleet(4), req(0), 0.0).index == 0


class TestPowerOfTwo:
    def test_same_seed_same_draws(self):
        replicas = fleet(5)
        a = [PowerOfTwo(3).choose(replicas, req(i), 0.0).index
             for i in range(50)]
        b = [PowerOfTwo(3).choose(replicas, req(i), 0.0).index
             for i in range(50)]
        assert a == b

    def test_draws_are_distinct_pairs(self):
        # With two replicas every draw compares both, so the loaded
        # one is never chosen.
        replicas = [FakeReplica(0, depth=9), FakeReplica(1)]
        policy = PowerOfTwo(11)
        assert all(policy.choose(replicas, req(i), 0.0).index == 1
                   for i in range(20))

    def test_single_replica_consumes_no_randomness(self):
        policy = PowerOfTwo(5)
        one = [FakeReplica(0)]
        for i in range(3):
            policy.choose(one, req(i), 0.0)
        # The stream is untouched: the next two-replica draw matches a
        # fresh policy's first draw.
        fresh = PowerOfTwo(5)
        replicas = fleet(4)
        assert (policy.choose(replicas, req(9), 0.0).index
                == fresh.choose(replicas, req(9), 0.0).index)

    def test_idle_fleet_ties_break_to_lower_index(self):
        # All replicas idle: every pair is a tie, so the higher index
        # of a pair never wins — the highest replica is unreachable
        # until load differentiates the fleet.  Deterministic by design.
        replicas = fleet(4)
        policy = PowerOfTwo(23)
        picks = {policy.choose(replicas, req(i), 0.0).index
                 for i in range(80)}
        assert picks == {0, 1, 2}

    def test_load_skew_reaches_the_highest_index(self):
        # Reverse the skew: replica 3 is the least loaded and wins
        # every pair it is drawn into.
        replicas = [FakeReplica(i, depth=3 - i) for i in range(4)]
        policy = PowerOfTwo(23)
        picks = {policy.choose(replicas, req(i), 0.0).index
                 for i in range(80)}
        assert 3 in picks and 0 not in picks


class TestShapeAffinity:
    def test_pins_shape_to_first_replica(self):
        policy = ShapeAffinity()
        replicas = fleet(3)
        first = policy.choose(replicas, req(0, KEY_A), 0.0)
        # Later the pinned replica is the busiest — the pin still wins.
        replicas[first.index]._depth = 50
        assert policy.choose(replicas, req(1, KEY_A), 0.0) is first

    def test_different_shapes_spread_by_load(self):
        policy = ShapeAffinity()
        replicas = fleet(2)
        a = policy.choose(replicas, req(0, KEY_A), 0.0)
        replicas[a.index]._depth = 1
        b = policy.choose(replicas, req(1, KEY_B), 0.0)
        assert a.index != b.index
        assert policy.pins == {KEY_A: a.index, KEY_B: b.index}

    def test_pin_moves_when_replica_leaves(self):
        policy = ShapeAffinity()
        replicas = fleet(3)
        policy.pins[KEY_A] = 2
        survivor = policy.choose(replicas[:2], req(0, KEY_A), 0.0)
        assert survivor.index in (0, 1)
        assert policy.pins[KEY_A] == survivor.index


class TestRouter:
    def test_skips_unroutable_replicas(self):
        obs = Observability()
        replicas = fleet(3)
        replicas[0].routable = False
        router = Router(RoundRobin(), obs)
        picks = {router.route(req(i), replicas, 0.0).index
                 for i in range(6)}
        assert picks == {1, 2}
        assert router.routed == {1: 3, 2: 3}

    def test_empty_fleet_returns_none_and_counts(self):
        obs = Observability()
        router = Router(RoundRobin(), obs)
        assert router.route(req(0), fleet(2, routable=False), 0.0) is None
        assert router.no_replica == 1
        snap = obs.registry.snapshot()
        assert snap["counters"]["cluster_no_replica_total"] == 1.0

    def test_decision_ledger_records_rid_and_index(self):
        router = Router(RoundRobin(), Observability(),
                        record_decisions=True)
        replicas = fleet(2)
        for i in range(4):
            router.route(req(i), replicas, 0.0)
        assert router.decisions == [(0, 0), (1, 1), (2, 0), (3, 1)]

    def test_routed_counter_is_labelled_per_replica(self):
        obs = Observability()
        router = Router(RoundRobin(), obs)
        replicas = fleet(2)
        for i in range(3):
            router.route(req(i), replicas, 0.0)
        counters = obs.registry.snapshot()["counters"]
        assert counters['cluster_routed_total{replica="0"}'] == 2.0
        assert counters['cluster_routed_total{replica="1"}'] == 1.0
