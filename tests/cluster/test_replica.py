"""Replica lifecycle: clock protocol, drain/kill evacuation, and the
one-replica cluster's exact equivalence to a single Server run."""

import pytest

from repro.cluster import ClusterConfig, Replica, serve_cluster
from repro.serve import (Arrival, BatchPolicy, Server, ServerConfig,
                         TrafficSpec, generate_trace)
from repro.serve.loadgen import MODEL_SHAPES
from repro.serve.request import Request, shape_key

KEY = shape_key(MODEL_SHAPES["AlexNet"][1][1])


def arrivals(times):
    return [Arrival(rid=i, t_s=t, model="AlexNet", layer="conv2", key=KEY)
            for i, t in enumerate(times)]


def small_config(**kwargs):
    defaults = dict(policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
                    queue_depth=64, timeout_s=0.25)
    defaults.update(kwargs)
    return ServerConfig(**defaults)


def req(rid, arrival=0.0):
    return Request(rid=rid, model="AlexNet", layer="conv2", key=KEY,
                   arrival_s=arrival, timeout_s=0.25)


class TestEquivalence:
    def test_one_replica_cluster_matches_server_run(self):
        """The load-bearing invariant: a fleet of one reproduces
        Server.run decision for decision, completion for completion."""
        config = small_config()
        trace = generate_trace(TrafficSpec(duration_s=0.5, rate_rps=1200,
                                           seed=42))
        solo = Server(config).run(trace)
        rep = serve_cluster(trace, ClusterConfig(replicas=1, server=config))
        assert rep.replicas[0].report.to_dict() == solo.to_dict()
        assert rep.completed == solo.completed
        assert rep.offered == len(trace)

    def test_equivalence_holds_under_bursty_traffic(self):
        config = small_config()
        trace = generate_trace(TrafficSpec(duration_s=0.5, rate_rps=1500,
                                           pattern="bursty", seed=9))
        solo = Server(config).run(trace)
        rep = serve_cluster(trace, ClusterConfig(replicas=1, server=config))
        assert rep.replicas[0].report.to_dict() == solo.to_dict()


class TestClockProtocol:
    def test_busy_replica_refuses_work_until_fleet_catches_up(self):
        replica = Replica(0, small_config()).begin(0.0)
        replica.admit(req(0))
        replica.poll(0.0, drain=True)       # dispatches; clock runs ahead
        busy = replica.busy_until(0.0)
        assert busy is not None and busy > 0.0
        depth_before = replica.queue_depth
        mid = busy / 2                      # strictly inside the batch
        replica.admit(req(1, arrival=mid))
        replica.poll(mid, drain=True)       # still mid-batch: no release
        assert replica.queue_depth == depth_before + 1
        replica.poll(busy, drain=True)      # fleet caught up: batch out
        assert replica.queue_depth == 0

    def test_load_combines_queue_and_busy_seconds(self):
        replica = Replica(0, small_config()).begin(0.0)
        assert replica.load(0.0) == (0, 0.0)
        replica.admit(req(0))
        replica.poll(0.0, drain=True)
        depth, busy = replica.load(0.0)
        assert depth == 0 and busy > 0.0
        # Past the busy horizon the load decays to idle.
        assert replica.load(busy + 1.0) == (0, 0.0)

    def test_replica_ignores_fleet_slo_config(self):
        from repro.obs.slo import DEFAULT_RULES, SLOPolicy
        config = small_config(slo=SLOPolicy(rules=DEFAULT_RULES))
        replica = Replica(0, config)
        assert replica.server.config.slo is None


class TestDrain:
    def test_drain_hands_back_queue_and_stops_routing(self):
        replica = Replica(0, small_config()).begin(0.0)
        for i in range(3):
            replica.admit(req(i))
        evacuated = replica.start_drain(0.0)
        assert [r.rid for r in evacuated] == [0, 1, 2]
        assert replica.draining and not replica.routable
        assert replica.active                       # finishes in-flight work
        assert replica.queue_depth == 0

    def test_drained_requests_counted_as_requeued_not_shed(self):
        replica = Replica(0, small_config()).begin(0.0)
        for i in range(4):
            replica.admit(req(i))
        replica.start_drain(0.0)
        report = replica.retire(0.01, outcome="drained")
        assert report.shed_by_cause.get("requeued") == 4
        assert report.shed_rate == 0.0
        assert replica.outcome == "drained"

    def test_retire_is_idempotent(self):
        replica = Replica(0, small_config()).begin(0.0)
        first = replica.retire(0.5)
        assert replica.retire(9.9) is first
        assert replica.retired_s == 0.5


class TestKill:
    def test_kill_freezes_report_and_returns_queue(self):
        replica = Replica(0, small_config()).begin(0.0)
        replica.admit(req(0))
        replica.admit(req(1))
        evacuated = replica.kill(0.005)
        assert [r.rid for r in evacuated] == [0, 1]
        assert not replica.alive and not replica.active
        assert replica.outcome == "killed"
        assert replica.report is not None
        assert replica.report.shed_by_cause.get("requeued") == 2

    def test_kill_lands_at_batch_boundary(self):
        replica = Replica(0, small_config()).begin(0.0)
        replica.admit(req(0))
        replica.poll(0.0, drain=True)       # batch in flight
        busy = replica.busy_until(0.0)
        replica.kill(busy / 2)              # killed mid-batch
        # The dispatched batch's completion stands; retirement lands
        # at the batch boundary, not before it.
        assert replica.retired_s == pytest.approx(busy)
        assert replica.report.completed == 1
