"""Self-healing plane: detection, restarts, hedging, retry budgets,
the chaos determinism matrix and report back-compat."""

import json

import pytest

from repro.cluster import (Cluster, ClusterConfig, ClusterReport,
                           HealthConfig, RetryBudget, serve_cluster)
from repro.cluster.report import aggregate_shed_causes
from repro.faults import (FLEET_PLAN_NAMES, FleetFaultPlan,
                          ReplicaCrashSpec, ReplicaDegradeSpec,
                          named_fleet_plan)
from repro.serve import (BatchPolicy, Server, ServerConfig, TrafficSpec,
                         generate_trace)


def small_server(**kwargs):
    defaults = dict(policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
                    queue_depth=64, timeout_s=0.25)
    defaults.update(kwargs)
    return ServerConfig(**defaults)


def small_trace(duration=0.5, rate=1600, seed=42):
    return generate_trace(TrafficSpec(duration_s=duration, rate_rps=rate,
                                      seed=seed))


def run(trace, **kwargs):
    kwargs.setdefault("server", small_server())
    kwargs.setdefault("replicas", 3)
    return serve_cluster(trace, ClusterConfig(**kwargs))


def dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestEquivalence:
    def test_one_replica_with_probes_matches_server_run(self):
        """The probes-change-nothing invariant: a healthy one-replica
        fleet with the health plane attached still reproduces
        Server.run byte for byte."""
        config = small_server()
        trace = small_trace()
        solo = Server(config).run(trace)
        rep = run(trace, server=config, replicas=1, health=HealthConfig())
        assert rep.replicas[0].report.to_dict() == solo.to_dict()
        assert rep.health["probes"] > 0
        assert rep.health["detections"] == 0

    def test_health_none_report_unchanged(self):
        """Attaching no health plane leaves the report without a
        scorecard — the pre-health shape."""
        rep = run(small_trace())
        assert rep.health is None
        assert rep.to_dict()["health"] is None


class TestDeterminismMatrix:
    """Every named fleet plan under every health variant is same-seed
    byte-identical — the chaos determinism gate."""

    VARIANTS = {
        "plain": dict(health=HealthConfig()),
        "kill": dict(health=HealthConfig(), kills=[(1, 0.2)]),
        "hedged": dict(health=HealthConfig(hedge_after_s=0.02)),
        "no-restart": dict(health=HealthConfig(max_restarts=0)),
    }

    @pytest.mark.parametrize("plan_name", FLEET_PLAN_NAMES)
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_same_seed_runs_are_byte_identical(self, plan_name, variant):
        trace = small_trace()
        plan = named_fleet_plan(plan_name, duration_s=0.5, replicas=3)
        kwargs = dict(self.VARIANTS[variant], fleet_fault_plan=plan)
        assert dumps(run(trace, **kwargs)) == dumps(run(trace, **kwargs))


class TestScorecard:
    def test_crash_is_detected_evicted_and_restarted(self):
        plan = FleetFaultPlan(name="boom", crashes=(
            ReplicaCrashSpec(replica=1, at_s=0.1),))
        rep = run(small_trace(), health=HealthConfig(),
                  fleet_fault_plan=plan)
        h = rep.health
        assert h["detections"] >= 1
        assert h["crashes"] == 1
        assert h["evictions"] == 1
        assert h["restarts"] == 1
        slots = {(r.slot, r.incarnation) for r in rep.replicas}
        assert (1, 0) in slots and (1, 1) in slots
        outcomes = {r.slot: r.outcome for r in rep.replicas
                    if r.incarnation == 0}
        assert outcomes[1] == "crashed"

    def test_restart_identity_holds_across_all_plans(self):
        """crashes == restarts + pending + denied, by construction."""
        trace = small_trace()
        for name in FLEET_PLAN_NAMES:
            plan = named_fleet_plan(name, duration_s=0.5, replicas=3)
            h = run(trace, health=HealthConfig(),
                    fleet_fault_plan=plan).health
            assert h["crashes"] == (h["restarts"] + h["restarts_pending"]
                                    + h["restarts_denied"]), name

    def test_hedge_identity_holds(self):
        """hedges_issued == hedge_wins + hedge_cancels."""
        plan = named_fleet_plan("fleet-chaos", duration_s=0.5, replicas=3)
        h = run(small_trace(rate=2500),
                health=HealthConfig(hedge_after_s=0.02),
                fleet_fault_plan=plan).health
        assert h["hedges_issued"] > 0
        assert h["hedges_issued"] == h["hedge_wins"] + h["hedge_cancels"]

    def test_max_restarts_zero_denies_replacement(self):
        plan = FleetFaultPlan(name="boom", crashes=(
            ReplicaCrashSpec(replica=1, at_s=0.1),))
        rep = run(small_trace(), health=HealthConfig(max_restarts=0),
                  fleet_fault_plan=plan)
        assert rep.health["restarts"] == 0
        assert rep.health["restarts_denied"] == 1
        assert rep.replicas_final == 2

    def test_degrade_causes_false_suspicions_not_evictions(self):
        """A slow-but-alive replica gets suspected (unrouted) and then
        recovers when its delayed heartbeat lands — never evicted."""
        plan = FleetFaultPlan(name="slow", degrades=(
            ReplicaDegradeSpec(replica=1, factor=4.0,
                               start_s=0.1, end_s=0.4),))
        h = run(small_trace(), health=HealthConfig(),
                fleet_fault_plan=plan).health
        assert h["detections"] > 0
        assert h["false_suspicions"] == h["detections"]
        assert h["evictions"] == 0
        assert h["crashes"] == 0

    def test_restarted_replica_starts_with_cold_plan_cache(self):
        """The replacement pays compile misses its predecessor had
        already amortized — the warmup is visible in the report."""
        plan = FleetFaultPlan(name="boom", crashes=(
            ReplicaCrashSpec(replica=1, at_s=0.1),))
        rep = run(small_trace(), health=HealthConfig(restart_delay_s=0.05,
                                                     restart_jitter_s=0.0),
                  fleet_fault_plan=plan)
        by_inc = {r.incarnation: r for r in rep.replicas if r.slot == 1}
        original, replacement = by_inc[0], by_inc[1]
        # Cold cache: the replacement re-pays compile misses for shapes
        # its predecessor had already compiled (a shared cache would
        # show zero), then warms up and starts hitting.
        assert original.report.plan_cache["misses"] > 0
        assert replacement.report.plan_cache["misses"] > 0
        assert replacement.report.plan_cache["hits"] > 0


class TestRetryBudget:
    def test_budget_accounting(self):
        budget = RetryBudget(ratio=0.0, floor=2)
        assert budget.allow("m")
        assert budget.allow("m")
        assert not budget.allow("m")
        assert budget.exhaustions == 1
        assert budget.to_dict()["tenants_exhausted"] == ["m"]

    def test_allowance_grows_with_offers(self):
        budget = RetryBudget(ratio=0.5, floor=0)
        assert budget.allowance("m") == 0
        for _ in range(10):
            budget.on_offer("m")
        assert budget.allowance("m") == 5

    def test_exhausted_budget_sheds_evacuations(self):
        """With a zero budget, evacuated requests are shed under
        retry_budget_exhausted instead of re-routed."""
        plan = FleetFaultPlan(name="boom", crashes=(
            ReplicaCrashSpec(replica=1, at_s=0.2),))
        rep = run(small_trace(rate=2500),
                  health=HealthConfig(retry_budget_ratio=0.0,
                                      retry_budget_min=0),
                  fleet_fault_plan=plan)
        assert rep.shed_by_cause.get("retry_budget_exhausted", 0) > 0
        assert rep.health["retry_budget"]["exhaustions"] > 0
        causes = aggregate_shed_causes(rep)
        assert causes["retry_budget_exhausted"] == \
            rep.shed_by_cause["retry_budget_exhausted"]


class TestKillsBackCompat:
    def test_kills_accepts_dict_and_pair_list(self):
        trace = small_trace()
        as_dict = run(trace, kills={1: 0.2})
        as_list = run(trace, kills=[(1, 0.2)])
        assert dumps(as_dict) == dumps(as_list)
        assert as_dict.kills == 1

    def test_kill_schedule_orders_by_time(self):
        config = ClusterConfig(replicas=3, kills=[(2, 0.3), (0, 0.1)])
        assert config.kill_schedule() == [(0, 0.1), (2, 0.3)]

    def test_restarted_slot_can_be_killed_again(self):
        """Kills target slots: a second kill on the same slot lands on
        the supervisor's replacement."""
        rep = run(small_trace(), health=HealthConfig(restart_delay_s=0.05,
                                                     restart_jitter_s=0.0),
                  kills=[(1, 0.1), (1, 0.3)])
        slot1 = sorted((r for r in rep.replicas if r.slot == 1),
                       key=lambda r: r.incarnation)
        assert len(slot1) >= 2
        assert [r.outcome for r in slot1[:2]] == ["killed", "killed"]
        assert rep.kills == 2

    def test_fleet_plan_requires_health(self):
        plan = named_fleet_plan("crash", duration_s=0.5, replicas=3)
        with pytest.raises(ValueError):
            ClusterConfig(replicas=3, fleet_fault_plan=plan)
        # degrade-only plans run fine without a health plane
        slow = named_fleet_plan("degrade", duration_s=0.5, replicas=3)
        ClusterConfig(replicas=3, fleet_fault_plan=slow)


class TestReportBackCompat:
    def test_round_trip(self):
        plan = named_fleet_plan("fleet-chaos", duration_s=0.5, replicas=3)
        rep = run(small_trace(), health=HealthConfig(hedge_after_s=0.02),
                  fleet_fault_plan=plan)
        loaded = ClusterReport.from_dict(json.loads(dumps(rep)))
        assert dumps(loaded) == dumps(rep)

    def test_loads_pre_health_document(self):
        """A report archived before the health plane existed — no
        shed_by_cause, health, slot or incarnation keys — still
        loads."""
        rep = run(small_trace())
        doc = json.loads(dumps(rep))
        del doc["shed_by_cause"], doc["health"]
        for r in doc["replicas"]:
            del r["slot"], r["incarnation"]
        loaded = ClusterReport.from_dict(doc)
        assert loaded.health is None
        assert loaded.shed_by_cause == {}
        assert loaded.replicas[0].slot == loaded.replicas[0].index
        assert loaded.completed == rep.completed

    def test_unknown_shed_causes_survive_load_and_merge(self):
        rep = run(small_trace())
        doc = json.loads(dumps(rep))
        doc["shed_by_cause"]["cosmic_rays"] = 3
        loaded = ClusterReport.from_dict(doc)
        assert loaded.shed_by_cause["cosmic_rays"] == 3
        assert aggregate_shed_causes(loaded)["cosmic_rays"] == 3
