"""Cross-device cache isolation.

Satellite requirement: evaluation-cache and dispatch-memo keys carry
the device-spec digest, so a record computed on one device can never
serve another — even one under the same display name with different
numbers.
"""

from dataclasses import replace

from repro.config import ConvConfig
from repro.core import evalcache
from repro.core.evalcache import DispatchMemo, cache_key, device_key
from repro.frameworks.registry import get_implementation
from repro.gpusim.device import DEVICES, K40C, TITAN_X, spec_digest

CONFIG = ConvConfig(batch=64, input_size=32, filters=64, kernel_size=3)


class TestDeviceKey:
    def test_carries_digest(self):
        assert device_key(K40C) == f"Tesla K40c@{spec_digest(K40C)}"

    def test_spec_and_name_spellings_agree(self):
        # EvalCache.put defaults the key from record.device (a string),
        # so both spellings must produce the same key.
        assert device_key(K40C) == device_key("Tesla K40c")
        assert cache_key("cudnn", CONFIG, K40C) == \
            cache_key("cudnn", CONFIG, "Tesla K40c")

    def test_unknown_name_keys_on_label(self):
        assert device_key("some-future-gpu") == "some-future-gpu"

    def test_same_name_different_spec_distinct(self):
        """The core isolation property: a tweaked device under the
        same display name can never hit the original's records."""
        impostor = replace(K40C, memory_bandwidth=2 * K40C.memory_bandwidth)
        assert impostor.name == K40C.name
        assert device_key(impostor) != device_key(K40C)
        assert cache_key("cudnn", CONFIG, impostor) != \
            cache_key("cudnn", CONFIG, K40C)

    def test_distinct_devices_distinct_keys(self):
        keys = {cache_key("cudnn", CONFIG, d) for d in DEVICES.values()}
        assert len(keys) == len(DEVICES)

    def test_version_bumped_for_digest_keys(self):
        # v2 keys: old disk stores quarantine/miss instead of serving
        # name-keyed records to digest-keyed lookups.
        assert evalcache.EVALCACHE_VERSION == 2
        assert cache_key("cudnn", CONFIG, K40C).startswith("v2|")


class TestSpecDigest:
    def test_stable_across_calls(self):
        assert spec_digest(K40C) == spec_digest(K40C)

    def test_equal_specs_equal_digests(self):
        clone = replace(K40C)
        assert clone is not K40C
        assert spec_digest(clone) == spec_digest(K40C)

    def test_any_field_change_changes_digest(self):
        for change in (dict(sm_count=16), dict(clock_hz=746e6),
                       dict(ecc_retry_cost_s=0.0006)):
            assert spec_digest(replace(K40C, **change)) != spec_digest(K40C)


class TestDispatchMemoIsolation:
    def memo_key(self, device, corruptions=0):
        from repro.serve.request import shape_key
        return (shape_key(CONFIG), 64, "cudnn",
                (device.name, spec_digest(device)), corruptions)

    def test_cross_device_hit_impossible(self):
        """Same shape, batch and implementation on two devices must
        occupy distinct memo entries."""
        memo = DispatchMemo()
        impl = get_implementation("cudnn")
        sizes_a, total_a = memo.memory_plan(self.memo_key(K40C), impl,
                                            CONFIG)
        stats = memo.stats()
        assert stats["misses"] == 1
        memo.memory_plan(self.memo_key(TITAN_X), impl, CONFIG)
        stats = memo.stats()
        assert stats["misses"] == 2      # no cross-device hit
        # Same device again: a genuine hit with identical content.
        sizes_b, total_b = memo.memory_plan(self.memo_key(K40C), impl,
                                            CONFIG)
        assert memo.stats()["hits"] == 1
        assert (sizes_b, total_b) == (sizes_a, total_a)

    def test_same_name_different_spec_distinct_entries(self):
        memo = DispatchMemo()
        impl = get_implementation("cudnn")
        impostor = replace(K40C, shared_memory_per_sm=2 * 49152)
        memo.memory_plan(self.memo_key(K40C), impl, CONFIG)
        memo.memory_plan(self.memo_key(impostor), impl, CONFIG)
        assert memo.stats()["misses"] == 2
        assert memo.stats()["hits"] == 0

    def test_server_memo_key_carries_digest(self):
        from repro.serve.scheduler import Server, ServerConfig
        server = Server(ServerConfig(device=TITAN_X))
        assert server._device_key == (TITAN_X.name, spec_digest(TITAN_X))


class TestEvalCacheIsolation:
    def test_evaluate_per_device_records(self):
        from repro.core.evalcache import EvalCache, evaluate
        cache = EvalCache()
        impl = get_implementation("cudnn")
        a = evaluate(impl, CONFIG, K40C, cache=cache)
        b = evaluate(impl, CONFIG, TITAN_X, cache=cache)
        assert cache.misses == 2         # distinct entries per device
        assert a.time_s != b.time_s      # and genuinely different numbers
        evaluate(impl, CONFIG, K40C, cache=cache)
        assert cache.hits == 1
