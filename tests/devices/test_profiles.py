"""Device-profile value objects and schema validation."""

import json

import pytest

from repro.devices import (PROFILE_DIR, PROFILE_SCHEMA_VERSION, DeviceProfile,
                           ProfileValidationError, ensure_valid, get_profile,
                           spec_from_dict, spec_to_dict, validate_profile)
from repro.gpusim.device import K40C, TITAN_X, spec_digest


def load_doc(name: str) -> dict:
    with open(PROFILE_DIR / f"{name}.json") as fh:
        return json.load(fh)


class TestK40cByteIdentity:
    """The ISSUE's core guarantee: the declarative k40c profile
    rebuilds *exactly* the hand-built calibrated spec."""

    def test_spec_equal(self):
        assert get_profile("k40c").spec == K40C

    def test_every_field_identical(self):
        from dataclasses import fields
        spec = get_profile("k40c").spec
        for f in fields(type(K40C)):
            assert getattr(spec, f.name) == getattr(K40C, f.name), f.name
            # Same type too: 12884901888 (int) must not become a float.
            assert type(getattr(spec, f.name)) is type(getattr(K40C, f.name))

    def test_digest_matches_hand_built(self):
        assert spec_digest(get_profile("k40c").spec) == spec_digest(K40C)

    def test_maxwell_matches_titan_x(self):
        assert get_profile("maxwell").spec == TITAN_X


class TestRoundTrip:
    @pytest.mark.parametrize("name",
                             ["k40c", "k20x", "maxwell", "m40", "pascal"])
    def test_profile_round_trip(self, name):
        profile = get_profile(name)
        rebuilt = DeviceProfile.from_dict(profile.to_dict())
        assert rebuilt == profile
        assert rebuilt.digest == profile.digest

    def test_spec_round_trip(self):
        assert spec_from_dict(spec_to_dict(K40C)) == K40C

    def test_to_dict_shape(self):
        doc = get_profile("k40c").to_dict()
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        assert doc["power"]["tdp_w"] == 235.0
        assert doc["economics"]["cost_per_hour"] > 0

    def test_digest_changes_with_content(self):
        doc = load_doc("k40c")
        base = DeviceProfile.from_dict(doc).digest
        doc["spec"]["sm_count"] = 16
        assert DeviceProfile.from_dict(doc).digest != base


class TestSchemaValidation:
    def test_shipped_profiles_clean(self):
        for path in sorted(PROFILE_DIR.glob("*.json")):
            with open(path) as fh:
                assert validate_profile(json.load(fh)) == [], path.name

    def test_missing_spec_field(self):
        doc = load_doc("k40c")
        del doc["spec"]["sm_count"]
        errors = validate_profile(doc)
        assert any("sm_count" in e for e in errors)

    def test_wrong_type(self):
        doc = load_doc("k40c")
        doc["spec"]["sm_count"] = "fifteen"
        assert any("sm_count" in e for e in validate_profile(doc))

    def test_bool_is_not_an_int(self):
        doc = load_doc("k40c")
        doc["spec"]["sm_count"] = True
        assert any("sm_count" in e for e in validate_profile(doc))

    def test_unknown_spec_field(self):
        doc = load_doc("k40c")
        doc["spec"]["tensor_cores"] = 8
        assert any("tensor_cores" in e for e in validate_profile(doc))

    def test_bad_slug(self):
        doc = load_doc("k40c")
        doc["name"] = "Tesla K40c"
        assert validate_profile(doc)

    def test_schema_version_mismatch(self):
        doc = load_doc("k40c")
        doc["schema_version"] = 99
        assert any("schema_version" in e for e in validate_profile(doc))

    def test_errors_accumulate(self):
        doc = load_doc("k40c")
        del doc["spec"]["sm_count"]
        doc["power"]["tdp_w"] = -1
        doc["name"] = "BAD SLUG"
        assert len(validate_profile(doc)) >= 3

    def test_ensure_valid_raises_with_all_errors(self):
        doc = load_doc("k40c")
        del doc["spec"]["sm_count"]
        doc["power"]["tdp_w"] = -1
        with pytest.raises(ProfileValidationError) as exc:
            ensure_valid(doc, name="k40c.json")
        assert len(exc.value.errors) >= 2

    def test_ensure_valid_passes_clean(self):
        ensure_valid(load_doc("pascal"), name="pascal.json")
