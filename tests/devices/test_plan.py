"""Fleet parsing, mix enumeration and the capacity planner."""

import json

import pytest

from repro.devices import (enumerate_mixes, mix_cost, mix_label, mix_slots,
                           parse_fleet, plan_capacity)
from repro.obs.slo import DEFAULT_RULES, SLORule


class TestParseFleet:
    def test_basic(self):
        assert parse_fleet("k40c:4,maxwell:2") == (("k40c", 4),
                                                   ("maxwell", 2))

    def test_whitespace_and_display_names(self):
        assert parse_fleet(" k40c : 4 , Tesla K20X:1 ") == (("k40c", 4),
                                                            ("k20x", 1))

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device profile"):
            parse_fleet("h100:4")

    @pytest.mark.parametrize("bad", ["", "   ", "k40c", "k40c:zero",
                                     "k40c:0", "k40c:-1",
                                     "k40c:1,k40c:2",
                                     "k40c:1,Tesla K40c:2"])
    def test_rejects(self, bad):
        with pytest.raises((ValueError, KeyError)):
            parse_fleet(bad)


class TestEnumerateMixes:
    def test_issue_example_expands_to_14(self):
        mixes = enumerate_mixes(parse_fleet("k40c:4,maxwell:2"))
        assert len(mixes) == (4 + 1) * (2 + 1) - 1

    def test_no_empty_mix(self):
        for mix in enumerate_mixes(parse_fleet("k40c:2,maxwell:1")):
            assert sum(c for _, c in mix) >= 1

    def test_zero_counts_dropped_from_labels(self):
        labels = {mix_label(m)
                  for m in enumerate_mixes(parse_fleet("k40c:1,maxwell:1"))}
        assert labels == {"k40c:1", "maxwell:1", "k40c:1,maxwell:1"}

    def test_explosion_guard(self):
        with pytest.raises(ValueError, match="mixes"):
            enumerate_mixes((("k40c", 200), ("maxwell", 200)))


class TestMixHelpers:
    def test_slots_preserve_order(self):
        assert mix_slots((("k40c", 2), ("maxwell", 1))) == \
            ("k40c", "k40c", "maxwell")

    def test_cost_sums_profiles(self):
        from repro.devices import get_profile
        cost = mix_cost((("k40c", 2), ("maxwell", 1)))
        assert cost == pytest.approx(
            2 * get_profile("k40c").cost_per_hour
            + get_profile("maxwell").cost_per_hour)


class TestPlanCapacity:
    def plan(self, **kw):
        kw.setdefault("duration_s", 1.0)
        kw.setdefault("rate_rps", 400.0)
        kw.setdefault("workload", "vgg16")
        kw.setdefault("seed", 3)
        return plan_capacity("k40c:2,maxwell:1", DEFAULT_RULES, **kw)

    def test_sweeps_every_mix(self):
        plan = self.plan()
        assert len(plan.options) == 5
        assert {o.label for o in plan.options} == {
            "k40c:1", "k40c:2", "maxwell:1", "k40c:1,maxwell:1",
            "k40c:2,maxwell:1"}

    def test_ranking_passing_cheapest_first(self):
        plan = self.plan()
        passing = [o for o in plan.options if o.passed]
        assert passing == list(plan.options[:len(passing)])
        costs = [o.cost_per_hour for o in passing]
        assert costs == sorted(costs)

    def test_best_is_cheapest_passing(self):
        plan = self.plan()
        if plan.best is not None:
            assert plan.best is plan.options[0]
            assert plan.best.passed

    def test_same_seed_byte_identical(self):
        """ISSUE acceptance: same seed -> byte-identical JSON."""
        a = json.dumps(self.plan().to_dict(), sort_keys=True)
        b = json.dumps(self.plan().to_dict(), sort_keys=True)
        assert a == b

    def test_seed_changes_traffic(self):
        assert self.plan(seed=3).offered != self.plan(seed=4).offered

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            plan_capacity("k40c:1", DEFAULT_RULES, workload="resnet50")

    def test_impossible_slo_has_no_best(self):
        brutal = (SLORule(name="impossible", kind="latency_p99",
                          threshold=1e-9),)
        plan = plan_capacity("k40c:1", brutal, workload="vgg16",
                             duration_s=0.5, rate_rps=200.0, seed=3)
        assert plan.best is None
        assert all(not o.passed for o in plan.options)
        assert "none" in plan.render()

    def test_to_dict_shape(self):
        doc = self.plan().to_dict()
        assert doc["workload"] == "vgg16"
        assert doc["fleet_spec"] == "k40c:2,maxwell:1"
        assert len(doc["options"]) == 5
        assert doc["best"] == doc["options"][0]["mix"]
        for option in doc["options"]:
            assert set(option["latency_ms"]) == {"p50", "p95", "p99"}
            assert option["slo"]["source"] == option["mix"]
