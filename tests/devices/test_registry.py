"""Registry loading, lookup, publication and the legacy selftest."""

import json

import pytest

from repro.devices import (PROFILE_DIR, DeviceProfile, DeviceRegistry,
                           default_registry, get_profile, profile_names,
                           resolve_device, selftest)
from repro.gpusim import device as device_module
from repro.gpusim.device import DEVICES, K40C
from repro.gpusim.energy import (STATIC_FRACTION, TDP_WATTS,
                                 device_static_fraction, device_tdp)


class TestDefaultRegistry:
    def test_ships_five_profiles(self):
        assert profile_names() == ["k20x", "k40c", "m40", "maxwell",
                                   "pascal"]

    def test_lookup_by_slug_and_display_name(self):
        assert get_profile("k40c") is get_profile("Tesla K40c")

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown device profile"):
            get_profile("h100")

    def test_selftest_clean(self):
        assert selftest() == []

    def test_publishes_into_devices_map(self):
        # pascal has no hand-built constant; the registry adds it.
        assert "Tesla P100 (Pascal)" in DEVICES
        assert DEVICES["Tesla P100 (Pascal)"] is \
            get_profile("pascal").spec

    def test_legacy_names_keep_module_constants(self):
        # Publishing never replaces a hand-built spec object.
        assert DEVICES["Tesla K40c"] is device_module.K40C

    def test_resolve_device(self):
        assert resolve_device("k40c") == K40C
        assert resolve_device("Tesla K40c") == K40C
        assert resolve_device(K40C) is K40C
        with pytest.raises(KeyError):
            resolve_device("not-a-gpu")


class TestIsolatedRegistry:
    def make_registry(self) -> DeviceRegistry:
        registry = DeviceRegistry()
        registry.load_dir(PROFILE_DIR)
        return registry

    def test_len_iter_contains(self):
        registry = self.make_registry()
        assert len(registry) == 5
        assert "k40c" in registry
        assert "Tesla K40c" in registry
        assert sorted(p.name for p in registry) == registry.names()

    def test_reregister_identical_is_idempotent(self):
        registry = self.make_registry()
        before = len(registry)
        registry.register(registry.get("k40c"))
        assert len(registry) == before

    def test_reregister_conflicting_content_rejected(self):
        registry = self.make_registry()
        doc = registry.get("k40c").to_dict()
        doc["version"] = 2
        with pytest.raises(ValueError, match="different content"):
            registry.register(DeviceProfile.from_dict(doc))

    def test_publish_conflicting_spec_rejected(self):
        registry = DeviceRegistry()
        with open(PROFILE_DIR / "k40c.json") as fh:
            doc = json.load(fh)
        doc["name"] = "k40c-tweaked"
        doc["spec"]["sm_count"] = 16     # same display name, new numbers
        with pytest.raises(ValueError, match="different spec"):
            registry.register(DeviceProfile.from_dict(doc), publish=True)

    def test_file_name_must_match_profile_name(self, tmp_path):
        with open(PROFILE_DIR / "k40c.json") as fh:
            doc = json.load(fh)
        path = tmp_path / "renamed.json"
        path.write_text(json.dumps(doc))
        registry = DeviceRegistry()
        with pytest.raises(ValueError, match="must match"):
            registry.load_file(path)

    def test_profile_for_spec(self):
        registry = default_registry()
        assert registry.profile_for_spec(K40C).name == "k40c"
        from dataclasses import replace
        tweaked = replace(K40C, sm_count=16)
        assert registry.profile_for_spec(tweaked) is None


class TestTDPConsolidation:
    """Satellite: the scattered per-module K40c power constants now
    read from the registry — byte-identical figures."""

    def test_registry_tdp_matches_legacy_table(self):
        for name, tdp in TDP_WATTS.items():
            assert device_tdp(DEVICES[name]) == tdp

    def test_static_fraction_matches_legacy_constant(self):
        for name in TDP_WATTS:
            assert device_static_fraction(DEVICES[name]) == STATIC_FRACTION

    def test_unknown_device_falls_back(self):
        from dataclasses import replace
        unknown = replace(K40C, name="Mystery GPU")
        assert device_tdp(unknown) == 235.0
        assert device_static_fraction(unknown) == STATIC_FRACTION

    def test_profiles_carry_the_power_figures(self):
        for slug, display in (("k40c", "Tesla K40c"),
                              ("k20x", "Tesla K20X"),
                              ("maxwell", "GTX TITAN X (Maxwell)"),
                              ("m40", "Tesla M40")):
            assert get_profile(slug).tdp_w == TDP_WATTS[display]

    def test_kernel_power_unchanged(self):
        """End-to-end: energy figures through the registry path equal
        the legacy constants' arithmetic."""
        from repro.config import ConvConfig
        from repro.frameworks.registry import get_implementation
        from repro.gpusim.energy import iteration_energy

        impl = get_implementation("cudnn")
        config = ConvConfig(batch=64, input_size=32, filters=64,
                            kernel_size=3)
        profiled = impl.profile_iteration(config)
        report = iteration_energy(K40C, profiled.profiler.timings())
        tdp = TDP_WATTS["Tesla K40c"]
        static = STATIC_FRACTION * tdp
        lo = static * report.time_s
        assert lo <= report.energy_j <= tdp * report.time_s
        assert report.energy_j > 0
