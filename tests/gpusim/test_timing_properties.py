"""Hypothesis property suite over the roofline timing engine.

These invariants are what make the sweep results trustworthy: if any
of them broke, a figure could reverse for spurious reasons.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import K40C
from repro.gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from repro.gpusim.timing import time_kernel


def spec(flops=1e10, read=1e7, write=1e7, eff=0.7, regs=64, smem=8192,
         grid=2000, block=256, frac=None):
    return KernelSpec(name="k", role=KernelRole.GEMM, flops=flops,
                      gmem_read_bytes=read, gmem_write_bytes=write,
                      launch=LaunchConfig(grid, block),
                      regs_per_thread=regs, shared_per_block=smem,
                      compute_efficiency=eff,
                      timing_bandwidth_fraction=frac)


class TestMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(eff=st.floats(0.05, 0.95), delta=st.floats(0.01, 0.04))
    def test_higher_efficiency_never_slower(self, eff, delta):
        a = time_kernel(K40C, spec(eff=eff)).time_s
        b = time_kernel(K40C, spec(eff=eff + delta)).time_s
        assert b <= a + 1e-15

    @settings(max_examples=30, deadline=None)
    @given(flops=st.floats(1e8, 1e12), factor=st.floats(1.01, 4.0))
    def test_more_work_never_faster(self, flops, factor):
        a = time_kernel(K40C, spec(flops=flops)).time_s
        b = time_kernel(K40C, spec(flops=flops * factor)).time_s
        assert b >= a - 1e-15

    @settings(max_examples=30, deadline=None)
    @given(frac=st.floats(0.1, 0.9), delta=st.floats(0.01, 0.09))
    def test_better_bandwidth_fraction_never_slower(self, frac, delta):
        a = time_kernel(K40C, spec(flops=1.0, read=1e9, frac=frac)).time_s
        b = time_kernel(K40C, spec(flops=1.0, read=1e9,
                                   frac=frac + delta)).time_s
        assert b <= a + 1e-15

    @settings(max_examples=20, deadline=None)
    @given(grid=st.integers(1, 50))
    def test_small_grids_never_beat_big_grids_per_block(self, grid):
        """Per unit of work, a starved device is never faster."""
        small = time_kernel(K40C, spec(grid=grid)).time_s
        big = time_kernel(K40C, spec(grid=grid * 100,
                                     flops=1e10 * 100,
                                     read=1e7 * 100,
                                     write=1e7 * 100)).time_s
        assert big <= small * 100 * (1 + 1e-9)


class TestConsistency:
    @settings(max_examples=20, deadline=None)
    @given(flops=st.floats(1e6, 1e12), read=st.floats(0, 1e9))
    def test_bound_label_matches_components(self, flops, read):
        t = time_kernel(K40C, spec(flops=flops, read=read))
        body = max(t.compute_time_s, t.memory_time_s, t.shared_time_s)
        assert t.time_s == pytest.approx(
            body + K40C.kernel_launch_overhead_s, rel=1e-9)
        if t.bound == "compute":
            assert t.compute_time_s == body
        elif t.bound == "memory":
            assert t.memory_time_s == body

    @settings(max_examples=20, deadline=None)
    @given(regs=st.integers(16, 128), smem=st.integers(0, 24 * 1024))
    def test_metrics_always_in_range(self, regs, smem):
        t = time_kernel(K40C, spec(regs=regs, smem=smem))
        assert 0 < t.achieved_occupancy <= 1
        assert 0 < t.warp_execution_efficiency <= 1
        assert 0 <= t.gld_efficiency <= 1
        assert 0 <= t.gst_efficiency <= 1
        assert 0 < t.ipc <= K40C.max_ipc_per_sm

    def test_timing_is_pure(self):
        s = spec()
        assert time_kernel(K40C, s).time_s == time_kernel(K40C, s).time_s
