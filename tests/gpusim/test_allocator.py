"""Tests for the device memory allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError, DeviceOOMError
from repro.gpusim.allocator import DeviceAllocator
from repro.gpusim.device import K40C


@pytest.fixture
def allocator():
    return DeviceAllocator(K40C, baseline=0)


class TestAllocFree:
    def test_alloc_tracks_usage(self, allocator):
        buf = allocator.alloc(1024, tag="x")
        assert allocator.in_use == 1024
        assert allocator.live_buffers == 1
        allocator.free(buf)
        assert allocator.in_use == 0

    def test_rounds_to_granularity(self, allocator):
        allocator.alloc(1)
        assert allocator.in_use == 512

    def test_peak_is_high_water_mark(self, allocator):
        a = allocator.alloc(2048)
        b = allocator.alloc(4096)
        allocator.free(a)
        allocator.free(b)
        assert allocator.peak == 6144
        assert allocator.in_use == 0

    def test_double_free_rejected(self, allocator):
        buf = allocator.alloc(512)
        allocator.free(buf)
        with pytest.raises(AllocationError):
            allocator.free(buf)

    def test_nonpositive_alloc_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.alloc(0)

    def test_free_all(self, allocator):
        for _ in range(5):
            allocator.alloc(1024)
        allocator.free_all()
        assert allocator.in_use == 0
        assert allocator.live_buffers == 0

    def test_reset_peak(self, allocator):
        a = allocator.alloc(4096)
        allocator.free(a)
        allocator.reset_peak()
        assert allocator.peak == 0


class TestOOM:
    def test_oversized_alloc_raises(self, allocator):
        with pytest.raises(DeviceOOMError):
            allocator.alloc(K40C.global_memory_bytes + 1)

    def test_cumulative_oom(self, allocator):
        allocator.alloc(K40C.global_memory_bytes - 1024)
        with pytest.raises(DeviceOOMError) as e:
            allocator.alloc(2048)
        assert e.value.capacity == K40C.global_memory_bytes

    def test_failed_alloc_does_not_leak(self, allocator):
        before = allocator.in_use
        with pytest.raises(DeviceOOMError):
            allocator.alloc(K40C.global_memory_bytes * 2)
        assert allocator.in_use == before

    def test_exactly_full_is_fine(self, allocator):
        allocator.alloc(K40C.global_memory_bytes)
        assert allocator.free_bytes == 0


class TestBaseline:
    def test_baseline_counts_toward_peak(self):
        a = DeviceAllocator(K40C, baseline=100 * 2**20)
        assert a.peak == 100 * 2**20

    def test_baseline_validation(self):
        with pytest.raises(AllocationError):
            DeviceAllocator(K40C, baseline=-1)
        with pytest.raises(AllocationError):
            DeviceAllocator(K40C, baseline=K40C.global_memory_bytes + 1)


class TestScoped:
    def test_scoped_frees_on_exit(self, allocator):
        with allocator.scoped(8192):
            assert allocator.in_use == 8192
        assert allocator.in_use == 0

    def test_scoped_frees_on_exception(self, allocator):
        with pytest.raises(RuntimeError):
            with allocator.scoped(8192):
                raise RuntimeError("boom")
        assert allocator.in_use == 0


class TestInvariants:
    @given(sizes=st.lists(st.integers(1, 10**6), min_size=1, max_size=50))
    def test_alloc_free_all_balances(self, sizes):
        a = DeviceAllocator(K40C, baseline=0)
        bufs = [a.alloc(s) for s in sizes]
        assert a.in_use == sum(b.rounded_size for b in bufs)
        assert a.peak == a.in_use
        for b in bufs:
            a.free(b)
        assert a.in_use == 0

    @given(sizes=st.lists(st.integers(1, 10**6), min_size=2, max_size=30),
           data=st.data())
    def test_interleaved_never_negative(self, sizes, data):
        a = DeviceAllocator(K40C, baseline=0)
        live = []
        for s in sizes:
            live.append(a.alloc(s))
            if live and data.draw(st.booleans()):
                a.free(live.pop(data.draw(
                    st.integers(0, len(live) - 1))))
            assert a.in_use >= 0
            assert a.peak >= a.in_use


class TestObserver:
    """The alloc/free hook the serving scheduler listens on."""

    def test_observer_sees_allocs_and_frees(self, allocator):
        events = []
        allocator.set_observer(lambda ev, buf, in_use:
                               events.append((ev, buf.tag, in_use)))
        buf = allocator.alloc(1024, tag="x")
        allocator.free(buf)
        assert events == [("alloc", "x", 1024), ("free", "x", 0)]

    def test_observer_not_called_on_failed_alloc(self, allocator):
        events = []
        allocator.set_observer(lambda *a: events.append(a))
        with pytest.raises(DeviceOOMError):
            allocator.alloc(K40C.global_memory_bytes + 1)
        assert events == []

    def test_observer_detach(self, allocator):
        events = []
        allocator.set_observer(lambda *a: events.append(a))
        allocator.set_observer(None)
        allocator.alloc(512)
        assert events == []
