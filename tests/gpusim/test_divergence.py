"""Tests for the warp-divergence / WEE model."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.divergence import (UNIFORM, DivergenceProfile,
                                     divergence_slowdown,
                                     warp_execution_efficiency)


class TestWEE:
    def test_uniform_kernel_is_100pct(self):
        assert warp_execution_efficiency(UNIFORM) == 1.0

    def test_full_if_else_divergence_halves(self):
        p = DivergenceProfile(divergent_fraction=1.0, branch_paths=2.0)
        assert warp_execution_efficiency(p) == pytest.approx(0.5)

    def test_theano_fft_band(self):
        """The calibration profile for Theano-fft must land in the
        paper's 66-81 % WEE band."""
        from repro.frameworks.calibration import DIVERGENCE
        wee = warp_execution_efficiency(DIVERGENCE["theano-fft"])
        assert 0.66 <= wee <= 0.81

    def test_default_band(self):
        """Everyone else is above 97 % (Fig. 6)."""
        from repro.frameworks.calibration import DIVERGENCE
        wee = warp_execution_efficiency(DIVERGENCE["default"])
        assert wee > 0.97

    def test_tail_warps_reduce_wee(self):
        p = DivergenceProfile(tail_fraction=0.5, tail_active_lanes=16.0)
        assert warp_execution_efficiency(p) == pytest.approx(0.75)

    @given(frac=st.floats(0, 1), paths=st.floats(1, 8),
           tail=st.floats(0, 1), lanes=st.floats(0.5, 32))
    def test_bounds(self, frac, paths, tail, lanes):
        p = DivergenceProfile(divergent_fraction=frac, branch_paths=paths,
                              tail_fraction=tail, tail_active_lanes=lanes)
        wee = warp_execution_efficiency(p)
        assert 1 / 32 <= wee <= 1.0

    @given(frac=st.floats(0, 0.9))
    def test_monotone_in_divergence(self, frac):
        lo = DivergenceProfile(divergent_fraction=frac)
        hi = DivergenceProfile(divergent_fraction=min(frac + 0.1, 1.0))
        assert (warp_execution_efficiency(hi)
                <= warp_execution_efficiency(lo))


class TestSlowdown:
    def test_uniform_no_slowdown(self):
        assert divergence_slowdown(UNIFORM) == 1.0

    def test_full_divergence_doubles_issues(self):
        p = DivergenceProfile(divergent_fraction=1.0, branch_paths=2.0)
        assert divergence_slowdown(p) == pytest.approx(2.0)

    def test_partial(self):
        p = DivergenceProfile(divergent_fraction=0.5, branch_paths=3.0)
        assert divergence_slowdown(p) == pytest.approx(2.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(divergent_fraction=-0.1), dict(divergent_fraction=1.1),
        dict(branch_paths=0.5), dict(tail_fraction=2.0),
        dict(tail_active_lanes=0.0), dict(tail_active_lanes=33.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DivergenceProfile(**kwargs)
