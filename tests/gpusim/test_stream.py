"""Tests for the stream/timeline model."""

import pytest

from repro.gpusim.stream import Timeline


class TestStreams:
    def test_single_stream_serialises(self):
        tl = Timeline()
        s = tl.stream("compute")
        s.enqueue(1.0)
        s.enqueue(2.0)
        assert tl.makespan == pytest.approx(3.0)

    def test_two_streams_overlap(self):
        tl = Timeline()
        tl.stream("compute").enqueue(2.0)
        tl.stream("copy").enqueue(1.5)
        assert tl.makespan == pytest.approx(2.0)

    def test_event_wait_orders_across_streams(self):
        tl = Timeline()
        copy_done = tl.stream("copy").enqueue(1.0, "h2d")
        compute = tl.stream("compute")
        compute.wait(copy_done)
        compute.enqueue(0.5, "kernel")
        assert tl.makespan == pytest.approx(1.5)

    def test_not_before(self):
        tl = Timeline()
        s = tl.stream("s")
        s.enqueue(1.0, not_before=5.0)
        assert tl.makespan == pytest.approx(6.0)

    def test_busy_time_per_stream(self):
        tl = Timeline()
        tl.stream("a").enqueue(1.0)
        tl.stream("a").enqueue(2.0)
        tl.stream("b").enqueue(4.0)
        assert tl.busy_time("a") == pytest.approx(3.0)
        assert tl.busy_time("b") == pytest.approx(4.0)

    def test_stream_identity(self):
        tl = Timeline()
        assert tl.stream("x") is tl.stream("x")

    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.stream("s").enqueue(-1.0)

    def test_empty_timeline(self):
        assert Timeline().makespan == 0.0

    def test_double_buffering_pattern(self):
        """Prefetch pipeline: copy batch i+1 while computing batch i —
        Caffe's hidden-transfer pattern (Fig. 7)."""
        tl = Timeline()
        copy, compute = tl.stream("copy"), tl.stream("compute")
        ready = copy.enqueue(0.3, "h2d 0")
        for i in range(4):
            nxt = copy.enqueue(0.3, f"h2d {i+1}")
            compute.wait(ready)
            compute.enqueue(1.0, f"iter {i}")
            ready = nxt
        # Copies fully hidden: makespan == first copy + 4 iterations.
        assert tl.makespan == pytest.approx(0.3 + 4.0)
