"""Tests for the PCIe transfer model."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.device import K40C
from repro.gpusim.transfer import (TransferEngine, TransferKind,
                                   exposed_transfer_time)


@pytest.fixture
def engine():
    return TransferEngine(K40C)


class TestCopyTime:
    def test_pinned_faster_than_pageable(self, engine):
        n = 100 * 2**20
        assert (engine.copy_time(n, pinned=True)
                < engine.copy_time(n, pinned=False))

    def test_bandwidth_math(self, engine):
        n = int(K40C.pcie_pinned_bandwidth)  # one second of payload
        t = engine.copy_time(n, pinned=True)
        assert t == pytest.approx(1.0 + K40C.pcie_latency_s)

    def test_chunking_adds_latency(self, engine):
        """Many small transfers lose to one large one — the batching
        advice of section V-D."""
        n = 2**20
        assert engine.copy_time(n, chunks=64) > engine.copy_time(n, chunks=1)
        assert (engine.copy_time(n, chunks=64) - engine.copy_time(n, chunks=1)
                == pytest.approx(63 * K40C.pcie_latency_s))

    def test_zero_bytes_free(self, engine):
        assert engine.copy_time(0) == 0.0

    def test_invalid(self, engine):
        with pytest.raises(ValueError):
            engine.copy_time(-1)
        with pytest.raises(ValueError):
            engine.copy_time(10, chunks=0)


class TestRecords:
    def test_copy_accumulates_stats(self, engine):
        engine.copy(TransferKind.H2D, 1000, pinned=True, async_=True)
        engine.copy(TransferKind.D2H, 500)
        assert engine.total_bytes == 1500
        assert len(engine.records) == 2
        assert engine.asynchronous_time() > 0
        assert engine.synchronous_time() > 0
        assert engine.total_time == pytest.approx(
            engine.synchronous_time() + engine.asynchronous_time())

    def test_reset(self, engine):
        engine.copy(TransferKind.H2D, 1000)
        engine.reset()
        assert engine.total_bytes == 0 and not engine.records


class TestExposedTime:
    def test_sync_fully_exposed(self):
        assert exposed_transfer_time(0.5, 0.0, 10.0) == 0.5

    def test_async_hidden_behind_compute(self):
        assert exposed_transfer_time(0.0, 0.5, 10.0) == pytest.approx(0.0)

    def test_async_exposed_when_compute_short(self):
        t = exposed_transfer_time(0.0, 1.0, 0.5, overlap_efficiency=1.0)
        assert t == pytest.approx(0.5)

    def test_overlap_efficiency_leaks(self):
        t = exposed_transfer_time(0.0, 1.0, 10.0, overlap_efficiency=0.0)
        assert t == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            exposed_transfer_time(-1, 0, 0)
        with pytest.raises(ValueError):
            exposed_transfer_time(0, 0, 0, overlap_efficiency=2.0)

    @given(sync=st.floats(0, 10), async_=st.floats(0, 10),
           compute=st.floats(0, 10))
    def test_bounds(self, sync, async_, compute):
        t = exposed_transfer_time(sync, async_, compute)
        assert sync <= t <= sync + async_
