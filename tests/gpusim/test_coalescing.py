"""Tests for the global-memory coalescing model."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.coalescing import (COALESCED_FLOAT, COALESCED_FLOAT4,
                                     WarpAccess, access_efficiency,
                                     effective_bandwidth_fraction,
                                     strided_float, transactions_per_access)
from repro.gpusim.device import K40C


class TestTransactions:
    def test_coalesced_float_single_transaction(self):
        """32 lanes x 4 B contiguous = exactly one 128 B transaction."""
        assert transactions_per_access(K40C, COALESCED_FLOAT) == 1

    def test_coalesced_float4_four_transactions(self):
        """32 lanes x 16 B = 512 B = 4 transactions, still 100 %
        efficient."""
        assert transactions_per_access(K40C, COALESCED_FLOAT4) == 4
        assert access_efficiency(K40C, COALESCED_FLOAT4) == 1.0

    def test_stride_2_doubles_transactions(self):
        assert transactions_per_access(K40C, strided_float(2)) == 2
        assert access_efficiency(K40C, strided_float(2)) == pytest.approx(0.5)

    def test_stride_32_fully_scattered(self):
        """128-byte strides: every lane in its own transaction."""
        acc = strided_float(32)
        assert transactions_per_access(K40C, acc) == 32
        assert access_efficiency(K40C, acc) == pytest.approx(1 / 32)

    def test_misalignment_adds_one_transaction(self):
        misaligned = WarpAccess(word_bytes=4, stride_words=1, offset_bytes=4)
        assert transactions_per_access(K40C, misaligned) == 2

    def test_broadcast_counts_single_word(self):
        b = WarpAccess(word_bytes=4, stride_words=0)
        assert transactions_per_access(K40C, b) == 1
        assert access_efficiency(K40C, b) == pytest.approx(4 / 128)

    def test_partial_warp(self):
        acc = WarpAccess(word_bytes=4, stride_words=1, active_lanes=8)
        assert transactions_per_access(K40C, acc) == 1
        assert access_efficiency(K40C, acc) == pytest.approx(32 / 128)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(word_bytes=3), dict(stride_words=-1), dict(offset_bytes=-4),
        dict(active_lanes=0), dict(active_lanes=33),
    ])
    def test_invalid_access(self, kwargs):
        with pytest.raises(ValueError):
            WarpAccess(**kwargs)


class TestProperties:
    @given(stride=st.integers(0, 64),
           word=st.sampled_from([1, 2, 4, 8, 16]),
           offset=st.integers(0, 256), lanes=st.integers(1, 32))
    def test_efficiency_in_unit_interval(self, stride, word, offset, lanes):
        acc = WarpAccess(word_bytes=word, stride_words=stride,
                         offset_bytes=offset, active_lanes=lanes)
        eff = access_efficiency(K40C, acc)
        assert 0.0 < eff <= 1.0

    @given(stride=st.integers(1, 64))
    def test_monotone_in_stride(self, stride):
        """A larger stride never touches fewer transactions."""
        a = transactions_per_access(K40C, strided_float(stride))
        b = transactions_per_access(K40C, strided_float(stride + 1))
        assert b >= a

    @given(stride=st.integers(0, 64))
    def test_bandwidth_fraction_floor(self, stride):
        frac = effective_bandwidth_fraction(K40C, strided_float(stride))
        assert frac >= 0.03125
