"""Tests for the multi-GPU scaling model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.gpusim.device import K40C
from repro.gpusim.multigpu import (ring_allreduce_time, strong_scaling,
                                   weak_scaling)


class TestRingAllreduce:
    def test_single_gpu_free(self):
        assert ring_allreduce_time(10**9, 1, 10e9) == 0.0

    def test_zero_bytes_free(self):
        assert ring_allreduce_time(0, 8, 10e9) == 0.0

    def test_bandwidth_term(self):
        """2 * (n-1)/n * bytes at the link bandwidth, plus latency."""
        t = ring_allreduce_time(1_000_000_000, 4, 10e9, latency_s=0.0)
        assert t == pytest.approx(2 * 0.75 * 1e9 / 10e9)

    def test_approaches_2x_bytes_for_many_gpus(self):
        t4 = ring_allreduce_time(10**9, 4, 10e9, latency_s=0.0)
        t64 = ring_allreduce_time(10**9, 64, 10e9, latency_s=0.0)
        assert t64 > t4
        assert t64 < 2 * 1e9 / 10e9 * 1.01

    def test_latency_grows_with_ring_length(self):
        a = ring_allreduce_time(1, 2, 10e9)
        b = ring_allreduce_time(1, 16, 10e9)
        assert b > a

    def test_validation(self):
        with pytest.raises(ShapeError):
            ring_allreduce_time(-1, 2, 10e9)
        with pytest.raises(ShapeError):
            ring_allreduce_time(1, 0, 10e9)


class TestStrongScaling:
    def test_one_gpu_identity(self):
        p = strong_scaling(0.1, 10**8, 1)
        assert p.speedup == pytest.approx(1.0)
        assert p.efficiency == pytest.approx(1.0)

    def test_conv_heavy_model_scales_well(self):
        """Few parameters, much compute (GoogLeNet-like)."""
        p = strong_scaling(0.5, 28 * 10**6, 4)
        assert p.efficiency > 0.85

    def test_fc_heavy_model_gradient_bound(self):
        """AlexNet/VGG-like parameter counts drag efficiency down —
        the 'one weird trick' observation."""
        conv_heavy = strong_scaling(0.5, 28 * 10**6, 8)
        fc_heavy = strong_scaling(0.5, 580 * 10**6, 8)
        assert fc_heavy.efficiency < conv_heavy.efficiency

    def test_amdahl_serial_floor(self):
        p = strong_scaling(1.0, 0, 1024, parallel_fraction=0.9)
        assert p.speedup < 1 / 0.1 * 1.01

    def test_speedup_monotone_until_comm_bound(self):
        prev = 0.0
        for g in (1, 2, 4):
            s = strong_scaling(0.3, 60 * 10**6, g).speedup
            assert s > prev
            prev = s

    @given(gpus=st.integers(1, 64))
    def test_efficiency_bounds(self, gpus):
        p = strong_scaling(0.2, 10**8, gpus)
        assert 0 < p.efficiency <= 1.0
        assert p.iteration_time_s > 0

    def test_validation(self):
        with pytest.raises(ShapeError):
            strong_scaling(0.0, 1, 2)
        with pytest.raises(ShapeError):
            strong_scaling(0.1, 1, 2, parallel_fraction=0.0)


class TestWeakScaling:
    def test_one_gpu_identity(self):
        p = weak_scaling(0.1, 10**8, 1)
        assert p.speedup == pytest.approx(1.0)

    def test_throughput_grows(self):
        assert weak_scaling(0.1, 10**7, 8).speedup > 6.0

    def test_efficiency_decreases_with_comm(self):
        small = weak_scaling(0.1, 10**6, 8).efficiency
        big = weak_scaling(0.1, 10**9, 8).efficiency
        assert big < small
