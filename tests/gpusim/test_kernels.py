"""Tests for kernel spec validation and derived quantities."""

import math

import pytest

from repro.gpusim.kernels import (KernelRole, KernelSpec, LaunchConfig,
                                  grid_for)


def make_spec(**overrides):
    base = dict(
        name="k", role=KernelRole.GEMM, flops=1e9,
        gmem_read_bytes=1e6, gmem_write_bytes=1e6,
        launch=LaunchConfig(grid_blocks=100, block_threads=256),
    )
    base.update(overrides)
    return KernelSpec(**base)


class TestLaunchConfig:
    def test_totals(self):
        lc = LaunchConfig(grid_blocks=10, block_threads=96)
        assert lc.total_threads == 960
        assert lc.warps == 30

    def test_partial_warp_rounds_up(self):
        assert LaunchConfig(grid_blocks=1, block_threads=33).warps == 2

    @pytest.mark.parametrize("grid,block", [(0, 32), (1, 0), (-1, 32)])
    def test_invalid(self, grid, block):
        with pytest.raises(ValueError):
            LaunchConfig(grid_blocks=grid, block_threads=block)


class TestKernelSpec:
    def test_totals_include_repeats(self):
        s = make_spec(repeats=4)
        assert s.total_flops == 4e9
        assert s.total_bytes == 8e6

    def test_arithmetic_intensity(self):
        s = make_spec()
        assert s.arithmetic_intensity == pytest.approx(1e9 / 2e6)

    def test_pure_compute_kernel_infinite_intensity(self):
        s = make_spec(gmem_read_bytes=0, gmem_write_bytes=0)
        assert math.isinf(s.arithmetic_intensity)

    def test_scaled_returns_copy(self):
        s = make_spec()
        s2 = s.scaled(flops=5.0)
        assert s2.flops == 5.0 and s.flops == 1e9

    def test_rejects_no_work(self):
        with pytest.raises(ValueError):
            make_spec(flops=0, gmem_read_bytes=0, gmem_write_bytes=0)

    @pytest.mark.parametrize("overrides", [
        dict(flops=-1), dict(compute_efficiency=0.0),
        dict(compute_efficiency=1.5), dict(regs_per_thread=-1),
        dict(repeats=0), dict(overhead_instr_ratio=-0.1),
        dict(timing_bandwidth_fraction=0.0),
        dict(timing_bandwidth_fraction=1.5),
    ])
    def test_invalid_fields(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides)


class TestGridFor:
    def test_exact(self):
        assert grid_for(1024, 256) == 4

    def test_rounds_up(self):
        assert grid_for(1025, 256) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_for(0, 256)
        with pytest.raises(ValueError):
            grid_for(10, 0)
