"""Tests for the CUDA occupancy calculator."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.device import K40C
from repro.gpusim.occupancy import achieved_occupancy, occupancy


class TestOccupancy:
    def test_unconstrained_block_fills_sm(self):
        """256-thread blocks with tiny resource use reach 100 %:
        8 blocks x 8 warps = 64 warps."""
        r = occupancy(K40C, 256, regs_per_thread=16, shared_per_block=0)
        assert r.theoretical == 1.0

    def test_register_limited_cuda_convnet2(self):
        """Table II: cuda-convnet2 uses 116 regs/thread; at 384-thread
        blocks only one block (12 warps) fits -> 18.75 %, matching the
        14-22 % achieved range of Fig. 6."""
        r = occupancy(K40C, 384, regs_per_thread=116, shared_per_block=16384)
        assert r.limiter == "registers"
        assert r.warps_per_sm == 12
        assert r.theoretical == pytest.approx(0.1875)

    def test_cudnn_occupancy_range(self):
        """Table II: cuDNN 80 regs, 8.4 KB -> ~37.5 % theoretical
        (Fig. 6 reports 29-37 % achieved)."""
        r = occupancy(K40C, 256, regs_per_thread=80, shared_per_block=8602)
        assert r.theoretical == pytest.approx(0.375)

    def test_shared_limited(self):
        r = occupancy(K40C, 64, regs_per_thread=16, shared_per_block=24 * 1024)
        assert r.limiter == "shared"
        assert r.blocks_per_sm == 2

    def test_warp_limited_big_blocks(self):
        r = occupancy(K40C, 1024, regs_per_thread=16, shared_per_block=0)
        assert r.blocks_per_sm == 2
        assert r.theoretical == 1.0

    def test_block_count_limited_small_blocks(self):
        """32-thread blocks: 16-block cap -> 16 warps -> 25 %."""
        r = occupancy(K40C, 32, regs_per_thread=8, shared_per_block=0)
        assert r.limiter == "blocks"
        assert r.theoretical == pytest.approx(0.25)

    def test_zero_resources_allowed(self):
        r = occupancy(K40C, 128)
        assert r.theoretical > 0

    @pytest.mark.parametrize("kwargs", [
        dict(threads_per_block=0),
        dict(threads_per_block=2048),
        dict(threads_per_block=128, regs_per_thread=-1),
        dict(threads_per_block=128, regs_per_thread=300),
        dict(threads_per_block=128, shared_per_block=-5),
        dict(threads_per_block=128, shared_per_block=64 * 1024),
    ])
    def test_invalid_launches(self, kwargs):
        with pytest.raises(ValueError):
            occupancy(K40C, **kwargs)

    def test_registers_can_exclude_even_one_block(self):
        with pytest.raises(ValueError):
            occupancy(K40C, 1024, regs_per_thread=255)

    # -- property tests ----------------------------------------------------

    @given(threads=st.integers(32, 1024), regs=st.integers(0, 128),
           shared=st.integers(0, 48 * 1024))
    def test_bounds(self, threads, regs, shared):
        try:
            r = occupancy(K40C, threads, regs, shared)
        except ValueError:
            return
        assert 0.0 < r.theoretical <= 1.0
        assert 1 <= r.blocks_per_sm <= K40C.max_blocks_per_sm
        assert r.warps_per_sm <= K40C.max_warps_per_sm

    @given(threads=st.sampled_from([64, 128, 256, 512]),
           regs=st.integers(16, 120), shared=st.integers(0, 16 * 1024))
    def test_monotone_in_registers(self, threads, regs, shared):
        """More registers can never raise occupancy."""
        try:
            lo = occupancy(K40C, threads, regs, shared)
            hi = occupancy(K40C, threads, regs + 8, shared)
        except ValueError:
            return
        assert hi.theoretical <= lo.theoretical

    @given(threads=st.sampled_from([64, 128, 256, 512]),
           regs=st.integers(0, 64), shared=st.integers(0, 24 * 1024))
    def test_monotone_in_shared(self, threads, regs, shared):
        try:
            lo = occupancy(K40C, threads, regs, shared)
            hi = occupancy(K40C, threads, regs, shared + 4096)
        except ValueError:
            return
        assert hi.theoretical <= lo.theoretical


class TestAchievedOccupancy:
    def test_below_theoretical(self):
        r = occupancy(K40C, 256, 32, 0)
        a = achieved_occupancy(K40C, r.theoretical, 10_000, r.blocks_per_sm)
        assert 0 < a < r.theoretical

    def test_tiny_grid_starves_device(self):
        r = occupancy(K40C, 256, 32, 0)
        a_small = achieved_occupancy(K40C, r.theoretical, 3, r.blocks_per_sm)
        a_big = achieved_occupancy(K40C, r.theoretical, 100_000, r.blocks_per_sm)
        assert a_small < a_big

    def test_exact_wave_has_no_tail_penalty(self):
        r = occupancy(K40C, 256, 32, 0)
        wave = r.blocks_per_sm * K40C.sm_count
        a_exact = achieved_occupancy(K40C, r.theoretical, wave * 4, r.blocks_per_sm)
        a_tail = achieved_occupancy(K40C, r.theoretical, wave * 4 + 1, r.blocks_per_sm)
        assert a_tail <= a_exact

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            achieved_occupancy(K40C, 0.5, 0, 2)

    @given(grid=st.integers(1, 10**6))
    def test_range(self, grid):
        a = achieved_occupancy(K40C, 0.5, grid, 4)
        assert 0.0 < a <= 1.0
