"""Tests for the chrome-trace exporter."""

import json

import pytest

from repro.config import BASE_CONFIG
from repro.frameworks.registry import get_implementation
from repro.gpusim.profiler import Profiler
from repro.gpusim.stream import Timeline
from repro.gpusim.trace import timeline_events, to_chrome_trace, trace_events


@pytest.fixture(scope="module")
def session():
    return get_implementation("fbfft").profile_iteration(BASE_CONFIG).profiler


class TestTraceEvents:
    def test_one_event_per_kernel_and_transfer(self, session):
        events = trace_events(session)
        kernels = [e for e in events if e["cat"] == "kernel"]
        copies = [e for e in events if e["cat"] == "memcpy"]
        assert len(kernels) == len(session.executions)
        assert len(copies) == len(session.transfers.records)

    def test_kernels_back_to_back(self, session):
        kernels = [e for e in trace_events(session) if e["cat"] == "kernel"]
        for prev, cur in zip(kernels, kernels[1:]):
            assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"],
                                              rel=1e-9)

    def test_durations_match_timings(self, session):
        kernels = [e for e in trace_events(session) if e["cat"] == "kernel"]
        total = sum(e["dur"] for e in kernels) / 1e6
        assert total == pytest.approx(session.gpu_time())

    def test_args_carry_metrics(self, session):
        ev = trace_events(session)[0]
        assert "achieved_occupancy" in ev["args"]
        assert "ipc" in ev["args"]

    def test_async_copies_start_at_zero(self, session):
        copies = [e for e in trace_events(session)
                  if e["cat"] == "memcpy" and e["args"]["async"]]
        if copies:
            assert min(c["ts"] for c in copies) == 0.0


class TestChromeTrace:
    def test_valid_json_document(self, session):
        doc = json.loads(to_chrome_trace(session))
        assert "traceEvents" in doc
        assert doc["otherData"]["device"] == "Tesla K40c"

    def test_writes_file(self, session, tmp_path):
        path = tmp_path / "trace.json"
        to_chrome_trace(session, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestPerfettoValidity:
    """The exported document must survive a Perfetto-strict round trip."""

    def test_metadata_rows_name_processes_and_threads(self, session):
        doc = json.loads(to_chrome_trace(session))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        process = next(e for e in meta if e["name"] == "process_name")
        assert process["args"]["name"] == "gpusim"

    def test_round_trip_strictly_monotonic_per_row(self, session, tmp_path):
        path = tmp_path / "trace.json"
        to_chrome_trace(session, str(path))
        doc = json.loads(path.read_text())
        last = {}
        for e in doc["traceEvents"]:
            if e.get("ph") == "M":
                continue
            assert e["dur"] >= 0.0
            row = (e["pid"], e["tid"])
            if row in last:
                assert e["ts"] > last[row]
            last[row] = e["ts"]

    def test_timestamps_strictly_increase_within_each_row(self, session):
        rows = {}
        for e in trace_events(session):
            rows.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        for ts in rows.values():
            assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_timed_events_carry_required_keys(self, session):
        for e in trace_events(session):
            assert {"name", "cat", "ph", "pid", "tid", "ts", "dur"} <= set(e)


class TestTimelineEvents:
    def test_streams_become_rows(self):
        tl = Timeline()
        tl.stream("copy").enqueue(1.0, "h2d")
        tl.stream("compute").enqueue(2.0, "kernel")
        events = timeline_events(tl)
        assert len(events) == 2
        assert len({e["tid"] for e in events}) == 2

    def test_times_in_microseconds(self):
        tl = Timeline()
        tl.stream("s").enqueue(0.5, "op")
        ev = timeline_events(tl)[0]
        assert ev["dur"] == pytest.approx(0.5e6)
