"""Tests for the shared-memory bank-conflict model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.banks import (SharedAccess, conflict_degree,
                                conflict_free_stride, padded_stride,
                                shared_efficiency)
from repro.gpusim.device import K40C


class TestConflictDegree:
    def test_stride_1_conflict_free(self):
        assert conflict_degree(K40C, SharedAccess(stride_words=1)) == 1

    def test_broadcast_conflict_free(self):
        assert conflict_degree(K40C, SharedAccess(stride_words=0)) == 1

    @pytest.mark.parametrize("stride,degree", [
        (2, 2), (4, 4), (8, 8), (16, 16), (32, 32), (64, 32),
        (3, 1), (5, 1), (7, 1), (33, 1),
    ])
    def test_degree_equals_gcd_structure(self, stride, degree):
        """For 4-byte accesses, an s-word stride produces a
        gcd(s, 32)-way conflict (capped by active lanes)."""
        d = conflict_degree(K40C, SharedAccess(stride_words=stride))
        assert d == min(degree, 32)

    def test_odd_strides_always_conflict_free(self):
        for s in range(1, 65, 2):
            assert conflict_degree(K40C, SharedAccess(stride_words=s)) == 1

    def test_partial_warp_limits_degree(self):
        acc = SharedAccess(stride_words=32, active_lanes=4)
        assert conflict_degree(K40C, acc) == 4

    @given(stride=st.integers(0, 128))
    def test_degree_divides_evenly(self, stride):
        """Conflict degree is always a power-of-two divisor of 32 for
        full warps (bank count is a power of two)."""
        d = conflict_degree(K40C, SharedAccess(stride_words=stride))
        assert 1 <= d <= 32
        assert 32 % d == 0

    @given(stride=st.integers(0, 128))
    def test_matches_gcd_formula(self, stride):
        d = conflict_degree(K40C, SharedAccess(stride_words=stride))
        expected = 1 if stride == 0 else math.gcd(stride, 32)
        assert d == expected


class TestConflictFreeStride:
    def test_odd_is_free(self):
        assert conflict_free_stride(K40C, 17)

    def test_even_is_not(self):
        assert not conflict_free_stride(K40C, 8)

    def test_broadcast_is_free(self):
        assert conflict_free_stride(K40C, 0)

    def test_padding_fix(self):
        """The classic pad-by-one fix makes any even stride free."""
        for s in range(2, 64, 2):
            assert conflict_free_stride(K40C, padded_stride(s))

    def test_padding_keeps_odd_strides(self):
        assert padded_stride(7) == 7


class TestSharedEfficiency:
    def test_plain_float_access_is_100pct(self):
        eff = shared_efficiency(K40C, [SharedAccess(stride_words=1)])
        assert eff == pytest.approx(1.0)

    def test_wide_conflict_free_exceeds_100pct(self):
        """64-bit bank mode: cuDNN-style float2 tiles read 'over' the
        nominal throughput — the >130 % readings of Fig. 6."""
        eff = shared_efficiency(K40C, [SharedAccess(stride_words=1,
                                                    word_bytes=8)])
        assert eff > 1.0

    def test_conflicted_access_is_degraded(self):
        """Theano-fft's even-stride pattern: stride 8 -> 8-way conflict
        -> 12.5 %, inside its 8-20 % Fig. 6 band."""
        eff = shared_efficiency(K40C, [SharedAccess(stride_words=8)])
        assert eff == pytest.approx(0.125)

    def test_mixture_weighted(self):
        good = SharedAccess(stride_words=1)
        bad = SharedAccess(stride_words=8)
        mixed = shared_efficiency(K40C, [good, bad])
        assert (shared_efficiency(K40C, [bad]) < mixed
                < shared_efficiency(K40C, [good]))

    def test_empty_defaults_to_one(self):
        assert shared_efficiency(K40C, []) == 1.0

    @given(strides=st.lists(st.integers(0, 64), min_size=1, max_size=4),
           word=st.sampled_from([4, 8, 16]))
    def test_bounded(self, strides, word):
        accs = [SharedAccess(stride_words=s, word_bytes=word) for s in strides]
        eff = shared_efficiency(K40C, accs)
        assert 0.0 < eff <= 2.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(stride_words=-1), dict(word_bytes=2), dict(active_lanes=0),
        dict(active_lanes=40),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SharedAccess(**kwargs)
