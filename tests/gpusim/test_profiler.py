"""Tests for the nvprof-like profiler session."""

import pytest

from repro.errors import ProfilerError
from repro.gpusim.device import K40C
from repro.gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from repro.gpusim.profiler import Profiler
from repro.gpusim.transfer import TransferKind


def spec(name="k", flops=1e9, role=KernelRole.GEMM):
    return KernelSpec(name=name, role=role, flops=flops,
                      gmem_read_bytes=1e6, gmem_write_bytes=1e6,
                      launch=LaunchConfig(grid_blocks=500, block_threads=256),
                      regs_per_thread=64, shared_per_block=4096)


class TestSession:
    def test_launch_records_execution(self):
        prof = Profiler(K40C)
        t = prof.launch(spec())
        assert len(prof.executions) == 1
        assert prof.gpu_time() == pytest.approx(t.time_s)

    def test_launch_all(self):
        prof = Profiler(K40C)
        prof.launch_all([spec("a"), spec("b")])
        assert [e.name for e in prof.executions] == ["a", "b"]

    def test_nested_session_rejected(self):
        prof = Profiler(K40C)
        with prof.session():
            with pytest.raises(ProfilerError):
                prof.__enter__()

    def test_session_reusable_after_exit(self):
        prof = Profiler(K40C)
        with prof.session():
            pass
        with prof.session():
            prof.launch(spec())
        assert prof.executions

    def test_reset(self):
        prof = Profiler(K40C)
        prof.launch(spec())
        prof.record_transfer(TransferKind.H2D, 1000)
        prof.reset()
        assert not prof.executions
        assert prof.transfers.total_bytes == 0


class TestQueries:
    def test_summary_requires_data(self):
        with pytest.raises(ProfilerError):
            Profiler(K40C).summary()

    def test_hotspots_require_data(self):
        with pytest.raises(ProfilerError):
            Profiler(K40C).hotspot_roles()
        with pytest.raises(ProfilerError):
            Profiler(K40C).hotspot_kernels()

    def test_hotspot_roles_grouping(self):
        prof = Profiler(K40C)
        prof.launch(spec("g1", 5e10, KernelRole.GEMM))
        prof.launch(spec("g2", 5e10, KernelRole.GEMM))
        prof.launch(spec("t", 1e8, KernelRole.TRANSPOSE))
        roles = prof.hotspot_roles()
        assert roles["GEMM"] > roles["transpose"]
        assert sum(roles.values()) == pytest.approx(1.0)

    def test_top_kernels_sorted(self):
        prof = Profiler(K40C)
        prof.launch(spec("small", 1e8))
        prof.launch(spec("big", 1e11))
        top = prof.top_kernels(1)
        assert top[0].name == "big"
        with pytest.raises(ValueError):
            prof.top_kernels(0)

    def test_transfers_recorded(self):
        prof = Profiler(K40C)
        prof.record_transfer(TransferKind.H2D, 2**20, pinned=True, async_=True)
        assert prof.transfers.asynchronous_time() > 0
        assert prof.transfers.synchronous_time() == 0
