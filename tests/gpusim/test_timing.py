"""Tests for the roofline timing engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.coalescing import WarpAccess
from repro.gpusim.device import K40C
from repro.gpusim.divergence import DivergenceProfile
from repro.gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from repro.gpusim.timing import time_kernel


def spec(**overrides):
    base = dict(
        name="k", role=KernelRole.GEMM, flops=1e10,
        gmem_read_bytes=1e7, gmem_write_bytes=1e7,
        launch=LaunchConfig(grid_blocks=2000, block_threads=256),
        regs_per_thread=64, shared_per_block=8192,
        compute_efficiency=0.7,
    )
    base.update(overrides)
    return KernelSpec(**base)


class TestRoofline:
    def test_compute_bound_kernel(self):
        t = time_kernel(K40C, spec())
        assert t.bound == "compute"
        # Cannot beat the ideal peak-rate time.
        assert t.time_s > 1e10 / K40C.peak_flops

    def test_memory_bound_kernel(self):
        t = time_kernel(K40C, spec(flops=1e6, gmem_read_bytes=1e9,
                                   gmem_write_bytes=1e9))
        assert t.bound == "memory"
        assert t.time_s > 2e9 / K40C.memory_bandwidth

    def test_more_flops_is_slower(self):
        a = time_kernel(K40C, spec(flops=1e10)).time_s
        b = time_kernel(K40C, spec(flops=2e10)).time_s
        assert b > a

    def test_more_bytes_is_slower(self):
        a = time_kernel(K40C, spec(flops=1.0, gmem_read_bytes=1e8)).time_s
        b = time_kernel(K40C, spec(flops=1.0, gmem_read_bytes=4e8)).time_s
        assert b > a

    def test_repeats_multiply_time(self):
        one = time_kernel(K40C, spec()).time_s
        four = time_kernel(K40C, spec(repeats=4)).time_s
        assert four == pytest.approx(4 * one)

    def test_launch_overhead_floor(self):
        """A tiny kernel still costs the launch overhead."""
        t = time_kernel(K40C, spec(flops=1.0, gmem_read_bytes=4,
                                   gmem_write_bytes=4,
                                   launch=LaunchConfig(1, 32),
                                   regs_per_thread=16, shared_per_block=0))
        assert t.time_s >= K40C.kernel_launch_overhead_s

    def test_bad_coalescing_slows_memory_kernel(self):
        good = spec(flops=1.0, gmem_read_bytes=1e9,
                    load_pattern=WarpAccess(word_bytes=4, stride_words=1))
        bad = good.scaled(load_pattern=WarpAccess(word_bytes=4, stride_words=16))
        assert time_kernel(K40C, bad).time_s > time_kernel(K40C, good).time_s

    def test_timing_bandwidth_fraction_overrides_pattern(self):
        bad_pattern = spec(flops=1.0, gmem_read_bytes=1e9,
                           load_pattern=WarpAccess(word_bytes=4, stride_words=16),
                           timing_bandwidth_fraction=0.9)
        t = time_kernel(K40C, bad_pattern)
        # gld metric still reflects the bad pattern...
        assert t.gld_efficiency < 0.2
        # ...but the time matches the cache-served fraction.
        assert t.memory_time_s < 1e9 / (K40C.memory_bandwidth * 0.3)

    def test_divergence_slows_compute(self):
        uni = spec()
        div = spec(divergence=DivergenceProfile(divergent_fraction=0.8,
                                                branch_paths=2.0))
        assert time_kernel(K40C, div).time_s > time_kernel(K40C, uni).time_s


class TestMetrics:
    def test_occupancy_fields_consistent(self):
        t = time_kernel(K40C, spec())
        assert 0 < t.achieved_occupancy <= t.theoretical_occupancy <= 1.0

    def test_ipc_bounded(self):
        t = time_kernel(K40C, spec())
        assert 0 < t.ipc <= K40C.max_ipc_per_sm

    def test_memory_bound_kernel_has_low_ipc(self):
        cb = time_kernel(K40C, spec())
        mb = time_kernel(K40C, spec(flops=1e6, gmem_read_bytes=2e9,
                                    load_pattern=WarpAccess(word_bytes=4,
                                                            stride_words=8)))
        assert mb.ipc < cb.ipc

    def test_gld_efficiency_zero_without_reads(self):
        t = time_kernel(K40C, spec(gmem_read_bytes=0))
        assert t.gld_efficiency == 0.0

    def test_bank_conflict_events(self):
        from repro.gpusim.banks import SharedAccess
        t = time_kernel(K40C, spec(
            shared_accesses=(SharedAccess(stride_words=8),),
            shared_traffic_bytes=1e6))
        conflicts = t.shared_load_bank_conflicts + t.shared_store_bank_conflicts
        assert conflicts > 0

    def test_no_conflicts_for_stride1(self):
        from repro.gpusim.banks import SharedAccess
        t = time_kernel(K40C, spec(
            shared_accesses=(SharedAccess(stride_words=1),),
            shared_traffic_bytes=1e6))
        assert t.shared_load_bank_conflicts == 0
        assert t.shared_store_bank_conflicts == 0


@settings(max_examples=40, deadline=None)
@given(flops=st.floats(1e3, 1e12), read=st.floats(0, 1e9),
       write=st.floats(0, 1e9), regs=st.integers(16, 128),
       grid=st.integers(1, 10**5))
def test_time_always_positive(flops, read, write, regs, grid):
    s = spec(flops=flops, gmem_read_bytes=read, gmem_write_bytes=write,
             regs_per_thread=regs,
             launch=LaunchConfig(grid_blocks=grid, block_threads=256))
    t = time_kernel(K40C, s)
    assert t.time_s > 0
    assert t.compute_time_s >= 0 and t.memory_time_s >= 0


class TestSimClock:
    """The virtual clock the serving subsystem runs on."""

    def test_starts_at_zero(self):
        from repro.gpusim.timing import SimClock
        assert SimClock().now_s == 0.0

    def test_advance_accumulates(self):
        from repro.gpusim.timing import SimClock
        clock = SimClock()
        assert clock.advance(0.5) == 0.5
        assert clock.advance(0.25) == 0.75
        assert clock.now_s == 0.75

    def test_advance_to_never_rewinds(self):
        from repro.gpusim.timing import SimClock
        clock = SimClock(start_s=1.0)
        clock.advance_to(0.5)
        assert clock.now_s == 1.0
        clock.advance_to(2.0)
        assert clock.now_s == 2.0

    def test_negative_advance_rejected(self):
        from repro.gpusim.timing import SimClock
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)
        with pytest.raises(ValueError):
            SimClock(start_s=-1.0)
