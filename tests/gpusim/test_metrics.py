"""Tests for metric aggregation (the Fig. 6 weighting method)."""

import pytest

from repro.gpusim.device import K40C
from repro.gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from repro.gpusim.metrics import (kernel_shares, runtime_shares,
                                  weighted_summary)
from repro.gpusim.timing import time_kernel


def timing(name, role, flops, regs=64):
    s = KernelSpec(name=name, role=role, flops=flops,
                   gmem_read_bytes=1e6, gmem_write_bytes=1e6,
                   launch=LaunchConfig(grid_blocks=1000, block_threads=256),
                   regs_per_thread=regs, shared_per_block=4096)
    return time_kernel(K40C, s)


@pytest.fixture
def timings():
    return [
        timing("sgemm_a", KernelRole.GEMM, 5e10),
        timing("sgemm_b", KernelRole.GEMM, 3e10),
        timing("im2col", KernelRole.IM2COL, 1e9),
    ]


class TestWeightedSummary:
    def test_runtime_is_total(self, timings):
        s = weighted_summary(timings)
        assert s.runtime_s == pytest.approx(sum(t.time_s for t in timings))

    def test_weighted_average_between_extremes(self, timings):
        s = weighted_summary(timings)
        occs = [t.achieved_occupancy for t in timings]
        assert min(occs) <= s.achieved_occupancy <= max(occs)

    def test_weights_follow_runtime(self):
        """A long kernel dominates the weighted estimate."""
        long_k = timing("long", KernelRole.GEMM, 1e11, regs=116)
        short_k = timing("short", KernelRole.POINTWISE, 1e7, regs=16)
        s = weighted_summary([long_k, short_k])
        assert abs(s.achieved_occupancy - long_k.achieved_occupancy) < 0.02

    def test_top_n_restricts(self, timings):
        s_all = weighted_summary(timings)
        s_top1 = weighted_summary(timings, top_n=1)
        longest = max(timings, key=lambda t: t.time_s)
        assert s_top1.achieved_occupancy == pytest.approx(
            longest.achieved_occupancy)
        # total runtime still reported over all kernels
        assert s_top1.runtime_s == pytest.approx(s_all.runtime_s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_summary([])

    def test_bad_top_n(self, timings):
        with pytest.raises(ValueError):
            weighted_summary(timings, top_n=0)


class TestShares:
    def test_role_shares_sum_to_one(self, timings):
        shares = runtime_shares(timings)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == {"GEMM", "im2col"}

    def test_gemm_dominates(self, timings):
        shares = runtime_shares(timings)
        assert shares["GEMM"] > 0.9

    def test_kernel_shares_finer_than_roles(self, timings):
        ks = kernel_shares(timings)
        assert set(ks) == {"sgemm_a", "sgemm_b", "im2col"}
        assert sum(ks.values()) == pytest.approx(1.0)
