"""Tests for the device specification."""

from repro.gpusim.device import K40C, DeviceSpec


class TestK40C:
    def test_paper_core_count(self):
        """Section III-A: 15 SMs x 192 cores = 2880 CUDA cores."""
        assert K40C.sm_count == 15
        assert K40C.cores_per_sm == 192
        assert K40C.cuda_cores == 2880

    def test_paper_peak_flops(self):
        """Section III-A: 4.29 TFLOP/s single precision."""
        assert abs(K40C.peak_flops - 4.29e12) < 0.01e12

    def test_paper_memory(self):
        """12 GB device memory, 288 GB/s bandwidth."""
        assert K40C.global_memory_bytes == 12 * 2**30
        assert K40C.memory_bandwidth == 288e9

    def test_paper_sm_resources(self):
        """256 KB register file (64K 32-bit regs) and 48 KB shared per SM."""
        assert K40C.registers_per_sm == 65536
        assert K40C.shared_memory_per_sm == 48 * 1024

    def test_warp_limits(self):
        assert K40C.warp_size == 32
        assert K40C.max_warps_per_sm == 64
        assert K40C.max_threads_per_sm == 2048

    def test_str_mentions_name(self):
        assert "K40c" in str(K40C)


def test_custom_device_derivations():
    dev = DeviceSpec(
        name="toy", sm_count=2, cores_per_sm=64, clock_hz=1e9,
        flops_per_core_cycle=2, global_memory_bytes=2**30,
        memory_bandwidth=100e9, registers_per_sm=32768,
        register_alloc_unit=256, max_registers_per_thread=255,
        shared_memory_per_sm=49152, shared_alloc_unit=256,
        max_shared_per_block=49152, max_threads_per_sm=2048,
        max_threads_per_block=1024, max_blocks_per_sm=16, warp_size=32,
        shared_banks=32, bank_width_bytes=4, transaction_bytes=128,
        kernel_launch_overhead_s=5e-6,
    )
    assert dev.cuda_cores == 128
    assert dev.peak_flops == 128 * 1e9 * 2
    assert dev.max_warps_per_sm == 64
