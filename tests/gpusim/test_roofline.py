"""Tests for the roofline analysis."""

import pytest

from repro.gpusim.device import K40C
from repro.gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from repro.gpusim.roofline import (analyse, render, ridge_point,
                                   roofline_ceiling, summarise)
from repro.gpusim.timing import time_kernel


def timing(name, flops, nbytes):
    spec = KernelSpec(name=name, role=KernelRole.GEMM, flops=flops,
                      gmem_read_bytes=nbytes / 2, gmem_write_bytes=nbytes / 2,
                      launch=LaunchConfig(grid_blocks=2000, block_threads=256),
                      regs_per_thread=64, shared_per_block=8192)
    return time_kernel(K40C, spec)


class TestRoofline:
    def test_ridge_point(self):
        assert ridge_point(K40C) == pytest.approx(4.29e12 / 288e9, rel=0.01)

    def test_ceiling_memory_side(self):
        ai = 1.0
        assert roofline_ceiling(K40C, ai) == pytest.approx(288e9)

    def test_ceiling_compute_side(self):
        assert roofline_ceiling(K40C, 1000.0) == K40C.peak_flops

    def test_ceiling_rejects_negative(self):
        with pytest.raises(ValueError):
            roofline_ceiling(K40C, -1.0)

    def test_analyse_classifies_sides(self):
        pts = analyse(K40C, [
            timing("compute", 1e11, 1e6),
            timing("memory", 1e6, 1e9),
        ])
        by_name = {p.name: p for p in pts}
        assert by_name["compute"].bound == "compute"
        assert by_name["memory"].bound == "memory"

    def test_attained_below_roof(self):
        pts = analyse(K40C, [timing("k", 1e10, 1e7)])
        assert 0 < pts[0].attained_flops <= pts[0].roof_flops
        assert 0 < pts[0].utilisation <= 1.0

    def test_pure_compute_kernel_infinite_intensity(self):
        spec = KernelSpec(name="pure", role=KernelRole.GEMM, flops=1e9,
                          gmem_read_bytes=0, gmem_write_bytes=0,
                          launch=LaunchConfig(grid_blocks=1000,
                                              block_threads=256),
                          regs_per_thread=64, shared_per_block=0)
        pts = analyse(K40C, [time_kernel(K40C, spec)])
        assert pts[0].arithmetic_intensity == float("inf")
        assert pts[0].roof_flops == K40C.peak_flops

    def test_render(self):
        pts = analyse(K40C, [timing("sgemm", 1e10, 1e7)])
        out = render(K40C, pts)
        assert "sgemm" in out and "ridge" in out


class TestSummarise:
    def test_utilisation_bounds(self):
        s = summarise(K40C, [timing("a", 1e10, 1e7), timing("b", 1e6, 1e8)])
        assert 0 < s.flops_utilisation <= 1.0
        assert 0 < s.bandwidth_utilisation <= 1.0
        assert 0 <= s.compute_bound_time_fraction <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise(K40C, [])

    def test_framework_plan_utilisation(self):
        """A whole cuDNN iteration exploits a sizeable fraction of the
        device — the 'how efficiently the computing power of GPUs has
        been exploited' question of the introduction."""
        from repro.config import BASE_CONFIG
        from repro.frameworks.registry import get_implementation
        prof = get_implementation("cudnn").profile_iteration(BASE_CONFIG)
        s = summarise(K40C, prof.profiler.timings())
        assert 0.15 < s.flops_utilisation < 0.9
