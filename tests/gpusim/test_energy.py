"""Tests for the energy model."""

import pytest

from repro.config import BASE_CONFIG
from repro.frameworks.registry import get_implementation
from repro.gpusim.device import K40C, TITAN_X
from repro.gpusim.energy import (STATIC_FRACTION, EnergyReport, device_tdp,
                                 iteration_energy, kernel_energy,
                                 kernel_power)
from repro.gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from repro.gpusim.timing import time_kernel


def timing(flops=1e10, nbytes=2e6):
    spec = KernelSpec(name="k", role=KernelRole.GEMM, flops=flops,
                      gmem_read_bytes=nbytes / 2, gmem_write_bytes=nbytes / 2,
                      launch=LaunchConfig(2000, 256), regs_per_thread=64,
                      shared_per_block=8192, compute_efficiency=0.7)
    return time_kernel(K40C, spec)


class TestKernelPower:
    def test_bounded_by_static_and_tdp(self):
        p = kernel_power(K40C, timing())
        assert STATIC_FRACTION * 235.0 <= p <= 235.0

    def test_busier_kernel_draws_more(self):
        lazy = timing(flops=1e8, nbytes=1e5)
        busy = timing(flops=1e11, nbytes=1e6)
        assert kernel_power(K40C, busy) > kernel_power(K40C, lazy)

    def test_device_tdp_table(self):
        assert device_tdp(K40C) == 235.0
        assert device_tdp(TITAN_X) == 250.0

    def test_energy_is_power_times_time(self):
        t = timing()
        assert kernel_energy(K40C, t) == pytest.approx(
            kernel_power(K40C, t) * t.time_s)


class TestIterationEnergy:
    def test_accumulates(self):
        ts = [timing(), timing(flops=5e9)]
        rep = iteration_energy(K40C, ts)
        assert rep.energy_j == pytest.approx(
            sum(kernel_energy(K40C, t) for t in ts))
        assert rep.time_s == pytest.approx(sum(t.time_s for t in ts))

    def test_images_per_joule(self):
        rep = EnergyReport(energy_j=10.0, time_s=1.0)
        assert rep.images_per_joule(50) == 5.0
        with pytest.raises(ValueError):
            rep.images_per_joule(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            iteration_energy(K40C, [])

    def test_fbfft_most_efficient_at_base(self):
        """The headline result of the energy extension: the fastest
        implementation is also by far the most images-per-joule."""
        effs = {}
        for name in ("fbfft", "cudnn", "caffe", "theano-fft"):
            impl = get_implementation(name)
            p = impl.profile_iteration(BASE_CONFIG)
            rep = iteration_energy(K40C, p.profiler.timings())
            effs[name] = rep.images_per_joule(BASE_CONFIG.batch)
        assert effs["fbfft"] > 2 * effs["cudnn"] > 2 * effs["theano-fft"]

    def test_average_power_zero_guard(self):
        assert EnergyReport(0.0, 0.0).average_power_w == 0.0
