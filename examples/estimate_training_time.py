#!/usr/bin/env python
"""How long does training really take?  (The paper's motivation.)

Section I of the paper motivates the study with training cost:
"training on those large-scale datasets requires significant runtime,
and several weeks or months is not uncommon."  This example projects
full training runs of the four profiled models on the simulated K40c,
shows how the convolution implementation moves the bill, and extends
the analysis to multi-GPU data parallelism.

    python examples/estimate_training_time.py
"""

from repro.core.training_cost import estimate_training, multi_gpu_projection
from repro.workloads.datasets import IMAGENET


def main() -> None:
    print("Projected 90-epoch ImageNet training on one simulated "
          "Tesla K40c\n")
    for model, batch in (("AlexNet", 128), ("OverFeat", 128),
                         ("GoogLeNet", 128), ("VGG", 64)):
        est = estimate_training(model, IMAGENET, batch=batch, epochs=90)
        print(est.render())
        for gpus in (2, 4, 8):
            days, eff = multi_gpu_projection(est, gpus)
            print(f"    {gpus} GPUs: {days:6.2f} days "
                  f"(scaling efficiency {eff:.0%})")
        print()

    print("Implementation choice on AlexNet (1 epoch):")
    for impl in ("cudnn", "caffe", "fbfft", "theano-fft"):
        est = estimate_training("AlexNet", IMAGENET, batch=128, epochs=1,
                                implementation=impl)
        print(f"  {impl:12s} {est.epoch_time_s / 3600:6.2f} h/epoch")


if __name__ == "__main__":
    main()
