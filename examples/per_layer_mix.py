#!/usr/bin/env python
"""Per-layer implementation mixing — beyond "pick one framework".

The paper's conclusion is that no single implementation wins
everywhere.  This example quantifies the consequence on whole models:
for each conv layer of a network it finds the fastest implementation,
then compares committing to the best *single* implementation against
the per-layer "oracle" mix (what auto-tuning dispatchers later made
standard practice).

    python examples/per_layer_mix.py            # AlexNet
    python examples/per_layer_mix.py VGG-16 64
"""

import sys

from repro.core.layer_advisor import oracle_mix
from repro.nn.models import model_registry


def main(model_name: str = "AlexNet", batch: int = 128) -> None:
    ctor, shape = model_registry()[model_name]
    report = oracle_mix(model_name, ctor(rng=0), (batch,) + shape)
    print(report.render())
    print()
    if report.oracle_speedup > 1.1:
        print(f"Verdict: mixing implementations per layer is worth "
              f"{report.oracle_speedup:.2f}x on {model_name} — the "
              f"paper's 'no single winner' has real cost.")
    else:
        print(f"Verdict: {report.best_single} is near-oracle on "
              f"{model_name} ({report.oracle_speedup:.2f}x headroom) — "
              f"a homogeneous network suits a single implementation.")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "AlexNet",
         int(args[1]) if len(args) > 1 else 128)
