#!/usr/bin/env python
"""Serve a minute of mixed CNN inference traffic on the virtual clock.

Generates 60 simulated seconds of bursty AlexNet/VGG/GoogLeNet
arrivals, serves them with dynamic batching and the per-shape plan
cache, then re-serves the identical trace with batching disabled.
The gap between the two reports is the paper's Fig. 3 batch-size
leverage applied to a serving system: larger effective batches move
every layer to a cheaper operating point, and sometimes to a
different winning implementation entirely.

Everything runs on the simulated clock, so the "minute" of traffic
takes a few wall seconds and the output is byte-identical per seed.

Run:  python examples/serve_traffic.py            # seed 7, 60 s
      python examples/serve_traffic.py 21         # another seed
      python examples/serve_traffic.py 7 5        # quick 5 s run
"""

import sys

from repro.serve import (BatchPolicy, ServerConfig, TrafficSpec,
                         generate_trace, serve_trace, trace_summary)


def main(seed: int = 7, duration_s: float = 60.0) -> None:
    spec = TrafficSpec(duration_s=duration_s, rate_rps=3000,
                       pattern="bursty", seed=seed)
    trace = generate_trace(spec)
    print(trace_summary(trace, spec))
    print()

    print("== dynamic batching ==")
    batched = serve_trace(trace)
    print(batched.render())
    print()

    print("== forced batch=1 ==")
    single = serve_trace(trace, ServerConfig(
        policy=BatchPolicy(max_batch=1, max_wait_s=0.0)))
    print(single.render())
    print()

    speedup = batched.throughput_rps / single.throughput_rps
    print(f"dynamic batching throughput speedup: x{speedup:.2f}")
    if "fbfft" in batched.implementations and \
            "fbfft" not in single.implementations:
        print("Note: fbfft only enters the dispatch mix once batching "
              "raises the effective batch size — the Fig. 3a crossover.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7,
         float(sys.argv[2]) if len(sys.argv) > 2 else 60.0)
