#!/usr/bin/env python
"""Train LeNet-5 on procedural digits — the NN substrate end to end.

Builds the paper's Fig. 1 architecture from real layers, trains it
with SGD+momentum on an offline MNIST stand-in, and reports train/test
accuracy.  Pass an implementation name to route every convolution
through that adapter's numerics (results are identical; only the
*simulated* device speed differs):

    python examples/train_lenet5.py            # default unrolling
    python examples/train_lenet5.py cudnn      # cuDNN adapter
    python examples/train_lenet5.py fft        # FFT strategy
"""

import sys

from repro.nn import SGD, Trainer
from repro.nn.models import lenet5
from repro.workloads import DigitDataset


def main(backend=None) -> None:
    print(f"Building LeNet-5 (conv backend: {backend or 'unrolled'})")
    model = lenet5(rng=3, backend=backend)
    print(f"  parameters: {model.parameter_count():,}")

    data = DigitDataset.generate(train=512, test=128, rng=7)
    trainer = Trainer(model, SGD(model.parameters(), lr=0.02, momentum=0.9))

    print("\ntraining for 6 epochs of 16 batches x 32 images ...")
    def report(step, loss, acc):
        if step % 16 == 0:
            print(f"  epoch {step // 16}: loss {loss:.3f}  batch acc {acc:.2f}")

    result = trainer.fit(data.batches(32, epochs=6, rng=11), callback=report)

    train_loss = result.final_loss
    _, test_acc = trainer.evaluate(data.test_x, data.test_y)
    print(f"\nfinal train loss: {train_loss:.4f}")
    print(f"held-out accuracy: {test_acc * 100:.1f} %  "
          f"(chance level: 10 %)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
