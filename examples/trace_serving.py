#!/usr/bin/env python
"""Trace a burst of served inference and walk the span tree.

The paper's evidence is nvprof timelines; this example produces the
serving stack's equivalent.  It runs a short burst of AlexNet traffic
through the scheduler with the span tracer attached, prints the span
tree of the first served batch — admission, plan lookup (with the
advisor ranking and its evalcache accesses nested inside), dispatch,
and the simulated gpusim kernels as leaves — then exports the whole
run as Chrome-trace JSON you can drop into https://ui.perfetto.dev
plus a metrics snapshot.

Everything is simulated time, so the run is deterministic: same seed,
byte-identical trace file.

Run:  python examples/trace_serving.py              # seed 7
      python examples/trace_serving.py 21           # another seed
      python examples/trace_serving.py 7 out.json   # choose the path
"""

import sys

from repro.obs.export import write_chrome_trace, write_metrics
from repro.serve import Server, ServerConfig, TrafficSpec, generate_trace


def render_span(span, depth=0):
    pad = "  " * depth
    label = f"{pad}{span.name}"
    detail = f"[{span.start_s * 1e3:8.3f} ms +{span.duration_s * 1e6:7.1f} us]"
    extras = {k: v for k, v in span.attrs.items()
              if k in ("batch", "fill", "hit", "implementation", "rank",
                       "role", "result")}
    attrs = " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
    print(f"{label:44s} {detail} {attrs}")
    for ev in span.events:
        print(f"{pad}  * {ev.name} @ {ev.t_s * 1e3:.3f} ms")
    for child in span.children:
        render_span(child, depth + 1)


def main(seed: int = 7, out: str = "serving_trace.json") -> None:
    spec = TrafficSpec(duration_s=0.25, rate_rps=1200, pattern="bursty",
                       seed=seed, models=("AlexNet",))
    trace = generate_trace(spec)
    server = Server(ServerConfig())
    tracer = server.enable_tracing()
    report = server.run(trace)

    root = tracer.roots[0]
    print(f"span tree: {tracer.span_count()} spans under "
          f"{root.name!r} ({report.completed} requests served)\n")
    first_batch = next(c for c in root.children if c.name == "serve.batch")
    render_span(first_batch)

    print()
    kernels = [s for s in tracer.walk() if s.cat == "gpu"]
    print(f"gpusim kernel leaves across the run: {len(kernels)}")
    launches = server.obs.registry.series("gpusim_kernel_launches_total")
    for labels, metric in launches[:5]:
        print(f"  {labels.get('role', '?'):14s} {int(metric.value):6d} "
              f"launches (model-side)")

    trace_path = write_chrome_trace(out, tracer, server.obs.registry,
                                    seed=seed) and out
    metrics_path = out.replace(".json", "_metrics.json")
    write_metrics(metrics_path, server.obs.registry)
    print(f"\nwrote {trace_path} (open in https://ui.perfetto.dev) "
          f"and {metrics_path}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7,
         sys.argv[2] if len(sys.argv) > 2 else "serving_trace.json")
