#!/usr/bin/env python
"""Profile a full CNN model: hotspot layers and hotspot kernels.

The paper's two-level methodology on one model: first the Fig. 2
layer-type breakdown of a training iteration, then a Fig. 4 kernel
breakdown of the heaviest convolutional layer.

    python examples/profile_model.py                 # AlexNet, cuDNN
    python examples/profile_model.py GoogLeNet fbfft
    python examples/profile_model.py ResNet-18 cudnn
"""

import sys

from repro.core.hotspot_kernels import hotspot_kernel_analysis
from repro.frameworks.registry import get_implementation
from repro.nn.conv_layer import Conv2d
from repro.nn.models import model_registry
from repro.nn.simulate import breakdown_by_type, model_breakdown
from repro.core.report import bar_breakdown


def main(model_name: str = "AlexNet", impl_name: str = "cudnn") -> None:
    ctor, shape = model_registry()[model_name]
    model = ctor(rng=0)
    batch = 128
    input_shape = (batch,) + shape

    print(f"=== {model_name}, batch {batch}, implementation {impl_name} ===\n")
    costs = model_breakdown(model, input_shape, implementation=impl_name)
    total = sum(c.time_s for c in costs)
    print(f"simulated training iteration: {total * 1000:.1f} ms on a K40c\n")
    print(bar_breakdown(breakdown_by_type(costs),
                        title="runtime by layer type (Fig. 2 view):"))

    # The single hottest convolutional layer, dissected kernel by
    # kernel.
    conv_costs = [c for c in costs if isinstance(c.layer, Conv2d)]
    hottest = max(conv_costs, key=lambda c: c.time_s)
    walk = model.shape_walk(input_shape)
    in_shape = next(s for l, s, _ in walk if l is hottest.layer)
    config = hottest.layer.conv_config(in_shape)
    print(f"\nhottest conv layer: {hottest.layer.name}  "
          f"({hottest.time_s * 1000:.1f} ms, config {config.tuple5}, "
          f"c={config.channels})\n")
    impl = get_implementation(impl_name)
    for bd in hotspot_kernel_analysis(config, implementations=[impl]):
        print(bd.render())


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "AlexNet",
         args[1] if len(args) > 1 else "cudnn")
