#!/usr/bin/env python
"""Quickstart: compare the seven GPU convolution implementations.

Runs one training iteration of a convolutional layer — the paper's
base configuration (64, 128, 64, 11, 1) — through every
implementation's performance model, prints the head-to-head table, and
asks the advisor which implementation to use.

Run:  python examples/quickstart.py
"""

from repro import BASE_CONFIG, Advisor, all_implementations
from repro.core.report import table


def main() -> None:
    print(f"Configuration: {BASE_CONFIG}")
    print(f"Training FLOPs per iteration: "
          f"{BASE_CONFIG.training_flops / 1e9:.1f} GFLOP\n")

    rows = []
    for impl in all_implementations():
        if not impl.supports(BASE_CONFIG):
            rows.append([impl.paper_name, impl.strategy.value, "-", "-", "-"])
            continue
        profile = impl.profile_iteration(BASE_CONFIG)
        mem = impl.peak_memory_bytes(BASE_CONFIG)
        rows.append([
            impl.paper_name,
            impl.strategy.value,
            f"{profile.total_time_s * 1000:.2f}",
            f"{mem / 2**20:.0f}",
            f"{profile.transfer_fraction * 100:.1f}",
        ])
    print(table(
        ["Implementation", "Strategy", "Time (ms)", "Peak mem (MB)",
         "Transfer (%)"],
        rows, title="One simulated training iteration on a Tesla K40c"))

    print()
    print(Advisor().recommend(BASE_CONFIG).render())


if __name__ == "__main__":
    main()
