#!/usr/bin/env python
"""Regenerate any table or figure of the paper from the command line.

    python examples/reproduce_figure.py            # list experiments
    python examples/reproduce_figure.py fig3d      # kernel-size sweep
    python examples/reproduce_figure.py fig7       # transfer overhead
    python examples/reproduce_figure.py all        # everything (slow)
"""

import sys

from repro import EXPERIMENTS, run_experiment


def list_experiments() -> None:
    print("available experiments:")
    for exp_id, exp in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id:8s} {exp.title}")


def main(argv) -> int:
    if not argv:
        list_experiments()
        return 0
    targets = sorted(EXPERIMENTS) if argv[0] == "all" else argv
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}\n")
            list_experiments()
            return 1
        print("=" * 72)
        print(f"{exp_id}: {EXPERIMENTS[exp_id].title}")
        print("=" * 72)
        _, text = run_experiment(exp_id)
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
