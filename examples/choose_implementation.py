#!/usr/bin/env python
"""Scenario-driven implementation selection — the paper's stated goal.

"The goal of this work is to assist practitioners identifying the
implementations that best serve their CNN computation needs in
different scenarios."  This example walks the advisor through four
contrasting scenarios and shows how the recommendation flips exactly
along the paper's summary lines: FFT for large kernels, cuDNN for
small kernels and strides, direct convolution under tight memory.

Run:  python examples/choose_implementation.py
"""

from repro import Advisor, ConvConfig

SCENARIOS = [
    ("Large-kernel first layer (AlexNet-style 11x11)",
     ConvConfig(batch=128, input_size=128, filters=96, kernel_size=11,
                stride=1, channels=3),
     None),
    ("Small-kernel deep layer (VGG-style 3x3)",
     ConvConfig(batch=64, input_size=56, filters=256, kernel_size=3,
                stride=1, channels=128),
     None),
    ("Strided detection layer (OverFeat-style stride 4)",
     ConvConfig(batch=128, input_size=231, filters=96, kernel_size=11,
                stride=4, channels=3),
     None),
    ("Embedded GPU with a 1 GB budget",
     ConvConfig(batch=64, input_size=128, filters=64, kernel_size=11,
                stride=1, channels=3),
     1 * 2**30),
]


def main() -> None:
    advisor = Advisor()
    for title, config, budget in SCENARIOS:
        print("=" * 72)
        print(title)
        if budget is not None:
            print(f"(memory budget: {budget / 2**20:.0f} MB)")
        print(advisor.recommend(config, memory_budget=budget).render())
        print()


if __name__ == "__main__":
    main()
