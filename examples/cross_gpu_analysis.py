#!/usr/bin/env python
"""Beyond the K40c: cross-GPU sensitivity and roofline analysis.

The paper concludes that "a deep understanding of the algorithm and
hardware characteristic is extremely important".  This example
quantifies that: it re-runs the headline comparisons on the other
modelled GPUs (K20X, TITAN X, M40), shows how the fbfft/cuDNN
crossover migrates with DRAM bandwidth, and places one implementation's
kernels on the K40c's roofline.

    python examples/cross_gpu_analysis.py
"""

from repro.config import BASE_CONFIG
from repro.core.sensitivity import (bandwidth_sensitivity, device_comparison,
                                    render_device_comparison)
from repro.frameworks.registry import get_implementation
from repro.gpusim.device import K40C
from repro.gpusim.roofline import analyse, render, summarise


def main() -> None:
    print(render_device_comparison(device_comparison()))

    print("\nDRAM-bandwidth sensitivity of the Fig. 3(d) crossover:")
    for r in bandwidth_sensitivity((0.5, 1.0, 2.0, 4.0)):
        print(f"  bandwidth x{r.scale:<4} -> fbfft overtakes cuDNN at "
              f"k = {r.kernel_crossover}")
    print("  (fbfft is transpose/bandwidth-heavy: more bandwidth pulls "
          "its win earlier)")

    print("\nRoofline placement of cuDNN's kernels at the base config:")
    prof = get_implementation("cudnn").profile_iteration(BASE_CONFIG)
    points = analyse(K40C, prof.profiler.timings())
    print(render(K40C, points))
    s = summarise(K40C, prof.profiler.timings())
    print(f"\n  whole iteration: {s.flops_utilisation:.0%} of peak FLOPs, "
          f"{s.bandwidth_utilisation:.0%} of peak bandwidth, "
          f"{s.compute_bound_time_fraction:.0%} of time compute-bound")


if __name__ == "__main__":
    main()
