"""FFT work and memory model for the FFT-based implementations.

Counts the transforms, FLOPs and frequency-domain buffer sizes of one
training iteration of the FFT strategy (section II-B step structure:
transform inputs and filters, pointwise complex product, inverse
transform), given a transform-size rule (powers of two for fbfft,
next-fast-len composites for cuFFT/Theano-fft).

Key consequences the paper observes, and which fall out of this
arithmetic:

* runtime is nearly independent of kernel size — only the (tiny)
  filter transforms see ``k`` (Fig. 3(d), "the runtime of fbfft tends
  to be a constant value");
* memory explodes: three complex spectra of the *padded* size must
  live at once, b*c + f*c + b*f transforms (the 1.6-10.9 GB of
  Fig. 5), and the pow-2 rule makes the footprint jump discontinuously
  with input size (the "dramatic fluctuations" of Fig. 5(b)/(d)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import ConvConfig
from .calibration import COMPLEX_ITEMSIZE, FftCalibration


def transform_size(cal: FftCalibration, padded_input: int) -> int:
    """Transform size for a padded input of the given spatial size.

    A valid correlation needs ``n >= i`` (no wrap-around reaches the
    first ``o`` outputs); fbfft rounds to the next power of two, cuFFT
    to the next 2/3/5/7-smooth length.
    """
    if padded_input <= 0:
        raise ValueError(f"padded_input must be positive, got {padded_input}")
    n = padded_input
    if cal.pow2_padding:
        return 1 << (n - 1).bit_length()
    return _next_fast_len(n)


def _next_fast_len(n: int) -> int:
    """Smallest 2/3/5/7-smooth integer >= n (cuFFT-friendly sizes)."""
    while True:
        m = n
        for p in (2, 3, 5, 7):
            while m % p == 0:
                m //= p
        if m == 1:
            return n
        n += 1


def fft2_flops(n: int) -> float:
    """FLOPs of one 2-D real-to-complex FFT of size n x n.

    A complex n-point FFT costs ~5 n log2 n; a 2-D transform is 2n
    1-D transforms; the real-to-complex optimisation halves it.
    """
    if n <= 1:
        raise ValueError(f"n must be > 1, got {n}")
    return 5.0 * n * n * math.log2(n * n) / 2.0


@dataclass(frozen=True)
class FftWorkload:
    """Transforms / FLOPs / bytes of one training iteration."""

    transform_n: int
    freq_bins: int
    forward_transforms: int
    inverse_transforms: int
    fft_flops: float
    cgemm_flops: float
    spectrum_bytes: int  # all resident frequency-domain buffers
    transpose_bytes: float  # layout shuffles around the CGEMM


def iteration_workload(cal: FftCalibration, config: ConvConfig) -> FftWorkload:
    """Work of forward + backward-input + backward-weights.

    Spectra computed per iteration (input, filter and output-gradient
    spectra are each reused by two of the three passes, as fbfft does):

    * input spectra:    b*c transforms
    * filter spectra:   f*c transforms
    * output spectra:   b*f  (inverse, forward result)
    * dy spectra:       b*f  (forward transform of the gradient)
    * dx spectra:       b*c  (inverse)
    * dw spectra:       f*c  (inverse)
    """
    b, i, f, k, s = config.tuple5
    c = config.channels
    padded = i + 2 * config.padding
    if cal.full_pad:
        padded += k - 1
    n = transform_size(cal, padded)
    freq = n * (n // 2 + 1)  # real-to-complex bins

    fwd_t = b * c + f * c + b * f
    inv_t = b * f + b * c + f * c
    flops_fft = (fwd_t + inv_t) * fft2_flops(n)

    # One complex (b x c) @ (c x f)-shaped contraction per frequency
    # bin and per pass; 8 real FLOPs per complex MAC.
    cgemm = 3 * 8.0 * b * f * c * freq

    spectra_elems = (b * c + f * c + b * f) * freq
    spectrum = int(spectra_elems * COMPLEX_ITEMSIZE * cal.buffer_residency)

    # BDHW <-> HWBD transposes before and after each CGEMM (Fig. 4(f)):
    # each moves the input and output spectra once per pass.
    transpose = 3 * 2.0 * (b * c + b * f) * freq * COMPLEX_ITEMSIZE

    return FftWorkload(
        transform_n=n,
        freq_bins=freq,
        forward_transforms=fwd_t,
        inverse_transforms=inv_t,
        fft_flops=flops_fft,
        cgemm_flops=cgemm,
        spectrum_bytes=spectrum,
        transpose_bytes=transpose,
    )
