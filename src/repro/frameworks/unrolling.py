"""Shared adapter for the explicit-unrolling implementations.

Caffe, Torch-cunn and Theano-CorrMM all follow the same structure the
paper's Fig. 4(a-c) shows: per image, an ``im2col`` gather, one cuBLAS
GEMM per pass, and a ``col2im`` scatter on the backward-input path —
GEMM taking ~80-87 % of the runtime.  They differ in GEMM calibration,
buffer policy and kernel naming, which the three concrete subclasses
pin down.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import ConvConfig
from ..conv import unrolled
from ..gpusim.kernels import KernelSpec
from ._plans import col2im_spec, gemm_spec, im2col_spec, pointwise_spec
from .base import ConvImplementation, Strategy
from .calibration import GEMM_CALIBRATION, ITEMSIZE, TABLE2_RESOURCES


class UnrollingImplementation(ConvImplementation):
    """im2col + GEMM + col2im, one image at a time."""

    strategy = Strategy.UNROLLING

    #: Kernel names (overridden to match each framework's symbols).
    gemm_kernel = "sgemm"
    im2col_kernel = "im2col_gpu_kernel"
    col2im_kernel = "col2im_gpu_kernel"

    # -- numerics --------------------------------------------------------

    def forward(self, x, w, bias=None, stride=1, padding=0):
        return unrolled.forward(x, w, bias, stride, padding)

    def backward_input(self, dy, w, input_hw, stride=1, padding=0):
        return unrolled.backward_input(dy, w, input_hw, stride, padding)

    def backward_weights(self, dy, x, kernel_hw, stride=1, padding=0):
        return unrolled.backward_weights(dy, x, kernel_hw, stride, padding)

    # -- performance --------------------------------------------------------

    def _gemm_dims(self, config: ConvConfig) -> Tuple[int, int, int]:
        """(m, n, k) of the per-image forward GEMM:
        ``(f) x (c*k^2) @ (c*k^2) x (o^2)``."""
        f = config.filters
        ck2 = config.channels * config.kernel_size ** 2
        o2 = config.output_size ** 2
        return f, o2, ck2

    def _col_bytes(self, config: ConvConfig) -> int:
        ck2 = config.channels * config.kernel_size ** 2
        return ck2 * config.output_size ** 2 * ITEMSIZE

    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        self.check_config(config)
        res = TABLE2_RESOURCES[self.name]
        cal = GEMM_CALIBRATION[self.name]
        b = config.batch
        m, n, k = self._gemm_dims(config)
        col = float(self._col_bytes(config))
        image = float(config.channels * config.input_size ** 2 * ITEMSIZE)
        out_bytes = float(config.batch * config.filters
                          * config.output_size ** 2 * ITEMSIZE)

        plan = [
            # forward: unroll + y = W @ col
            im2col_spec(self.im2col_kernel, res, col, image, repeats=b),
            gemm_spec(f"{self.gemm_kernel}_fwd", res, cal, m, n, k, repeats=b),
            pointwise_spec("add_bias", res, out_bytes),
            # backward input: dcol = W^T @ dy, then fold
            gemm_spec(f"{self.gemm_kernel}_bgrad", res, cal, k, n, m, repeats=b),
            col2im_spec(self.col2im_kernel, res, col, image, repeats=b),
            # backward weights: dW += dy @ col^T (im2col recomputed)
            im2col_spec(self.im2col_kernel, res, col, image, repeats=b),
            gemm_spec(f"{self.gemm_kernel}_wgrad", res, cal, m, k, n, repeats=b),
        ]
        return plan

    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        """One column buffer, reused image-by-image."""
        return [("col_buffer", self._col_bytes(config))]


class Caffe(UnrollingImplementation):
    """Caffe's spatial convolution (Jia et al. 2014).

    Separate data/diff blobs double the activation footprint — the
    ~3.8 GB ceiling of Fig. 5 — and a background prefetch thread hides
    the input transfer (Fig. 7 shows ~0 %)."""

    name = "caffe"
    paper_name = "Caffe"
    framework = "Caffe"
    separate_gradient_buffers = True
    gemm_kernel = "sgemm"
    im2col_kernel = "im2col_gpu_kernel"
    col2im_kernel = "col2im_gpu_kernel"


class TorchCunn(UnrollingImplementation):
    """Torch's cunn SpatialConvolutionMM.

    Shares gradient storage with the activations (in-place
    accumulation), making it the leanest unrolling implementation in
    Fig. 5 (170 MB - 2.1 GB)."""

    name = "torch-cunn"
    paper_name = "Torch-cunn"
    framework = "Torch"
    separate_gradient_buffers = False
    gemm_kernel = "sgemm"
    im2col_kernel = "im2col_kernel"
    col2im_kernel = "col2im_kernel"


class TheanoCorrMM(UnrollingImplementation):
    """Theano's GpuCorrMM op.

    Plain cuBLAS GEMM with a slightly higher large-matrix asymptote
    than its peers — it edges out cuDNN beyond ~160 filters in
    Fig. 3(c) — but Theano's host-resident graph execution stages the
    unrolled buffer through the host when it outgrows the workspace,
    producing the Conv2 transfer anomaly of Fig. 7."""

    name = "theano-corrmm"
    paper_name = "Theano-CorrMM"
    framework = "Theano"
    separate_gradient_buffers = True
    gemm_kernel = "sgemm"
    im2col_kernel = "im2col_kernel"
    col2im_kernel = "col2im_kernel"

    def transfer_ops(self, config: ConvConfig):
        from ..gpusim.transfer import TransferKind
        from .base import TransferOp
        from .calibration import TRANSFER_BEHAVIOUR

        ops = super().transfer_ops(config)
        beh = TRANSFER_BEHAVIOUR[self.name]
        full_col = self._col_bytes(config) * config.batch
        # Colour inputs (c <= 3) take CorrMM's fused small-channel path
        # and never batch the unroll; the staging fallback only exists
        # on the generic multi-channel path.  Among every configuration
        # the paper tests, only Table I's Conv2 trips this — the >60 %
        # Fig. 7 anomaly.
        multi_channel = config.channels >= 16
        if (beh.host_staging_threshold and multi_channel
                and full_col > beh.host_staging_threshold):
            # Full-batch unrolled buffer exceeds the device workspace:
            # stage it through host memory, one chunk per image.
            ops.append(TransferOp(
                kind=TransferKind.D2H, bytes=full_col // 2,
                pinned=False, async_=False, chunks=config.batch,
                label="col host staging (out)"))
            ops.append(TransferOp(
                kind=TransferKind.H2D, bytes=full_col // 2,
                pinned=False, async_=False, chunks=config.batch,
                label="col host staging (in)"))
        return ops
