"""Theano-fft adapter (``theano.sandbox.cuda.fftconv``).

Same mathematics as fbfft — "fbfft and Theano-fft share the similar
convolution strategy, but they present a clear difference in
performance" (section IV-B) — with the implementation pathologies the
paper's profiling pins down:

* **host-side data preparation and transfer** dominate its runtime
  (Fig. 4(g)): the graph pads/reshapes operands with generic Theano
  ops and round-trips activations through host memory each iteration;
* **bank conflicts**: its transpose/elementwise kernels use unpadded
  even strides — shared efficiency 8-20 % (Fig. 6, section V-C-3);
* **warp divergence**: control-flow-heavy generic kernels — WEE
  66-81 % (section V-C-4);
* **2 registers/thread** (Table II): no unrolling at all, so high
  occupancy (39-59 %) yet the worst performance — the paper's
  counter-example that occupancy does not imply speed;
* cuFFT-style smooth transform sizes (``next_fast_len``), so its
  memory fluctuates with kernel size in Fig. 5(d);
* stride must be 1, like every FFT convolution.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import ConvConfig
from ..conv import fftconv
from ..gpusim.kernels import KernelRole, KernelSpec, LaunchConfig, grid_for
from ._plans import fft_spec, gemm_spec, pointwise_spec, transpose_spec
from .base import ConvImplementation, Strategy
from .calibration import (ACCESS_PATTERNS, DIVERGENCE, FFT_CALIBRATION,
                          ITEMSIZE, SHARED_PATTERNS, TABLE2_RESOURCES,
                          THEANO_FFT_CGEMM)
from .fft_model import iteration_workload


class TheanoFft(ConvImplementation):
    """Theano's conv2d_fft."""

    name = "theano-fft"
    paper_name = "Theano-fft"
    framework = "Theano"
    strategy = Strategy.FFT
    separate_gradient_buffers = True

    def check_config(self, config: ConvConfig) -> None:
        if config.stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {config.stride}")

    # -- numerics -----------------------------------------------------------

    def forward(self, x, w, bias=None, stride=1, padding=0):
        if stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {stride}")
        return fftconv.forward(x, w, bias, stride, padding, pow2=False)

    def backward_input(self, dy, w, input_hw, stride=1, padding=0):
        if stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {stride}")
        return fftconv.backward_input(dy, w, input_hw, stride, padding, pow2=False)

    def backward_weights(self, dy, x, kernel_hw, stride=1, padding=0):
        if stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {stride}")
        return fftconv.backward_weights(dy, x, kernel_hw, stride, padding, pow2=False)

    # -- performance --------------------------------------------------------

    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        self.check_config(config)
        res = TABLE2_RESOURCES[self.name]
        cal = FFT_CALIBRATION[self.name]
        work = iteration_workload(cal, config)
        b, i, f, k, _ = config.tuple5
        c = config.channels

        spectra_bytes = float(work.spectrum_bytes) / cal.buffer_residency
        x_bytes = float(b * c * i * i * ITEMSIZE)
        y_bytes = float(b * f * config.output_size ** 2 * ITEMSIZE)

        # Generic zero-padding / reshaping elementwise graph ops — the
        # "data preparation" block of Fig. 4(g).  Theano materialises a
        # fresh intermediate for every pad/reshape/dimshuffle node, so
        # each pass rewrites the padded operands *and* copies the
        # spectra once more.
        pad_bytes = float(
            3 * (b * c + f * c) * work.transform_n ** 2 * ITEMSIZE
            + 4.0 * spectra_bytes)
        prep = KernelSpec(
            name="GpuElemwise_pad_and_reshape",
            role=KernelRole.DATA_PREP,
            flops=pad_bytes / ITEMSIZE,
            gmem_read_bytes=pad_bytes,
            gmem_write_bytes=pad_bytes,
            launch=LaunchConfig(grid_blocks=grid_for(int(pad_bytes / ITEMSIZE), 128),
                                block_threads=res.block_threads),
            regs_per_thread=res.registers_per_thread,
            shared_per_block=res.shared_per_block,
            compute_efficiency=0.15,
            load_pattern=ACCESS_PATTERNS["theano_fft_load"],
            store_pattern=ACCESS_PATTERNS["theano_fft_store"],
            shared_accesses=SHARED_PATTERNS["theano-fft"],
            divergence=DIVERGENCE["theano-fft"],
            shared_traffic_bytes=pad_bytes,
        )

        fwd = fft_spec("cufft_r2c_radix", res,
                       flops=work.fft_flops / 2.0, nbytes=spectra_bytes,
                       transforms=work.forward_transforms,
                       efficiency=cal.efficiency,
                       load_key="theano_fft_load", store_key="theano_fft_store",
                       shared_key="theano-fft", divergence_key="theano-fft")
        inv = fft_spec("cufft_c2r_radix", res,
                       flops=work.fft_flops / 2.0, nbytes=spectra_bytes,
                       transforms=work.inverse_transforms,
                       efficiency=cal.efficiency, inverse=True,
                       load_key="theano_fft_load", store_key="theano_fft_store",
                       shared_key="theano-fft", divergence_key="theano-fft")
        cgemm = gemm_spec("GpuBatchedDot_complex", res, THEANO_FFT_CGEMM,
                          b, f, c, role=KernelRole.CGEMM,
                          shared_key="theano-fft",
                          load_key="theano_fft_load",
                          store_key="theano_fft_store",
                          divergence_key="theano-fft", complex_=True)
        cgemm = cgemm.scaled(flops=work.cgemm_flops,
                             gmem_read_bytes=spectra_bytes,
                             gmem_write_bytes=spectra_bytes / 3.0)
        trans = transpose_spec("GpuDimShuffle_transpose", res,
                               work.transpose_bytes / 2.0,
                               shared_key="theano-fft",
                               divergence_key="theano-fft",
                               timing_fraction=0.3, repeats=2)
        return [prep, fwd, trans, cgemm, inv]

    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        cal = FFT_CALIBRATION[self.name]
        work = iteration_workload(cal, config)
        b, i, f, k, _ = config.tuple5
        c = config.channels
        padded = (b * c + f * c) * work.transform_n ** 2 * ITEMSIZE
        return [
            ("frequency_spectra", work.spectrum_bytes),
            ("padded_operands", padded),
        ]

    def transfer_ops(self, config: ConvConfig):
        """Theano keeps graph inputs host-resident: beyond loading the
        batch it round-trips the activations every iteration."""
        from ..gpusim.transfer import TransferKind
        from .base import TransferOp

        ops = super().transfer_ops(config)
        b, i, f, _, _ = config.tuple5
        y_bytes = b * f * config.output_size ** 2 * ITEMSIZE
        ops.append(TransferOp(kind=TransferKind.D2H, bytes=y_bytes,
                              pinned=False, async_=False,
                              label="output copy-back"))
        return ops
