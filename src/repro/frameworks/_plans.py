"""Shared kernel-spec builders for the implementation adapters.

Each helper assembles a :class:`~repro.gpusim.kernels.KernelSpec` for
one kind of kernel (GEMM tile, im2col/col2im, pointwise, transpose,
FFT stage), wiring in the implementation's Table-II resources, access
patterns and calibration curves.  The seven adapters compose their
Fig. 4 kernel plans from these.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..gpusim.banks import SharedAccess
from ..gpusim.coalescing import WarpAccess
from ..gpusim.divergence import DivergenceProfile
from ..gpusim.kernels import KernelRole, KernelSpec, LaunchConfig, grid_for
from ..gpusim.memo import memoized
from .calibration import (
    ACCESS_PATTERNS,
    DIVERGENCE,
    ITEMSIZE,
    SHARED_PATTERNS,
    GemmCalibration,
    ResourceUsage,
)
from .gemm_model import gemm_efficiency, gemm_grid_blocks


@memoized(maxsize=32768)
def gemm_spec(name: str, res: ResourceUsage, cal: GemmCalibration,
              m: int, n: int, k: int, repeats: int = 1,
              role: KernelRole = KernelRole.GEMM,
              shared_key: str = "gemm",
              load_key: str = "gemm_load", store_key: str = "gemm_store",
              divergence_key: str = "default",
              complex_: bool = False) -> KernelSpec:
    """A tiled (m x k) @ (k x n) GEMM launch (8 real FLOPs per MAC when
    ``complex_``)."""
    flops_per_mac = 8 if complex_ else 2
    flops = float(flops_per_mac) * m * n * k
    eff = gemm_efficiency(cal, m, n, k)
    item = ITEMSIZE * (2 if complex_ else 1)
    read = float(m * k + k * n) * item
    write = float(m * n) * item
    grid = gemm_grid_blocks(cal, m, n)
    # Shared-memory staging traffic: every operand element passes
    # through the tile buffers once per K-panel.
    smem_traffic = read * 2.0
    return KernelSpec(
        name=name,
        role=role,
        flops=flops,
        gmem_read_bytes=read,
        gmem_write_bytes=write,
        launch=LaunchConfig(grid_blocks=grid, block_threads=res.block_threads),
        regs_per_thread=res.registers_per_thread,
        shared_per_block=res.shared_per_block,
        compute_efficiency=eff,
        load_pattern=ACCESS_PATTERNS[load_key],
        store_pattern=ACCESS_PATTERNS[store_key],
        shared_accesses=SHARED_PATTERNS[shared_key],
        divergence=DIVERGENCE[divergence_key],
        shared_traffic_bytes=smem_traffic,
        repeats=repeats,
        # GEMM tiles stream operands through L2/shared; the strided
        # *requests* (metric) are mostly cache-served.
        timing_bandwidth_fraction=0.7,
    )


@memoized(maxsize=32768)
def im2col_spec(name: str, res: ResourceUsage, col_bytes: float,
                image_bytes: float, repeats: int = 1) -> KernelSpec:
    """One im2col launch: gather the receptive fields of one image into
    the column buffer.

    The *requested* load pattern is the badly-strided gather (that is
    what drags the unrolling implementations' gld efficiency down to
    11-16 % in Fig. 6) but the texture/L1 path serves most replays, so
    the DRAM-timing fraction stays moderate.
    """
    threads = res.block_threads
    return KernelSpec(
        name=name,
        role=KernelRole.IM2COL,
        flops=0.0,
        # DRAM sees each input byte roughly once (the k^2-fold re-reads
        # hit the texture/L1 path) and the column buffer written once;
        # the badly-strided *request* pattern still sets the metric.
        gmem_read_bytes=image_bytes,
        gmem_write_bytes=col_bytes,
        launch=LaunchConfig(grid_blocks=grid_for(int(col_bytes / ITEMSIZE), threads),
                            block_threads=threads),
        regs_per_thread=max(res.registers_per_thread // 2, 16),
        shared_per_block=0,
        compute_efficiency=0.5,
        load_pattern=ACCESS_PATTERNS["im2col_load"],
        store_pattern=ACCESS_PATTERNS["im2col_store"],
        divergence=DIVERGENCE["default"],
        repeats=repeats,
        timing_bandwidth_fraction=0.85,
    )


@memoized(maxsize=32768)
def col2im_spec(name: str, res: ResourceUsage, col_bytes: float,
                image_bytes: float, repeats: int = 1) -> KernelSpec:
    """Adjoint scatter of the column gradient back into image layout."""
    threads = res.block_threads
    return KernelSpec(
        name=name,
        role=KernelRole.COL2IM,
        flops=col_bytes / ITEMSIZE,       # one add per column element
        gmem_read_bytes=col_bytes,
        gmem_write_bytes=image_bytes,     # folded accumulation lands once
        launch=LaunchConfig(grid_blocks=grid_for(int(col_bytes / ITEMSIZE), threads),
                            block_threads=threads),
        regs_per_thread=max(res.registers_per_thread // 2, 16),
        shared_per_block=0,
        compute_efficiency=0.3,
        load_pattern=ACCESS_PATTERNS["col2im_load"],
        store_pattern=ACCESS_PATTERNS["col2im_store"],
        divergence=DIVERGENCE["default"],
        repeats=repeats,
        timing_bandwidth_fraction=0.8,
    )


@memoized(maxsize=32768)
def pointwise_spec(name: str, res: ResourceUsage, nbytes: float,
                   role: KernelRole = KernelRole.POINTWISE,
                   flops_per_element: float = 1.0,
                   repeats: int = 1) -> KernelSpec:
    """Streaming elementwise kernel (bias add, activation, scaling)."""
    elements = nbytes / ITEMSIZE
    threads = min(res.block_threads, 256)
    return KernelSpec(
        name=name,
        role=role,
        flops=elements * flops_per_element,
        gmem_read_bytes=nbytes,
        gmem_write_bytes=nbytes,
        launch=LaunchConfig(grid_blocks=grid_for(int(elements), threads * 4),
                            block_threads=threads),
        regs_per_thread=24,
        shared_per_block=0,
        compute_efficiency=0.5,
        load_pattern=ACCESS_PATTERNS["stream_load"],
        store_pattern=ACCESS_PATTERNS["stream_store"],
        divergence=DIVERGENCE["default"],
        repeats=repeats,
    )


@memoized(maxsize=32768)
def transpose_spec(name: str, res: ResourceUsage, nbytes: float,
                   shared_key: str = "gemm",
                   divergence_key: str = "default",
                   timing_fraction: float = 0.7,
                   repeats: int = 1) -> KernelSpec:
    """Layout shuffle: read + write every element once, staged through
    shared-memory tiles."""
    threads = res.block_threads
    return KernelSpec(
        name=name,
        role=KernelRole.TRANSPOSE,
        flops=0.0,
        gmem_read_bytes=nbytes,
        gmem_write_bytes=nbytes,
        launch=LaunchConfig(grid_blocks=grid_for(int(nbytes / ITEMSIZE), threads),
                            block_threads=threads),
        regs_per_thread=max(res.registers_per_thread // 2, 8),
        # Transpose tiles only need a small staging buffer, so they
        # run at higher occupancy than the implementation's main
        # kernels.
        shared_per_block=min(res.shared_per_block, 4096),
        compute_efficiency=0.5,
        load_pattern=ACCESS_PATTERNS["stream_load"],
        store_pattern=ACCESS_PATTERNS["stream_store"],
        shared_accesses=SHARED_PATTERNS[shared_key],
        divergence=DIVERGENCE[divergence_key],
        shared_traffic_bytes=nbytes * 2.0,
        repeats=repeats,
        timing_bandwidth_fraction=timing_fraction,
    )


@memoized(maxsize=32768)
def fft_spec(name: str, res: ResourceUsage, flops: float, nbytes: float,
             transforms: int, efficiency: float,
             inverse: bool = False,
             load_key: str = "fbfft_load", store_key: str = "fbfft_store",
             shared_key: str = "fbfft",
             divergence_key: str = "default") -> KernelSpec:
    """A batch of 2-D FFT butterflies (forward or inverse)."""
    return KernelSpec(
        name=name,
        role=KernelRole.FFT_INVERSE if inverse else KernelRole.FFT,
        flops=flops,
        gmem_read_bytes=nbytes,
        gmem_write_bytes=nbytes,
        launch=LaunchConfig(grid_blocks=max(transforms, 1),
                            block_threads=res.block_threads),
        regs_per_thread=res.registers_per_thread,
        shared_per_block=res.shared_per_block,
        compute_efficiency=efficiency,
        load_pattern=ACCESS_PATTERNS[load_key],
        store_pattern=ACCESS_PATTERNS[store_key],
        shared_accesses=SHARED_PATTERNS[shared_key],
        divergence=DIVERGENCE[divergence_key],
        shared_traffic_bytes=nbytes,
    )
