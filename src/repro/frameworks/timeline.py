"""Discrete-event execution of iteration plans on CUDA-style streams.

``ConvImplementation.profile_iteration`` charges transfers with a
closed-form overlap formula.  This module cross-checks that formula by
*simulating* several training iterations on a two-stream timeline —
kernels serialised on the compute stream, copies on the copy engine,
prefetching implementations issuing iteration *i+1*'s input copy while
iteration *i* computes, synchronous implementations blocking compute
on the copy event — and measuring the steady-state iteration time that
emerges.

``tests/frameworks/test_timeline.py`` asserts the two models agree,
which is what licenses the cheap formula everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import ConvConfig
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.profiler import Profiler
from ..gpusim.stream import Event, Timeline
from ..gpusim.transfer import TransferEngine
from .base import ConvImplementation


@dataclass(frozen=True)
class TimelineProfile:
    """Steady-state behaviour measured from the event simulation."""

    implementation: str
    config: ConvConfig
    timeline: Timeline
    iterations: int
    #: Wall time of the whole simulated run.
    makespan_s: float
    #: Steady-state time per iteration (excludes the pipeline fill).
    iteration_time_s: float
    #: Compute-stream busy time per iteration.
    compute_time_s: float

    @property
    def exposed_transfer_s(self) -> float:
        """Per-iteration time not covered by kernel execution."""
        return max(self.iteration_time_s - self.compute_time_s, 0.0)

    @property
    def transfer_fraction(self) -> float:
        if self.iteration_time_s <= 0:
            return 0.0
        return self.exposed_transfer_s / self.iteration_time_s


def iteration_timeline(impl: ConvImplementation, config: ConvConfig,
                       iterations: int = 4,
                       device: DeviceSpec = K40C) -> TimelineProfile:
    """Simulate ``iterations`` training iterations on two streams."""
    if iterations < 2:
        raise ValueError(
            f"need >= 2 iterations for a steady state, got {iterations}"
        )
    impl.check_config(config)

    # Time the kernels once (they repeat identically per iteration).
    prof = Profiler(device)
    kernel_times = [prof.launch(spec).time_s
                    for spec in impl.kernel_plan(config)]
    engine = TransferEngine(device)
    ops = [(op, engine.copy_time(op.bytes, pinned=op.pinned,
                                 chunks=op.chunks))
           for op in impl.transfer_ops(config)]

    tl = Timeline()
    compute = tl.stream("compute")
    copy = tl.stream("copy")

    iter_end_times: List[float] = []
    # Async prefetchers issue the first copy before compute starts.
    prefetch_ready: Event = Event(0.0)
    for op, t in ops:
        if op.async_:
            prefetch_ready = copy.enqueue(t, f"{op.label} (prefetch 0)")

    for it in range(iterations):
        # Synchronous copies of this iteration block the compute
        # stream; asynchronous ones were prefetched during the
        # previous iteration.
        gate = prefetch_ready
        for op, t in ops:
            if not op.async_:
                gate = copy.enqueue(t, f"{op.label} (iter {it})",
                                    not_before=compute.front)
        compute.wait(gate)
        end: Event = Event(compute.front)
        for j, kt in enumerate(kernel_times):
            end = compute.enqueue(kt, f"kernel{j} (iter {it})")
        # Prefetch the next iteration's async copies during compute.
        for op, t in ops:
            if op.async_:
                prefetch_ready = copy.enqueue(
                    t, f"{op.label} (prefetch {it + 1})")
        iter_end_times.append(end.time)

    # Steady state: difference of the last two iteration boundaries.
    steady = iter_end_times[-1] - iter_end_times[-2]
    compute_per_iter = sum(kernel_times)
    return TimelineProfile(
        implementation=impl.paper_name,
        config=config,
        timeline=tl,
        iterations=iterations,
        makespan_s=tl.makespan,
        iteration_time_s=steady,
        compute_time_s=compute_per_iter,
    )
