"""The seven GPU convolution implementations the paper benchmarks.

Each adapter couples a numerically exact NumPy strategy with an
analytic performance model (kernel plan, memory plan, transfer plan)
expressed against the :mod:`repro.gpusim` device model.  See
:mod:`repro.frameworks.base` for the interface and
:mod:`repro.frameworks.calibration` for every fitted constant.
"""

from .base import ConvImplementation, IterationProfile, Strategy, TransferOp
from .cuda_convnet2 import CudaConvnet2
from .cudnn import CuDNN
from .fbfft import Fbfft
from .registry import all_implementations, get_implementation, implementation_map
from .theano_fft import TheanoFft
from .unrolling import Caffe, TheanoCorrMM, TorchCunn, UnrollingImplementation

__all__ = [
    "ConvImplementation",
    "IterationProfile",
    "Strategy",
    "TransferOp",
    "Caffe",
    "TorchCunn",
    "TheanoCorrMM",
    "TheanoFft",
    "CuDNN",
    "CudaConvnet2",
    "Fbfft",
    "UnrollingImplementation",
    "all_implementations",
    "get_implementation",
    "implementation_map",
]
