"""cuda-convnet2 adapter (Krizhevsky 2014, via the Torch wrapper).

Direct convolution in the CHWN layout: three hand-written kernel
families do all the work (Fig. 4(e)) —

* ``filterActs_YxX_color`` / ``_sparse2`` — forward;
* ``img_acts_color`` — gradient w.r.t. the input;
* ``conv_weight_acts_c_preload`` — gradient w.r.t. the filters.

Behaviour the paper reports, and how it arises here:

* **shape limits** (section IV-B): square inputs and kernels only,
  batch a multiple of 32, filters a multiple of 16 —
  ``check_config`` enforces exactly these;
* **batch-128 sweet spot** (Fig. 3(a)): the kernels are unrolled for
  128-image tiles; other multiples of 32 fall back to 32-image tiles
  with less register reuse (calibration's two efficiency levels);
* **lowest memory** (Fig. 5): direct computation needs no workspace
  and gradients reuse activation buffers;
* **low occupancy, high ILP** (Fig. 6, Table II): 116 registers/thread
  cap residency at ~17 warps/SM, yet performance stays competitive —
  the paper's "higher occupancy does not mean better performance".

Numerically the adapter routes through :mod:`repro.conv.direct` with a
genuine NCHW -> CHWN -> NCHW round-trip, like the Torch wrapper did.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import ConvConfig
from ..conv import direct
from ..gpusim.kernels import KernelRole, KernelSpec, LaunchConfig, grid_for
from ..tensor.layout import chwn_to_nchw, nchw_to_chwn
from ._plans import transpose_spec
from .base import ConvImplementation, Strategy
from .calibration import (ACCESS_PATTERNS, DIRECT_CALIBRATION, DIVERGENCE,
                          ITEMSIZE, SHARED_PATTERNS, TABLE2_RESOURCES)


class CudaConvnet2(ConvImplementation):
    """cuda-convnet2 with the convnet-benchmarks Torch wrapper."""

    name = "cuda-convnet2"
    paper_name = "cuda-convnet2"
    framework = "Torch"
    strategy = Strategy.DIRECT
    separate_gradient_buffers = False

    # -- shape constraints (section IV-B) ----------------------------------

    def check_config(self, config: ConvConfig) -> None:
        if config.batch % 32 != 0:
            self._reject(f"mini-batch must be a multiple of 32, got {config.batch}")
        if config.filters % 16 != 0:
            self._reject(f"filter count must be a multiple of 16, got {config.filters}")
        # Square inputs/kernels are structural in ConvConfig; the rule
        # is still enforced on raw tensors in the numeric entry points.

    # -- numerics -----------------------------------------------------------

    def _check_tensors(self, x: np.ndarray, w: np.ndarray) -> None:
        if x.shape[2] != x.shape[3]:
            self._reject(f"input images must be square, got {x.shape[2:]}" )
        if w.shape[2] != w.shape[3]:
            self._reject(f"kernels must be square, got {w.shape[2:]}" )
        if x.shape[0] % 32 != 0:
            self._reject(f"mini-batch must be a multiple of 32, got {x.shape[0]}")
        if w.shape[0] % 16 != 0:
            self._reject(f"filter count must be a multiple of 16, got {w.shape[0]}")

    def forward(self, x, w, bias=None, stride=1, padding=0):
        self._check_tensors(x, w)
        # Genuine layout round-trip: compute in CHWN order.
        x_chwn = nchw_to_chwn(x)
        y = direct.forward(chwn_to_nchw(x_chwn), w, bias, stride, padding)
        return chwn_to_nchw(nchw_to_chwn(y))

    def backward_input(self, dy, w, input_hw, stride=1, padding=0):
        if w.shape[2] != w.shape[3]:
            self._reject(f"kernels must be square, got {w.shape[2:]}" )
        return direct.backward_input(dy, w, input_hw, stride, padding)

    def backward_weights(self, dy, x, kernel_hw, stride=1, padding=0):
        self._check_tensors(x, np.empty((16, x.shape[1]) + tuple(kernel_hw)))
        return direct.backward_weights(dy, x, kernel_hw, stride, padding)

    # -- performance --------------------------------------------------------

    def _direct_spec(self, config: ConvConfig, name: str,
                     role: KernelRole) -> KernelSpec:
        res = TABLE2_RESOURCES[self.name]
        cal = DIRECT_CALIBRATION
        b, i, f, k, s = config.tuple5
        c = config.channels
        o = config.output_size
        flops = 2.0 * b * f * c * o * o * k * k

        # 128-image tiles when the batch allows it; otherwise 32-image
        # tiles with padding waste up to the next multiple of 32.
        if b % cal.batch_tile == 0:
            eff = cal.efficiency_b128
        else:
            eff = cal.efficiency_b32
        # Colour kernels (c <= 3) are the special *_color variants and
        # lose some channel-direction reuse.
        if c <= 3:
            eff *= 0.9
        # Small filters cannot amortise the per-tile prologue.
        ck2 = c * k * k
        eff *= ck2 / (ck2 + cal.work_half)

        x_bytes = float(b * c * i * i * ITEMSIZE)
        w_bytes = float(f * c * k * k * ITEMSIZE)
        y_bytes = float(b * f * o * o * ITEMSIZE)
        # One output tile per block: 4x8 pixels x 128 images.
        tiles = grid_for(f * o * o * b, 32 * 128)
        return KernelSpec(
            name=name,
            role=role,
            flops=flops,
            gmem_read_bytes=x_bytes + w_bytes,
            gmem_write_bytes=y_bytes,
            launch=LaunchConfig(grid_blocks=tiles,
                                block_threads=res.block_threads),
            regs_per_thread=res.registers_per_thread,
            shared_per_block=res.shared_per_block,
            compute_efficiency=eff,
            load_pattern=ACCESS_PATTERNS["ccn2_load"],
            store_pattern=ACCESS_PATTERNS["ccn2_store"],
            shared_accesses=SHARED_PATTERNS["ccn2"],
            divergence=DIVERGENCE["default"],
            shared_traffic_bytes=(x_bytes + w_bytes) * 1.5,
        )

    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        self.check_config(config)
        res = TABLE2_RESOURCES[self.name]
        b, i, f, k, s = config.tuple5
        c = config.channels
        suffix = "color" if c <= 3 else "sparse2"
        x_bytes = float(b * c * i * i * ITEMSIZE)
        y_bytes = float(b * f * config.output_size ** 2 * ITEMSIZE)
        return [
            # The Torch wrapper transposes NCHW -> CHWN on the way in
            # and back on the way out (small, Fig. 4(e) shows the three
            # conv kernels dominating).
            transpose_spec("nchw_to_chwn", res, x_bytes),
            self._direct_spec(config, f"filterActs_YxX_{suffix}",
                              KernelRole.DIRECT_CONV),
            self._direct_spec(config, "img_acts_" + suffix,
                              KernelRole.DIRECT_CONV),
            self._direct_spec(config, "conv_weight_acts_c_preload",
                              KernelRole.DIRECT_CONV),
            transpose_spec("chwn_to_nchw", res, y_bytes),
        ]

    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        """Direct convolution keeps no intermediate data (section V-B:
        "does not need temporary memory")."""
        return []
