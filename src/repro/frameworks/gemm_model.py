"""GEMM efficiency model.

Predicts the fraction of device peak a GEMM kernel sustains from the
problem shape ``(m, n, k)`` and a per-implementation
:class:`~repro.frameworks.calibration.GemmCalibration`:

* each dimension contributes a saturating factor ``d / (d + d_half)``
  — small matrices cannot fill the tiles or amortise the prologue;
* partial tiles waste compute: the kernel rounds ``m`` and ``n`` up to
  its tile size and the wasted fraction is real work the SMs still
  execute.

This is the standard first-order model of blocked GEMM performance
and produces the behaviour the paper relies on: cuBLAS-style kernels
approach their asymptote only for large matrices, which is exactly why
Theano-CorrMM (whose GEMM has the higher asymptote but larger
half-saturation M) overtakes cuDNN only beyond ~160 filters in
Fig. 3(c).
"""

from __future__ import annotations

import math

from .calibration import GemmCalibration


def _asymptote(cal: GemmCalibration, m: int) -> float:
    """Blend the base and large-M kernel-variant asymptotes."""
    if cal.asymptote_large is None or m <= cal.m_switch:
        return cal.asymptote
    if m >= cal.m_switch + 64:
        return cal.asymptote_large
    frac = (m - cal.m_switch) / 64.0
    return cal.asymptote + frac * (cal.asymptote_large - cal.asymptote)


def gemm_efficiency(cal: GemmCalibration, m: int, n: int, k: int) -> float:
    """Sustained fraction of device peak for an (m x k) @ (k x n) GEMM."""
    if min(m, n, k) <= 0:
        raise ValueError(f"gemm dims must be positive, got {(m, n, k)}")
    sat = (
        m / (m + cal.m_half)
        * n / (n + cal.n_half)
        * k / (k + cal.k_half)
    )
    asym = _asymptote(cal, m)
    waste = tile_quantisation(cal, m, n)
    eff = asym * sat / waste
    return max(min(eff, asym), 1e-3)


def _effective_tile(tile: int, dim: int) -> int:
    """Tile edge actually selected for a dimension: BLAS libraries fall
    back to narrower tile variants for skinny matrices rather than
    padding a 64-wide tile against a 12-row output."""
    t = tile
    while t > 16 and dim <= t // 2:
        t //= 2
    return t


def tile_quantisation(cal: GemmCalibration, m: int, n: int) -> float:
    """Work-inflation factor from rounding the output up to whole tiles
    (>= 1)."""
    if m <= 0 or n <= 0:
        raise ValueError(f"dims must be positive, got {(m, n)}")
    tm = _effective_tile(cal.tile_m, m)
    tn = _effective_tile(cal.tile_n, n)
    mm = math.ceil(m / tm) * tm
    nn = math.ceil(n / tn) * tn
    return (mm * nn) / (m * n)


def gemm_grid_blocks(cal: GemmCalibration, m: int, n: int,
                     min_blocks: int = 90) -> int:
    """Thread blocks launched: one per output tile, split along K when
    the output is too small to fill the device (split-K — what
    cuBLAS/cuDNN wgrad kernels do for skinny C matrices)."""
    if m <= 0 or n <= 0:
        raise ValueError(f"dims must be positive, got {(m, n)}")
    tm = _effective_tile(cal.tile_m, m)
    tn = _effective_tile(cal.tile_n, n)
    tiles = math.ceil(m / tm) * math.ceil(n / tn)
    if tiles >= min_blocks:
        return tiles
    splits = math.ceil(min_blocks / tiles)
    return tiles * splits
