"""cuDNN v3 adapter.

cuDNN performs the unrolling *implicitly*: receptive fields are
gathered into shared-memory tiles inside the GEMM kernel itself, so no
column buffer ever touches global memory (section V-A's analysis of
the ``wgrad_alg0_engine`` and ``cudnn_gemm`` hotspots).  Consequences
modelled here:

* one batched GEMM per pass over all images (N = b * o^2), far better
  tile utilisation than the per-image loops of Caffe/Torch/CorrMM;
* top kernels run almost entirely out of shared memory with wide
  8-byte accesses (shared efficiency >100 % in Fig. 6) and their
  global-access efficiency reads low because little global traffic is
  *requested* at all;
* a modest workspace (staging + precomputed indices) instead of the
  column buffer, but dedicated gradient buffers — net memory sits at
  the top of the unrolling family in Fig. 5.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import ConvConfig
from ..conv import unrolled
from ..gpusim.kernels import KernelRole, KernelSpec, LaunchConfig, grid_for
from ._plans import gemm_spec, pointwise_spec
from .base import ConvImplementation, Strategy
from .calibration import (ACCESS_PATTERNS, DIVERGENCE, GEMM_CALIBRATION,
                          ITEMSIZE, SHARED_PATTERNS, TABLE2_RESOURCES)


class CuDNN(ConvImplementation):
    """cuDNN v3 (evaluated inside Caffe, as in the paper)."""

    name = "cudnn"
    paper_name = "cuDNN"
    framework = "Caffe"
    strategy = Strategy.UNROLLING
    separate_gradient_buffers = True

    # -- numerics: same mathematics as explicit unrolling ---------------

    def forward(self, x, w, bias=None, stride=1, padding=0):
        return unrolled.forward(x, w, bias, stride, padding)

    def backward_input(self, dy, w, input_hw, stride=1, padding=0):
        return unrolled.backward_input(dy, w, input_hw, stride, padding)

    def backward_weights(self, dy, x, kernel_hw, stride=1, padding=0):
        return unrolled.backward_weights(dy, x, kernel_hw, stride, padding)

    # -- performance --------------------------------------------------------

    def _implicit_gemm_spec(self, config: ConvConfig, name: str,
                            m: int, n: int, k: int,
                            role: KernelRole = KernelRole.GEMM) -> KernelSpec:
        res = TABLE2_RESOURCES[self.name]
        cal = GEMM_CALIBRATION[self.name]
        spec = gemm_spec(name, res, cal, m, n, k, role=role,
                         shared_key="cudnn", load_key="cudnn_load",
                         store_key="cudnn_store")
        # Implicit unrolling: global traffic is just the real tensors,
        # not the virtual column matrix.
        x_bytes = float(config.batch * config.channels
                        * config.input_size ** 2 * ITEMSIZE)
        w_bytes = float(config.weight_shape[0] * config.weight_shape[1]
                        * config.kernel_size ** 2 * ITEMSIZE)
        y_bytes = float(config.batch * config.filters
                        * config.output_size ** 2 * ITEMSIZE)
        return spec.scaled(gmem_read_bytes=x_bytes + w_bytes,
                           gmem_write_bytes=y_bytes)

    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        self.check_config(config)
        res = TABLE2_RESOURCES[self.name]
        b = config.batch
        f = config.filters
        ck2 = config.channels * config.kernel_size ** 2
        o2 = config.output_size ** 2
        y_bytes = float(b * f * o2 * ITEMSIZE)

        # Small index-precomputation kernels run on global memory with
        # poor patterns — they are what pulls cuDNN's *aggregate* gld
        # efficiency down in Fig. 6 even though the GEMM kernels barely
        # touch global memory.
        precompute = KernelSpec(
            name="cudnn_precomputed_convolve_setup",
            role=KernelRole.DATA_PREP,
            flops=0.0,
            gmem_read_bytes=float(b * config.channels
                                  * config.input_size ** 2 * ITEMSIZE) * 0.15,
            gmem_write_bytes=float(o2 * ck2) * 0.05,
            launch=LaunchConfig(grid_blocks=grid_for(o2, 256), block_threads=256),
            regs_per_thread=32,
            shared_per_block=0,
            compute_efficiency=0.3,
            load_pattern=ACCESS_PATTERNS["im2col_load"],
            store_pattern=ACCESS_PATTERNS["im2col_store"],
            divergence=DIVERGENCE["default"],
            timing_bandwidth_fraction=0.5,
        )

        return [
            precompute,
            # forward: one implicit GEMM over the whole batch.
            self._implicit_gemm_spec(config, "cudnn_gemm_fwd", f, b * o2, ck2),
            pointwise_spec("cudnn_add_bias", res, y_bytes),
            # backward input.
            self._implicit_gemm_spec(config, "cudnn_gemm_bgrad", ck2, b * o2, f),
            # backward weights: the wgrad_alg0_engine of Fig. 4(d).
            self._implicit_gemm_spec(config, "wgrad_alg0_engine",
                                     f, ck2, b * o2),
        ]

    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        """IMPLICIT_PRECOMP_GEMM workspace: precomputed offsets plus a
        tile-staging area — a slice of the virtual column matrix, far
        smaller than the explicit buffer but not free (cuDNN "consumes
        more memory than other unrolling-based implementations to
        achieve a better performance", section V-B)."""
        ck2 = config.channels * config.kernel_size ** 2
        o2 = config.output_size ** 2
        indices = o2 * ck2 // 8
        staging = ck2 * o2 * ITEMSIZE  # one image worth of columns
        return [("cudnn_workspace", indices + 2 * staging)]
