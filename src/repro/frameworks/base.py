"""Framework-implementation interface.

Each of the seven implementations the paper benchmarks is modelled as a
:class:`ConvImplementation` with three faces:

* **numerics** — ``forward`` / ``backward_input`` / ``backward_weights``
  delegate to the matching strategy in :mod:`repro.conv` (with the
  implementation's native tensor layout round-trips), so every adapter
  computes real, reference-checked convolutions;
* **shape constraints** — ``check_config`` raises
  :class:`~repro.errors.UnsupportedConfigError` exactly where section
  IV-B reports a restriction (cuda-convnet2's square/multiple rules,
  stride 1 for the FFT pair);
* **performance** — ``kernel_plan`` emits the implementation's kernel
  launches (named as in Fig. 4) for one training iteration,
  ``memory_plan`` its peak-resident device buffers (Fig. 5), and
  ``transfer_ops`` its host<->device traffic (Fig. 7).  The
  :mod:`repro.gpusim` substrate turns those into runtimes, metrics and
  footprints.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ConvConfig
from ..errors import DeviceOOMError, UnsupportedConfigError
from ..gpusim.allocator import ALLOC_GRANULARITY
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.kernels import KernelSpec
from ..gpusim.profiler import Profiler
from ..gpusim.transfer import TransferKind, exposed_transfer_time
from .calibration import CONTEXT_BYTES, ITEMSIZE, TABLE2_RESOURCES


class Strategy(Enum):
    """The three convolution strategies of section II-B."""

    DIRECT = "direct"
    UNROLLING = "unrolling"
    FFT = "fft"


@dataclass(frozen=True)
class TransferOp:
    """One host<->device copy per training iteration."""

    kind: TransferKind
    bytes: int
    pinned: bool
    async_: bool
    chunks: int = 1
    label: str = ""


@dataclass(frozen=True)
class IterationProfile:
    """Simulated cost of one training iteration (fwd + both bwd)."""

    implementation: str
    config: ConvConfig
    profiler: Profiler
    gpu_time_s: float
    transfer_time_s: float       # raw copy time
    exposed_transfer_s: float    # the part that extends the iteration
    total_time_s: float

    @property
    def transfer_fraction(self) -> float:
        """Share of iteration time spent (visibly) on transfers — the
        quantity of Fig. 7."""
        if self.total_time_s <= 0:
            return 0.0
        return self.exposed_transfer_s / self.total_time_s


class ConvImplementation(abc.ABC):
    """Base class for the seven benchmarked implementations."""

    #: Registry key / short name (e.g. ``"cudnn"``).
    name: str = ""
    #: Name as printed in the paper's figures.
    paper_name: str = ""
    #: Hosting framework in the paper's test setup.
    framework: str = ""
    strategy: Strategy

    #: Gradients get dedicated device buffers (Caffe-style blobs with
    #: separate diff storage) rather than reusing activation buffers
    #: in place (Torch / cuda-convnet2).  Drives the ~2x memory split
    #: seen in Fig. 5.
    separate_gradient_buffers: bool = True

    def __init__(self) -> None:
        if not self.name:
            raise TypeError("ConvImplementation subclasses must set `name`")
        res = TABLE2_RESOURCES[self.name]
        self.registers_per_thread = res.registers_per_thread
        self.shared_per_block = res.shared_per_block
        self.block_threads = res.block_threads

    # ------------------------------------------------------------------
    # shape constraints
    # ------------------------------------------------------------------

    def check_config(self, config: ConvConfig) -> None:
        """Raise :class:`UnsupportedConfigError` if this implementation
        cannot run ``config``.  Default: anything goes (the unrolling
        implementations "support any possible shapes", section IV-B)."""

    def supports(self, config: ConvConfig) -> bool:
        try:
            self.check_config(config)
            return True
        except UnsupportedConfigError:
            return False

    def _reject(self, reason: str) -> None:
        raise UnsupportedConfigError(self.paper_name or self.name, reason)

    # ------------------------------------------------------------------
    # numerics
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def forward(self, x: np.ndarray, w: np.ndarray, bias=None,
                stride: int = 1, padding: int = 0) -> np.ndarray:
        """Numerically exact forward convolution."""

    @abc.abstractmethod
    def backward_input(self, dy: np.ndarray, w: np.ndarray, input_hw,
                       stride: int = 1, padding: int = 0) -> np.ndarray:
        """Gradient w.r.t. the input."""

    @abc.abstractmethod
    def backward_weights(self, dy: np.ndarray, x: np.ndarray, kernel_hw,
                         stride: int = 1, padding: int = 0) -> np.ndarray:
        """Gradient w.r.t. the filters."""

    # ------------------------------------------------------------------
    # performance model
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        """Kernel launches of one training iteration, Fig. 4 naming."""

    @abc.abstractmethod
    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        """Strategy-specific device workspaces live at the peak
        (unrolled column buffers, frequency-domain spectra, ...)."""

    def memory_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        """All device buffers live at the memory peak of one training
        iteration: activations, parameters, gradients (per the buffer
        policy) and the strategy workspaces."""
        self.check_config(config)
        b, i, f, k, s = config.tuple5
        c = config.channels
        o = config.output_size
        x_bytes = b * c * i * i * ITEMSIZE
        w_bytes = f * c * k * k * ITEMSIZE
        y_bytes = b * f * o * o * ITEMSIZE
        plan = [
            ("input", x_bytes),
            ("weights", w_bytes),
            ("bias", f * ITEMSIZE),
            ("output", y_bytes),
            ("weight_grad", w_bytes),
            ("bias_grad", f * ITEMSIZE),
        ]
        if self.separate_gradient_buffers:
            plan.append(("input_grad", x_bytes))
            plan.append(("output_grad", y_bytes))
        plan.extend(self.workspace_plan(config))
        return plan

    def peak_memory_bytes(self, config: ConvConfig,
                          device: DeviceSpec = K40C) -> int:
        """Peak device footprint (the Fig. 5 / nvidia-smi quantity).

        Replays the memory plan with the allocator's exact arithmetic
        (granularity rounding, baseline context, OOM check per buffer)
        inlined: the plan is allocate-only, so the peak is the running
        total and the full :class:`DeviceAllocator` bookkeeping —
        buffer handles, live tables — is dead weight on this hot path.
        ``DeviceOOMError`` carries the same fields either way.
        """
        in_use = CONTEXT_BYTES
        capacity = device.global_memory_bytes
        for _, size in self.memory_plan(config):
            if size > 0:
                rounded = -(-size // ALLOC_GRANULARITY) * ALLOC_GRANULARITY
                if in_use + rounded > capacity:
                    raise DeviceOOMError(rounded, in_use, capacity)
                in_use += rounded
        return in_use

    def transfer_ops(self, config: ConvConfig) -> List[TransferOp]:
        """Host<->device copies of one training iteration.  Default:
        load the input batch with the implementation's transfer
        behaviour; subclasses extend."""
        self.check_config(config)
        return [self._input_load_op(config)]

    def _input_load_op(self, config: ConvConfig) -> TransferOp:
        from .calibration import TRANSFER_BEHAVIOUR

        beh = TRANSFER_BEHAVIOUR[self.name]
        b, i, _, _, _ = config.tuple5
        nbytes = b * config.channels * i * i * ITEMSIZE
        return TransferOp(kind=TransferKind.H2D, bytes=nbytes,
                          pinned=beh.pinned, async_=beh.async_,
                          chunks=beh.chunks, label="input batch")

    # ------------------------------------------------------------------
    # simulation driver
    # ------------------------------------------------------------------

    def profile_iteration(self, config: ConvConfig,
                          device: DeviceSpec = K40C) -> IterationProfile:
        """Run one training iteration through the device model."""
        self.check_config(config)
        prof = Profiler(device)
        with prof.session():
            prof.launch_all(self.kernel_plan(config))
            for op in self.transfer_ops(config):
                prof.record_transfer(op.kind, op.bytes, pinned=op.pinned,
                                     async_=op.async_, chunks=op.chunks)
        gpu = prof.gpu_time()
        sync_t = prof.transfers.synchronous_time()
        async_t = prof.transfers.asynchronous_time()
        exposed = exposed_transfer_time(sync_t, async_t, gpu)
        return IterationProfile(
            implementation=self.name,
            config=config,
            profiler=prof,
            gpu_time_s=gpu,
            transfer_time_s=prof.transfers.total_time,
            exposed_transfer_s=exposed,
            total_time_s=gpu + exposed,
        )

    def time_iteration(self, config: ConvConfig,
                       device: DeviceSpec = K40C) -> float:
        """Total simulated time of one training iteration, seconds."""
        return self.profile_iteration(config, device).total_time_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.paper_name or self.name}>"
