"""fbfft adapter (Vasilache et al., ICLR 2015).

Facebook's FFT convolution, the overall fastest implementation in the
paper's sweeps.  The Fig. 4(f) pipeline is modelled kernel by kernel:

1. ``decimateInFrequency`` — DIF FFTs of inputs and filters
   (spatial -> Fourier);
2. ``transpose`` — BDHW -> HWBD so frequencies are contiguous for the
   batched complex GEMM;
3. ``Cgemm`` — per-frequency (b x c) @ (c x f) complex products;
4. ``transpose`` back and ``decimateInFrequencyInverse``.

Transform sizes round up to powers of two (the memory fluctuations of
Fig. 5(b)), and all frequency-domain buffer sets for the three passes
stay resident — the 1.6-10.9 GB appetite of Fig. 5.  Stride must be 1
(Fig. 3(e) plots fbfft as a single point).
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import ConvConfig
from ..conv import fftconv
from ..gpusim.kernels import KernelRole, KernelSpec, LaunchConfig
from ._plans import fft_spec, gemm_spec, transpose_spec
from .base import ConvImplementation, Strategy
from .calibration import (COMPLEX_ITEMSIZE, FBFFT_CGEMM, FFT_CALIBRATION,
                          TABLE2_RESOURCES)
from .fft_model import iteration_workload

#: fbfft pre-allocates a buffer pool for spectra and cuFFT-free plans;
#: this floor reproduces the ~1.6 GB minimum footprint of Fig. 5.
_BUFFER_POOL_BYTES = 1200 * 2**20


class Fbfft(ConvImplementation):
    """fbfft inside Torch, as benchmarked by the paper."""

    name = "fbfft"
    paper_name = "fbfft"
    framework = "Torch"
    strategy = Strategy.FFT
    separate_gradient_buffers = False

    def check_config(self, config: ConvConfig) -> None:
        if config.stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {config.stride}")

    # -- numerics -----------------------------------------------------------

    def forward(self, x, w, bias=None, stride=1, padding=0):
        if stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {stride}")
        return fftconv.forward(x, w, bias, stride, padding, pow2=True)

    def backward_input(self, dy, w, input_hw, stride=1, padding=0):
        if stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {stride}")
        return fftconv.backward_input(dy, w, input_hw, stride, padding, pow2=True)

    def backward_weights(self, dy, x, kernel_hw, stride=1, padding=0):
        if stride != 1:
            self._reject(f"FFT convolution requires stride 1, got {stride}")
        return fftconv.backward_weights(dy, x, kernel_hw, stride, padding, pow2=True)

    # -- performance --------------------------------------------------------

    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        self.check_config(config)
        res = TABLE2_RESOURCES[self.name]
        cal = FFT_CALIBRATION[self.name]
        work = iteration_workload(cal, config)
        b, _, f, _, _ = config.tuple5
        c = config.channels

        spectra_bytes = float(work.spectrum_bytes) / cal.buffer_residency

        fwd = fft_spec("decimateInFrequency", res,
                       flops=work.fft_flops / 2.0,
                       nbytes=spectra_bytes,
                       transforms=work.forward_transforms,
                       efficiency=cal.efficiency)
        inv = fft_spec("decimateInFrequencyInverse", res,
                       flops=work.fft_flops / 2.0,
                       nbytes=spectra_bytes,
                       transforms=work.inverse_transforms,
                       efficiency=cal.efficiency, inverse=True)
        # Per-frequency complex GEMM, batched over all bins and the
        # three passes; modelled as one launch with the per-bin shape.
        cgemm = gemm_spec("Cgemm", res, FBFFT_CGEMM, b, f, c,
                          role=KernelRole.CGEMM,
                          shared_key="fbfft", load_key="fbfft_load",
                          store_key="fbfft_store", complex_=True)
        cgemm = cgemm.scaled(flops=work.cgemm_flops,
                             gmem_read_bytes=spectra_bytes,
                             gmem_write_bytes=spectra_bytes / 3.0)
        # fbfft fuses half the layout shuffling into the FFT kernels'
        # shared-memory stages; only the BDHW <-> HWBD halves around
        # the CGEMM remain as standalone transposes.
        trans = transpose_spec("transpose", res, work.transpose_bytes / 4.0,
                               shared_key="fbfft", timing_fraction=0.85,
                               repeats=2)
        # Twiddle-factor / bit-reversal table preparation: O(n^2) work
        # per transform plan, independent of batch content.  This is
        # the fixed cost that keeps small kernels on cuDNN's side of
        # the Fig. 3(d) crossover.
        n2 = float(work.transform_n ** 2)
        setup = KernelSpec(
            name="fbfft_plan_setup",
            role=KernelRole.OTHER,
            flops=n2 * (b + f) * 4.0,
            gmem_read_bytes=n2 * (b + f) * 6.0,
            gmem_write_bytes=n2 * (b + f) * 6.0,
            launch=LaunchConfig(grid_blocks=max((b + f) // 4, 1),
                                block_threads=res.block_threads),
            regs_per_thread=32,
            shared_per_block=0,
            compute_efficiency=0.3,
            timing_bandwidth_fraction=0.15,
        )
        return [setup, fwd, trans, cgemm, inv]

    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        cal = FFT_CALIBRATION[self.name]
        work = iteration_workload(cal, config)
        return [
            ("frequency_spectra", work.spectrum_bytes),
            ("buffer_pool", _BUFFER_POOL_BYTES),
        ]
