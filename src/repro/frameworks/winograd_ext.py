"""Extension: a Winograd implementation on the device model.

The paper closes by pointing researchers at "convolution optimization
on GPUs"; the optimisation that landed next (cuDNN v5, 2016) was
Lavin & Gray's Winograd minimal filtering.  This adapter projects that
future onto the paper's K40c testbed: numerics via
:mod:`repro.conv.winograd`, and a kernel plan whose transform-domain
GEMM carries 1/2.25 of the direct multiplications for 3x3 stride-1
layers.

It deliberately is **not** part of the paper's seven (the registry
keeps it under :data:`EXTENSION_IMPLEMENTATIONS`): every Fig. 3-7
reproduction stays faithful, and the what-if analysis lives in
``benchmarks/bench_winograd_whatif.py`` / the examples.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..config import ConvConfig
from ..conv import winograd
from ..conv.winograd import TILE_IN, TILE_OUT, forward_multiplies
from ..gpusim.kernels import KernelRole, KernelSpec, LaunchConfig, grid_for
from ._plans import gemm_spec, pointwise_spec
from .base import ConvImplementation, Strategy
from .calibration import (GEMM_CALIBRATION, ITEMSIZE, ResourceUsage,
                          TABLE2_RESOURCES)

#: Resource usage of cuDNN v5's winograd kernels (public: they are
#: register-heavy like all transform-domain kernels).  Registered
#: alongside Table II so the occupancy machinery applies unchanged.
WINOGRAD_RESOURCES = ResourceUsage(registers_per_thread=96,
                                   shared_per_block=12288,
                                   block_threads=256)
TABLE2_RESOURCES.setdefault("cudnn-winograd", WINOGRAD_RESOURCES)

# Transfer behaviour mirrors cuDNN's (pinned + prefetch, fully hidden).
from .calibration import TRANSFER_BEHAVIOUR  # noqa: E402

TRANSFER_BEHAVIOUR.setdefault("cudnn-winograd",
                              TRANSFER_BEHAVIOUR["cudnn"])


class CuDNNWinograd(ConvImplementation):
    """Hypothetical cuDNN-v5-style Winograd F(2x2, 3x3) path."""

    name = "cudnn-winograd"
    paper_name = "cuDNN-Winograd (what-if)"
    framework = "Caffe"
    strategy = Strategy.UNROLLING  # transform-domain batched GEMM
    separate_gradient_buffers = True

    def check_config(self, config: ConvConfig) -> None:
        if config.kernel_size != 3:
            self._reject(
                f"Winograd F(2x2,3x3) requires 3x3 kernels, got "
                f"{config.kernel_size}")
        if config.stride != 1:
            self._reject(f"Winograd requires stride 1, got {config.stride}")

    # -- numerics -----------------------------------------------------------

    def forward(self, x, w, bias=None, stride=1, padding=0):
        return winograd.forward(x, w, bias, stride, padding)

    def backward_input(self, dy, w, input_hw, stride=1, padding=0):
        return winograd.backward_input(dy, w, input_hw, stride, padding)

    def backward_weights(self, dy, x, kernel_hw, stride=1, padding=0):
        return winograd.backward_weights(dy, x, kernel_hw, stride, padding)

    # -- performance --------------------------------------------------------

    def kernel_plan(self, config: ConvConfig) -> List[KernelSpec]:
        self.check_config(config)
        res = TABLE2_RESOURCES[self.name]
        cal = GEMM_CALIBRATION["cudnn"]
        b, i, f, k, _ = config.tuple5
        c = config.channels
        o = config.output_size
        tiles = math.ceil(o / TILE_OUT) ** 2

        x_bytes = float(b * c * i * i * ITEMSIZE)
        y_bytes = float(b * f * o * o * ITEMSIZE)
        # Transform-domain tensors: 16 values per tile and channel.
        v_bytes = float(b * c * tiles * TILE_IN * TILE_IN * ITEMSIZE)
        u_bytes = float(f * c * TILE_IN * TILE_IN * ITEMSIZE)
        m_bytes = float(b * f * tiles * TILE_IN * TILE_IN * ITEMSIZE)

        # Input/filter transforms: a handful of adds per element.
        in_transform = KernelSpec(
            name="winograd_input_transform",
            role=KernelRole.DATA_PREP,
            flops=v_bytes / ITEMSIZE * 8.0,
            gmem_read_bytes=x_bytes,
            gmem_write_bytes=v_bytes,
            launch=LaunchConfig(grid_for(int(v_bytes / ITEMSIZE), 256), 256),
            regs_per_thread=48,
            shared_per_block=4096,
            compute_efficiency=0.4,
            timing_bandwidth_fraction=0.8,
        )
        filter_transform = KernelSpec(
            name="winograd_filter_transform",
            role=KernelRole.DATA_PREP,
            flops=u_bytes / ITEMSIZE * 8.0,
            gmem_read_bytes=float(f * c * 9 * ITEMSIZE),
            gmem_write_bytes=u_bytes,
            launch=LaunchConfig(grid_for(max(f * c, 256), 256), 256),
            regs_per_thread=32,
            shared_per_block=0,
            compute_efficiency=0.3,
            timing_bandwidth_fraction=0.8,
        )
        # 16 independent batched GEMMs, one per transform-domain point:
        # (f x c) @ (c x b*tiles).  The multiply count is the 2.25x
        # reduction; a fused-multiply-add pipe cannot pair them, which
        # the per-element efficiency already reflects.
        per_pass_muls = forward_multiplies(b, c, f, o, o)
        gemm = gemm_spec("winograd_batched_gemm", res, cal,
                         m=f, n=b * tiles, k=c,
                         role=KernelRole.GEMM, shared_key="cudnn",
                         load_key="cudnn_load", store_key="cudnn_store")
        gemm = gemm.scaled(flops=3.0 * 2.0 * per_pass_muls,
                           gmem_read_bytes=(v_bytes + u_bytes) * 3.0,
                           gmem_write_bytes=m_bytes * 3.0)
        out_transform = KernelSpec(
            name="winograd_output_transform",
            role=KernelRole.POINTWISE,
            flops=m_bytes / ITEMSIZE * 6.0,
            gmem_read_bytes=m_bytes,
            gmem_write_bytes=y_bytes,
            launch=LaunchConfig(grid_for(int(m_bytes / ITEMSIZE), 256), 256),
            regs_per_thread=40,
            shared_per_block=4096,
            compute_efficiency=0.4,
            timing_bandwidth_fraction=0.8,
        )
        bias = pointwise_spec("winograd_add_bias", res, y_bytes)
        # Backward passes reuse the transforms (one extra input/output
        # transform pair each); modelled by the x3 on the GEMM plus one
        # more transform round.
        return [filter_transform, in_transform, gemm, out_transform, bias,
                in_transform.scaled(name="winograd_input_transform_bwd",
                                    repeats=2)]

    def workspace_plan(self, config: ConvConfig) -> List[Tuple[str, int]]:
        b, i, f, k, _ = config.tuple5
        c = config.channels
        tiles = math.ceil(config.output_size / TILE_OUT) ** 2
        per_point = TILE_IN * TILE_IN * ITEMSIZE
        return [
            ("winograd_V", b * c * tiles * per_point),
            ("winograd_U", f * c * per_point),
            ("winograd_M", b * f * tiles * per_point),
        ]


#: Extension adapters — intentionally not in the paper's registry.
EXTENSION_IMPLEMENTATIONS = (CuDNNWinograd,)
