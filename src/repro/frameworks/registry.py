"""Registry of the seven benchmarked implementations."""

from __future__ import annotations

from typing import Dict, List

from .base import ConvImplementation
from .cuda_convnet2 import CudaConvnet2
from .cudnn import CuDNN
from .fbfft import Fbfft
from .theano_fft import TheanoFft
from .unrolling import Caffe, TheanoCorrMM, TorchCunn

#: Construction order matches the paper's listing (section III-B).
IMPLEMENTATION_CLASSES = (
    Caffe,
    TorchCunn,
    TheanoCorrMM,
    TheanoFft,
    CuDNN,
    CudaConvnet2,
    Fbfft,
)


def all_implementations() -> List[ConvImplementation]:
    """Fresh instances of all seven implementations."""
    return [cls() for cls in IMPLEMENTATION_CLASSES]


def implementation_map() -> Dict[str, ConvImplementation]:
    """Name -> instance for all seven implementations."""
    return {impl.name: impl for impl in all_implementations()}


def get_implementation(name: str) -> ConvImplementation:
    """Look one implementation up by its registry name."""
    impls = implementation_map()
    try:
        return impls[name]
    except KeyError:
        raise KeyError(
            f"unknown implementation {name!r}; options: {sorted(impls)}"
        ) from None


#: Memoized instances for hot-path dispatch.  The adapters hold no
#: per-call state (numerics and plans are pure functions of the
#: config), so the serving scheduler shares one instance per class
#: instead of re-instantiating seven adapters per batch.
_SHARED: Dict[str, ConvImplementation] = {}


def shared_implementations() -> List[ConvImplementation]:
    """The seven implementations as shared singletons (paper order)."""
    if not _SHARED:
        for impl in all_implementations():
            _SHARED[impl.name] = impl
    return list(_SHARED.values())


#: name-or-paper-name -> shared instance; built once on first resolve
#: (the serving dispatcher resolves per batch, so this is hot).
_BY_EITHER: Dict[str, ConvImplementation] = {}


def resolve_implementation(name: str) -> ConvImplementation:
    """Shared-instance lookup by registry name *or* paper name.

    The advisor ranks by ``paper_name`` (``"cuDNN"``) while the
    registry keys by ``name`` (``"cudnn"``); dispatchers hold whichever
    string they were handed, so accept both.
    """
    impl = _BY_EITHER.get(name)
    if impl is not None:
        return impl
    shared_implementations()
    if not _BY_EITHER:
        # Registry names win a (hypothetical) collision with a paper
        # name, matching the original lookup precedence.
        _BY_EITHER.update(
            {impl.paper_name: impl for impl in _SHARED.values()})
        _BY_EITHER.update(_SHARED)
        impl = _BY_EITHER.get(name)
        if impl is not None:
            return impl
    options = sorted(_SHARED) + sorted(
        impl.paper_name for impl in _SHARED.values())
    raise KeyError(f"unknown implementation {name!r}; options: {options}")
