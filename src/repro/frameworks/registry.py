"""Registry of the seven benchmarked implementations."""

from __future__ import annotations

from typing import Dict, List

from .base import ConvImplementation
from .cuda_convnet2 import CudaConvnet2
from .cudnn import CuDNN
from .fbfft import Fbfft
from .theano_fft import TheanoFft
from .unrolling import Caffe, TheanoCorrMM, TorchCunn

#: Construction order matches the paper's listing (section III-B).
IMPLEMENTATION_CLASSES = (
    Caffe,
    TorchCunn,
    TheanoCorrMM,
    TheanoFft,
    CuDNN,
    CudaConvnet2,
    Fbfft,
)


def all_implementations() -> List[ConvImplementation]:
    """Fresh instances of all seven implementations."""
    return [cls() for cls in IMPLEMENTATION_CLASSES]


def implementation_map() -> Dict[str, ConvImplementation]:
    """Name -> instance for all seven implementations."""
    return {impl.name: impl for impl in all_implementations()}


def get_implementation(name: str) -> ConvImplementation:
    """Look one implementation up by its registry name."""
    impls = implementation_map()
    try:
        return impls[name]
    except KeyError:
        raise KeyError(
            f"unknown implementation {name!r}; options: {sorted(impls)}"
        ) from None
