"""Calibration constants for the seven implementation models.

This is the single place where per-implementation behavioural
parameters live.  Three kinds of numbers appear here:

1. **Measured facts quoted from the paper** — Table II register and
   shared-memory usage, shape restrictions, kernel names.
2. **Public micro-architecture knowledge** — e.g. cuBLAS sgemm
   sustains ~60-75 % of Kepler peak on large matrices; FFT kernels are
   memory-bound and sustain far less.
3. **Fitted constants** — efficiency asymptotes and saturation sizes
   tuned so the *shape* of every figure in the paper holds (who wins,
   crossover locations, fluctuation patterns).  Each fitted constant
   carries a comment naming the observation it reproduces.

Nothing outside this module hard-codes implementation-specific
magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..gpusim.banks import SharedAccess
from ..gpusim.coalescing import WarpAccess
from ..gpusim.divergence import DivergenceProfile, UNIFORM
from ..gpusim.memo import cached_instance_hash


@dataclass(frozen=True)
class ResourceUsage:
    """Paper Table II: per-thread registers and per-block shared memory."""

    registers_per_thread: int
    shared_per_block: int
    block_threads: int


# These singletons key every memoized spec-builder lookup.
cached_instance_hash(ResourceUsage)


#: Table II of the paper, plus the dominant block size of each
#: implementation's top kernels (block sizes are not in the paper; they
#: are the documented launch shapes of the respective kernels —
#: cuBLAS/cuDNN tiles use 256 threads, cuda-convnet2's filterActs uses
#: 32x12=384, Theano-fft's elementwise kernels 128).
TABLE2_RESOURCES = {
    "caffe": ResourceUsage(86, 8704, 256),           # 8.5 KB
    "cudnn": ResourceUsage(80, 8602, 256),           # 8.4 KB
    "torch-cunn": ResourceUsage(84, 8294, 256),      # 8.1 KB
    "theano-corrmm": ResourceUsage(72, 7168, 256),   # 7.0 KB
    "cuda-convnet2": ResourceUsage(116, 16384, 384), # 16 KB
    "fbfft": ResourceUsage(106, 10240, 256),         # 10 KB
    "theano-fft": ResourceUsage(2, 4608, 128),       # 4.5 KB
}


@dataclass(frozen=True)
class GemmCalibration:
    """Efficiency curve of an implementation's GEMM kernels.

    Sustained fraction of device peak =
    ``asymptote * m/(m+m_half) * n/(n+n_half) * k/(k+k_half)``,
    additionally derated by tile-quantisation waste.
    """

    asymptote: float
    m_half: float = 24.0
    n_half: float = 96.0
    k_half: float = 48.0
    tile_m: int = 64
    tile_n: int = 64
    #: cuBLAS switches to a higher-throughput kernel variant once M
    #: crosses ``m_switch`` (blended linearly over the next 64 rows);
    #: ``asymptote_large`` is that variant's asymptote.  ``None``
    #: disables the switch.
    asymptote_large: float = None
    m_switch: int = 128


cached_instance_hash(GemmCalibration)


#: GEMM efficiency per unrolling implementation.
#: cuBLAS sgemm on GK110 sustains ~65-75 % of peak for large shapes;
#: cuDNN v3's shared-memory tiled implicit GEMM is the best of the
#: unrolling family (Fig. 3/6), Theano-CorrMM's plain cuBLAS call
#: saturates slightly *higher* for very large M — the fitted
#: (asymptote, m_half) pair reproduces the f>160 crossover of
#: Fig. 3(c).
GEMM_CALIBRATION = {
    # k_half = 8 keeps efficiency nearly flat in the reduction
    # dimension: the K panels of unrolled convolutions (c*k^2) are
    # redundant data streamed through L2, so cuBLAS reaches its tiled
    # steady state quickly.  This preserves the ~k^2 runtime spread of
    # Fig. 3(d).
    "caffe": GemmCalibration(asymptote=0.68, k_half=8.0),
    "torch-cunn": GemmCalibration(asymptote=0.70, k_half=8.0),
    # The m_switch/asymptote_large pair models cuBLAS's large-M sgemm
    # variant and produces the f > ~160 crossover of Fig. 3(c).
    "theano-corrmm": GemmCalibration(asymptote=0.68, asymptote_large=0.94,
                                     m_switch=96, k_half=8.0),
    "cudnn": GemmCalibration(asymptote=0.72, m_half=14.0, n_half=24.0,
                             k_half=8.0),
}

#: fbfft's batched complex GEMM over frequency bins: many small
#: matrices → lower sustained fraction than one big sgemm, but the
#: per-bin reduction (over channels) amortises almost immediately
#: (k_half = 2) because all bins of one (b x c x f) slice share the
#: operand tiles.
FBFFT_CGEMM = GemmCalibration(asymptote=0.55, m_half=16.0, n_half=16.0, k_half=2.0,
                              tile_m=16, tile_n=16)
#: Theano-fft multiplies spectra with generic elementwise/batched-dot
#: kernels — far from peak (its 2 registers/thread in Table II show no
#: unrolling at all).
THEANO_FFT_CGEMM = GemmCalibration(asymptote=0.18, m_half=16.0, n_half=16.0,
                                   k_half=8.0, tile_m=16, tile_n=16)


@dataclass(frozen=True)
class FftCalibration:
    """FFT-kernel behaviour of an FFT-based implementation."""

    #: Sustained fraction of peak FLOPs inside the butterfly kernels.
    efficiency: float
    #: Pad transform sizes to powers of two (fbfft) or to
    #: next-fast-len composites (cuFFT / Theano-fft).
    pow2_padding: bool
    #: Multiplier on resident frequency-domain buffers: fbfft keeps the
    #: forward *and* backward frequency buffers alive across the whole
    #: iteration (fitted to the 1.6-10.9 GB range of Fig. 5);
    #: Theano-fft re-allocates per pass.
    buffer_residency: float
    #: Pad transforms to ``i + k - 1`` (Theano's generic full-mode
    #: padding — this is what makes its footprint fluctuate with kernel
    #: size in Fig. 5(d)) rather than the minimal ``n >= i``.
    full_pad: bool = False


FFT_CALIBRATION = {
    # decimateInFrequency is a hand-tuned register FFT: good but the
    # transpose passes are bandwidth-bound.
    "fbfft": FftCalibration(efficiency=0.50, pow2_padding=True,
                            buffer_residency=3.0),
    # Theano-fft composes cuFFT with generic Theano ops and host-side
    # data preparation (Fig. 4(g)): low sustained efficiency.
    "theano-fft": FftCalibration(efficiency=0.12, pow2_padding=False,
                                 buffer_residency=1.25, full_pad=True),
}


@dataclass(frozen=True)
class DirectCalibration:
    """cuda-convnet2's direct-kernel behaviour."""

    #: Sustained fraction of peak when the batch is a multiple of 128
    #: (its kernels are hand-unrolled for 128-image tiles, the
    #: optimisation note of section IV-B).
    efficiency_b128: float = 0.74
    #: Sustained fraction otherwise (32-image tiles, less reuse).
    efficiency_b32: float = 0.50
    #: Image tile width along the batch dimension.
    batch_tile: int = 128
    #: Inner-loop amortisation: efficiency scales with
    #: ``ck2 / (ck2 + work_half)`` where ``ck2 = c * k^2`` is the MACs
    #: per output element — small kernels cannot amortise the tile
    #: prologue, keeping cuda-convnet2 "very close" to cuDNN across all
    #: kernel sizes (Fig. 3(d)) instead of unrealistically fast at k=2.
    work_half: float = 32.0


DIRECT_CALIBRATION = DirectCalibration()


@dataclass(frozen=True)
class TransferBehaviour:
    """How an implementation moves training data each iteration."""

    pinned: bool
    async_: bool
    #: Number of chunks the input batch is split into (1 = one big copy).
    chunks: int = 1
    #: Extra host<->device round-trips of the activations per
    #: iteration beyond loading the input (Theano's host-resident
    #: graph execution).
    activation_roundtrips: float = 0.0
    #: Host-staging threshold: when the full-batch unrolled column
    #: buffer exceeds this many bytes the implementation stages it
    #: through host memory (fitted rule reproducing Theano-CorrMM's
    #: >60 % overhead at Conv2 only, Fig. 7).
    host_staging_threshold: int = 0


TRANSFER_BEHAVIOUR = {
    # Caffe uses a data-prefetching thread with pinned buffers
    # (section V-D analysis): fully hidden.
    "caffe": TransferBehaviour(pinned=True, async_=True),
    "cudnn": TransferBehaviour(pinned=True, async_=True),
    "fbfft": TransferBehaviour(pinned=True, async_=True),
    # Torch's default loader copies synchronously from pageable memory.
    "torch-cunn": TransferBehaviour(pinned=False, async_=False),
    # The Torch wrapper around cuda-convnet2 copies synchronously but
    # through a pinned staging buffer, in layout-sized chunks.
    "cuda-convnet2": TransferBehaviour(pinned=True, async_=False, chunks=4),
    # Theano keeps graph inputs host-resident: input + output gradient
    # round-trip every iteration.
    "theano-fft": TransferBehaviour(pinned=False, async_=False,
                                    activation_roundtrips=1.0),
    "theano-corrmm": TransferBehaviour(pinned=False, async_=False,
                                       activation_roundtrips=0.0,
                                       host_staging_threshold=3 * 2**30),
}


#: Global-memory access patterns of the characteristic kernels.
#: NOTE: patterns drive the nvprof-style gld/gst *metrics*; kernels
#: whose requests are served out of L1/L2/texture carry an explicit
#: ``timing_bandwidth_fraction`` so the metric and the DRAM time can
#: differ, as they do on real hardware.
ACCESS_PATTERNS = {
    # cuBLAS sgemm_nn loads walk the leading dimension of the unrolled
    # operand: strided requests (the 11-16 % gld efficiency Fig. 6
    # reports for Caffe/Torch-cunn/Theano-CorrMM) largely served by L2.
    "gemm_load": WarpAccess(word_bytes=4, stride_words=6),
    "gemm_store": WarpAccess(word_bytes=4, stride_words=2),
    # Plain streaming kernels (bias, activations, pooling): coalesced.
    "stream_load": WarpAccess(word_bytes=4, stride_words=1),
    "stream_store": WarpAccess(word_bytes=4, stride_words=1),
    # im2col gathers strided rows of the image: lanes hit addresses a
    # kernel-row apart → badly coalesced (the 11-16 % gld efficiency of
    # Caffe/Torch/CorrMM in Fig. 6).
    "im2col_load": WarpAccess(word_bytes=4, stride_words=8),
    "im2col_store": WarpAccess(word_bytes=4, stride_words=1),
    # col2im scatters with the same geometry.
    "col2im_load": WarpAccess(word_bytes=4, stride_words=1),
    "col2im_store": WarpAccess(word_bytes=4, stride_words=8),
    # cuDNN's top kernels compute out of shared memory and issue very
    # few global requests, which nvprof scores near 0 % (section
    # V-C-2: "the global access efficiency of those top kernels is
    # 0%"); a broadcast pattern reproduces that reading.
    "cudnn_load": WarpAccess(word_bytes=4, stride_words=0),
    "cudnn_store": WarpAccess(word_bytes=4, stride_words=2),
    # cuda-convnet2 streams images along the batch dimension (CHWN):
    # perfectly coalesced.
    "ccn2_load": WarpAccess(word_bytes=4, stride_words=1),
    "ccn2_store": WarpAccess(word_bytes=4, stride_words=1),
    # fbfft butterflies read bit-reversed strides.
    "fbfft_load": WarpAccess(word_bytes=8, stride_words=2),
    "fbfft_store": WarpAccess(word_bytes=8, stride_words=1),
    # Theano-fft elementwise kernels walk generic strided views.
    "theano_fft_load": WarpAccess(word_bytes=4, stride_words=4),
    "theano_fft_store": WarpAccess(word_bytes=4, stride_words=2),
}

#: Shared-memory access patterns (→ shared efficiency, Fig. 6).
SHARED_PATTERNS = {
    # cuBLAS tiles pad their leading dimension: conflict-free 4-byte.
    "gemm": (SharedAccess(stride_words=1, word_bytes=4),),
    # cuDNN uses 8-byte conflict-free accesses in 64-bit bank mode →
    # efficiency above 100 % (Fig. 6 shows >130 %).
    "cudnn": (SharedAccess(stride_words=1, word_bytes=8),
              SharedAccess(stride_words=1, word_bytes=4)),
    "ccn2": (SharedAccess(stride_words=1, word_bytes=4),),
    "fbfft": (SharedAccess(stride_words=1, word_bytes=8),
              SharedAccess(stride_words=3, word_bytes=4)),
    # Theano-fft's transpose tiles use an unpadded even stride → heavy
    # bank conflicts (the 8-20 % shared efficiency of Fig. 6).
    "theano-fft": (SharedAccess(stride_words=8, word_bytes=4),),
}

#: Divergence profiles (→ warp execution efficiency, Fig. 6: everyone
#: above 97 % except Theano-fft at 66-81 %).
DIVERGENCE = {
    "default": DivergenceProfile(divergent_fraction=0.01, branch_paths=2.0,
                                 tail_fraction=0.05, tail_active_lanes=24.0),
    "theano-fft": DivergenceProfile(divergent_fraction=0.35, branch_paths=2.2,
                                    tail_fraction=0.10, tail_active_lanes=20.0),
}

#: Baseline device-memory footprint before the workload allocates
#: anything (CUDA context + framework runtime), bytes.
CONTEXT_BYTES = 60 * 2**20

#: Bytes per element everywhere (the paper benchmarks fp32).
ITEMSIZE = 4
#: Bytes per complex frequency-domain element (complex64).
COMPLEX_ITEMSIZE = 8
