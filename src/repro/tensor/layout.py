"""Tensor memory layouts used by the benchmarked implementations.

The seven implementations do not agree on how a 4-D activation tensor
is laid out in device memory:

* Caffe / cuDNN / Torch-cunn / Theano use **NCHW** (batch outermost) —
  the layout this package uses as its canonical interchange format;
* cuda-convnet2 uses **CHWN** (batch innermost), which is what makes
  its direct kernels efficient for batch sizes that are multiples of
  128 (each warp streams over the batch dimension);
* fbfft works in **BDHW** and transposes to **HWBD** around its batched
  complex GEMM (the ``Transpose`` hotspot kernel of Fig. 4(f)).

The conversion helpers here are used by the framework adapters so that
running a layer through, say, the cuda-convnet2 implementation really
exercises a layout round-trip, exactly as the Torch wrapper the paper
used did.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

import numpy as np

from ..errors import ShapeError


class Layout(Enum):
    """Axis orderings for a 4-D activation tensor.

    The value of each member is the tuple of canonical-NCHW axis
    indices in the member's storage order, i.e. ``np.transpose(x,
    member.value)`` converts an NCHW array into that layout.
    """

    NCHW = (0, 1, 2, 3)
    CHWN = (1, 2, 3, 0)
    BDHW = (0, 1, 2, 3)  # fbfft's name for NCHW (batch, depth, h, w)
    HWBD = (2, 3, 0, 1)

    @property
    def axes_from_nchw(self) -> Tuple[int, int, int, int]:
        return self.value


def _check4d(x: np.ndarray) -> None:
    if x.ndim != 4:
        raise ShapeError(f"expected a 4-D tensor, got ndim={x.ndim}")


def convert(x: np.ndarray, src: Layout, dst: Layout, copy: bool = True) -> np.ndarray:
    """Convert ``x`` from layout ``src`` to layout ``dst``.

    With ``copy=True`` (default) the result is C-contiguous in the
    destination layout — this models the real data movement the
    transpose kernels perform.  With ``copy=False`` a view is returned
    when possible (useful in tests, cheap per the HPC guides' "views
    not copies" advice when only indexing semantics matter).
    """
    _check4d(x)
    if src == dst:
        return np.ascontiguousarray(x) if copy else x
    # Invert src's permutation to get back to NCHW, then apply dst's.
    inv = np.argsort(src.axes_from_nchw)
    perm = tuple(inv[list(dst.axes_from_nchw)])
    out = np.transpose(x, perm)
    return np.ascontiguousarray(out) if copy else out


def nchw_to_chwn(x: np.ndarray) -> np.ndarray:
    """NCHW -> CHWN (cuda-convnet2's native layout)."""
    return convert(x, Layout.NCHW, Layout.CHWN)


def chwn_to_nchw(x: np.ndarray) -> np.ndarray:
    """CHWN -> NCHW."""
    return convert(x, Layout.CHWN, Layout.NCHW)


def transpose_bytes(shape: Tuple[int, ...], itemsize: int = 4) -> int:
    """Device-memory traffic of one layout transpose of ``shape``:
    every element is read once and written once."""
    n = int(np.prod(shape))
    return 2 * n * itemsize
