"""Shape arithmetic for convolution and pooling layers.

These are the standard "valid with padding" formulas used by every
implementation the paper benchmarks.  They are factored out so the
numerical strategies, the kernel-plan builders and the NN layers all
agree on geometry by construction.
"""

from __future__ import annotations

from ..errors import ShapeError


def conv_output_size(input_size: int, kernel_size: int, stride: int = 1,
                     padding: int = 0) -> int:
    """Output spatial size of a convolution.

    ``o = floor((i + 2p - k) / s) + 1``

    Raises :class:`ShapeError` when the kernel does not fit in the
    padded input or any argument is non-positive where it must be.
    """
    if input_size <= 0:
        raise ShapeError(f"input_size must be positive, got {input_size}")
    if kernel_size <= 0:
        raise ShapeError(f"kernel_size must be positive, got {kernel_size}")
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    if padding < 0:
        raise ShapeError(f"padding must be non-negative, got {padding}")
    padded = input_size + 2 * padding
    if kernel_size > padded:
        raise ShapeError(
            f"kernel_size {kernel_size} exceeds padded input {padded}"
        )
    return (padded - kernel_size) // stride + 1


def conv_input_gradient_size(output_size: int, kernel_size: int, stride: int = 1,
                             padding: int = 0) -> int:
    """Input size recovered from an output size (used by backward-input
    passes and transposed convolutions):

    ``i = (o - 1) * s + k - 2p``
    """
    if output_size <= 0:
        raise ShapeError(f"output_size must be positive, got {output_size}")
    if kernel_size <= 0:
        raise ShapeError(f"kernel_size must be positive, got {kernel_size}")
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    if padding < 0:
        raise ShapeError(f"padding must be non-negative, got {padding}")
    size = (output_size - 1) * stride + kernel_size - 2 * padding
    if size <= 0:
        raise ShapeError(
            f"degenerate input size {size} from o={output_size}, "
            f"k={kernel_size}, s={stride}, p={padding}"
        )
    return size


def pool_output_size(input_size: int, window: int, stride: int = None,
                     padding: int = 0, ceil_mode: bool = True) -> int:
    """Output size of a pooling layer.

    Caffe-era pooling uses *ceil* division (so border windows that
    partially overlap the input still produce an output); modern
    libraries default to floor.  Both are supported; the CNN models in
    this package use ``ceil_mode=True`` to match the architectures the
    paper profiles (e.g. GoogLeNet's 3x3/2 pools).
    """
    if stride is None:
        stride = window
    if input_size <= 0:
        raise ShapeError(f"input_size must be positive, got {input_size}")
    if window <= 0:
        raise ShapeError(f"window must be positive, got {window}")
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    if padding < 0:
        raise ShapeError(f"padding must be non-negative, got {padding}")
    if window > input_size + 2 * padding:
        raise ShapeError(
            f"window {window} exceeds padded input {input_size + 2 * padding}"
        )
    span = input_size + 2 * padding - window
    if ceil_mode:
        out = -(-span // stride) + 1  # ceil division
        # Caffe clips the last window so it starts inside the input.
        if (out - 1) * stride >= input_size + padding:
            out -= 1
    else:
        out = span // stride + 1
    return out


def same_padding(kernel_size: int) -> int:
    """Padding that preserves spatial size at stride 1 for odd kernels."""
    if kernel_size <= 0:
        raise ShapeError(f"kernel_size must be positive, got {kernel_size}")
    if kernel_size % 2 == 0:
        raise ShapeError(f"'same' padding requires an odd kernel, got {kernel_size}")
    return (kernel_size - 1) // 2
