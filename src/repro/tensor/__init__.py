"""Tensor geometry helpers: shape arithmetic and memory layouts."""

from .shapes import (
    conv_output_size,
    conv_input_gradient_size,
    pool_output_size,
    same_padding,
)
from .layout import Layout, convert, nchw_to_chwn, chwn_to_nchw

__all__ = [
    "conv_output_size",
    "conv_input_gradient_size",
    "pool_output_size",
    "same_padding",
    "Layout",
    "convert",
    "nchw_to_chwn",
    "chwn_to_nchw",
]
