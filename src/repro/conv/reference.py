"""Naive reference convolution.

Quadruple-loop cross-correlation — deliberately the most obviously
correct (and slowest) possible implementation.  Every optimised
strategy in this package is tested against it on small tensors; it is
the ground truth of the whole numerical layer.
"""

from __future__ import annotations

import numpy as np

from .common import add_bias, check_conv_args, pad_input


def conv2d_reference(x: np.ndarray, w: np.ndarray, bias=None,
                     stride: int = 1, padding: int = 0) -> np.ndarray:
    """Cross-correlate NCHW ``x`` with ``(f, c, k, k)`` filters ``w``.

    Written with explicit loops over every output element; only the
    innermost dot product uses NumPy.  Use only on tiny tensors.
    """
    oh, ow = check_conv_args(x, w, stride, padding)
    xp = pad_input(x, padding)
    b, c, _, _ = xp.shape
    f, _, kh, kw = w.shape
    y = np.zeros((b, f, oh, ow), dtype=np.result_type(x, w))
    for n in range(b):
        for j in range(f):
            for p in range(oh):
                for q in range(ow):
                    patch = xp[n, :, p * stride:p * stride + kh,
                               q * stride:q * stride + kw]
                    y[n, j, p, q] = np.sum(patch * w[j])
    return add_bias(y, bias)


def conv2d_reference_backward_input(dy: np.ndarray, w: np.ndarray,
                                    input_hw, stride: int = 1,
                                    padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the input, by scattering each output gradient
    back through the window it came from."""
    ih, iw = input_hw
    b, f, oh, ow = dy.shape
    _, c, kh, kw = w.shape
    dxp = np.zeros((b, c, ih + 2 * padding, iw + 2 * padding),
                   dtype=np.result_type(dy, w))
    for n in range(b):
        for j in range(f):
            for p in range(oh):
                for q in range(ow):
                    dxp[n, :, p * stride:p * stride + kh,
                        q * stride:q * stride + kw] += dy[n, j, p, q] * w[j]
    if padding:
        return dxp[:, :, padding:-padding, padding:-padding]
    return dxp


def conv2d_reference_backward_weights(dy: np.ndarray, x: np.ndarray,
                                      kernel_hw, stride: int = 1,
                                      padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the filters."""
    kh, kw = kernel_hw
    xp = pad_input(x, padding)
    b, c, _, _ = xp.shape
    _, f, oh, ow = dy.shape[0], dy.shape[1], dy.shape[2], dy.shape[3]
    dw = np.zeros((f, c, kh, kw), dtype=np.result_type(dy, x))
    for n in range(b):
        for j in range(f):
            for p in range(oh):
                for q in range(ow):
                    patch = xp[n, :, p * stride:p * stride + kh,
                               q * stride:q * stride + kw]
                    dw[j] += dy[n, j, p, q] * patch
    return dw
