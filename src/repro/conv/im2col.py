"""im2col / col2im — the unrolling kernels of section II-B.

``im2col`` unrolls every receptive field of an NCHW batch into the
columns of a matrix so that convolution becomes one GEMM (the
``im2col_gpu_kernel`` hotspot of Fig. 4); ``col2im`` is its exact
adjoint, scattering column gradients back into image layout (the
``col2im_gpu_kernel``).  The adjoint property

    <im2col(x), y> == <x, col2im(y)>

is what makes the unrolled backward-input pass correct, and is
property-tested in ``tests/conv/test_im2col.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ShapeError
from ..tensor.shapes import conv_output_size
from .common import pad_input, unpad_input


def im2col(x: np.ndarray, kernel: int, stride: int = 1,
           padding: int = 0) -> np.ndarray:
    """Unroll receptive fields into columns.

    Parameters
    ----------
    x:
        NCHW input batch.
    kernel, stride, padding:
        Square-window geometry.

    Returns
    -------
    ``(b, c * k * k, oh * ow)`` array whose column ``(p*ow + q)`` holds
    the flattened window that produces output pixel ``(p, q)``.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW, got ndim={x.ndim}")
    b, c, ih, iw = x.shape
    oh = conv_output_size(ih, kernel, stride, padding)
    ow = conv_output_size(iw, kernel, stride, padding)
    xp = pad_input(x, padding)
    win = sliding_window_view(xp, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
    # (b, c, oh, ow, k, k) -> (b, c, k, k, oh, ow) -> (b, c*k*k, oh*ow)
    col = win.transpose(0, 1, 4, 5, 2, 3).reshape(b, c * kernel * kernel, oh * ow)
    return np.ascontiguousarray(col)


def col2im(col: np.ndarray, input_hw: Tuple[int, int], kernel: int,
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to images.

    ``col`` has shape ``(b, c * k * k, oh * ow)``; the result is the
    NCHW tensor of shape ``(b, c, ih, iw)`` in which every element is
    the sum of all column entries that were gathered from it.
    """
    ih, iw = input_hw
    if col.ndim != 3:
        raise ShapeError(f"col2im expects (b, c*k*k, oh*ow), got ndim={col.ndim}")
    b = col.shape[0]
    k2 = kernel * kernel
    if col.shape[1] % k2 != 0:
        raise ShapeError(
            f"column height {col.shape[1]} is not a multiple of k^2={k2}"
        )
    c = col.shape[1] // k2
    oh = conv_output_size(ih, kernel, stride, padding)
    ow = conv_output_size(iw, kernel, stride, padding)
    if col.shape[2] != oh * ow:
        raise ShapeError(
            f"column count {col.shape[2]} != oh*ow = {oh * ow} for "
            f"input {input_hw}, k={kernel}, s={stride}, p={padding}"
        )

    ph, pw = ih + 2 * padding, iw + 2 * padding
    cols = col.reshape(b, c, kernel, kernel, oh, ow)
    out = np.zeros((b, c, ph, pw), dtype=col.dtype)
    if stride >= kernel:
        # Disjoint windows: every padded pixel receives at most one
        # contribution, so no accumulation is needed and the whole
        # scatter is a single assignment through a strided view —
        # index (p, di, q, dj) lands on pixel (p*s + di, q*s + dj).
        s0, s1, s2, s3 = out.strides
        view = np.lib.stride_tricks.as_strided(
            out, shape=(b, c, oh, kernel, ow, kernel),
            strides=(s0, s1, s2 * stride, s2, s3 * stride, s3))
        view[...] = cols.transpose(0, 1, 4, 2, 5, 3)
    else:
        # Overlapping windows must accumulate.  Scatter by kernel
        # offset: for each (di, dj) the contributing output grid maps
        # to a strided slice of the image — k*k whole-array slice adds
        # instead of per-element np.add.at (measured 4-17x faster: the
        # fancy-index scatter walks an index array per element while
        # the slices stream contiguously).
        for di in range(kernel):
            for dj in range(kernel):
                out[:, :, di:di + (oh - 1) * stride + 1:stride,
                    dj:dj + (ow - 1) * stride + 1:stride] += cols[:, :, di, dj]
    dx = unpad_input(out, padding)
    return np.ascontiguousarray(dx)


def im2col_bytes(b: int, c: int, kernel: int, oh: int, ow: int,
                 itemsize: int = 4) -> int:
    """Size in bytes of the unrolled column buffer for one whole batch
    — the extra device memory unrolling implementations pay (Fig. 5)."""
    return b * c * kernel * kernel * oh * ow * itemsize
