"""Shared validation and padding helpers for the conv strategies."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from ..tensor.shapes import conv_output_size


def check_conv_args(x: np.ndarray, w: np.ndarray, stride: int, padding: int) -> Tuple[int, int]:
    """Validate NCHW input against (f, c, k, k) filters.

    Returns ``(oh, ow)``, the output spatial sizes.
    """
    if x.ndim != 4:
        raise ShapeError(f"input must be NCHW (4-D), got ndim={x.ndim}")
    if w.ndim != 4:
        raise ShapeError(f"weights must be (f, c, kh, kw), got ndim={w.ndim}")
    if x.shape[1] != w.shape[1]:
        raise ShapeError(
            f"channel mismatch: input has {x.shape[1]}, filters expect {w.shape[1]}"
        )
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    if padding < 0:
        raise ShapeError(f"padding must be non-negative, got {padding}")
    _, _, ih, iw = x.shape
    _, _, kh, kw = w.shape
    oh = conv_output_size(ih, kh, stride, padding)
    ow = conv_output_size(iw, kw, stride, padding)
    return oh, ow


def pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def unpad_input(dx: np.ndarray, padding: int) -> np.ndarray:
    """Crop the padding back off a gradient w.r.t. the padded input."""
    if padding == 0:
        return dx
    return dx[:, :, padding:-padding, padding:-padding]


def add_bias(y: np.ndarray, bias) -> np.ndarray:
    """Add a per-filter bias to an NCHW output, in place when safe."""
    if bias is None:
        return y
    bias = np.asarray(bias)
    if bias.ndim != 1 or bias.shape[0] != y.shape[1]:
        raise ShapeError(
            f"bias must have shape ({y.shape[1]},), got {bias.shape}"
        )
    y += bias[None, :, None, None]
    return y
