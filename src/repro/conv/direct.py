"""Direct (sliding-window) convolution.

The traditional strategy of section II-B: a window slides over the
input and a dot product with the filter bank is taken at every
position — the approach cuda-convnet2 and Theano-legacy implement in
CUDA.  Here the sliding windows are materialised as *views* with
``numpy.lib.stride_tricks.sliding_window_view`` (no copy, per the HPC
guides) and the dot products collapse into one ``einsum``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .common import add_bias, check_conv_args, pad_input, unpad_input


def _windows(xp: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """All (kh, kw) windows of an NCHW tensor at the given stride.

    Returns a strided *view* of shape ``(b, c, oh, ow, kh, kw)``.
    """
    win = sliding_window_view(xp, (kh, kw), axis=(2, 3))
    return win[:, :, ::stride, ::stride]


def forward(x: np.ndarray, w: np.ndarray, bias=None,
            stride: int = 1, padding: int = 0) -> np.ndarray:
    """Direct cross-correlation forward pass."""
    check_conv_args(x, w, stride, padding)
    xp = pad_input(x, padding)
    kh, kw = w.shape[2], w.shape[3]
    win = _windows(xp, kh, kw, stride)
    y = np.einsum("bchwij,fcij->bfhw", win, w, optimize=True)
    return add_bias(y, bias)


def backward_input(dy: np.ndarray, w: np.ndarray, input_hw,
                   stride: int = 1, padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the input.

    The adjoint of strided valid cross-correlation is a "full"
    convolution with the spatially flipped filters applied to the
    stride-dilated output gradient.  We dilate ``dy`` (insert
    ``stride - 1`` zeros between elements), pad it by ``k - 1`` and run
    a direct pass with flipped, channel-transposed filters.
    """
    ih, iw = input_hw
    b, f, oh, ow = dy.shape
    _, c, kh, kw = w.shape

    ph, pw = ih + 2 * padding, iw + 2 * padding
    # Dilate into the padded-input coordinate frame.
    dyd = np.zeros((b, f, ph + kh - 1, pw + kw - 1), dtype=dy.dtype)
    dyd[:, :, kh - 1:kh - 1 + (oh - 1) * stride + 1:stride,
        kw - 1:kw - 1 + (ow - 1) * stride + 1:stride] = dy

    w_flip = w[:, :, ::-1, ::-1]          # rotate filters 180 degrees
    win = sliding_window_view(dyd, (kh, kw), axis=(2, 3))
    dxp = np.einsum("bfhwij,fcij->bchw", win, w_flip, optimize=True)
    return unpad_input(dxp, padding)


def backward_weights(dy: np.ndarray, x: np.ndarray, kernel_hw,
                     stride: int = 1, padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the filters: correlate each input window stack
    with the output gradients."""
    kh, kw = kernel_hw
    xp = pad_input(x, padding)
    win = _windows(xp, kh, kw, stride)
    # win: (b, c, oh, ow, kh, kw); dy: (b, f, oh, ow)
    return np.einsum("bchwij,bfhw->fcij", win, dy, optimize=True)


def backward_bias(dy: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the per-filter bias."""
    return dy.sum(axis=(0, 2, 3))
