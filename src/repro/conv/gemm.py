"""GEMM helpers.

GEMM "is the essence of convolutional layers" (paper section V-A): in
the unrolling strategy every pass becomes one matrix product.  This
module wraps the BLAS behind ``numpy`` for production use, provides a
cache-blocked pure-NumPy GEMM used to sanity-check the wrapper in
tests, and centralises FLOP accounting so kernel plans and benchmarks
agree on the arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def gemm(a: np.ndarray, b: np.ndarray, out: np.ndarray = None,
         accumulate: bool = False) -> np.ndarray:
    """C = A @ B (optionally += when ``accumulate``).

    Thin wrapper over the BLAS sgemm/dgemm ``numpy`` dispatches to;
    exists so call sites carry the GEMM vocabulary of the paper and so
    accumulation (beta=1) is expressed in one place.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"gemm expects 2-D operands, got {a.ndim}-D and {b.ndim}-D")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if out is None:
        return a @ b
    if out.shape != (a.shape[0], b.shape[1]):
        raise ShapeError(
            f"out has shape {out.shape}, expected {(a.shape[0], b.shape[1])}"
        )
    if accumulate:
        out += a @ b
    else:
        np.matmul(a, b, out=out)
    return out


def blocked_gemm(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked GEMM in pure NumPy.

    Demonstrates the tiling structure GPU GEMM kernels (cuBLAS, the
    ``cudnn_gemm`` kernels of Fig. 4) use — accumulate C tiles from
    A-row-panel x B-column-panel products — and serves as an
    independent check of :func:`gemm` in the test suite.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"gemm expects 2-D operands, got {a.ndim}-D and {b.ndim}-D")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if block <= 0:
        raise ShapeError(f"block must be positive, got {block}")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.result_type(a, b))
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for k0 in range(0, k, block):
            k1 = min(k0 + block, k)
            a_tile = a[i0:i1, k0:k1]
            for j0 in range(0, n, block):
                j1 = min(j0 + block, n)
                c[i0:i1, j0:j1] += a_tile @ b[k0:k1, j0:j1]
    return c


def gemm_flops(m: int, n: int, k: int) -> int:
    """FLOPs of an (m x k) @ (k x n) product: 2mnk."""
    if min(m, n, k) <= 0:
        raise ShapeError(f"gemm dims must be positive, got {(m, n, k)}")
    return 2 * m * n * k


def cgemm_flops(m: int, n: int, k: int) -> int:
    """FLOPs of a complex (m x k) @ (k x n): each complex MAC is 4
    multiplies + 4 adds = 8 real FLOPs — the ``Cgemm`` of fbfft."""
    if min(m, n, k) <= 0:
        raise ShapeError(f"gemm dims must be positive, got {(m, n, k)}")
    return 8 * m * n * k


def gemm_bytes(m: int, n: int, k: int, itemsize: int = 4) -> int:
    """Minimum global traffic of one GEMM: read A and B, write C."""
    return (m * k + k * n + m * n) * itemsize
