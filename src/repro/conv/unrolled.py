"""Unrolling-based convolution (im2col + GEMM + col2im).

"The key idea behind unrolling convolution is to reshape the input and
the filter bank to double large matrices" (section II-B).  The local
regions of the input are unrolled into columns (:func:`~repro.conv.
im2col.im2col`), the filter bank into rows, and the convolution becomes
one matrix product per image; the backward-input pass multiplies by the
transposed filter matrix and folds the columns back with ``col2im``.

This is the numerical strategy behind Caffe, Torch-cunn,
Theano-CorrMM and (with implicit on-chip unrolling) cuDNN.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .common import add_bias, check_conv_args
from .gemm import gemm
from .im2col import col2im, im2col


def _square_kernel(w: np.ndarray) -> int:
    if w.shape[2] != w.shape[3]:
        raise ShapeError(f"unrolled strategy expects square kernels, got {w.shape[2:]}" )
    return w.shape[2]


def forward(x: np.ndarray, w: np.ndarray, bias=None,
            stride: int = 1, padding: int = 0) -> np.ndarray:
    """Forward pass: ``y = W_mat @ im2col(x)`` per image."""
    oh, ow = check_conv_args(x, w, stride, padding)
    k = _square_kernel(w)
    b = x.shape[0]
    f, c = w.shape[0], w.shape[1]

    col = im2col(x, k, stride, padding)            # (b, c*k*k, oh*ow)
    w_mat = w.reshape(f, c * k * k)                 # filters unrolled to rows
    # One GEMM per image, batched by einsum/matmul broadcasting:
    y = np.matmul(w_mat[None, :, :], col)           # (b, f, oh*ow)
    y = y.reshape(b, f, oh, ow)
    return add_bias(y, bias)


def backward_input(dy: np.ndarray, w: np.ndarray, input_hw,
                   stride: int = 1, padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the input: ``col2im(W_mat^T @ dy)``."""
    f, c, kh, kw = w.shape
    k = _square_kernel(w)
    b, _, oh, ow = dy.shape
    w_mat = w.reshape(f, c * k * k)
    dy_mat = dy.reshape(b, f, oh * ow)
    dcol = np.matmul(w_mat.T[None, :, :], dy_mat)   # (b, c*k*k, oh*ow)
    return col2im(dcol, input_hw, k, stride, padding)


def backward_weights(dy: np.ndarray, x: np.ndarray, kernel_hw,
                     stride: int = 1, padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the filters: accumulate ``dy_mat @ col^T`` over
    the batch."""
    kh, kw = kernel_hw
    if kh != kw:
        raise ShapeError(f"unrolled strategy expects square kernels, got {kernel_hw}")
    b, f, oh, ow = dy.shape
    c = x.shape[1]
    col = im2col(x, kh, stride, padding)            # (b, c*k*k, oh*ow)
    dy_mat = dy.reshape(b, f, oh * ow)
    # Sum of per-image GEMMs: (f, oh*ow) @ (oh*ow, c*k*k).
    dw_mat = np.einsum("bfo,bko->fk", dy_mat, col, optimize=True)
    return dw_mat.reshape(f, c, kh, kw)


def backward_bias(dy: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the per-filter bias."""
    return dy.sum(axis=(0, 2, 3))
