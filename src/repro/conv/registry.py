"""Strategy registry: the convolution algorithms by name.

Gives callers (and :class:`~repro.nn.Conv2d`) one place to resolve a
strategy — the paper's three plus the Winograd extension — and ask
which of them can run a given geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Dict, List, Tuple

from . import direct, fftconv, unrolled, winograd


@dataclass(frozen=True)
class StrategyInfo:
    """One registered convolution strategy."""

    name: str
    module: ModuleType
    #: (kernel_size, stride) -> supported?
    supports: Callable[[int, int], bool]
    description: str


STRATEGIES: Dict[str, StrategyInfo] = {
    "direct": StrategyInfo(
        name="direct", module=direct,
        supports=lambda k, s: True,
        description="sliding-window convolution (cuda-convnet2 family)"),
    "unrolled": StrategyInfo(
        name="unrolled", module=unrolled,
        supports=lambda k, s: True,
        description="im2col + GEMM + col2im (Caffe/cuDNN family)"),
    "fft": StrategyInfo(
        name="fft", module=fftconv,
        supports=lambda k, s: s == 1,
        description="FFT pointwise product (fbfft family), stride 1 only"),
    "winograd": StrategyInfo(
        name="winograd", module=winograd,
        supports=lambda k, s: k == 3 and s == 1,
        description="Winograd F(2x2,3x3) minimal filtering, "
                    "3x3 stride-1 only"),
}


def get_strategy(name: str) -> ModuleType:
    """Resolve a strategy module by name."""
    try:
        return STRATEGIES[name].module
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; options: {sorted(STRATEGIES)}"
        ) from None


def supported_strategies(kernel_size: int, stride: int) -> List[str]:
    """Names of the strategies that can run this geometry."""
    return [name for name, info in STRATEGIES.items()
            if info.supports(kernel_size, stride)]
