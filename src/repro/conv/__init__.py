"""Numerical convolution strategies.

The three strategies section II-B of the paper describes, implemented
with NumPy and validated against a naive reference:

* :mod:`~repro.conv.direct` — direct (sliding-window) convolution, the
  strategy of cuda-convnet2 and Theano-legacy;
* :mod:`~repro.conv.unrolled` — unrolling-based convolution
  (im2col + GEMM + col2im), the strategy of Caffe, Torch-cunn,
  Theano-CorrMM and cuDNN;
* :mod:`~repro.conv.fftconv` — FFT-based convolution (transform,
  pointwise complex product, inverse transform), the strategy of fbfft
  and Theano-fft.

All functions use the deep-learning convention: "convolution" is
cross-correlation (no kernel flip), tensors are NCHW ``float``/
``float32``, filters are ``(f, c, k, k)``.  Each strategy provides the
three passes of one training iteration: ``forward``,
``backward_input`` and ``backward_weights``.
"""

from .reference import conv2d_reference
from .direct import forward as direct_forward
from .direct import backward_input as direct_backward_input
from .direct import backward_weights as direct_backward_weights
from .unrolled import forward as unrolled_forward
from .unrolled import backward_input as unrolled_backward_input
from .unrolled import backward_weights as unrolled_backward_weights
from .fftconv import forward as fft_forward
from .fftconv import backward_input as fft_backward_input
from .fftconv import backward_weights as fft_backward_weights
from .im2col import im2col, col2im
from .winograd import forward as winograd_forward
from .registry import STRATEGIES, get_strategy, supported_strategies

__all__ = [
    "STRATEGIES",
    "get_strategy",
    "supported_strategies",
    "winograd_forward",
    "conv2d_reference",
    "direct_forward",
    "direct_backward_input",
    "direct_backward_weights",
    "unrolled_forward",
    "unrolled_backward_input",
    "unrolled_backward_weights",
    "fft_forward",
    "fft_backward_input",
    "fft_backward_weights",
    "im2col",
    "col2im",
]
