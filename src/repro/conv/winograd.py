"""Winograd fast convolution — F(2x2, 3x3).

The paper's closing discussion points at "convolution optimization on
GPUs" beyond its seven subjects; Winograd's minimal filtering
algorithms (Lavin & Gray, 2015) were the next strategy to land in
cuDNN (v5) right after the paper's study window.  This module
implements the classic F(2x2, 3x3) variant as a fourth numerical
strategy so the library can explore that future-work direction:

* the input is cut into 4x4 tiles overlapping by 2;
* input tiles are transformed with ``B^T d B``, filters with
  ``G g G^T`` (both 4x4 in the transform domain);
* per-tile elementwise products replace the 3x3 dot products — 16
  multiplies produce 4 outputs where direct convolution needs 36, a
  2.25x multiplication reduction;
* outputs come back through ``A^T m A``.

Only stride 1 and 3x3 kernels are supported — exactly the regime the
paper's small-kernel observations (cuDNN winning for k < 7) make
interesting.  The backward passes reuse the other strategies'
mathematics via the adjoint identities, as production libraries did
before dedicated Winograd gradient kernels existed.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ShapeError
from .common import add_bias, check_conv_args, pad_input
from . import direct as _direct

# Winograd F(2x2, 3x3) transform matrices (Lavin & Gray 2015, eq. 10).
B_T = np.array([
    [1.0, 0.0, -1.0, 0.0],
    [0.0, 1.0, 1.0, 0.0],
    [0.0, -1.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, -1.0],
])
G = np.array([
    [1.0, 0.0, 0.0],
    [0.5, 0.5, 0.5],
    [0.5, -0.5, 0.5],
    [0.0, 0.0, 1.0],
])
A_T = np.array([
    [1.0, 1.0, 1.0, 0.0],
    [0.0, 1.0, -1.0, -1.0],
])

#: Output tile size (m) and input tile size (m + r - 1).
TILE_OUT = 2
TILE_IN = 4
KERNEL = 3


def transform_filters(w: np.ndarray) -> np.ndarray:
    """``U = G g G^T`` for every (filter, channel) pair.

    Input ``(f, c, 3, 3)`` -> output ``(f, c, 4, 4)``.
    """
    if w.ndim != 4 or w.shape[2:] != (KERNEL, KERNEL):
        raise ShapeError(
            f"Winograd F(2x2,3x3) requires (f, c, 3, 3) filters, got {w.shape}"
        )
    return np.einsum("ij,fcjk,lk->fcil", G, w, G, optimize=True)


def _tile_input(xp: np.ndarray, tiles_h: int, tiles_w: int) -> np.ndarray:
    """Cut the (padded) input into overlapping 4x4 tiles.

    Returns ``(b, c, tiles_h, tiles_w, 4, 4)``.
    """
    b, c, H, W = xp.shape
    out = np.empty((b, c, tiles_h, tiles_w, TILE_IN, TILE_IN), dtype=xp.dtype)
    for th in range(tiles_h):
        for tw in range(tiles_w):
            r, s = th * TILE_OUT, tw * TILE_OUT
            out[:, :, th, tw] = xp[:, :, r:r + TILE_IN, s:s + TILE_IN]
    return out


def forward(x: np.ndarray, w: np.ndarray, bias=None,
            stride: int = 1, padding: int = 0) -> np.ndarray:
    """Winograd F(2x2, 3x3) forward convolution.

    Semantics identical to the other strategies' ``forward`` for
    ``kernel_size == 3`` and ``stride == 1`` (any padding); raises
    :class:`ShapeError` otherwise.
    """
    if stride != 1:
        raise ShapeError(f"Winograd convolution requires stride 1, got {stride}")
    oh, ow = check_conv_args(x, w, stride, padding)
    if w.shape[2:] != (KERNEL, KERNEL):
        raise ShapeError(
            f"Winograd F(2x2,3x3) requires 3x3 kernels, got {w.shape[2:]}"
        )
    xp = pad_input(x, padding)
    b, c = xp.shape[0], xp.shape[1]
    f = w.shape[0]

    tiles_h = math.ceil(oh / TILE_OUT)
    tiles_w = math.ceil(ow / TILE_OUT)
    # Pad on the bottom/right so every output tile is full.
    need_h = tiles_h * TILE_OUT + KERNEL - 1
    need_w = tiles_w * TILE_OUT + KERNEL - 1
    xp = np.pad(xp, ((0, 0), (0, 0),
                     (0, need_h - xp.shape[2]),
                     (0, need_w - xp.shape[3])))

    d = _tile_input(xp, tiles_h, tiles_w)          # (b,c,th,tw,4,4)
    # V = B^T d B per tile.
    V = np.einsum("ij,bcTWjk,lk->bcTWil", B_T, d, B_T, optimize=True)
    U = transform_filters(w)                        # (f,c,4,4)
    # Transform-domain contraction over channels (the batched GEMM of
    # a real Winograd kernel).
    M = np.einsum("fcil,bcTWil->bfTWil", U, V, optimize=True)
    # Y = A^T M A per tile.
    Y = np.einsum("ij,bfTWjk,lk->bfTWil", A_T, M, A_T, optimize=True)
    # Reassemble tiles and crop the ragged edge.
    y = Y.transpose(0, 1, 2, 4, 3, 5).reshape(
        b, f, tiles_h * TILE_OUT, tiles_w * TILE_OUT)[:, :, :oh, :ow]
    return add_bias(np.ascontiguousarray(y), bias)


def backward_input(dy: np.ndarray, w: np.ndarray, input_hw,
                   stride: int = 1, padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the input (delegates to the direct adjoint —
    the standard practice before dedicated Winograd dgrad kernels)."""
    if stride != 1:
        raise ShapeError(f"Winograd convolution requires stride 1, got {stride}")
    if w.shape[2:] != (KERNEL, KERNEL):
        raise ShapeError(
            f"Winograd F(2x2,3x3) requires 3x3 kernels, got {w.shape[2:]}"
        )
    return _direct.backward_input(dy, w, input_hw, stride, padding)


def backward_weights(dy: np.ndarray, x: np.ndarray, kernel_hw,
                     stride: int = 1, padding: int = 0) -> np.ndarray:
    """Gradient w.r.t. the filters (direct adjoint)."""
    if stride != 1:
        raise ShapeError(f"Winograd convolution requires stride 1, got {stride}")
    if tuple(kernel_hw) != (KERNEL, KERNEL):
        raise ShapeError(
            f"Winograd F(2x2,3x3) requires 3x3 kernels, got {kernel_hw}"
        )
    return _direct.backward_weights(dy, x, kernel_hw, stride, padding)


def multiplication_reduction() -> float:
    """Arithmetic advantage of F(2x2, 3x3) over direct convolution:
    36 multiplies -> 16 per output tile."""
    direct_muls = (TILE_OUT * TILE_OUT) * (KERNEL * KERNEL)
    winograd_muls = TILE_IN * TILE_IN
    return direct_muls / winograd_muls


def forward_multiplies(b: int, c: int, f: int, oh: int, ow: int) -> int:
    """Transform-domain multiplies of one forward pass."""
    tiles = math.ceil(oh / TILE_OUT) * math.ceil(ow / TILE_OUT)
    return b * f * c * tiles * TILE_IN * TILE_IN
