"""FFT-based convolution.

Section II-B's third strategy, used by fbfft and Theano-fft: transform
inputs and filters to the Fourier domain, multiply pointwise (a batch
of small complex GEMMs over frequencies), transform back.  Because the
spatial convolution is a *correlation* in CNN convention, the filter
spectrum enters conjugated.

Geometry: for a valid correlation of an ``i x i`` input with a
``k x k`` filter, a transform size ``n >= i`` suffices (no circular
wrap-around touches the first ``o = i - k + 1`` outputs).  The
backward-input pass is a full convolution whose result length is
exactly ``i``, so the same ``n`` works for all three passes — one
reason FFT implementations keep every operand padded to a common
transform size.  Like the real fbfft, transform sizes round up to a
cheap FFT length (fbfft: powers of two, the cause of the Fig. 5 memory
fluctuations; here ``scipy.fft.next_fast_len`` by default with a
power-of-two mode for the fbfft adapter).

Stride: FFT convolution computes every output position, so strides
other than 1 are rejected — the shape limitation of Fig. 3(e).
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np
from scipy import fft as sfft

from ..errors import ShapeError
from .common import add_bias, check_conv_args, pad_input, unpad_input


def _check_stride(stride: int) -> None:
    if stride != 1:
        raise ShapeError(
            f"FFT-based convolution only supports stride 1, got {stride}"
        )


def transform_size(input_size: int, kernel_size: int,
                   pow2: bool = False) -> int:
    """FFT size used for an ``i x i`` input and ``k x k`` kernel."""
    if input_size <= 0 or kernel_size <= 0:
        raise ShapeError("sizes must be positive")
    if kernel_size > input_size:
        raise ShapeError(
            f"kernel {kernel_size} larger than input {input_size}"
        )
    n = input_size
    if pow2:
        return 1 << (n - 1).bit_length()
    return sfft.next_fast_len(n)


# ---------------------------------------------------------------------------
# rfft2 plan workspaces
#
# ``rfft2(x, s=(n, n))`` allocates a fresh (n, n)-padded staging buffer
# on every call; a training step calls it with the same handful of
# operand shapes over and over (input, filter and gradient spectra of
# the three passes).  The workspaces are cached per (operand shape,
# transform size, dtype) — the pad geometry — so repeated FFT-strategy
# calls reuse the scratch instead of re-allocating it.  Zero-filling a
# cached buffer and transforming it is numerically identical to the
# ``s=`` padding path.
#
# The cache is process-wide; the lock only guards the dict (the
# numeric conv layer runs single-threaded — the parallel sweep
# executor fans out the *analytic* model, which never calls this).
# ---------------------------------------------------------------------------

_WS_LOCK = threading.Lock()
_WORKSPACES: Dict[tuple, np.ndarray] = {}
_WS_HITS = 0
_WS_MISSES = 0


def workspace_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the rfft2 workspace cache."""
    with _WS_LOCK:
        return {"entries": len(_WORKSPACES), "hits": _WS_HITS,
                "misses": _WS_MISSES}


def clear_workspaces() -> None:
    """Drop cached workspaces and reset the counters."""
    global _WS_HITS, _WS_MISSES
    with _WS_LOCK:
        _WORKSPACES.clear()
        _WS_HITS = 0
        _WS_MISSES = 0


def _spectra(x: np.ndarray, n: int) -> np.ndarray:
    """2-D real FFT of the last two axes, zero-padded to (n, n)."""
    global _WS_HITS, _WS_MISSES
    h, w = x.shape[-2:]
    if h == n and w == n:
        return np.fft.rfft2(x)
    key = (x.shape, n, x.dtype.str)
    with _WS_LOCK:
        buf = _WORKSPACES.get(key)
        if buf is None:
            buf = np.zeros(x.shape[:-2] + (n, n), dtype=x.dtype)
            _WORKSPACES[key] = buf
            _WS_MISSES += 1
        else:
            _WS_HITS += 1
    # The buffer never escapes this function, and only the operand
    # region is ever written, so the pad region stays zero across
    # reuses — no re-clearing needed.
    buf[..., :h, :w] = x
    return np.fft.rfft2(buf)


def forward(x: np.ndarray, w: np.ndarray, bias=None,
            stride: int = 1, padding: int = 0,
            pow2: bool = False) -> np.ndarray:
    """FFT forward pass (valid cross-correlation)."""
    _check_stride(stride)
    oh, ow = check_conv_args(x, w, stride, padding)
    xp = pad_input(x, padding)
    ih = xp.shape[2]
    k = w.shape[2]
    if w.shape[2] != w.shape[3] or xp.shape[2] != xp.shape[3]:
        raise ShapeError("FFT strategy expects square inputs and kernels")
    n = transform_size(ih, k, pow2=pow2)

    xf = _spectra(xp, n)                       # (b, c, n, nf)
    wf = _spectra(w, n)                        # (f, c, n, nf)
    # Pointwise over frequencies, contracted over channels: the
    # batched CGEMM of fbfft.  conj(wf) turns convolution into
    # correlation.
    yf = np.einsum("bcxy,fcxy->bfxy", xf, np.conj(wf), optimize=True)
    y = np.fft.irfft2(yf, s=(n, n))[:, :, :oh, :ow]
    y = np.ascontiguousarray(y.astype(np.result_type(x, w), copy=False))
    return add_bias(y, bias)


def backward_input(dy: np.ndarray, w: np.ndarray, input_hw: Tuple[int, int],
                   stride: int = 1, padding: int = 0,
                   pow2: bool = False) -> np.ndarray:
    """Gradient w.r.t. the input: a full *convolution* of ``dy`` with
    the filters (no conjugate), cropped to the input size."""
    _check_stride(stride)
    ih, iw = input_hw
    if ih != iw:
        raise ShapeError("FFT strategy expects square inputs")
    k = w.shape[2]
    ph = ih + 2 * padding
    n = transform_size(ph, k, pow2=pow2)

    dyf = _spectra(dy, n)                      # (b, f, n, nf)
    wf = _spectra(w, n)                        # (f, c, n, nf)
    dxf = np.einsum("bfxy,fcxy->bcxy", dyf, wf, optimize=True)
    dxp = np.fft.irfft2(dxf, s=(n, n))[:, :, :ph, :ph]
    dxp = dxp.astype(np.result_type(dy, w), copy=False)
    return np.ascontiguousarray(unpad_input(dxp, padding))


def backward_weights(dy: np.ndarray, x: np.ndarray, kernel_hw: Tuple[int, int],
                     stride: int = 1, padding: int = 0,
                     pow2: bool = False) -> np.ndarray:
    """Gradient w.r.t. the filters: valid correlation of the input with
    the output gradient, cropped to ``k x k``."""
    _check_stride(stride)
    kh, kw = kernel_hw
    if kh != kw:
        raise ShapeError("FFT strategy expects square kernels")
    xp = pad_input(x, padding)
    ih = xp.shape[2]
    n = transform_size(ih, kh, pow2=pow2)

    xf = _spectra(xp, n)                       # (b, c, n, nf)
    dyf = _spectra(dy, n)                      # (b, f, n, nf)
    dwf = np.einsum("bcxy,bfxy->fcxy", xf, np.conj(dyf), optimize=True)
    dw = np.fft.irfft2(dwf, s=(n, n))[:, :, :kh, :kw]
    return np.ascontiguousarray(dw.astype(np.result_type(dy, x), copy=False))


def backward_bias(dy: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the per-filter bias."""
    return dy.sum(axis=(0, 2, 3))
