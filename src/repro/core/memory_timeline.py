"""Memory-footprint timeline of one training iteration.

Fig. 5 reports a single number per configuration — the peak.  This
extension replays each implementation's allocation *sequence* through
the device allocator and records the footprint after every event, so
one can see *when* the peak happens (e.g. fbfft's spectra allocations
stacking up before the first FFT, or the unrolling family's column
buffer appearing per pass) and how far below the 12 GB ceiling each
phase sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import ConvConfig
from ..errors import DeviceOOMError
from ..frameworks.base import ConvImplementation
from ..gpusim.allocator import DeviceAllocator
from ..gpusim.device import DeviceSpec, K40C
from .report import table


@dataclass(frozen=True)
class MemoryEvent:
    """Footprint after one allocation."""

    tag: str
    size_bytes: int
    in_use_bytes: int


@dataclass(frozen=True)
class MemoryTimeline:
    """Allocation-ordered footprint trace of one iteration."""

    implementation: str
    config: ConvConfig
    events: List[MemoryEvent]
    peak_bytes: int
    capacity_bytes: int
    oom: bool

    @property
    def headroom_bytes(self) -> int:
        return self.capacity_bytes - self.peak_bytes

    def peak_event(self) -> MemoryEvent:
        if not self.events:
            raise ValueError("timeline has no events")
        return max(self.events, key=lambda e: e.in_use_bytes)

    def render(self) -> str:
        rows = [[e.tag, f"{e.size_bytes / 2**20:.1f}",
                 f"{e.in_use_bytes / 2**20:.1f}"] for e in self.events]
        title = (f"{self.implementation} at {self.config.tuple5}: peak "
                 f"{self.peak_bytes / 2**20:.0f} MB of "
                 f"{self.capacity_bytes / 2**20:.0f} MB"
                 + (" [OOM]" if self.oom else ""))
        return table(["allocation", "size (MB)", "footprint (MB)"], rows,
                     title=title)


def memory_timeline(impl: ConvImplementation, config: ConvConfig,
                    device: DeviceSpec = K40C) -> MemoryTimeline:
    """Replay one implementation's allocations, event by event."""
    impl.check_config(config)
    allocator = DeviceAllocator(device, baseline=0)
    events: List[MemoryEvent] = []
    oom = False
    for tag, size in impl.memory_plan(config):
        if size <= 0:
            continue
        try:
            allocator.alloc(size, tag=tag)
        except DeviceOOMError:
            oom = True
            events.append(MemoryEvent(tag=f"{tag} (OOM)", size_bytes=size,
                                      in_use_bytes=allocator.in_use))
            break
        events.append(MemoryEvent(tag=tag, size_bytes=size,
                                  in_use_bytes=allocator.in_use))
    return MemoryTimeline(
        implementation=impl.paper_name,
        config=config,
        events=events,
        peak_bytes=allocator.peak,
        capacity_bytes=device.global_memory_bytes,
        oom=oom,
    )


def dominant_allocation(timeline: MemoryTimeline) -> MemoryEvent:
    """The single largest allocation — what to shrink first when a
    configuration does not fit."""
    if not timeline.events:
        raise ValueError("timeline has no events")
    return max(timeline.events, key=lambda e: e.size_bytes)
