"""Shared analytic-evaluation cache.

Every consumer of the performance model — the Fig. 3 runtime sweeps,
the Fig. 5 memory sweeps, the Fig. 6 metric profiles, the advisor and
the serving scheduler — needs the same pure derivation per
``(implementation, configuration, device)`` point: kernel plan →
occupancy → roofline timing → peak memory → profiler metrics.  Before
this module each pipeline re-derived it privately (and PR 1's serving
plan cache memoized only its own rankings), so a full study evaluated
identical points many times over.

:func:`evaluate` is the single entry point.  It returns an
:class:`EvalRecord` — the complete analytic evaluation, content-
addressed by :func:`cache_key` over the implementation name, every
:class:`~repro.config.ConvConfig` field and the device name — from the
process-wide :class:`EvalCache` (hit) or by running the model once
(miss).  Records are plain frozen values: JSON-serializable for the
optional on-disk store under ``benchmarks/results/``, picklable for
the :mod:`repro.core.parallel` process pool, and rich enough to answer
every downstream question (runtime, peak memory/OOM, per-kernel
timings, runtime-weighted Fig. 6 metric summaries) without touching
the model again.

Thread safety: the cache takes a lock around its dictionary, and the
underlying model layers are either pure or memoized with thread-safe
``lru_cache``, so :class:`repro.core.parallel.SweepExecutor` workers
may evaluate concurrently.
"""

from __future__ import annotations

import json
import math
import os
import threading
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..config import ConvConfig
from ..errors import DeviceOOMError
from ..frameworks.base import ConvImplementation
from ..gpusim.device import DEVICES, DeviceSpec, K40C, spec_digest
from ..gpusim.metrics import MetricSummary, weighted_summary
from ..obs.context import get_obs

#: Bump when the analytic model or the record layout changes in a way
#: that invalidates stored records; keys embed it, so stale disk
#: stores miss instead of serving wrong data.  v2: keys carry the
#: device-spec digest, not just the display name.
EVALCACHE_VERSION = 2


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelRecord:
    """One kernel launch of an evaluation: name, role and the timing /
    metric row the profiler derived.

    Freshly computed records carry the profiler's own
    :class:`~repro.gpusim.timing.KernelTiming` rows (no copying on the
    hot path); records loaded from a JSON store carry these instead.
    Metric field names match ``KernelTiming`` so
    :func:`~repro.gpusim.metrics.weighted_summary` aggregates either
    type interchangeably."""

    name: str
    role: str
    time_s: float
    achieved_occupancy: float
    ipc: float
    warp_execution_efficiency: float
    gld_efficiency: float
    gst_efficiency: float
    shared_efficiency: float
    shared_load_bank_conflicts: int
    shared_store_bank_conflicts: int


_KERNEL_ROW_FIELDS = ("time_s", "achieved_occupancy", "ipc",
                      "warp_execution_efficiency", "gld_efficiency",
                      "gst_efficiency", "shared_efficiency",
                      "shared_load_bank_conflicts",
                      "shared_store_bank_conflicts")


def _kernel_row(kernel) -> dict:
    """JSON row for one kernel (KernelTiming or KernelRecord)."""
    row = {f: getattr(kernel, f) for f in _KERNEL_ROW_FIELDS}
    if isinstance(kernel, KernelRecord):
        row["name"], row["role"] = kernel.name, kernel.role
    else:
        row["name"], row["role"] = kernel.spec.name, kernel.spec.role.value
    return row


@dataclass(frozen=True)
class EvalRecord:
    """The full analytic evaluation of one (implementation, config,
    device) point."""

    implementation: str          # registry name, e.g. "cudnn"
    paper_name: str              # figure label, e.g. "cuDNN"
    config: ConvConfig
    device: str
    supported: bool
    #: Total simulated training-iteration time (None if unsupported).
    time_s: Optional[float]
    gpu_time_s: Optional[float]
    transfer_time_s: Optional[float]
    exposed_transfer_s: Optional[float]
    #: Peak device footprint (None if unsupported or OOM).
    peak_memory_bytes: Optional[int]
    oom: bool
    #: requested + in-use bytes at the OOM, when ``oom`` is True.
    oom_bytes: Optional[int]
    #: Per-kernel rows: ``KernelTiming`` when computed in-process (the
    #: profiler's own objects, shared not copied), ``KernelRecord``
    #: when loaded from a JSON store.  Both shapes feed
    #: :func:`~repro.gpusim.metrics.weighted_summary`.
    kernels: Tuple[object, ...]

    def summary(self, top_n: Optional[int] = None) -> MetricSummary:
        """Runtime-weighted Fig. 6 metric estimate, recomputed from the
        cached per-kernel rows (any ``top_n``)."""
        if not self.kernels:
            raise ValueError(
                f"no kernel records for {self.implementation} (unsupported?)")
        return weighted_summary(self.kernels, top_n=top_n)

    # -- JSON (disk store) -------------------------------------------------

    def to_dict(self) -> dict:
        d = {
            "implementation": self.implementation,
            "paper_name": self.paper_name,
            "config": {
                "batch": self.config.batch,
                "input_size": self.config.input_size,
                "filters": self.config.filters,
                "kernel_size": self.config.kernel_size,
                "stride": self.config.stride,
                "channels": self.config.channels,
                "padding": self.config.padding,
            },
            "device": self.device,
            "supported": self.supported,
            "time_s": self.time_s,
            "gpu_time_s": self.gpu_time_s,
            "transfer_time_s": self.transfer_time_s,
            "exposed_transfer_s": self.exposed_transfer_s,
            "peak_memory_bytes": self.peak_memory_bytes,
            "oom": self.oom,
            "oom_bytes": self.oom_bytes,
            "kernels": [_kernel_row(k) for k in self.kernels],
        }
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "EvalRecord":
        return cls(
            implementation=d["implementation"],
            paper_name=d["paper_name"],
            config=ConvConfig(**d["config"]),
            device=d["device"],
            supported=d["supported"],
            time_s=d["time_s"],
            gpu_time_s=d["gpu_time_s"],
            transfer_time_s=d["transfer_time_s"],
            exposed_transfer_s=d["exposed_transfer_s"],
            peak_memory_bytes=d["peak_memory_bytes"],
            oom=d["oom"],
            oom_bytes=d["oom_bytes"],
            kernels=tuple(KernelRecord(**k) for k in d["kernels"]),
        )


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------

def config_key(config: ConvConfig) -> str:
    """Canonical content key of one configuration: every field, in a
    fixed order, so equal-but-distinct instances key identically."""
    return (f"b{config.batch}.i{config.input_size}.f{config.filters}"
            f".k{config.kernel_size}.s{config.stride}"
            f".c{config.channels}.p{config.padding}")


def device_key(device: Union[DeviceSpec, str]) -> str:
    """Cache-key component naming a device *identity*, not a label.

    ``name@digest``, with the digest covering every spec field
    (:func:`~repro.gpusim.device.spec_digest`).  Two profiles that
    model different hardware under the same display name therefore key
    differently, so a record computed on one can never serve the other
    — the cross-device isolation the devices subsystem relies on.  A
    bare name resolves through the catalogue
    (:data:`~repro.gpusim.device.DEVICES`) so spec and string spellings
    of the same device stay interchangeable; an unknown label has no
    spec to digest and keys on the label alone.
    """
    if not isinstance(device, DeviceSpec):
        spec = DEVICES.get(device)
        if spec is None:
            return device
        device = spec
    return f"{device.name}@{spec_digest(device)}"


def cache_key(implementation: str, config: ConvConfig,
              device: Union[DeviceSpec, str]) -> str:
    """Content-addressed key of one evaluation point."""
    return (f"v{EVALCACHE_VERSION}|{implementation}|{config_key(config)}"
            f"|{device_key(device)}")


# ---------------------------------------------------------------------------
# the model run (cache-miss path)
# ---------------------------------------------------------------------------

def compute_record(impl: ConvImplementation, config: ConvConfig,
                   device: DeviceSpec = K40C) -> EvalRecord:
    """Run the analytic model once and freeze the result (no cache)."""
    if not impl.supports(config):
        return EvalRecord(
            implementation=impl.name, paper_name=impl.paper_name,
            config=config, device=device.name, supported=False,
            time_s=None, gpu_time_s=None, transfer_time_s=None,
            exposed_transfer_s=None, peak_memory_bytes=None,
            oom=False, oom_bytes=None, kernels=())
    profile = impl.profile_iteration(config, device)
    kernels = tuple(profile.profiler.timings())
    try:
        peak: Optional[int] = impl.peak_memory_bytes(config, device)
        oom, oom_bytes = False, None
    except DeviceOOMError as e:
        peak, oom, oom_bytes = None, True, e.requested + e.in_use
    return EvalRecord(
        implementation=impl.name, paper_name=impl.paper_name,
        config=config, device=device.name, supported=True,
        time_s=profile.total_time_s, gpu_time_s=profile.gpu_time_s,
        transfer_time_s=profile.transfer_time_s,
        exposed_transfer_s=profile.exposed_transfer_s,
        peak_memory_bytes=peak, oom=oom, oom_bytes=oom_bytes,
        kernels=kernels)


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

class EvalCache:
    """Process-wide content-addressed store of :class:`EvalRecord`.

    Unbounded by design: the paper's whole sweep space is a few hundred
    points and a record is ~2 kB, so eviction would only cost rework.
    An optional JSON store (``path``) makes repeat CLI runs warm-start;
    loading tolerates missing/stale files (version-mismatched keys
    simply never match).
    """

    def __init__(self, path: Optional[str] = None):
        self._store: Dict[str, EvalRecord] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.path = path
        if path and os.path.exists(path):
            self.load(path)

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    # -- storage -----------------------------------------------------------

    def get(self, key: str) -> Optional[EvalRecord]:
        """Record for ``key`` or None; counts a hit or a miss."""
        with self._lock:
            record = self._store.get(key)
            if record is None:
                self.misses += 1
            else:
                self.hits += 1
            return record

    def peek(self, key: str) -> Optional[EvalRecord]:
        """Like :meth:`get` but without touching the counters."""
        with self._lock:
            return self._store.get(key)

    def put(self, record: EvalRecord, key: Optional[str] = None) -> None:
        if key is None:
            key = cache_key(record.implementation, record.config,
                            record.device)
        with self._lock:
            self._store[key] = record

    # -- evaluation --------------------------------------------------------

    def evaluate(self, impl: ConvImplementation, config: ConvConfig,
                 device: DeviceSpec = K40C) -> EvalRecord:
        """One evaluation point: cache hit or a single model run."""
        key = cache_key(impl.name, config, device)
        record = self.get(key)
        if record is not None:
            return record
        record = compute_record(impl, config, device)
        with self._lock:
            self._store[key] = record
        return record

    # -- disk store --------------------------------------------------------

    def save(self, path: Optional[str] = None) -> str:
        """Write all records as one JSON document; returns the path."""
        path = path or self.path
        if not path:
            raise ValueError("no path given and none configured")
        with self._lock:
            payload = {
                "version": EVALCACHE_VERSION,
                "records": {k: r.to_dict() for k, r in self._store.items()},
            }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
        return path

    def load(self, path: str) -> int:
        """Merge records from a JSON store; returns how many loaded.

        A store that cannot be trusted — truncated or corrupt JSON,
        malformed records, or a different ``EVALCACHE_VERSION`` — is
        *quarantined*: renamed to ``<path>.bad`` with a warning, and
        the cache warm-starts empty.  A damaged disk store must never
        crash a run (nor silently keep resurfacing on every run).
        """
        try:
            with open(path) as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("store root is not an object")
            if payload.get("version") != EVALCACHE_VERSION:
                raise ValueError(
                    f"store version {payload.get('version')!r} != "
                    f"{EVALCACHE_VERSION}")
            records = {k: EvalRecord.from_dict(d)
                       for k, d in payload["records"].items()}
        except OSError as exc:
            warnings.warn(f"eval cache store {path!r} unreadable "
                          f"({exc}); starting empty")
            return 0
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            self._quarantine(path, str(exc))
            return 0
        with self._lock:
            self._store.update(records)
        return len(records)

    @staticmethod
    def _quarantine(path: str, reason: str) -> None:
        """Move a damaged store aside (``<path>.bad``) and warn."""
        bad = f"{path}.bad"
        try:
            os.replace(path, bad)
            moved = f"quarantined to {bad!r}"
        except OSError as exc:   # pragma: no cover - racing FS trouble
            moved = f"could not quarantine ({exc})"
        warnings.warn(f"eval cache store {path!r} is unusable ({reason}); "
                      f"{moved}; starting empty")


# ---------------------------------------------------------------------------
# process-wide default + entry point
# ---------------------------------------------------------------------------

_default_cache = EvalCache()
_default_lock = threading.Lock()


def get_cache() -> EvalCache:
    """The process-wide shared cache."""
    return _default_cache


def set_cache(cache: EvalCache) -> EvalCache:
    """Swap the process-wide cache (returns the previous one)."""
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
        return previous


def reset_cache() -> None:
    """Drop every record and counter in the process-wide cache."""
    _default_cache.clear()


#: ``cache=DISABLED`` bypasses caching entirely (every call recomputes).
DISABLED = False

#: What pipeline functions accept: the shared default (None), a
#: specific cache instance, or DISABLED.
CacheArg = Union[None, EvalCache, bool]


def resolve_cache(cache: CacheArg) -> Optional[EvalCache]:
    """Map a pipeline ``cache=`` argument onto an actual cache."""
    if cache is None:
        return get_cache()
    if cache is DISABLED:
        return None
    return cache


_REGISTRY_CLASSES: Optional[frozenset] = None


def cacheable(impl: ConvImplementation, device: DeviceSpec) -> bool:
    """Whether a point may enter the shared store.

    Keys are *names*, so only the seven registry implementations and
    the catalogued devices are content-addressable.  A test double
    named ``"cudnn"`` or an ad-hoc :class:`DeviceSpec` reusing a
    catalogue name would poison the store for every other consumer —
    such points are computed directly instead.
    """
    global _REGISTRY_CLASSES
    if _REGISTRY_CLASSES is None:
        from ..frameworks.registry import IMPLEMENTATION_CLASSES
        _REGISTRY_CLASSES = frozenset(IMPLEMENTATION_CLASSES)
    if type(impl) not in _REGISTRY_CLASSES:
        return False
    known = DEVICES.get(device.name)
    return known is device or known == device


# ---------------------------------------------------------------------------
# dispatch memo (serving fast path)
# ---------------------------------------------------------------------------

class DispatchMemo:
    """In-process memo of a batch's device memory plan.

    The serving scheduler's dispatch loop re-derives the same memory
    plan — ``impl.memory_plan(config)`` plus per-buffer 512-byte
    rounding — for the same ``(shape, batch, implementation, device)``
    point on every batch; a million-request run repeats a few dozen
    points hundreds of thousands of times.  This memo caches the
    *rounded* buffer sizes (and their sum) so a memo hit replays the
    allocation episode through
    :meth:`~repro.gpusim.allocator.DeviceAllocator.replay_transient`
    without touching the adapter or constructing buffers.

    Keys carry a *fault-window epoch* (the serving plan cache's
    corruption count): a fault plan that corrupts cached plans bumps
    the epoch, so post-corruption dispatches recompute from the adapter
    exactly as the unmemoized path would.  Entries are pure values —
    the memo changes host wall-time only, never simulated time, stats
    or traces; its own hit/miss counters deliberately stay out of the
    metrics registry so memo-on and memo-off runs export byte-identical
    reports.
    """

    def __init__(self) -> None:
        self._store: Dict[tuple, Tuple[Tuple[int, ...], int]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def memory_plan(self, key: tuple, impl: ConvImplementation,
                    config: ConvConfig) -> Tuple[Tuple[int, ...], int]:
        """``(rounded_sizes, total_rounded)`` for one dispatch point.

        ``key`` is the caller's full memo key — shape, batch,
        implementation, device and epoch; ``impl``/``config`` are only
        consulted on a miss.
        """
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            from ..gpusim.allocator import ALLOC_GRANULARITY
            # Identical rounding expression to DeviceAllocator.alloc().
            sizes = tuple(
                math.ceil(size / ALLOC_GRANULARITY) * ALLOC_GRANULARITY
                for _tag, size in impl.memory_plan(config) if size > 0)
            entry = self._store[key] = (sizes, sum(sizes))
        else:
            self.hits += 1
        return entry


def evaluate(impl: ConvImplementation, config: ConvConfig,
             device: DeviceSpec = K40C,
             cache: CacheArg = None) -> EvalRecord:
    """Evaluate one point through the shared cache.

    ``cache``: None → the process-wide cache; an :class:`EvalCache` →
    that instance; :data:`DISABLED` → compute without caching.
    Uncacheable points (see :func:`cacheable`) always compute.

    Every call reports into the active observability context
    (:mod:`repro.obs`): an ``evalcache.evaluate`` span and one tick of
    ``evalcache_requests_total{result="hit"|"miss"|"uncached"}``,
    labeled with the device *identity* (``device="name@digest"``) so
    mixed-fleet telemetry rollups split cache traffic per device class.
    """
    resolved = resolve_cache(cache)
    obs = get_obs()
    with obs.tracer.span("evalcache.evaluate", cat="evalcache",
                         implementation=impl.name) as sp:
        if resolved is None or not cacheable(impl, device):
            result = "uncached"
            record = compute_record(impl, config, device)
        else:
            key = cache_key(impl.name, config, device)
            record = resolved.get(key)
            result = "hit" if record is not None else "miss"
            if record is None:
                record = compute_record(impl, config, device)
                resolved.put(record, key)
        sp.annotate(result=result, config=config_key(config),
                    time_s=record.time_s)
    obs.registry.counter("evalcache_requests_total", result=result,
                         device=device_key(device)).inc()
    return record
