"""ASCII rendering for the analysis harness.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "",
          floatfmt: str = "{:.2f}") -> str:
    """Render a simple fixed-width table."""
    if not headers:
        raise ValueError("table needs headers")
    def fmt(cell):
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series(x_label: str, xs: Sequence, columns: Mapping[str, Sequence[Optional[float]]],
           title: str = "", floatfmt: str = "{:.2f}",
           missing: str = "-") -> str:
    """Render sweep results: one x column plus one column per series.

    ``None`` entries (unsupported configurations, e.g. cuda-convnet2
    off its shape grid) print as ``missing`` — the "dots" of
    Fig. 3(c).
    """
    headers = [x_label] + list(columns)
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in columns:
            v = columns[name][i]
            row.append(missing if v is None else floatfmt.format(v))
        rows.append(row)
    return table(headers, rows, title=title, floatfmt=floatfmt)


def bar_breakdown(shares: Mapping[str, float], width: int = 40,
                  title: str = "") -> str:
    """Render a share dict (values summing to ~1) as labelled bars —
    the stacked bars of Figs. 2 and 4 in text form."""
    lines = [title] if title else []
    for name, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        n = max(int(round(share * width)), 0)
        lines.append(f"{name:>28s} {share * 100:6.2f}% |{'#' * n}")
    return "\n".join(lines)


def ascii_plot(xs: Sequence[float], columns: Mapping[str, Sequence[Optional[float]]],
               width: int = 64, height: int = 16, title: str = "",
               logy: bool = False) -> str:
    """Render sweep series as an ASCII line chart.

    Each series is drawn with its own marker letter; ``None`` points
    (unsupported configurations) are simply absent — the textual
    equivalent of the dots and gaps in the paper's figures.
    """
    import math as _math

    if width < 8 or height < 4:
        raise ValueError("plot too small")
    values = [v for col in columns.values() for v in col if v is not None]
    if not values or len(xs) < 2:
        raise ValueError("nothing to plot")

    def ty(v: float) -> float:
        return _math.log10(v) if logy else v

    lo = min(ty(v) for v in values if not logy or v > 0)
    hi = max(ty(v) for v in values if not logy or v > 0)
    span = (hi - lo) or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnop"
    legend = []
    for mi, (name, col) in enumerate(columns.items()):
        mark = markers[mi % len(markers)]
        legend.append(f"{mark}={name}")
        for x, v in zip(xs, col):
            if v is None or (logy and v <= 0):
                continue
            cx = int(round((x - x_lo) / x_span * (width - 1)))
            cy = int(round((ty(v) - lo) / span * (height - 1)))
            grid[height - 1 - cy][cx] = mark

    top = f"{(10 ** hi if logy else hi):.4g}"
    bottom = f"{(10 ** lo if logy else lo):.4g}"
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = top if r == 0 else (bottom if r == height - 1 else "")
        lines.append(f"{label:>10s} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11s}{x_lo:<10g}{'':^{max(width - 20, 1)}}{x_hi:>8g}")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)
