"""Model-consistency audits.

The performance model's credibility rests on internal bookkeeping
being exact: every implementation's kernel plan must carry the same
mathematical work the configuration implies, its memory plan must
contain the mandatory tensors, and its numerics must agree with the
reference.  This module packages those audits as library functions, so
a user extending the framework zoo (e.g. the Winograd what-if adapter)
can validate an adapter the way the built-in test-suite does::

    from repro.core.validation import audit_implementation
    report = audit_implementation(MyAdapter(), config)
    assert report.ok, report.render()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import ConvConfig
from ..conv.reference import conv2d_reference
from ..frameworks.base import ConvImplementation, Strategy
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.kernels import KernelRole
from ..rng import make_rng


@dataclass
class AuditReport:
    """Outcome of one implementation audit."""

    implementation: str
    config: ConvConfig
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(name)
        if not passed:
            self.failures.append(f"{name}: {detail}" if detail else name)

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"audit of {self.implementation} at {self.config.tuple5}: "
                 f"{status} ({len(self.checks)} checks)"]
        lines.extend(f"  FAIL {f}" for f in self.failures)
        return "\n".join(lines)


#: Roles that perform the convolution arithmetic itself.
_WORK_ROLES = {KernelRole.GEMM, KernelRole.CGEMM, KernelRole.DIRECT_CONV,
               KernelRole.FFT, KernelRole.FFT_INVERSE}


def audit_flops(impl: ConvImplementation, config: ConvConfig,
                report: AuditReport) -> None:
    """The plan's arithmetic must be plausibly anchored to the config:
    at least the direct-algorithm FLOPs for spatial strategies, and not
    absurdly more; FFT plans must carry *fewer* FLOPs for large kernels
    (that is their whole point)."""
    plan = impl.kernel_plan(config)
    work = sum(s.total_flops for s in plan if s.role in _WORK_ROLES)
    direct = config.training_flops
    if impl.strategy is Strategy.FFT:
        report.record("fft-flops-bounded", 0 < work < 12 * direct,
                      f"work {work:.3g} vs direct {direct:.3g}")
        if config.kernel_size >= 11:
            report.record("fft-beats-direct-arithmetic", work < direct,
                          f"work {work:.3g} vs direct {direct:.3g}")
    else:
        # Transform-domain spatial strategies (Winograd F(2x2,3x3))
        # legitimately carry as little as direct/2.25 multiplication
        # work; nothing spatial may be cheaper than direct/3.
        report.record("spatial-flops-anchored",
                      direct / 3.0 <= work <= 2.0 * direct,
                      f"work {work:.3g} vs direct {direct:.3g}")


def audit_memory(impl: ConvImplementation, config: ConvConfig,
                 report: AuditReport) -> None:
    """The memory plan must hold the mandatory tensors, exactly
    sized."""
    plan = dict(impl.memory_plan(config))
    b, i, f, k, _ = config.tuple5
    c = config.channels
    o = config.output_size
    expected = {
        "input": b * c * i * i * 4,
        "weights": f * c * k * k * 4,
        "output": b * f * o * o * 4,
        "weight_grad": f * c * k * k * 4,
    }
    for tag, size in expected.items():
        report.record(f"memory-{tag}", plan.get(tag) == size,
                      f"expected {size}, got {plan.get(tag)}")
    report.record("memory-all-positive",
                  all(v >= 0 for v in plan.values()))


def audit_numerics(impl: ConvImplementation, config: Optional[ConvConfig],
                   report: AuditReport, rng=None) -> None:
    """Forward numerics vs the naive reference on a small surrogate
    satisfying every implementation's constraints."""
    gen = make_rng(rng)
    x = gen.standard_normal((32, 3, 8, 8))
    w = gen.standard_normal((16, 3, 3, 3))
    try:
        got = impl.forward(x, w)
        want = conv2d_reference(x, w)
        close = np.allclose(got, want, rtol=1e-5, atol=1e-6)
        report.record("numerics-forward", close,
                      "forward deviates from reference")
    except Exception as exc:  # pragma: no cover - defensive
        report.record("numerics-forward", False, repr(exc))


def audit_timing(impl: ConvImplementation, config: ConvConfig,
                 report: AuditReport, device: DeviceSpec = K40C) -> None:
    """Every kernel must time positively; the iteration must not be
    absurd (sub-microsecond or above ten seconds) for paper-scale
    configs."""
    profile = impl.profile_iteration(config, device)
    report.record("timing-positive",
                  all(t.time_s > 0 for t in profile.profiler.timings()))
    report.record("timing-sane", 1e-6 < profile.total_time_s < 10.0,
                  f"iteration {profile.total_time_s}s")
    report.record("transfer-fraction-bounded",
                  0.0 <= profile.transfer_fraction < 1.0)


def audit_implementation(impl: ConvImplementation, config: ConvConfig,
                         device: DeviceSpec = K40C,
                         check_numerics: bool = True) -> AuditReport:
    """Run the full audit battery against one implementation."""
    report = AuditReport(implementation=impl.paper_name or impl.name,
                         config=config)
    if not impl.supports(config):
        report.record("supports-config", False,
                      "implementation rejects this configuration")
        return report
    audit_flops(impl, config, report)
    audit_memory(impl, config, report)
    audit_timing(impl, config, report, device)
    if check_numerics and impl.supports(
            ConvConfig(batch=32, input_size=8, filters=16, kernel_size=3,
                       channels=3)):
        audit_numerics(impl, config, report)
    return report


def audit_all(config: ConvConfig, device: DeviceSpec = K40C) -> List[AuditReport]:
    """Audit the paper's seven implementations at one configuration."""
    from ..frameworks.registry import all_implementations

    return [audit_implementation(impl, config, device)
            for impl in all_implementations() if impl.supports(config)]
