"""CPU-GPU data-transfer overhead (paper Fig. 7, section V-D).

For the five Table-I configurations, measure the share of each
implementation's iteration time spent on *exposed* transfers (copies
that asynchronous prefetching could not hide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import TABLE1_CONFIGS, ConvConfig
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from .report import table


@dataclass(frozen=True)
class TransferRow:
    """Transfer overhead of one (implementation, config) pair."""

    implementation: str
    config_name: str
    config: ConvConfig
    transfer_fraction: float     # of total iteration time
    transfer_time_s: float       # exposed transfer time
    total_time_s: float


def transfer_overhead_profile(configs: Optional[Dict[str, ConvConfig]] = None,
                              implementations: Optional[Sequence[ConvImplementation]] = None,
                              device: DeviceSpec = K40C) -> List[TransferRow]:
    """Reproduce Fig. 7."""
    configs = configs or TABLE1_CONFIGS
    impls = list(implementations) if implementations else all_implementations()
    rows: List[TransferRow] = []
    for cname, config in configs.items():
        for impl in impls:
            if not impl.supports(config):
                continue
            p = impl.profile_iteration(config, device)
            rows.append(TransferRow(
                implementation=impl.paper_name,
                config_name=cname,
                config=config,
                transfer_fraction=p.transfer_fraction,
                transfer_time_s=p.exposed_transfer_s,
                total_time_s=p.total_time_s,
            ))
    return rows


def render_transfer_rows(rows: Sequence[TransferRow]) -> str:
    """Fig. 7 as a table: configs x implementations, percent of
    runtime spent on exposed transfers."""
    by_config: Dict[str, Dict[str, float]] = {}
    impls: List[str] = []
    for r in rows:
        by_config.setdefault(r.config_name, {})[r.implementation] = (
            r.transfer_fraction * 100.0)
        if r.implementation not in impls:
            impls.append(r.implementation)
    body = []
    for cname, vals in by_config.items():
        body.append([cname] + [vals.get(i, float("nan")) for i in impls])
    return table(["Config"] + impls, body,
                 title="Fig. 7 — data-transfer overhead (% of iteration)",
                 floatfmt="{:.1f}")
