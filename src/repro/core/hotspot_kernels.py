"""Hotspot-kernel analysis (paper Fig. 4, section V-A).

For one configuration — the paper uses the base tuple
``(64, 128, 64, 11, 1)`` — profile each implementation's kernel plan
and group kernels "who have the same functionalities into one"
(GEMM, im2col, col2im, FFT, transpose, CGEMM, direct conv, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import BASE_CONFIG, ConvConfig
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.kernels import KernelRole
from .report import bar_breakdown

#: The canonical kernel-role taxonomy every layer of the repo shares:
#: Fig-4 groupings here, trace leaves in :mod:`repro.obs.analyze`, and
#: the per-role drift attribution in :mod:`repro.obs.diff` all key on
#: these exact strings.  A role outside this tuple is a taxonomy bug.
CANONICAL_ROLES = tuple(role.value for role in KernelRole)


@dataclass(frozen=True)
class KernelBreakdown:
    """Runtime shares of one implementation's kernels."""

    implementation: str
    config: ConvConfig
    #: kernel-role group -> runtime fraction.
    role_shares: Dict[str, float]
    #: individual kernel name -> runtime fraction.
    kernel_shares: Dict[str, float]
    total_time_s: float

    def dominant_role(self) -> str:
        return max(self.role_shares, key=lambda k: self.role_shares[k])

    def render(self) -> str:
        return bar_breakdown(
            self.kernel_shares,
            title=f"Fig. 4 — {self.implementation} at {self.config.tuple5} "
                  f"({self.total_time_s * 1000:.1f} ms)")


def hotspot_kernel_analysis(config: ConvConfig = BASE_CONFIG,
                            implementations: Optional[Sequence[ConvImplementation]] = None,
                            device: DeviceSpec = K40C) -> List[KernelBreakdown]:
    """Reproduce Fig. 4 for every implementation that supports
    ``config``."""
    impls = list(implementations) if implementations else all_implementations()
    results = []
    for impl in impls:
        if not impl.supports(config):
            continue
        profile = impl.profile_iteration(config, device)
        results.append(KernelBreakdown(
            implementation=impl.paper_name,
            config=config,
            role_shares=profile.profiler.hotspot_roles(),
            kernel_shares=profile.profiler.hotspot_kernels(),
            total_time_s=profile.gpu_time_s,
        ))
    return results
