"""Largest-batch advisor.

A practical question the paper's memory study (Fig. 5) sets up but
does not answer: *what is the biggest mini-batch each implementation
can actually train at on the 12 GB card?*  Binary search over the
allocator's OOM boundary answers it exactly, and explains, e.g., why
fbfft users of the era trained with smaller batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import ConvConfig
from ..errors import DeviceOOMError
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from .report import table


def fits(impl: ConvImplementation, config: ConvConfig,
         device: DeviceSpec = K40C) -> bool:
    """Can the configuration's working set live on the device?"""
    if not impl.supports(config):
        return False
    try:
        impl.peak_memory_bytes(config, device)
        return True
    except DeviceOOMError:
        return False


def max_batch(impl: ConvImplementation, template: ConvConfig,
              device: DeviceSpec = K40C, limit: int = 65536,
              granularity: int = 32) -> Optional[int]:
    """Largest batch (multiple of ``granularity``) that fits.

    ``granularity`` defaults to 32 so the answer also satisfies
    cuda-convnet2's shape rule.  Returns ``None`` when even one
    granule does not fit or the shape is unsupported.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    if limit < granularity:
        raise ValueError("limit smaller than granularity")
    lo = granularity
    if not fits(impl, template.scaled(batch=lo), device):
        return None
    hi = lo
    while hi < limit and fits(impl, template.scaled(batch=min(hi * 2, limit)),
                              device):
        hi = min(hi * 2, limit)
        if hi == limit:
            break
    if hi >= limit:
        return limit - limit % granularity
    # Binary search in (hi, 2*hi]: largest fitting multiple.
    lo_fit, hi_fail = hi, min(hi * 2, limit)
    while hi_fail - lo_fit > granularity:
        mid = (lo_fit + hi_fail) // 2
        mid -= mid % granularity
        if mid <= lo_fit:
            break
        if fits(impl, template.scaled(batch=mid), device):
            lo_fit = mid
        else:
            hi_fail = mid
    return lo_fit


@dataclass(frozen=True)
class BatchCapacity:
    implementation: str
    max_batch: Optional[int]


def batch_capacities(template: ConvConfig,
                     implementations: Optional[Sequence[ConvImplementation]] = None,
                     device: DeviceSpec = K40C) -> List[BatchCapacity]:
    """Largest trainable batch per implementation for one layer
    geometry."""
    impls = list(implementations) if implementations else all_implementations()
    return [BatchCapacity(impl.paper_name,
                          max_batch(impl, template, device))
            for impl in impls]


def render_capacities(template: ConvConfig,
                      rows: Sequence[BatchCapacity]) -> str:
    body = [[r.implementation,
             "-" if r.max_batch is None else r.max_batch] for r in rows]
    return table(["Implementation", "Max batch"], body,
                 title=f"Largest trainable mini-batch at "
                       f"i={template.input_size}, f={template.filters}, "
                       f"k={template.kernel_size}, c={template.channels} "
                       f"on 12 GB")
