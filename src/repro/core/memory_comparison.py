"""Peak-memory comparison (paper Fig. 5, section V-B).

Replays each implementation's allocation plan through the device
allocator for the same five sweeps as the runtime comparison and
records the peak footprint — the number ``nvidia-smi`` showed the
paper's authors.  Configurations an implementation cannot run (shape
limits) or cannot *fit* (OOM — "abnormal memory usage can lead to
program crush") record ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import SWEEPS, ConvConfig, sweep_configs
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from .evalcache import CacheArg
from .parallel import make_executor
from .report import series
from .runtime_comparison import _X_OF


@dataclass(frozen=True)
class MemoryPoint:
    """Peak memory of one (implementation, config) pair."""

    implementation: str
    config: ConvConfig
    peak_bytes: Optional[int]  # None = unsupported or OOM
    oom: bool = False


@dataclass
class MemorySweepResult:
    """All implementations' peaks over one sweep."""

    sweep: str
    xs: List[int]
    configs: List[ConvConfig]
    peaks: Dict[str, List[Optional[int]]]
    ooms: Dict[str, List[bool]]

    def render(self) -> str:
        columns = {
            name: [None if p is None else p / 2**20 for p in col]
            for name, col in self.peaks.items()
        }
        return series(self.sweep, self.xs, columns,
                      title=f"Fig. 5 ({self.sweep} sweep) — peak GPU memory [MB]",
                      floatfmt="{:.0f}")


def memory_sweep(sweep: str,
                 implementations: Optional[Sequence[ConvImplementation]] = None,
                 device: DeviceSpec = K40C,
                 workers: Optional[int] = None,
                 cache: CacheArg = None) -> MemorySweepResult:
    """Run one of the five Fig. 5 sweeps.

    Shares evaluation records with the runtime and metric pipelines
    through :mod:`repro.core.evalcache` — a sweep that Fig. 3 already
    visited re-derives nothing.
    """
    if sweep not in SWEEPS:
        raise KeyError(f"unknown sweep {sweep!r}; options: {sorted(SWEEPS)}")
    impls = list(implementations) if implementations else all_implementations()
    configs = sweep_configs(sweep)
    xs = [_X_OF[sweep](c) for c in configs]
    grid = make_executor(workers).map_grid(impls, configs, device, cache=cache)
    peaks = {impl.paper_name: [r.peak_memory_bytes for r in grid[impl.name]]
             for impl in impls}
    ooms = {impl.paper_name: [r.oom for r in grid[impl.name]]
            for impl in impls}
    return MemorySweepResult(sweep=sweep, xs=xs, configs=configs,
                             peaks=peaks, ooms=ooms)


def all_memory_sweeps(device: DeviceSpec = K40C,
                      workers: Optional[int] = None,
                      cache: CacheArg = None) -> Dict[str, MemorySweepResult]:
    """All five sweeps of Fig. 5."""
    return {name: memory_sweep(name, device=device, workers=workers,
                               cache=cache)
            for name in SWEEPS}
