"""Peak-memory comparison (paper Fig. 5, section V-B).

Replays each implementation's allocation plan through the device
allocator for the same five sweeps as the runtime comparison and
records the peak footprint — the number ``nvidia-smi`` showed the
paper's authors.  Configurations an implementation cannot run (shape
limits) or cannot *fit* (OOM — "abnormal memory usage can lead to
program crush") record ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import SWEEPS, ConvConfig, sweep_configs
from ..errors import DeviceOOMError
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from .report import series
from .runtime_comparison import _X_OF


@dataclass(frozen=True)
class MemoryPoint:
    """Peak memory of one (implementation, config) pair."""

    implementation: str
    config: ConvConfig
    peak_bytes: Optional[int]  # None = unsupported or OOM
    oom: bool = False


@dataclass
class MemorySweepResult:
    """All implementations' peaks over one sweep."""

    sweep: str
    xs: List[int]
    configs: List[ConvConfig]
    peaks: Dict[str, List[Optional[int]]]
    ooms: Dict[str, List[bool]]

    def render(self) -> str:
        columns = {
            name: [None if p is None else p / 2**20 for p in col]
            for name, col in self.peaks.items()
        }
        return series(self.sweep, self.xs, columns,
                      title=f"Fig. 5 ({self.sweep} sweep) — peak GPU memory [MB]",
                      floatfmt="{:.0f}")


def memory_sweep(sweep: str,
                 implementations: Optional[Sequence[ConvImplementation]] = None,
                 device: DeviceSpec = K40C) -> MemorySweepResult:
    """Run one of the five Fig. 5 sweeps."""
    if sweep not in SWEEPS:
        raise KeyError(f"unknown sweep {sweep!r}; options: {sorted(SWEEPS)}")
    impls = list(implementations) if implementations else all_implementations()
    configs = sweep_configs(sweep)
    xs = [_X_OF[sweep](c) for c in configs]
    peaks: Dict[str, List[Optional[int]]] = {}
    ooms: Dict[str, List[bool]] = {}
    for impl in impls:
        col: List[Optional[int]] = []
        oom_col: List[bool] = []
        for config in configs:
            if not impl.supports(config):
                col.append(None)
                oom_col.append(False)
                continue
            try:
                col.append(impl.peak_memory_bytes(config, device))
                oom_col.append(False)
            except DeviceOOMError:
                col.append(None)
                oom_col.append(True)
        peaks[impl.paper_name] = col
        ooms[impl.paper_name] = oom_col
    return MemorySweepResult(sweep=sweep, xs=xs, configs=configs,
                             peaks=peaks, ooms=ooms)


def all_memory_sweeps(device: DeviceSpec = K40C) -> Dict[str, MemorySweepResult]:
    """All five sweeps of Fig. 5."""
    return {name: memory_sweep(name, device=device) for name in SWEEPS}
