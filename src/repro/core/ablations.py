"""Ablation studies over the simulator's own design choices.

DESIGN.md calls out several modelling decisions whose effect on the
reproduced figures should be measurable, not asserted.  Each ablation
here re-runs a headline result with one mechanism altered and reports
the delta — exercised by ``benchmarks/bench_ablations.py``:

* **gradient-buffer policy** — Caffe-style separate data/diff blobs vs
  Torch-style in-place gradients drives the ~2x memory split of
  Fig. 5;
* **pow-2 vs smooth FFT padding** — the source of fbfft's memory
  fluctuations (Fig. 5(b)) and its i=144 runtime concession;
* **batch tiling** — cuda-convnet2's 128-image tiles explain its
  batch%128 sweet spot (Fig. 3(a));
* **pinned + async transfers** — the section V-D mitigations, measured
  as the difference between Caffe's (hidden) and Torch's (exposed)
  transfer behaviour on the same copies;
* **occupancy-dependent latency hiding** — why cuda-convnet2 stays
  fast at 17 % occupancy (high ILP) while Theano-fft is slow at 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import BASE_CONFIG, ConvConfig
from ..frameworks.calibration import DIRECT_CALIBRATION, FFT_CALIBRATION
from ..frameworks.fft_model import iteration_workload, transform_size
from ..frameworks.registry import get_implementation
from ..gpusim.device import K40C
from ..gpusim.transfer import TransferEngine, exposed_transfer_time


@dataclass(frozen=True)
class AblationResult:
    """One ablation's outcome: baseline vs altered value + verdict."""

    name: str
    baseline: float
    ablated: float
    unit: str
    conclusion: str

    @property
    def ratio(self) -> float:
        return self.ablated / self.baseline if self.baseline else float("inf")

    def render(self) -> str:
        return (f"{self.name}: baseline {self.baseline:.3f} {self.unit} -> "
                f"ablated {self.ablated:.3f} {self.unit} "
                f"(x{self.ratio:.2f})\n  {self.conclusion}")


def gradient_buffer_policy(config: ConvConfig = BASE_CONFIG) -> AblationResult:
    """Separate vs in-place gradient buffers (Caffe vs Torch-cunn)."""
    caffe = get_implementation("caffe")
    torch = get_implementation("torch-cunn")
    return AblationResult(
        name="gradient-buffer policy (peak memory)",
        baseline=torch.peak_memory_bytes(config) / 2**20,
        ablated=caffe.peak_memory_bytes(config) / 2**20,
        unit="MB",
        conclusion="separate data/diff blobs roughly double the "
                   "activation footprint — the Caffe-vs-Torch gap of "
                   "Fig. 5.",
    )


def fft_padding_rule(input_size: int = 144) -> AblationResult:
    """Pow-2 (fbfft) vs next-fast-len (cuFFT) transform sizing at the
    worst-case input size just past a power of two."""
    pow2 = transform_size(FFT_CALIBRATION["fbfft"], input_size)
    smooth = transform_size(FFT_CALIBRATION["theano-fft"], input_size)
    return AblationResult(
        name=f"FFT padding rule at input {input_size}",
        baseline=float(smooth),
        ablated=float(pow2),
        unit="points",
        conclusion="power-of-two padding inflates the transform (and "
                   "every frequency-domain buffer, quadratically) — "
                   "the Fig. 5(b) memory jump and the one input-sweep "
                   "point fbfft concedes.",
    )


def batch_tiling(config: ConvConfig = BASE_CONFIG) -> AblationResult:
    """cuda-convnet2 per-image cost at an aligned vs unaligned batch."""
    impl = get_implementation("cuda-convnet2")
    aligned = config.scaled(batch=128)
    unaligned = config.scaled(batch=96)
    t_aligned = impl.time_iteration(aligned) / aligned.batch
    t_unaligned = impl.time_iteration(unaligned) / unaligned.batch
    return AblationResult(
        name="cuda-convnet2 batch tiling (per-image time)",
        baseline=t_aligned * 1000,
        ablated=t_unaligned * 1000,
        unit="ms/image",
        conclusion="off the 128-image tile grid each image costs "
                   "~40 % more — the Fig. 3(a) sawtooth.",
    )


def transfer_mitigations(config: ConvConfig = BASE_CONFIG) -> AblationResult:
    """Pinned+async vs pageable+sync for the same input copy."""
    engine = TransferEngine(K40C)
    nbytes = config.batch * config.channels * config.input_size ** 2 * 4
    compute = get_implementation("caffe").profile_iteration(config).gpu_time_s
    sync_pageable = exposed_transfer_time(
        engine.copy_time(nbytes, pinned=False), 0.0, compute)
    async_pinned = exposed_transfer_time(
        0.0, engine.copy_time(nbytes, pinned=True), compute)
    return AblationResult(
        name="transfer mitigations (exposed copy time)",
        baseline=sync_pageable * 1000,
        ablated=async_pinned * 1000,
        unit="ms",
        conclusion="pinned memory plus asynchronous prefetch hides the "
                   "input copy completely — why Caffe/cuDNN/fbfft sit "
                   "at ~0 % in Fig. 7.",
    )


def occupancy_is_not_performance(config: ConvConfig = BASE_CONFIG) -> AblationResult:
    """The paper's section V-C-1 lesson, quantified: Theano-fft has
    ~3x the achieved occupancy of cuda-convnet2 yet runs far slower."""
    ccn2 = get_implementation("cuda-convnet2").profile_iteration(config)
    tfft = get_implementation("theano-fft").profile_iteration(config)
    occ_ccn2 = ccn2.profiler.summary().achieved_occupancy
    occ_tfft = tfft.profiler.summary().achieved_occupancy
    return AblationResult(
        name=(f"occupancy vs speed (ccn2 occ {occ_ccn2:.0%} vs "
              f"theano-fft occ {occ_tfft:.0%}) — runtime"),
        baseline=ccn2.gpu_time_s * 1000,
        ablated=tfft.gpu_time_s * 1000,
        unit="ms",
        conclusion="a higher occupancy does not mean a better "
                   "performance (section V-C-1): ILP, efficiency and "
                   "bank behaviour dominate.",
    )


ABLATIONS = {
    "gradient_buffers": gradient_buffer_policy,
    "fft_padding": fft_padding_rule,
    "batch_tiling": batch_tiling,
    "transfer_mitigations": transfer_mitigations,
    "occupancy_vs_speed": occupancy_is_not_performance,
}


def run_all() -> List[AblationResult]:
    """Run every ablation."""
    return [fn() for fn in ABLATIONS.values()]
