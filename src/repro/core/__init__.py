"""The paper's contribution: the performance-analysis harness.

One module per evaluation artifact —

==================  =====================================
Paper artifact      Module
==================  =====================================
Fig. 2              :mod:`~repro.core.hotspot_layers`
Fig. 3 (a-e)        :mod:`~repro.core.runtime_comparison`
Fig. 4              :mod:`~repro.core.hotspot_kernels`
Fig. 5 (a-e)        :mod:`~repro.core.memory_comparison`
Table I / Fig. 6    :mod:`~repro.core.gpu_metrics`
Table II            :mod:`~repro.core.gpu_metrics`
Fig. 7              :mod:`~repro.core.transfer_overhead`
==================  =====================================

plus :mod:`~repro.core.advisor` (the "assist practitioners
identifying the implementations that best serve their CNN computation
needs" goal, encoding the paper's summary recommendations as a
queryable decision procedure), :mod:`~repro.core.report` (ASCII
rendering) and :mod:`~repro.core.experiments` (the experiment
registry DESIGN.md indexes).
"""

from .evalcache import EvalCache, EvalRecord, evaluate, get_cache
from .parallel import SweepExecutor
from .hotspot_layers import hotspot_layer_analysis, ModelBreakdown
from .runtime_comparison import runtime_sweep, RuntimePoint, SweepResult
from .hotspot_kernels import hotspot_kernel_analysis, KernelBreakdown
from .memory_comparison import memory_sweep, MemoryPoint
from .gpu_metrics import gpu_metric_profile, table2_resources, MetricRow
from .transfer_overhead import transfer_overhead_profile, TransferRow
from .advisor import Advisor, Recommendation
from .experiments import EXPERIMENTS, run_experiment
from .ablations import ABLATIONS, AblationResult, run_all as run_ablations
from .training_cost import TrainingEstimate, estimate_training
from .sensitivity import device_comparison, headlines
from .memory_timeline import MemoryTimeline, memory_timeline
from .layer_advisor import oracle_mix, per_layer_choices
from .batch_advisor import batch_capacities, max_batch
from .full_report import generate_report, write_report
from .regression import capture_headlines, check_against
from .validation import audit_all, audit_implementation
from . import evalcache, export, parallel, report

__all__ = [
    "EvalCache",
    "EvalRecord",
    "evaluate",
    "get_cache",
    "SweepExecutor",
    "evalcache",
    "parallel",
    "hotspot_layer_analysis",
    "ModelBreakdown",
    "runtime_sweep",
    "RuntimePoint",
    "SweepResult",
    "hotspot_kernel_analysis",
    "KernelBreakdown",
    "memory_sweep",
    "MemoryPoint",
    "gpu_metric_profile",
    "table2_resources",
    "MetricRow",
    "transfer_overhead_profile",
    "TransferRow",
    "Advisor",
    "Recommendation",
    "EXPERIMENTS",
    "run_experiment",
    "ABLATIONS",
    "AblationResult",
    "run_ablations",
    "TrainingEstimate",
    "estimate_training",
    "device_comparison",
    "headlines",
    "MemoryTimeline",
    "memory_timeline",
    "oracle_mix",
    "per_layer_choices",
    "batch_capacities",
    "max_batch",
    "generate_report",
    "write_report",
    "capture_headlines",
    "check_against",
    "audit_all",
    "audit_implementation",
    "export",
    "report",
]
