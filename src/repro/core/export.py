"""CSV export of experiment results.

The ASCII reports are for eyeballs; this module writes the same data
as CSV so the figures can be re-plotted with any tool.  Only the
standard library is used (csv), keeping the offline constraint.
"""

from __future__ import annotations

import csv
import io
from typing import Optional, Sequence

from .gpu_metrics import MetricRow
from .hotspot_layers import ModelBreakdown
from .memory_comparison import MemorySweepResult
from .runtime_comparison import SweepResult
from .transfer_overhead import TransferRow


def _write(rows: Sequence[Sequence], header: Sequence[str],
           path: Optional[str]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    writer.writerows(rows)
    text = buf.getvalue()
    if path is not None:
        with open(path, "w", newline="") as fh:
            fh.write(text)
    return text


def runtime_sweep_csv(result: SweepResult, path: Optional[str] = None) -> str:
    """One row per sweep point, one column per implementation (ms;
    empty cell = unsupported)."""
    impls = list(result.times)
    rows = []
    for i, x in enumerate(result.xs):
        row = [x]
        for name in impls:
            t = result.times[name][i]
            row.append("" if t is None else round(t * 1000, 4))
        rows.append(row)
    return _write(rows, [result.sweep] + impls, path)


def memory_sweep_csv(result: MemorySweepResult,
                     path: Optional[str] = None) -> str:
    """Peak memory in MB per sweep point and implementation."""
    impls = list(result.peaks)
    rows = []
    for i, x in enumerate(result.xs):
        row = [x]
        for name in impls:
            p = result.peaks[name][i]
            row.append("" if p is None else round(p / 2**20, 1))
        rows.append(row)
    return _write(rows, [result.sweep] + impls, path)


def breakdown_csv(results: Sequence[ModelBreakdown],
                  path: Optional[str] = None) -> str:
    """Fig. 2 layer-type shares, long format."""
    rows = []
    for r in results:
        for layer_type, share in sorted(r.shares.items()):
            rows.append([r.model, r.batch, layer_type, round(share, 6)])
    return _write(rows, ["model", "batch", "layer_type", "share"], path)


def metrics_csv(rows_in: Sequence[MetricRow],
                path: Optional[str] = None) -> str:
    """Fig. 6 metric rows, long format."""
    rows = []
    for r in rows_in:
        s = r.summary
        rows.append([
            r.config_name, r.implementation,
            round(r.runtime_ms, 4),
            round(s.achieved_occupancy, 6),
            round(s.ipc, 4),
            round(s.warp_execution_efficiency, 6),
            round(s.gld_efficiency, 6),
            round(s.gst_efficiency, 6),
            round(s.shared_efficiency, 6),
            s.shared_load_bank_conflicts,
            s.shared_store_bank_conflicts,
        ])
    header = ["config", "implementation", "runtime_ms",
              "achieved_occupancy", "ipc", "warp_execution_efficiency",
              "gld_efficiency", "gst_efficiency", "shared_efficiency",
              "shared_load_bank_conflicts", "shared_store_bank_conflicts"]
    return _write(rows, header, path)


def transfer_csv(rows_in: Sequence[TransferRow],
                 path: Optional[str] = None) -> str:
    """Fig. 7 transfer fractions, long format."""
    rows = [[r.config_name, r.implementation,
             round(r.transfer_fraction, 6),
             round(r.transfer_time_s * 1000, 4),
             round(r.total_time_s * 1000, 4)] for r in rows_in]
    return _write(rows, ["config", "implementation", "transfer_fraction",
                         "transfer_ms", "total_ms"], path)
