"""Cross-device and parameter sensitivity analysis.

The paper's conclusion: "a deep understanding of the algorithm and
hardware characteristic is extremely important to accelerate these
implementations".  This module quantifies that sensitivity — it
re-runs the headline comparisons on other modelled GPUs (K20X, the
Maxwell TITAN X / M40) and under synthetic perturbations of individual
device characteristics, reporting which of the paper's conclusions are
robust and which flip:

* the fbfft-vs-cuDNN kernel-size crossover moves with the
  FLOPs-to-bandwidth ratio (fbfft is transpose/bandwidth-heavy);
* the memory rankings (Fig. 5) are device-independent — they are
  algorithmic;
* absolute runtimes scale with peak FLOPs, so the Fig. 3 orderings
  survive any proportional scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..config import BASE_CONFIG, ConvConfig, sweep_configs
from ..frameworks.registry import all_implementations, get_implementation
from ..gpusim.device import DEVICES, DeviceSpec, K40C
from .report import table


@dataclass(frozen=True)
class DeviceHeadlines:
    """The headline results on one device."""

    device: str
    base_winner: str
    base_fbfft_vs_cudnn: float      # cuDNN time / fbfft time at base
    kernel_crossover: Optional[int]  # first k where fbfft beats cuDNN
    memory_low: str
    memory_high: str


def headlines(device: DeviceSpec) -> DeviceHeadlines:
    """Compute the headline comparisons on one device."""
    impls = all_implementations()
    times = {}
    peaks = {}
    for impl in impls:
        if impl.supports(BASE_CONFIG):
            times[impl.paper_name] = impl.time_iteration(BASE_CONFIG, device)
            peaks[impl.paper_name] = impl.peak_memory_bytes(BASE_CONFIG, device)
    winner = min(times, key=times.get)

    fbfft = get_implementation("fbfft")
    cudnn = get_implementation("cudnn")
    crossover = None
    for cfg in sweep_configs("kernel"):
        if fbfft.time_iteration(cfg, device) < cudnn.time_iteration(cfg, device):
            crossover = cfg.kernel_size
            break
    return DeviceHeadlines(
        device=device.name,
        base_winner=winner,
        base_fbfft_vs_cudnn=times["cuDNN"] / times["fbfft"],
        kernel_crossover=crossover,
        memory_low=min(peaks, key=peaks.get),
        memory_high=max(peaks, key=peaks.get),
    )


def device_comparison(devices: Optional[Sequence[DeviceSpec]] = None
                      ) -> List[DeviceHeadlines]:
    """Headlines across the device zoo."""
    devices = list(devices) if devices else list(DEVICES.values())
    return [headlines(d) for d in devices]


def render_device_comparison(rows: Sequence[DeviceHeadlines]) -> str:
    body = [[r.device, r.base_winner, f"{r.base_fbfft_vs_cudnn:.2f}x",
             r.kernel_crossover if r.kernel_crossover is not None else "-",
             r.memory_low, r.memory_high] for r in rows]
    return table(
        ["Device", "Base winner", "cuDNN/fbfft", "k crossover",
         "Least memory", "Most memory"],
        body,
        title="Headline results across modelled GPUs (base config "
              f"{BASE_CONFIG.tuple5})")


@dataclass(frozen=True)
class PerturbationResult:
    """Effect of scaling one device characteristic."""

    parameter: str
    scale: float
    base_winner: str
    kernel_crossover: Optional[int]


_PERTURBABLE = {
    "memory_bandwidth": "memory_bandwidth",
    "clock_hz": "clock_hz",
    "pcie_pageable_bandwidth": "pcie_pageable_bandwidth",
}


def perturb(parameter: str, scale: float,
            base: DeviceSpec = K40C) -> PerturbationResult:
    """Scale one device characteristic and recompute the headlines."""
    if parameter not in _PERTURBABLE:
        raise KeyError(
            f"unknown parameter {parameter!r}; options: {sorted(_PERTURBABLE)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    device = replace(base, **{parameter: getattr(base, parameter) * scale})
    h = headlines(device)
    return PerturbationResult(parameter=parameter, scale=scale,
                              base_winner=h.base_winner,
                              kernel_crossover=h.kernel_crossover)


def bandwidth_sensitivity(scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0)
                          ) -> List[PerturbationResult]:
    """How the kernel-size crossover responds to DRAM bandwidth —
    fbfft is bandwidth-hungry, so more bandwidth pulls the crossover
    earlier."""
    return [perturb("memory_bandwidth", s) for s in scales]
