"""Implementation advisor.

The paper's stated goal is "to assist practitioners identifying the
implementations that best serve their CNN computation needs in
different scenarios".  :class:`Advisor` operationalises that: given a
convolution configuration and the practitioner's constraints (device
memory budget, need for arbitrary shapes), it ranks the seven
implementations by *measured* (simulated) runtime subject to the
constraints, and annotates the result with the paper's qualitative
guidance:

* fbfft for large kernels — "the fastest implementation to train a
  CNN model with large kernels";
* cuDNN for small kernels and for strides > 1;
* cuda-convnet2 "for cases when the memory is limited";
* cuDNN "if a good balance between memory, speed and flexibility is
  needed".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import ConvConfig
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from ..obs.context import get_obs
from .evalcache import CacheArg, evaluate


@dataclass(frozen=True)
class Candidate:
    """One implementation's evaluated fitness for a scenario."""

    implementation: str
    time_s: float
    peak_memory_bytes: int
    supported: bool
    fits_memory: bool

    @property
    def feasible(self) -> bool:
        return self.supported and self.fits_memory


@dataclass(frozen=True)
class RankedPlan:
    """The advisor's decision distilled to what a dispatcher needs.

    This is the cacheable unit: it carries no live objects, so it can
    be memoized per ``(shape, batch, device)`` by
    :class:`repro.serve.plan_cache.PlanCache` and replayed at dispatch
    time without re-ranking.
    """

    implementation: str
    time_s: float
    peak_memory_bytes: int

    def __post_init__(self) -> None:
        if self.time_s <= 0:
            raise ValueError(f"plan time must be positive, got {self.time_s}")


@dataclass(frozen=True)
class Recommendation:
    """Advisor output: ranked feasible candidates plus rationale."""

    config: ConvConfig
    candidates: List[Candidate]
    best: Optional[str]
    rationale: str

    def render(self) -> str:
        lines = [f"Scenario: {self.config}"]
        for c in self.candidates:
            status = "ok" if c.feasible else (
                "unsupported shape" if not c.supported else "exceeds memory budget")
            lines.append(
                f"  {c.implementation:15s} {c.time_s * 1000:9.2f} ms  "
                f"{c.peak_memory_bytes / 2**20:8.0f} MB  [{status}]"
            )
        lines.append(f"Recommendation: {self.best} — {self.rationale}")
        return "\n".join(lines)


class Advisor:
    """Ranks implementations for a scenario.

    Per-implementation evaluation routes through the shared analytic
    cache (:mod:`repro.core.evalcache`) — the advisor, the serving
    scheduler and the figure pipelines all draw on the same records,
    so a scenario the sweeps already visited ranks without re-running
    the model.  Pass ``cache=evalcache.DISABLED`` to force recompute,
    or a private :class:`~repro.core.evalcache.EvalCache` to isolate.
    """

    def __init__(self, device: DeviceSpec = K40C,
                 implementations: Optional[Sequence[ConvImplementation]] = None,
                 cache: CacheArg = None):
        self.device = device
        self.implementations = (list(implementations) if implementations
                                else all_implementations())
        self.cache = cache

    def evaluate(self, config: ConvConfig,
                 memory_budget: Optional[int] = None,
                 device: Optional[DeviceSpec] = None) -> List[Candidate]:
        """Evaluate every implementation on one configuration.

        ``device`` overrides the advisor's own device for this call —
        one advisor instance can serve a heterogeneous fleet, ranking
        each replica on its own hardware while sharing the evaluation
        cache across all of them.
        """
        target = device if device is not None else self.device
        budget = memory_budget if memory_budget is not None \
            else target.global_memory_bytes
        out: List[Candidate] = []
        with get_obs().tracer.span(
                "advisor.rank", cat="advisor", device=target.name,
                implementations=len(self.implementations)) as sp:
            for impl in self.implementations:
                record = evaluate(impl, config, target, cache=self.cache)
                if not record.supported:
                    out.append(Candidate(impl.paper_name, float("inf"), 0,
                                         supported=False, fits_memory=False))
                elif record.oom:
                    out.append(Candidate(impl.paper_name, float("inf"),
                                         record.oom_bytes,
                                         supported=True, fits_memory=False))
                else:
                    mem = record.peak_memory_bytes
                    out.append(Candidate(impl.paper_name, record.time_s, mem,
                                         supported=True,
                                         fits_memory=mem <= budget))
            # Feasible first, then by time.
            out.sort(key=lambda c: (not c.feasible, c.time_s))
            sp.annotate(feasible=sum(1 for c in out if c.feasible))
        return out

    def recommend(self, config: ConvConfig,
                  memory_budget: Optional[int] = None,
                  device: Optional[DeviceSpec] = None) -> Recommendation:
        """Pick the fastest feasible implementation and explain it in
        the paper's terms."""
        candidates = self.evaluate(config, memory_budget, device=device)
        feasible = [c for c in candidates if c.feasible]
        if not feasible:
            return Recommendation(config=config, candidates=candidates,
                                  best=None,
                                  rationale="no implementation satisfies the "
                                            "constraints")
        best = feasible[0]
        rationale = self._rationale(config, best, memory_budget)
        return Recommendation(config=config, candidates=candidates,
                              best=best.implementation, rationale=rationale)

    def plan(self, config: ConvConfig,
             memory_budget: Optional[int] = None,
             device: Optional[DeviceSpec] = None) -> Optional[RankedPlan]:
        """Rank once and return the winner as a cacheable plan.

        Unlike :meth:`recommend`, the result is a plain value object
        (no candidate list, no prose rationale) suitable for per-shape
        memoization; ``None`` means no implementation is feasible.
        """
        ranked = self.plan_ranked(config, memory_budget, device=device)
        return ranked[0] if ranked else None

    def plan_ranked(self, config: ConvConfig,
                    memory_budget: Optional[int] = None,
                    device: Optional[DeviceSpec] = None
                    ) -> Tuple[RankedPlan, ...]:
        """Every feasible implementation as a cacheable plan, fastest
        first.

        The resilient dispatcher consumes the whole ordering: when the
        first choice faults past its retry budget (or its circuit
        breaker is open) it substitutes the next-ranked plan — the
        implementations are interchangeable wherever both are feasible,
        so substitution preserves correctness and only costs the
        runtime gap the ranking already quantifies.  Empty means no
        implementation is feasible.
        """
        candidates = self.evaluate(config, memory_budget, device=device)
        return tuple(RankedPlan(implementation=c.implementation,
                                time_s=c.time_s,
                                peak_memory_bytes=c.peak_memory_bytes)
                     for c in candidates if c.feasible)

    def _rationale(self, config: ConvConfig, best: Candidate,
                   memory_budget: Optional[int]) -> str:
        parts = []
        if config.stride > 1:
            parts.append("stride > 1 rules out the FFT implementations")
        if config.kernel_size >= 7:
            parts.append("large kernels favour FFT-based convolution "
                         "(lower arithmetic complexity)")
        elif config.kernel_size < 7:
            parts.append("small kernels favour unrolling (FFT padding "
                         "overhead dominates)")
        if memory_budget is not None and memory_budget < 4 * 2**30:
            parts.append("a tight memory budget favours direct convolution "
                         "(no workspace)")
        parts.append(f"fastest feasible at {best.time_s * 1000:.2f} ms "
                     f"and {best.peak_memory_bytes / 2**20:.0f} MB")
        return "; ".join(parts)
