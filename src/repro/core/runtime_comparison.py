"""Head-to-head runtime comparison (paper Fig. 3, section IV-B).

Runs the seven implementations over the five one-parameter sweeps
around the base 5-tuple ``(64, 128, 64, 11, 1)`` and records the
training-iteration runtime of a single convolutional layer
("the total runtime we test here does not include the time of network
initialization and data preparation" — accordingly only GPU kernel
time plus exposed transfer time is charged).

Unsupported configurations record ``None`` — these are the paper's
shape limitations (cuda-convnet2 off its multiples grid, FFT
implementations at stride > 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import SWEEPS, ConvConfig, sweep_configs
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from .report import series


@dataclass(frozen=True)
class RuntimePoint:
    """One (implementation, config) runtime measurement."""

    implementation: str
    config: ConvConfig
    time_s: Optional[float]  # None = configuration unsupported

    @property
    def supported(self) -> bool:
        return self.time_s is not None


@dataclass
class SweepResult:
    """All implementations over one parameter sweep."""

    sweep: str
    xs: List[int]
    configs: List[ConvConfig]
    #: implementation name -> per-config times (None where unsupported).
    times: Dict[str, List[Optional[float]]]

    def fastest_at(self, index: int) -> str:
        """Name of the fastest implementation at one sweep point."""
        best_name, best_t = None, None
        for name, col in self.times.items():
            t = col[index]
            if t is not None and (best_t is None or t < best_t):
                best_name, best_t = name, t
        if best_name is None:
            raise ValueError(f"no implementation supports point {index}")
        return best_name

    def speedup(self, fast: str, slow: str, index: int) -> Optional[float]:
        """slow/fast runtime ratio at one point (None if either is
        unsupported)."""
        a, b = self.times[fast][index], self.times[slow][index]
        if a is None or b is None:
            return None
        return b / a

    def render(self, unit_ms: bool = True) -> str:
        scale = 1000.0 if unit_ms else 1.0
        columns = {
            name: [None if t is None else t * scale for t in col]
            for name, col in self.times.items()
        }
        return series(self.sweep, self.xs, columns,
                      title=f"Fig. 3 ({self.sweep} sweep) — runtime "
                            f"[{'ms' if unit_ms else 's'}] per training iteration")

    def render_plot(self, width: int = 64, height: int = 16) -> str:
        """The same series as an ASCII chart (the figure, not the
        table)."""
        from .report import ascii_plot

        columns = {
            name: [None if t is None else t * 1000.0 for t in col]
            for name, col in self.times.items()
        }
        return ascii_plot(self.xs, columns, width=width, height=height,
                          title=f"Fig. 3 ({self.sweep} sweep) — runtime "
                                f"[ms] per training iteration")


_X_OF = {
    "batch": lambda c: c.batch,
    "input": lambda c: c.input_size,
    "filters": lambda c: c.filters,
    "kernel": lambda c: c.kernel_size,
    "stride": lambda c: c.stride,
}


def runtime_sweep(sweep: str,
                  implementations: Optional[Sequence[ConvImplementation]] = None,
                  device: DeviceSpec = K40C) -> SweepResult:
    """Run one of the five Fig. 3 sweeps over all implementations."""
    if sweep not in SWEEPS:
        raise KeyError(f"unknown sweep {sweep!r}; options: {sorted(SWEEPS)}")
    impls = list(implementations) if implementations else all_implementations()
    configs = sweep_configs(sweep)
    xs = [_X_OF[sweep](c) for c in configs]
    times: Dict[str, List[Optional[float]]] = {}
    for impl in impls:
        col: List[Optional[float]] = []
        for config in configs:
            if impl.supports(config):
                col.append(impl.time_iteration(config, device))
            else:
                col.append(None)
        times[impl.paper_name] = col
    return SweepResult(sweep=sweep, xs=xs, configs=configs, times=times)


def all_runtime_sweeps(device: DeviceSpec = K40C) -> Dict[str, SweepResult]:
    """All five sweeps of Fig. 3."""
    return {name: runtime_sweep(name, device=device) for name in SWEEPS}
