"""Head-to-head runtime comparison (paper Fig. 3, section IV-B).

Runs the seven implementations over the five one-parameter sweeps
around the base 5-tuple ``(64, 128, 64, 11, 1)`` and records the
training-iteration runtime of a single convolutional layer
("the total runtime we test here does not include the time of network
initialization and data preparation" — accordingly only GPU kernel
time plus exposed transfer time is charged).

Unsupported configurations record ``None`` — these are the paper's
shape limitations (cuda-convnet2 off its multiples grid, FFT
implementations at stride > 1).

Evaluation routes through the shared analytic-evaluation cache
(:mod:`repro.core.evalcache`), so points revisited by the memory and
metric pipelines — or by a previous run against the same on-disk
store — cost a lookup, and ``workers=N`` fans independent points out
through :class:`repro.core.parallel.SweepExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import SWEEPS, ConvConfig, sweep_configs
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from .evalcache import CacheArg
from .parallel import make_executor
from .report import series


@dataclass(frozen=True)
class RuntimePoint:
    """One (implementation, config) runtime measurement."""

    implementation: str
    config: ConvConfig
    time_s: Optional[float]  # None = configuration unsupported

    @property
    def supported(self) -> bool:
        return self.time_s is not None


@dataclass
class SweepResult:
    """All implementations over one parameter sweep."""

    sweep: str
    xs: List[int]
    configs: List[ConvConfig]
    #: implementation name -> per-config times (None where unsupported).
    times: Dict[str, List[Optional[float]]]

    def fastest_at(self, index: int) -> str:
        """Name of the fastest implementation at one sweep point."""
        best_name, best_t = None, None
        for name, col in self.times.items():
            t = col[index]
            if t is not None and (best_t is None or t < best_t):
                best_name, best_t = name, t
        if best_name is None:
            raise ValueError(f"no implementation supports point {index}")
        return best_name

    def speedup(self, fast: str, slow: str, index: int) -> Optional[float]:
        """slow/fast runtime ratio at one point (None if either is
        unsupported)."""
        a, b = self.times[fast][index], self.times[slow][index]
        if a is None or b is None:
            return None
        return b / a

    def render(self, unit_ms: bool = True) -> str:
        scale = 1000.0 if unit_ms else 1.0
        columns = {
            name: [None if t is None else t * scale for t in col]
            for name, col in self.times.items()
        }
        return series(self.sweep, self.xs, columns,
                      title=f"Fig. 3 ({self.sweep} sweep) — runtime "
                            f"[{'ms' if unit_ms else 's'}] per training iteration")

    def render_plot(self, width: int = 64, height: int = 16) -> str:
        """The same series as an ASCII chart (the figure, not the
        table)."""
        from .report import ascii_plot

        columns = {
            name: [None if t is None else t * 1000.0 for t in col]
            for name, col in self.times.items()
        }
        return ascii_plot(self.xs, columns, width=width, height=height,
                          title=f"Fig. 3 ({self.sweep} sweep) — runtime "
                                f"[ms] per training iteration")


_X_OF = {
    "batch": lambda c: c.batch,
    "input": lambda c: c.input_size,
    "filters": lambda c: c.filters,
    "kernel": lambda c: c.kernel_size,
    "stride": lambda c: c.stride,
}


def runtime_sweep(sweep: str,
                  implementations: Optional[Sequence[ConvImplementation]] = None,
                  device: DeviceSpec = K40C,
                  workers: Optional[int] = None,
                  cache: CacheArg = None) -> SweepResult:
    """Run one of the five Fig. 3 sweeps over all implementations.

    ``workers`` widens the point fan-out (None/1 = serial); ``cache``
    selects the evaluation cache (None = the shared process-wide
    store, ``evalcache.DISABLED`` = always recompute).
    """
    if sweep not in SWEEPS:
        raise KeyError(f"unknown sweep {sweep!r}; options: {sorted(SWEEPS)}")
    impls = list(implementations) if implementations else all_implementations()
    configs = sweep_configs(sweep)
    xs = [_X_OF[sweep](c) for c in configs]
    grid = make_executor(workers).map_grid(impls, configs, device, cache=cache)
    times = {impl.paper_name: [r.time_s for r in grid[impl.name]]
             for impl in impls}
    return SweepResult(sweep=sweep, xs=xs, configs=configs, times=times)


def all_runtime_sweeps(device: DeviceSpec = K40C,
                       workers: Optional[int] = None,
                       cache: CacheArg = None) -> Dict[str, SweepResult]:
    """All five sweeps of Fig. 3.

    The 546 points of all five sweeps go to the executor as one batch,
    so cross-sweep duplicates (every sweep passes through the base
    configuration) are computed once and a pool sees the whole fan-out
    at full width.
    """
    impls = all_implementations()
    executor = make_executor(workers)
    sweeps = {name: sweep_configs(name) for name in SWEEPS}
    points = [(impl, cfg, device)
              for configs in sweeps.values()
              for impl in impls
              for cfg in configs]
    flat = executor.map_records(points, cache=cache)
    out: Dict[str, SweepResult] = {}
    pos = 0
    for name, configs in sweeps.items():
        n = len(configs)
        times: Dict[str, List[Optional[float]]] = {}
        for impl in impls:
            times[impl.paper_name] = [r.time_s for r in flat[pos:pos + n]]
            pos += n
        out[name] = SweepResult(sweep=name,
                                xs=[_X_OF[name](c) for c in configs],
                                configs=configs, times=times)
    return out
