"""Parallel sweep execution over analytic evaluation points.

A full study is hundreds of independent ``(implementation, config,
device)`` evaluations — 546 for the five Fig. 3 sweeps alone — each a
pure function of its inputs.  :class:`SweepExecutor` fans them out:

* **dedupe before fan-out** — the five sweeps all pass through the
  base configuration, and the runtime/memory/metric pipelines revisit
  the same points, so unique keys are computed once per batch and the
  shared :class:`~repro.core.evalcache.EvalCache` absorbs repeats
  across batches;
* **deterministic results** — whatever the pool's completion order,
  records are reassembled in input order, so parallel output is
  byte-identical to the serial path;
* **serial fallback** — ``workers <= 1`` (the default) runs inline
  with no pool, no threads, no extra imports.

``kind="thread"`` shares the process's memo caches;
``kind="process"`` forks workers for true multi-core scaling
(registry implementations and catalogued devices only, since tasks
are shipped by name).  ``"auto"`` picks the fork pool on multi-core
hosts (the model is pure Python, so threads only interleave under the
GIL) and runs inline on single-core hosts, where any pool is pure
overhead.  Work is dispatched in ``workers`` contiguous chunks, not
point-by-point — per-future overhead would otherwise rival the
memoized evaluations themselves.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ConvConfig
from ..frameworks.base import ConvImplementation
from ..gpusim.device import DEVICES, DeviceSpec
from ..obs.context import get_obs
from .evalcache import (CacheArg, EvalRecord, cache_key, cacheable,
                        compute_record, resolve_cache)

#: One unit of work: evaluate this implementation on this config/device.
Point = Tuple[ConvImplementation, ConvConfig, DeviceSpec]

_KINDS = ("auto", "serial", "thread", "process")


def _run_named_chunk(chunk: Sequence[Tuple[str, ConvConfig, str]]
                     ) -> List[EvalRecord]:
    """Process-pool task: rebuild each point from names and evaluate.

    Module-level (picklable) and name-addressed so the parent never
    ships live adapter objects across the fork boundary.
    """
    from ..frameworks.registry import resolve_implementation

    return [compute_record(resolve_implementation(impl_name), config,
                           DEVICES[device_name])
            for impl_name, config, device_name in chunk]


def _run_chunk(chunk: Sequence[Point]) -> List[EvalRecord]:
    """Thread-pool task: evaluate a contiguous slice of points."""
    return [compute_record(impl, cfg, dev) for impl, cfg, dev in chunk]


def _chunked(items: Sequence, n: int) -> List[Sequence]:
    """Split into at most ``n`` contiguous, near-equal slices."""
    n = min(n, len(items))
    size, rem = divmod(len(items), n)
    out, lo = [], 0
    for i in range(n):
        hi = lo + size + (1 if i < rem else 0)
        out.append(items[lo:hi])
        lo = hi
    return out


class SweepExecutor:
    """Maps evaluation points to records, optionally in parallel.

    Parameters
    ----------
    workers:
        Pool width.  ``None`` → ``os.cpu_count()``; ``<= 1`` → serial.
    kind:
        ``"auto"`` | ``"serial"`` | ``"thread"`` | ``"process"``.
    """

    def __init__(self, workers: Optional[int] = None, kind: str = "auto"):
        if kind not in _KINDS:
            raise ValueError(f"unknown executor kind {kind!r}; "
                             f"options: {_KINDS}")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        fork_ok = "fork" in multiprocessing.get_all_start_methods()
        if kind == "auto":
            if workers <= 1 or (os.cpu_count() or 1) <= 1:
                kind = "serial"
            else:
                kind = "process" if fork_ok else "thread"
        elif workers <= 1:
            kind = "serial"
        if kind == "process" and not fork_ok:
            kind = "thread"  # spawn re-imports per task; not worth it
        self.kind = kind

    # -- internals ---------------------------------------------------------

    def _compute_batch(self, tasks: Sequence[Point]) -> List[EvalRecord]:
        """Evaluate ``tasks`` (no cache involvement), input order."""
        if self.kind == "serial" or len(tasks) < max(2, self.workers):
            return [compute_record(impl, cfg, dev)
                    for impl, cfg, dev in tasks]
        if self.kind == "process" and all(cacheable(impl, dev)
                                          for impl, cfg, dev in tasks):
            named = [(impl.name, cfg, dev.name) for impl, cfg, dev in tasks]
            ctx = multiprocessing.get_context("fork")
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx) as pool:
                chunks = pool.map(_run_named_chunk,
                                  _chunked(named, self.workers))
                return [r for chunk in chunks for r in chunk]
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers) as pool:
            futures = [pool.submit(_run_chunk, chunk)
                       for chunk in _chunked(tasks, self.workers)]
            return [r for f in futures for r in f.result()]

    # -- API ---------------------------------------------------------------

    def map_records(self, points: Sequence[Point],
                    cache: CacheArg = None) -> List[EvalRecord]:
        """Evaluate every point; returns records in input order.

        Duplicate points collapse to one computation.  With a cache
        (the default — the process-wide store), known keys are served
        from it and fresh records are added to it.

        Each batch records a ``parallel.map`` span and ticks
        ``parallel_points_total`` / ``parallel_computed_total`` in the
        active metrics registry — the gap between the two is the work
        the dedup + cache pass saved.
        """
        obs = get_obs()
        with obs.tracer.span("parallel.map", cat="parallel",
                             points=len(points), kind=self.kind,
                             workers=self.workers) as sp:
            store = resolve_cache(cache)
            records: Dict[int, EvalRecord] = {}     # input index -> record
            by_key: Dict[str, List[int]] = {}       # pending key -> indices
            raw: List[Tuple[int, Point]] = []       # uncacheable points
            for i, (impl, cfg, dev) in enumerate(points):
                if store is None or not cacheable(impl, dev):
                    raw.append((i, (impl, cfg, dev)))
                    continue
                key = cache_key(impl.name, cfg, dev)
                if key in by_key:                   # in-batch duplicate
                    by_key[key].append(i)
                    continue
                hit = store.get(key)
                if hit is not None:
                    records[i] = hit
                else:
                    by_key[key] = [i]

            pending = list(by_key.items())
            tasks: List[Point] = [points[indices[0]]
                                  for _, indices in pending]
            tasks.extend(p for _, p in raw)
            computed = self._compute_batch(tasks)
            sp.annotate(computed=len(tasks))

            for (key, indices), record in zip(pending, computed):
                store.put(record, key=key)
                for i in indices:
                    records[i] = record
            for (i, _), record in zip(raw, computed[len(pending):]):
                records[i] = record
        obs.registry.counter("parallel_points_total").inc(len(points))
        obs.registry.counter("parallel_computed_total").inc(len(tasks))
        return [records[i] for i in range(len(points))]

    def map_grid(self, implementations: Sequence[ConvImplementation],
                 configs: Sequence[ConvConfig], device: DeviceSpec,
                 cache: CacheArg = None) -> Dict[str, List[EvalRecord]]:
        """Evaluate the impl × config grid; records per registry name,
        config order."""
        points = [(impl, cfg, device)
                  for impl in implementations for cfg in configs]
        flat = self.map_records(points, cache=cache)
        n = len(configs)
        return {impl.name: flat[j * n:(j + 1) * n]
                for j, impl in enumerate(implementations)}


def make_executor(workers: Optional[int] = None,
                  kind: str = "auto") -> SweepExecutor:
    """Executor factory used by the pipeline ``workers=`` arguments.

    ``workers=None`` here means *serial* (the historical pipeline
    behavior), unlike ``SweepExecutor(workers=None)`` which widens to
    the CPU count.
    """
    return SweepExecutor(workers=1 if workers is None else workers, kind=kind)
