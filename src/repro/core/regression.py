"""Calibration-regression harness.

The reproduction's value lives in its calibrated shapes; any edit to
the simulator or calibration tables can silently drift them.  This
module snapshots the headline quantities into a JSON baseline and
diffs future runs against it — the maintainer's guard rail (and the
``tests/test_regression.py`` fixture's backing store).

Quantities tracked (all dimensionless or in ms/MB):

* base-config runtime per implementation;
* fbfft/cuDNN kernel-size crossover;
* CorrMM/cuDNN filter-count crossover;
* peak memory per implementation at batch 512;
* Fig. 6 occupancy per implementation at Conv1;
* Theano-CorrMM's Conv2 transfer fraction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import BASE_CONFIG, TABLE1_CONFIGS
from ..core.gpu_metrics import gpu_metric_profile
from ..core.runtime_comparison import runtime_sweep
from ..core.transfer_overhead import transfer_overhead_profile
from ..frameworks.registry import all_implementations


def capture_headlines() -> Dict[str, float]:
    """Measure the tracked quantities."""
    head: Dict[str, float] = {}
    for impl in all_implementations():
        if impl.supports(BASE_CONFIG):
            head[f"base_ms/{impl.name}"] = round(
                impl.time_iteration(BASE_CONFIG) * 1000, 4)
            big = BASE_CONFIG.scaled(batch=512)
            head[f"mem512_mb/{impl.name}"] = round(
                impl.peak_memory_bytes(big) / 2**20, 1)

    kernel = runtime_sweep("kernel")
    head["crossover_k"] = float(next(
        k for i, k in enumerate(kernel.xs)
        if kernel.times["fbfft"][i] < kernel.times["cuDNN"][i]))

    filters = runtime_sweep("filters")
    head["crossover_f"] = float(next(
        f for i, f in enumerate(filters.xs)
        if filters.times["Theano-CorrMM"][i] < filters.times["cuDNN"][i]))

    for row in gpu_metric_profile(configs={"Conv1": TABLE1_CONFIGS["Conv1"]}):
        head[f"occupancy_conv1/{row.implementation}"] = round(
            row.summary.achieved_occupancy, 4)

    for row in transfer_overhead_profile(
            configs={"Conv2": TABLE1_CONFIGS["Conv2"]}):
        if row.implementation == "Theano-CorrMM":
            head["corrmm_conv2_transfer"] = round(row.transfer_fraction, 4)
    return head


@dataclass(frozen=True)
class Drift:
    """One quantity that moved beyond tolerance."""

    key: str
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return abs(self.current - self.baseline) / abs(self.baseline)


def compare(baseline: Dict[str, float], current: Dict[str, float],
            rel_tolerance: float = 0.05) -> List[Drift]:
    """Quantities that drifted more than ``rel_tolerance`` (plus any
    added/removed keys, reported as drifts from/to 0)."""
    if rel_tolerance < 0:
        raise ValueError(f"rel_tolerance must be >= 0, got {rel_tolerance}")
    drifts: List[Drift] = []
    for key in sorted(set(baseline) | set(current)):
        b = baseline.get(key, 0.0)
        c = current.get(key, 0.0)
        d = Drift(key=key, baseline=b, current=c)
        if key not in baseline or key not in current or \
                d.relative > rel_tolerance:
            drifts.append(d)
    return drifts


def save_baseline(path: str, head: Optional[Dict[str, float]] = None) -> Dict[str, float]:
    """Capture (or accept) headlines and write them as the baseline."""
    head = head if head is not None else capture_headlines()
    with open(path, "w") as fh:
        json.dump(head, fh, indent=1, sort_keys=True)
    return head


def load_baseline(path: str) -> Dict[str, float]:
    with open(path) as fh:
        return json.load(fh)


def check_against(path: str, rel_tolerance: float = 0.05) -> List[Drift]:
    """Measure now and diff against the stored baseline."""
    return compare(load_baseline(path), capture_headlines(),
                   rel_tolerance=rel_tolerance)
