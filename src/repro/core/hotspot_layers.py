"""Hotspot-layer analysis (paper Fig. 2, section IV-A).

Breaks the four real-life CNN models down by layer type over one
training iteration (forward + backward), averaged over ``iterations``
simulated runs, "to investigate where hotspot layers are".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..gpusim.device import DeviceSpec, K40C
from ..nn.models import FIG2_MODELS
from ..nn.simulate import breakdown_by_type, model_breakdown
from .report import bar_breakdown


@dataclass(frozen=True)
class ModelBreakdown:
    """Layer-type runtime shares of one model's training iteration."""

    model: str
    batch: int
    iteration_time_s: float
    shares: Dict[str, float]  # layer type -> fraction of runtime

    @property
    def conv_share(self) -> float:
        return self.shares.get("Conv", 0.0)

    def render(self) -> str:
        return bar_breakdown(
            self.shares,
            title=f"{self.model} (batch {self.batch}, "
                  f"{self.iteration_time_s * 1000:.1f} ms/iteration)")


#: Per-model batch sizes used for the breakdown (the paper does not
#: state them; these fit comfortably in the K40c's 12 GB).
DEFAULT_BATCHES = {"GoogLeNet": 128, "VGG": 64, "OverFeat": 128, "AlexNet": 128}


def hotspot_layer_analysis(implementation: str = "cudnn",
                           batches: Optional[Dict[str, int]] = None,
                           device: DeviceSpec = K40C,
                           models: Optional[List[str]] = None
                           ) -> List[ModelBreakdown]:
    """Reproduce Fig. 2: runtime breakdown of the four CNN models.

    Parameters
    ----------
    implementation:
        Which framework carries the convolutional layers.
    batches:
        Per-model batch sizes (defaults above).
    models:
        Restrict to a subset of the four model names.
    """
    batches = {**DEFAULT_BATCHES, **(batches or {})}
    selected = models or list(FIG2_MODELS)
    results = []
    for name in selected:
        try:
            ctor, shape = FIG2_MODELS[name]
        except KeyError:
            raise KeyError(
                f"unknown model {name!r}; options: {sorted(FIG2_MODELS)}"
            ) from None
        model = ctor(rng=0)
        batch = batches[name]
        costs = model_breakdown(model, (batch,) + shape,
                                implementation=implementation, device=device)
        total = sum(c.time_s for c in costs)
        results.append(ModelBreakdown(
            model=name,
            batch=batch,
            iteration_time_s=total,
            shares=breakdown_by_type(costs),
        ))
    return results
