"""One-command study regeneration.

``generate_report()`` runs every experiment in the registry plus the
extension analyses and assembles a single markdown document — the
whole study, regenerated from scratch, suitable for diffing against
EXPERIMENTS.md after a model change.

Exposed on the CLI as ``python -m repro report <path>``.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..config import BASE_CONFIG
from .ablations import run_all as run_ablations
from .batch_advisor import batch_capacities, render_capacities
from .experiments import EXPERIMENTS, run_experiment
from .layer_advisor import oracle_mix
from .sensitivity import device_comparison, render_device_comparison

#: Experiments in presentation order.
_ORDER = ["table1", "table2", "fig2", "fig3a", "fig3b", "fig3c", "fig3d",
          "fig3e", "fig4", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e",
          "fig6", "fig7"]


def _block(text: str) -> str:
    return "```\n" + text.rstrip("\n") + "\n```"


def generate_report(include_extensions: bool = True,
                    experiments: Optional[List[str]] = None) -> str:
    """Build the full markdown report; returns the document text."""
    wanted = experiments if experiments is not None else _ORDER
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    import repro  # late import avoids a package-init cycle

    lines: List[str] = [
        "# Regenerated study — Performance Analysis of GPU-based "
        "Convolutional Neural Networks (ICPP 2016)",
        "",
        f"repro version {repro.__version__}; every number below is "
        "freshly simulated (Tesla K40c device model).",
        "",
    ]
    for exp_id in wanted:
        exp = EXPERIMENTS[exp_id]
        start = time.perf_counter()
        _, text = run_experiment(exp_id)
        elapsed = time.perf_counter() - start
        lines.append(f"## {exp_id} — {exp.title}")
        lines.append("")
        lines.append(_block(text))
        lines.append("")
        lines.append(f"_regenerated in {elapsed:.2f} s_")
        lines.append("")

    if include_extensions:
        lines.append("## Extensions")
        lines.append("")
        lines.append("### Cross-device headlines")
        lines.append(_block(render_device_comparison(device_comparison())))
        lines.append("")
        lines.append("### Design-choice ablations")
        lines.append(_block("\n\n".join(r.render() for r in run_ablations())))
        lines.append("")
        lines.append("### Largest trainable batch (base geometry)")
        lines.append(_block(render_capacities(
            BASE_CONFIG, batch_capacities(BASE_CONFIG))))
        lines.append("")
        lines.append("### Per-layer oracle mix — AlexNet")
        from ..nn.models import model_registry
        ctor, shape = model_registry()["AlexNet"]
        lines.append(_block(
            oracle_mix("AlexNet", ctor(rng=0), (128,) + shape).render()))
        lines.append("")

    return "\n".join(lines)


def write_report(path: str, include_extensions: bool = True) -> str:
    """Generate and write the report; returns the text."""
    text = generate_report(include_extensions=include_extensions)
    with open(path, "w") as fh:
        fh.write(text)
    return text
