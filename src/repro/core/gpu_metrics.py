"""GPU performance profiling (paper Table I/II + Fig. 6, section V-C).

For each of the five Table-I configurations, profile every
implementation's top kernels and aggregate the five nvprof metrics and
two events exactly as the paper does: "take a weighted average of
those top kernels ... the weight of each kernel is determined by the
percentage of its runtime".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import TABLE1_CONFIGS, ConvConfig
from ..frameworks.base import ConvImplementation
from ..frameworks.calibration import TABLE2_RESOURCES
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.metrics import MetricSummary
from .evalcache import CacheArg
from .parallel import make_executor
from .report import table


@dataclass(frozen=True)
class MetricRow:
    """Fig. 6 metrics of one (implementation, config) pair."""

    implementation: str
    config_name: str
    config: ConvConfig
    summary: MetricSummary

    @property
    def runtime_ms(self) -> float:
        return self.summary.runtime_s * 1000.0


def gpu_metric_profile(configs: Optional[Dict[str, ConvConfig]] = None,
                       implementations: Optional[Sequence[ConvImplementation]] = None,
                       top_n: int = 5,
                       device: DeviceSpec = K40C,
                       workers: Optional[int] = None,
                       cache: CacheArg = None) -> List[MetricRow]:
    """Reproduce Fig. 6 over the Table-I configurations.

    Evaluations come from the shared cache; the cached per-kernel rows
    reconstruct the runtime-weighted summary for any ``top_n``.
    """
    configs = configs or TABLE1_CONFIGS
    impls = list(implementations) if implementations else all_implementations()
    points = [(impl, config, device)
              for config in configs.values() for impl in impls]
    records = make_executor(workers).map_records(points, cache=cache)
    rows: List[MetricRow] = []
    it = iter(records)
    for cname, config in configs.items():
        for impl in impls:
            record = next(it)
            if not record.supported:
                continue
            rows.append(MetricRow(
                implementation=impl.paper_name,
                config_name=cname,
                config=config,
                summary=record.summary(top_n=top_n),
            ))
    return rows


def table2_resources() -> str:
    """Render paper Table II (registers/thread, shared KB/block)."""
    from ..frameworks.registry import all_implementations as _impls

    rows = []
    for impl in _impls():
        res = TABLE2_RESOURCES[impl.name]
        rows.append([impl.paper_name, res.registers_per_thread,
                     res.shared_per_block / 1024.0])
    return table(["Implementation", "Registers", "Shared Memory (KB)"],
                 rows, title="Table II — per-thread registers and "
                             "per-block shared memory", floatfmt="{:.1f}")


def render_metric_rows(rows: Sequence[MetricRow]) -> str:
    """Fig. 6 as a table: one row per (config, implementation)."""
    body = []
    for r in rows:
        s = r.summary
        body.append([
            r.config_name, r.implementation,
            r.runtime_ms,
            s.achieved_occupancy * 100.0,
            s.warp_execution_efficiency * 100.0,
            s.gld_efficiency * 100.0,
            s.gst_efficiency * 100.0,
            s.ipc,
            s.shared_efficiency * 100.0,
        ])
    return table(
        ["Config", "Implementation", "Runtime(ms)", "Occupancy(%)",
         "WEE(%)", "gld(%)", "gst(%)", "IPC", "Shared(%)"],
        body, title="Fig. 6 — GPU performance profiling (runtime-weighted "
                    "top kernels)")
