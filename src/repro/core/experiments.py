"""Experiment registry — DESIGN.md's per-experiment index, runnable.

Each entry regenerates one table or figure of the paper and returns a
printable report plus the raw result object, so the benchmark suite
and EXPERIMENTS.md stay in lockstep with one definition of each
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..config import BASE_CONFIG, TABLE1_CONFIGS
from .gpu_metrics import gpu_metric_profile, render_metric_rows, table2_resources
from .hotspot_kernels import hotspot_kernel_analysis
from .hotspot_layers import hotspot_layer_analysis
from .memory_comparison import memory_sweep
from .report import table
from .runtime_comparison import runtime_sweep
from .transfer_overhead import render_transfer_rows, transfer_overhead_profile


@dataclass(frozen=True)
class Experiment:
    """One regenerable paper artifact."""

    id: str
    title: str
    runner: Callable[[], Tuple[Any, str]]  # returns (result, rendered text)


def _fig2() -> Tuple[Any, str]:
    results = hotspot_layer_analysis()
    text = "\n\n".join(r.render() for r in results)
    return results, text


def _fig3(sweep: str) -> Callable[[], Tuple[Any, str]]:
    def run() -> Tuple[Any, str]:
        result = runtime_sweep(sweep)
        text = result.render()
        if len(result.xs) >= 2:
            text += "\n\n" + result.render_plot()
        return result, text
    return run


def _fig4() -> Tuple[Any, str]:
    results = hotspot_kernel_analysis(BASE_CONFIG)
    text = "\n\n".join(r.render() for r in results)
    return results, text


def _fig5(sweep: str) -> Callable[[], Tuple[Any, str]]:
    def run() -> Tuple[Any, str]:
        result = memory_sweep(sweep)
        return result, result.render()
    return run


def _fig6() -> Tuple[Any, str]:
    rows = gpu_metric_profile()
    return rows, render_metric_rows(rows)


def _fig7() -> Tuple[Any, str]:
    rows = transfer_overhead_profile()
    return rows, render_transfer_rows(rows)


def _table1() -> Tuple[Any, str]:
    body = [[name, str(cfg.tuple5), cfg.channels]
            for name, cfg in TABLE1_CONFIGS.items()]
    text = table(["Layer", "(b,i,f,k,s)", "channels"], body,
                 title="Table I — convolution configurations for benchmarking")
    return TABLE1_CONFIGS, text


def _table2() -> Tuple[Any, str]:
    text = table2_resources()
    return text, text


EXPERIMENTS: Dict[str, Experiment] = {
    e.id: e for e in [
        Experiment("fig2", "Runtime breakdown of four CNN models", _fig2),
        Experiment("fig3a", "Runtime vs mini-batch size", _fig3("batch")),
        Experiment("fig3b", "Runtime vs input size", _fig3("input")),
        Experiment("fig3c", "Runtime vs filter count", _fig3("filters")),
        Experiment("fig3d", "Runtime vs kernel size", _fig3("kernel")),
        Experiment("fig3e", "Runtime vs stride", _fig3("stride")),
        Experiment("fig4", "Hotspot kernels per implementation", _fig4),
        Experiment("fig5a", "Peak memory vs mini-batch size", _fig5("batch")),
        Experiment("fig5b", "Peak memory vs input size", _fig5("input")),
        Experiment("fig5c", "Peak memory vs filter count", _fig5("filters")),
        Experiment("fig5d", "Peak memory vs kernel size", _fig5("kernel")),
        Experiment("fig5e", "Peak memory vs stride", _fig5("stride")),
        Experiment("fig6", "GPU metric profiling over Table-I configs", _fig6),
        Experiment("fig7", "Data-transfer overhead over Table-I configs", _fig7),
        Experiment("table1", "Benchmark configurations", _table1),
        Experiment("table2", "Register/shared-memory usage", _table2),
    ]
}


def run_experiment(exp_id: str) -> Tuple[Any, str]:
    """Run one experiment by id; returns (result object, rendered
    text)."""
    try:
        exp = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    return exp.runner()
