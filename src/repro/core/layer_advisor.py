"""Per-layer implementation selection over whole models.

The paper's bottom line — "no single implementation ... performs well
in all scenarios" — implies a follow-up question it never answers:
*how much is lost by committing one framework to a whole network?*
This module walks a real model, runs every implementation on every
convolutional layer, reports the per-layer winner, and quantifies the
gap between the best single implementation and a per-layer "oracle"
mix (what a dispatching library like later cuDNN versions effectively
implements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ConvConfig
from ..frameworks.base import ConvImplementation
from ..frameworks.registry import all_implementations
from ..gpusim.device import DeviceSpec, K40C
from ..nn.conv_layer import Conv2d
from .report import table


@dataclass(frozen=True)
class LayerChoice:
    """One conv layer's per-implementation times and winner."""

    layer_name: str
    config: ConvConfig
    times: Dict[str, float]      # implementation -> seconds
    winner: str

    @property
    def winner_time(self) -> float:
        return self.times[self.winner]


@dataclass(frozen=True)
class MixReport:
    """Whole-model single-implementation vs per-layer-oracle totals."""

    model: str
    choices: List[LayerChoice]
    single_totals: Dict[str, float]   # implementation -> total conv time
    best_single: str
    oracle_total: float

    @property
    def best_single_total(self) -> float:
        return self.single_totals[self.best_single]

    @property
    def oracle_speedup(self) -> float:
        """How much the per-layer mix saves over the best single
        implementation (>= 1)."""
        return self.best_single_total / self.oracle_total

    def render(self) -> str:
        impls = sorted(self.single_totals)
        body = []
        for c in self.choices:
            row = [c.layer_name, str(c.config.tuple5)]
            for name in impls:
                t = c.times.get(name)
                row.append("-" if t is None else f"{t * 1000:.2f}")
            row.append(c.winner)
            body.append(row)
        out = table(["layer", "(b,i,f,k,s)"] + impls + ["winner"], body,
                    title=f"per-layer implementation choice — {self.model}")
        lines = [out, ""]
        for name in impls:
            mark = " <- best single" if name == self.best_single else ""
            lines.append(f"  {name:15s} {self.single_totals[name] * 1000:9.2f} ms{mark}")
        lines.append(f"  {'oracle mix':15s} {self.oracle_total * 1000:9.2f} ms "
                     f"(x{self.oracle_speedup:.2f} over best single)")
        return "\n".join(lines)


def conv_configs_of(model, input_shape: Tuple[int, ...]) -> List[Tuple[str, ConvConfig]]:
    """(layer name, ConvConfig) for every conv layer of a model."""
    out = []
    for layer, in_shape, _ in model.shape_walk(input_shape):
        if isinstance(layer, Conv2d):
            shape = in_shape[0] if isinstance(in_shape, list) else in_shape
            out.append((layer.name, layer.conv_config(shape)))
    return out


def per_layer_choices(model, input_shape: Tuple[int, ...],
                      implementations: Optional[Sequence[ConvImplementation]] = None,
                      device: DeviceSpec = K40C) -> List[LayerChoice]:
    """Best implementation per conv layer."""
    impls = list(implementations) if implementations else all_implementations()
    choices = []
    for name, config in conv_configs_of(model, input_shape):
        times: Dict[str, float] = {}
        for impl in impls:
            if impl.supports(config):
                times[impl.paper_name] = impl.time_iteration(config, device)
        if not times:
            continue
        choices.append(LayerChoice(
            layer_name=name, config=config, times=times,
            winner=min(times, key=times.get)))
    return choices


def oracle_mix(model_name: str, model, input_shape: Tuple[int, ...],
               implementations: Optional[Sequence[ConvImplementation]] = None,
               device: DeviceSpec = K40C) -> MixReport:
    """Compare committing to one implementation vs the per-layer mix.

    Only implementations that support *every* conv layer of the model
    enter the single-implementation totals (you cannot train half a
    network on fbfft if one layer is strided); all of them contribute
    to the oracle.
    """
    choices = per_layer_choices(model, input_shape, implementations, device)
    if not choices:
        raise ValueError(f"{model_name} has no convolutional layers")
    universal = set.intersection(*(set(c.times) for c in choices))
    if not universal:
        raise ValueError("no implementation supports every conv layer")
    single_totals = {
        name: sum(c.times[name] for c in choices) for name in universal
    }
    best_single = min(single_totals, key=single_totals.get)
    oracle_total = sum(c.winner_time for c in choices)
    return MixReport(model=model_name, choices=choices,
                     single_totals=single_totals, best_single=best_single,
                     oracle_total=oracle_total)
