"""Whole-training-run cost estimation.

The paper's introduction motivates the entire study with training
cost: "training on those large-scale datasets requires significant
runtime, and several weeks or months is not uncommon."  This module
closes that loop: it combines the per-iteration model simulation
(Fig. 2 machinery) with the dataset descriptors to estimate what a
full training run of each reference model costs on the simulated
K40c — and how the choice of convolution implementation moves it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ShapeError
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.multigpu import strong_scaling
from ..nn.models import model_registry
from ..nn.simulate import model_breakdown
from ..workloads.datasets import DatasetSpec


@dataclass(frozen=True)
class TrainingEstimate:
    """Projected cost of one full training run."""

    model: str
    dataset: str
    implementation: str
    batch: int
    epochs: int
    iteration_time_s: float
    iterations_per_epoch: int
    epoch_time_s: float
    total_time_s: float
    parameter_bytes: int

    @property
    def total_days(self) -> float:
        return self.total_time_s / 86_400.0

    def render(self) -> str:
        return (
            f"{self.model} on {self.dataset} ({self.epochs} epochs, "
            f"batch {self.batch}, conv via {self.implementation}):\n"
            f"  {self.iteration_time_s * 1000:8.1f} ms / iteration x "
            f"{self.iterations_per_epoch} iterations / epoch\n"
            f"  = {self.epoch_time_s / 3600:6.2f} h / epoch, "
            f"{self.total_days:6.2f} days total"
        )


def estimate_training(model_name: str, dataset: DatasetSpec,
                      implementation: str = "cudnn", batch: int = 128,
                      epochs: int = 90,
                      device: DeviceSpec = K40C) -> TrainingEstimate:
    """Estimate a full training run of a reference model.

    Uses the layer-by-layer simulated iteration time (section IV-A
    machinery) and the dataset's published size.
    """
    if batch <= 0:
        raise ShapeError(f"batch must be positive, got {batch}")
    if epochs <= 0:
        raise ShapeError(f"epochs must be positive, got {epochs}")
    registry = model_registry()
    try:
        ctor, shape = registry[model_name]
    except KeyError:
        raise KeyError(
            f"unknown model {model_name!r}; options: {sorted(registry)}"
        ) from None

    model = ctor(rng=0)
    costs = model_breakdown(model, (batch,) + shape,
                            implementation=implementation, device=device)
    iteration = sum(c.time_s for c in costs)
    iters_per_epoch = dataset.epoch_iterations(batch)
    epoch = iteration * iters_per_epoch
    return TrainingEstimate(
        model=model_name,
        dataset=dataset.name,
        implementation=implementation,
        batch=batch,
        epochs=epochs,
        iteration_time_s=iteration,
        iterations_per_epoch=iters_per_epoch,
        epoch_time_s=epoch,
        total_time_s=epoch * epochs,
        parameter_bytes=model.parameter_count() * 4,
    )


def multi_gpu_projection(estimate: TrainingEstimate, gpus: int,
                         device: DeviceSpec = K40C) -> Tuple[float, float]:
    """(total_days, efficiency) of the same run on ``gpus`` K40c cards
    under synchronous data parallelism."""
    point = strong_scaling(estimate.iteration_time_s,
                           estimate.parameter_bytes, gpus, device)
    total = (point.iteration_time_s * estimate.iterations_per_epoch
             * estimate.epochs)
    return total / 86_400.0, point.efficiency
