"""Terminal dashboard over telemetry window logs.

Renders the rolling fleet view the ISSUE's operators asked for — the
live counterpart of the paper's Fig. 4 hotspot table — from either a
live :class:`~repro.obs.timeseries.Rollups` pipeline or a recorded
JSONL window log:

* top hotspot kernel roles by simulated GPU time
  (``gpusim_kernel_time_seconds_total``, falling back to launch
  counts), Fig.-4-style share bars;
* per-device and per-tenant QPS / p50 / p99 over the run, with a
  QPS sparkline across windows;
* shed causes, cache hit rates (plan cache / evalcache / dispatch
  memo probes), and the alert timeline (which windows fired what).

Output is plain text, fixed-width, and byte-deterministic for a given
log — CI renders a recorded log and checks the render is stable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .timeseries import Rollups, _series_base, load_window_log

_SPARKS = " .:-=+*#%@"
_BAR = "#"


def _spark(values: List[float], width: int) -> str:
    if not values:
        return ""
    if len(values) > width:
        # squeeze by averaging fixed-size chunks
        chunk = len(values) / width
        values = [sum(values[int(i * chunk):max(int(i * chunk) + 1,
                                                int((i + 1) * chunk))])
                  / max(1, len(values[int(i * chunk):max(
                      int(i * chunk) + 1, int((i + 1) * chunk))]))
                  for i in range(width)]
    top = max(values)
    if top <= 0:
        return _SPARKS[0] * len(values)
    return "".join(_SPARKS[min(len(_SPARKS) - 1,
                               int(v / top * (len(_SPARKS) - 1)))]
                   for v in values)


def _share_bar(share: float, width: int = 24) -> str:
    return _BAR * max(0, min(width, round(share * width)))


def _counter_sums(windows: List[dict], metric: str) -> Dict[str, float]:
    """label-suffix → summed delta for one counter across windows."""
    sums: Dict[str, float] = {}
    for doc in windows:
        for deltas in doc.get("counters", {}).values():
            for series, value in deltas.items():
                if _series_base(series) == metric:
                    label = series[len(metric):].strip("{}")
                    sums[label] = sums.get(label, 0.0) + value
    return sums


def _label_value(label: str, key: str) -> Optional[str]:
    for part in label.split(","):
        if part.startswith(f'{key}="'):
            return part[len(key) + 2:-1]
    return None


def _latency_rollup(windows: List[dict], dim: str
                    ) -> Dict[str, Tuple[int, float, float]]:
    """key → (completed, worst p50, worst p99) across windows."""
    out: Dict[str, Tuple[int, float, float]] = {}
    for doc in windows:
        for key, summary in doc.get("latency", {}).get(dim, {}).items():
            count, p50, p99 = out.get(key, (0, 0.0, 0.0))
            out[key] = (count + summary["count"],
                        max(p50, summary["p50"]), max(p99, summary["p99"]))
    return out


def render_dashboard(windows: List[dict], header: Optional[dict] = None,
                     title: str = "fleet telemetry",
                     width: int = 72) -> str:
    """The full dashboard as one plain-text block."""
    lines: List[str] = []
    rule = "=" * width

    def section(name: str) -> None:
        lines.append("")
        lines.append(f"-- {name} " + "-" * max(0, width - len(name) - 4))

    window_s = (header or {}).get("window_s")
    lines.append(rule)
    lines.append(f"  {title}")
    if windows:
        span = f"{windows[0]['start_s']:g}s .. {windows[-1]['end_s']:g}s"
        extra = f", window {window_s:g}s" if window_s else ""
        lines.append(f"  {len(windows)} windows, {span}{extra}")
    else:
        lines.append("  (no windows)")
    lines.append(rule)
    if not windows:
        return "\n".join(lines) + "\n"

    # -- QPS sparkline ----------------------------------------------------
    section("throughput")
    qps = [doc.get("qps", 0.0) for doc in windows]
    completed = sum(doc.get("completed", 0) for doc in windows)
    lines.append(f"  completed {completed}  peak {max(qps):.1f} rps  "
                 f"last {qps[-1]:.1f} rps")
    lines.append("  [" + _spark(qps, width - 6) + "]")

    # -- per-device / per-tenant latency ----------------------------------
    for dim in ("device", "tenant"):
        table = _latency_rollup(windows, dim)
        if not table:
            continue
        section(f"latency by {dim}")
        lines.append(f"  {dim:<28} {'n':>8} {'p50 ms':>9} {'p99 ms':>9}")
        for key in sorted(table):
            count, p50, p99 = table[key]
            lines.append(f"  {key:<28} {count:>8} "
                         f"{p50 * 1e3:>9.3f} {p99 * 1e3:>9.3f}")

    # -- hotspot kernels (Fig. 4) -----------------------------------------
    metric = "gpusim_kernel_time_seconds_total"
    sums = _counter_sums(windows, metric)
    unit = "time"
    if not sums:
        sums = _counter_sums(windows, "gpusim_kernel_launches_total")
        unit = "launches"
    if sums:
        section(f"hotspot kernels (by {unit})")
        by_role: Dict[str, float] = {}
        for label, value in sums.items():
            role = _label_value(label, "role") or label or "?"
            by_role[role] = by_role.get(role, 0.0) + value
        total = sum(by_role.values()) or 1.0
        ranked = sorted(by_role.items(), key=lambda kv: (-kv[1], kv[0]))
        for role, value in ranked[:8]:
            share = value / total
            lines.append(f"  {role:<22} {share * 100:>6.2f}%  "
                         f"{_share_bar(share)}")

    # -- shed causes ------------------------------------------------------
    sheds = _counter_sums(windows, "serve_sheds_total")
    if sheds:
        section("shed causes")
        for label in sorted(sheds):
            cause = _label_value(label, "cause") or label or "?"
            lines.append(f"  {cause:<22} {sheds[label]:g}")

    # -- cache probes -----------------------------------------------------
    probe_sums: Dict[str, Dict[str, float]] = {}
    for doc in windows:
        for name, deltas in doc.get("probes", {}).items():
            agg = probe_sums.setdefault(name, {})
            for key, value in deltas.items():
                agg[key] = agg.get(key, 0.0) + value
    if probe_sums:
        section("cache probes (windowed deltas)")
        for name in sorted(probe_sums):
            agg = probe_sums[name]
            hits, misses = agg.get("hits", 0.0), agg.get("misses", 0.0)
            total = hits + misses
            rate = f"{hits / total * 100:.1f}%" if total else "n/a"
            lines.append(f"  {name:<34} hits {hits:g} misses {misses:g} "
                         f"({rate})")

    # -- alerts -----------------------------------------------------------
    firing = [(doc["index"], doc["alerts"]) for doc in windows
              if doc.get("alerts")]
    section("alerts")
    if not firing:
        lines.append("  none fired")
    else:
        seen: Dict[str, List[int]] = {}
        for index, names in firing:
            for name in names:
                seen.setdefault(name, []).append(index)
        for name in sorted(seen):
            idxs = seen[name]
            lines.append(f"  {name:<22} firing in {len(idxs)} window(s) "
                         f"[{idxs[0]}..{idxs[-1]}]")
        last = windows[-1].get("alerts") or []
        lines.append(f"  active at end: {', '.join(last) if last else 'none'}")

    # -- replica states ---------------------------------------------------
    state = windows[-1].get("state", {})
    for name in sorted(state):
        section(f"state: {name}")
        entries = state[name]
        if isinstance(entries, dict):
            for key in sorted(entries):
                lines.append(f"  {key:<28} {entries[key]}")
        else:
            lines.append(f"  {entries}")

    lines.append("")
    lines.append(rule)
    return "\n".join(lines) + "\n"


def render_dashboard_from_log(path: str, width: int = 72) -> str:
    """Render a recorded window log (the CI smoke path)."""
    header, windows = load_window_log(path)
    return render_dashboard(windows, header=header,
                            title=f"fleet telemetry — {path}", width=width)


def render_dashboard_live(rollups: Rollups, title: str = "fleet telemetry",
                          width: int = 72) -> str:
    """Render a live pipeline's flushed windows."""
    return render_dashboard(rollups.windows,
                            header={"window_s": rollups.window_s},
                            title=title, width=width)
