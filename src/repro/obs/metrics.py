"""Labeled metrics registry.

One sink for every subsystem's counters instead of per-module private
dicts: the serving stats (:class:`repro.serve.stats.ServingStats` is a
view over a registry), the shared evaluation cache, the fault plane
and the gpusim profiler all publish here.  Three metric kinds:

* :class:`Counter` — monotonic totals (``serve_retries_total``);
* :class:`Gauge` — last-value samples (``serve_peak_memory_bytes``);
* :class:`Histogram` — raw observations summarised on snapshot with
  the shared percentile math (``serve_latency_seconds``).

Naming convention: ``<subsystem>_<noun>[_<unit>][_total]``, lowercase
with underscores; dimensions go into labels
(``serve_sheds_total{cause="timeout"}``), never into the name.

Snapshots are deterministically ordered — metrics sorted by name then
label string — so two identical runs export byte-identical files, the
property every determinism test in this repo leans on.  The
:data:`NULL_REGISTRY` singleton hands out one shared no-op metric so
disabled observability costs a method call and nothing else.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from .hist import summarize

#: A normalised label set: ``(("cause", "timeout"), ...)`` sorted by key.
LabelSet = Tuple[Tuple[str, str], ...]


def _labels(labels: Dict[str, object]) -> LabelSet:
    if not labels:
        # The unlabeled case dominates the serving hot path; skip the
        # generator + sort machinery for it.
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; inc({n})")
        self.value += n

    def set(self, value: float) -> None:
        """Jump to an externally tracked total (e.g. adopting a
        subsystem's own counter at the end of a run)."""
        self.value = value

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A point-in-time sample that can move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Raw-observation histogram summarised on snapshot.

    Simulated runs observe at most a few hundred thousand values, so
    keeping the raw list (and summarising with the exact shared
    percentile math) beats maintaining bucket boundaries.
    """

    __slots__ = ("observations",)
    kind = "histogram"

    def __init__(self) -> None:
        self.observations: List[float] = []

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(
                f"histogram observations must be finite, got {value}")
        self.observations.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk :meth:`observe` (the serving stats' streaming path);
        same finiteness contract, one ``extend`` instead of n appends."""
        values = list(values)
        if not all(map(math.isfinite, values)):
            bad = next(v for v in values if not math.isfinite(v))
            raise ValueError(
                f"histogram observations must be finite, got {bad}")
        self.observations.extend(values)

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def sum(self) -> float:
        return sum(self.observations)

    def snapshot_value(self) -> Dict[str, float]:
        return summarize(self.observations)


class MetricsRegistry:
    """Holds every metric series of one run, keyed by name + labels."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}

    # -- access (create on first use) --------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, object]):
        key = (name, _labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def series(self, name: str) -> List[Tuple[Dict[str, str], object]]:
        """Every (labels, metric) of one metric name, label-sorted.

        This is how the serving stats rebuild their per-cause /
        per-implementation dict views from the registry.
        """
        return [(dict(labels), metric)
                for (n, labels), metric in sorted(self._metrics.items(),
                                                  key=lambda kv: kv[0])
                if n == name]

    def value(self, name: str, **labels) -> float:
        """Current value of one series (0 if never touched)."""
        metric = self._metrics.get((name, _labels(labels)))
        return 0 if metric is None else metric.snapshot_value()

    # -- export ------------------------------------------------------------

    def _sorted(self) -> Iterable[Tuple[str, object]]:
        for (name, labels), metric in sorted(self._metrics.items()):
            yield _series_name(name, labels), metric

    def snapshot(self) -> Dict[str, dict]:
        """JSON-ready export, deterministically ordered by series name."""
        out: Dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for series, metric in self._sorted():
            out[metric.kind + "s"][series] = metric.snapshot_value()
        return out

    def render(self) -> str:
        """Plain-text snapshot, one series per line."""
        lines = []
        for series, metric in self._sorted():
            if metric.kind == "histogram":
                s = metric.snapshot_value()
                lines.append(
                    f"{series:55s} count={s['count']} mean={s['mean']:.6g} "
                    f"p50={s['p50']:.6g} p95={s['p95']:.6g} "
                    f"p99={s['p99']:.6g} max={s['max']:.6g}")
            else:
                value = metric.snapshot_value()
                text = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{series:55s} {text}")
        return "\n".join(lines)


class _NullMetric:
    """Shared sink for every metric call when observability is off."""

    __slots__ = ()
    kind = "null"
    value = 0
    count = 0
    sum = 0.0
    observations: List[float] = []

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        # Must never touch the class-level shared `observations` list.
        pass

    def snapshot_value(self) -> float:
        return 0


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled registry: every series is one shared no-op metric."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def __len__(self) -> int:
        return 0

    def series(self, name: str) -> List[Tuple[Dict[str, str], object]]:
        return []

    def value(self, name: str, **labels) -> float:
        return 0

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render(self) -> str:
        return ""


#: Process-wide disabled registry (the default outside serving runs).
NULL_REGISTRY = NullRegistry()
