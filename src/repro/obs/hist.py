"""Shared latency-summary math.

One implementation of the percentile / distribution-summary helpers
for every consumer: the serving stats (:mod:`repro.serve.stats`
re-exports :func:`percentile` for backward compatibility), the
metrics registry's histogram snapshots, and the benchmarks.  Keeping
the math here means a p95 in a serving report, a metrics export and a
bench table are always the same quantity.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: The percentiles a distribution summary reports, in order.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(sorted_values: List[float], p: float) -> float:
    """Linear-interpolation percentile of pre-sorted values,
    ``p`` in [0, 100]."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"p must be in [0, 100], got {p}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = p / 100.0 * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Distribution summary of raw (unsorted) observations.

    Returns count/sum/min/mean/max plus the
    :data:`SUMMARY_PERCENTILES` as ``p50``/``p95``/``p99`` — the shape
    every histogram snapshot in the metrics registry exports.  An
    empty input summarises to all zeros.  Non-finite observations
    (NaN / inf) are rejected: a NaN silently poisons sort order and
    every derived percentile, so failing loudly here keeps snapshots
    trustworthy.
    """
    if not values:
        return {"count": 0, "sum": 0.0, "min": 0.0, "mean": 0.0, "max": 0.0,
                **{f"p{int(p)}": 0.0 for p in SUMMARY_PERCENTILES}}
    if not all(math.isfinite(v) for v in values):
        bad = next(v for v in values if not math.isfinite(v))
        raise ValueError(f"summarize requires finite values, got {bad}")
    ordered = sorted(values)
    total = sum(ordered)
    out = {
        "count": len(ordered),
        "sum": total,
        "min": ordered[0],
        "mean": total / len(ordered),
        "max": ordered[-1],
    }
    for p in SUMMARY_PERCENTILES:
        out[f"p{int(p)}"] = percentile(ordered, p)
    return out
