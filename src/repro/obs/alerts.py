"""Multi-window burn-rate alerting over telemetry rollups.

The SLO engine (:mod:`repro.obs.slo`) answers "is the objective met
right now / over the run"; alerting answers the operator's question —
"is the error budget burning fast enough that someone should look" —
which the SRE literature handles with *multi-window burn rates*: a
rule fires only when both a fast window (catches sudden cliffs) and a
slow window (suppresses blips) exceed the same burn threshold, and
resolves when the fast window recovers.

:class:`AlertManager` subscribes to a :class:`~repro.obs.timeseries.Rollups`
pipeline and evaluates each :class:`AlertRule` as every window
flushes.  Everything is edge-triggered and byte-deterministic:

* a False→True edge emits an ``alert.firing`` span event on the fleet
  tracer and appends a record to :attr:`AlertManager.events`;
* a True→False edge emits ``alert.resolved``;
* the manager stamps each window document with the currently-firing
  rule names (``doc["alerts"]``) *before* later listeners — the
  flight recorder and the window log — see it, so recorded windows
  carry their alert state.

Rules are declarative and serializable; the built-in kinds share one
evaluator:

* ``bad`` and ``total`` name counter metrics (summed across every
  label set and source in the window).  With a ``total``, the rule
  value is the *burn rate* — (bad/total)/budget — the multiple of the
  allowed error budget being consumed.  Without one, the value is a
  plain event rate (events per simulated second) — suspicion churn,
  eviction storms.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .timeseries import Rollups, window_counter_total

#: Header ``format`` field of an alert event log.
ALERT_LOG_FORMAT = "repro-alerts"


@dataclass(frozen=True)
class AlertRule:
    """One declarative multi-window alert.

    ``fast_windows`` / ``slow_windows`` are lookbacks in rollup
    windows; the rule fires when the computed value meets
    ``threshold`` over *both*, and resolves when the fast window
    drops back below.
    """

    name: str
    #: Counter metrics whose window deltas count as "bad" events.
    bad: Tuple[str, ...]
    #: Counter metrics forming the denominator (empty → plain rate).
    total: Tuple[str, ...] = ()
    #: Allowed bad fraction (error budget) when ``total`` is set.
    budget: float = 0.05
    #: Firing threshold: burn-rate multiple, or events/s without total.
    threshold: float = 1.0
    fast_windows: int = 2
    slow_windows: int = 12
    #: Denominator floor — below this many total events the rule
    #: abstains (a 1-request window shouldn't page).
    min_events: int = 1

    def __post_init__(self) -> None:
        if not self.bad:
            raise ValueError(f"rule {self.name!r} names no bad metrics")
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError(
                f"rule {self.name!r}: need 1 <= fast_windows <= "
                f"slow_windows, got {self.fast_windows}/{self.slow_windows}")
        if self.threshold <= 0 or (self.total and self.budget <= 0):
            raise ValueError(f"rule {self.name!r}: threshold and budget "
                             f"must be positive")

    def value(self, windows: List[dict], lookback: int,
              window_s: float) -> Optional[float]:
        """Burn rate (or event rate) over the last ``lookback``
        windows; None when the rule abstains (denominator floor)."""
        tail = windows[-lookback:]
        if not tail:
            return None
        bad = sum(window_counter_total(doc, metric)
                  for doc in tail for metric in self.bad)
        if not self.total:
            return bad / (len(tail) * window_s)
        total = sum(window_counter_total(doc, metric)
                    for doc in tail for metric in self.total)
        if total < self.min_events:
            return None
        return (bad / total) / self.budget


#: The stock rule set, aligned with :data:`repro.obs.slo.DEFAULT_RULES`:
#: the SLO engine's 5% shed budget becomes the burn denominator, and
#: the health plane's suspicion/eviction counters get a churn rule.
DEFAULT_ALERT_RULES: Tuple[AlertRule, ...] = (
    AlertRule(name="error-budget-burn",
              bad=("serve_sheds_total", "serve_requests_rejected_total"),
              total=("serve_requests_offered_total",),
              budget=0.05, threshold=1.0, fast_windows=2, slow_windows=12),
    AlertRule(name="shed-rate",
              bad=("serve_sheds_total",),
              total=("serve_requests_offered_total",),
              budget=0.05, threshold=2.0, fast_windows=1, slow_windows=6),
    AlertRule(name="suspicion-churn",
              bad=("cluster_suspicions_total", "cluster_evictions_total"),
              threshold=0.5, fast_windows=2, slow_windows=8),
)


class AlertManager:
    """Evaluates alert rules as rollup windows flush.

    ``tracer`` (optional) receives the edge-triggered span events; it
    may be a tracer or a zero-arg callable returning one (the cluster
    swaps its fleet tracer in after construction, so the wiring passes
    ``lambda: cluster.obs.tracer``).  ``listener`` (optional) is
    called as ``listener(rule, firing, window_doc)`` on every edge —
    the flight recorder hooks incident capture there.
    """

    def __init__(self, rules: Tuple[AlertRule, ...], rollups: Rollups,
                 tracer=None,
                 listener: Optional[Callable[[AlertRule, bool, dict],
                                             None]] = None):
        self.rules = tuple(rules)
        self.rollups = rollups
        self.tracer = tracer
        self.listener = listener
        self.events: List[dict] = []
        self._firing: Dict[str, bool] = {r.name: False for r in self.rules}
        self._fired: Dict[str, int] = {r.name: 0 for r in self.rules}
        self._windows_firing: Dict[str, int] = {r.name: 0
                                                for r in self.rules}
        rollups.on_window(self._on_window)

    # -- evaluation --------------------------------------------------------

    def _on_window(self, doc: dict) -> None:
        windows = self.rollups.windows  # doc is already appended
        window_s = self.rollups.window_s
        active: List[str] = []
        for rule in self.rules:
            fast = rule.value(windows, rule.fast_windows, window_s)
            slow = rule.value(windows, rule.slow_windows, window_s)
            was = self._firing[rule.name]
            if was:
                # resolve on fast-window recovery (or abstention)
                now = fast is not None and fast >= rule.threshold
            else:
                now = (fast is not None and slow is not None
                       and fast >= rule.threshold
                       and slow >= rule.threshold)
            if now != was:
                self._edge(rule, now, doc, fast)
            self._firing[rule.name] = now
            if now:
                active.append(rule.name)
                self._windows_firing[rule.name] += 1
        # Stamp the verdict into the document before later listeners
        # (recorder, exporters) observe it.
        doc["alerts"] = active

    def _edge(self, rule: AlertRule, firing: bool, doc: dict,
              value: Optional[float]) -> None:
        state = "firing" if firing else "resolved"
        record = {"type": "alert", "rule": rule.name, "state": state,
                  "window": doc["index"], "t_s": doc["end_s"],
                  "value": None if value is None else round(value, 9),
                  "threshold": rule.threshold}
        self.events.append(record)
        if firing:
            self._fired[rule.name] += 1
        tracer = self.tracer() if callable(self.tracer) else self.tracer
        if tracer is not None:
            tracer.event(f"alert.{state}", rule=rule.name,
                         window=doc["index"],
                         value=record["value"])
        if self.listener is not None:
            self.listener(rule, firing, doc)

    # -- queries -----------------------------------------------------------

    @property
    def firing(self) -> List[str]:
        """Names of currently-firing rules, in rule order."""
        return [r.name for r in self.rules if self._firing[r.name]]

    def report(self) -> dict:
        """Per-rule summary for the cluster report (stable key order)."""
        return {
            "events": len(self.events),
            "rules": {r.name: {"active": self._firing[r.name],
                               "fired": self._fired[r.name],
                               "windows_firing":
                                   self._windows_firing[r.name]}
                      for r in sorted(self.rules, key=lambda r: r.name)},
        }


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------

def alert_log_lines(manager: AlertManager) -> List[str]:
    """JSONL alert event stream: header, then one record per edge."""
    from .timeseries import TELEMETRY_SCHEMA_VERSION

    header = json.dumps({"type": "header", "format": ALERT_LOG_FORMAT,
                         "schema_version": TELEMETRY_SCHEMA_VERSION,
                         "rules": [r.name for r in manager.rules]},
                        sort_keys=True)
    return [header] + [json.dumps(e, sort_keys=True)
                       for e in manager.events]


def write_alert_log(path: str, manager: AlertManager) -> int:
    """Write the JSONL alert event stream; returns the line count."""
    lines = alert_log_lines(manager)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
