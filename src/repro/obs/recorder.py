"""Flight recorder: bounded telemetry rings and incident bundles.

Post-mortems of a chaos run currently mean re-running it with full
tracing and digging through the whole timeline.  A
:class:`FlightRecorder` keeps just enough recent context per replica —
a ring of the last N window snapshots and, on demand, the tail of the
replica's span stream — to dump a *self-contained incident bundle*
the moment something goes wrong: an alert fires, the health plane
evicts a replica, or an SLO violation edge triggers.

A bundle is one sorted-key JSON document holding the trigger, the
recent windows (with their alert state stamped in), the span tail,
and a scorecard slice, so it can be read — or diffed against another
run's bundle — without any other artifact.  Everything is
deterministic: same seed, same incidents, byte-identical bundles.

When the source tracer is a :class:`~repro.obs.tracer.TraceSampler`
that has dropped units, the bundle is marked ``"spans_partial": true``
and carries the sampler's kept/total counts — sampled span streams
must never masquerade as complete evidence (the windows themselves
are registry-fed and stay exact at any sampling rate).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

#: Number of most-recent span-forest roots walked when capturing a
#: span tail (bounds the capture cost on very long traces).
_TAIL_ROOTS = 8


def span_records(tracer, limit: int) -> List[dict]:
    """The last ``limit`` finished spans of a tracer, as the same
    record shape the JSONL trace exporter writes (depth-first order
    within the captured tail)."""
    if tracer is None or not getattr(tracer, "enabled", False):
        return []
    records: List[dict] = []
    for root in tracer.roots[-_TAIL_ROOTS:]:
        stack = [root]
        while stack:
            span = stack.pop()
            records.append(
                {"type": "span", "sid": span.sid, "parent": span.parent_sid,
                 "name": span.name, "cat": span.cat,
                 "start_s": span.start_s, "end_s": span.end_s,
                 "attrs": dict(span.attrs)})
            stack.extend(reversed(span.children))
    return records[-limit:]


def sampler_stats(tracer) -> Optional[Dict[str, int]]:
    """``TraceSampler.stats()`` when the tracer samples, else None."""
    stats = getattr(tracer, "stats", None)
    if stats is None:
        return None
    doc = stats()
    if isinstance(doc, dict) and "units_total" in doc:
        return doc
    return None


class FlightRecorder:
    """Bounded ring of recent telemetry for one replica (or a whole
    single-server run).

    Subscribe :meth:`observe_window` to a rollups pipeline; call
    :meth:`bundle` at an incident to freeze the current rings into a
    self-contained document.
    """

    def __init__(self, name: str, tracer=None, ring_windows: int = 64,
                 ring_spans: int = 256):
        self.name = name
        self.tracer = tracer
        self.ring_spans = ring_spans
        self.window_ring: deque = deque(maxlen=ring_windows)

    def observe_window(self, doc: dict) -> None:
        self.window_ring.append(doc)

    def bundle(self, reason: str, t_s: float,
               scorecard: Optional[dict] = None,
               alerts: Optional[List[str]] = None, **context) -> dict:
        """One incident bundle: trigger + recent windows + span tail
        + scorecard slice, ready for :func:`write_incident_bundle`."""
        spans = span_records(self.tracer, self.ring_spans)
        doc = {
            "type": "incident",
            "reason": reason,
            "t_s": t_s,
            "recorder": self.name,
            "context": dict(sorted(context.items())),
            "windows": list(self.window_ring),
            "spans": spans,
        }
        stats = sampler_stats(self.tracer)
        if stats is not None:
            doc["sampler"] = stats
            doc["spans_partial"] = stats["units_kept"] < stats["units_total"]
        else:
            doc["spans_partial"] = False
        if scorecard is not None:
            doc["scorecard"] = scorecard
        if alerts is not None:
            doc["alerts_active"] = list(alerts)
        return doc


def write_incident_bundle(path: str, bundle: dict) -> str:
    """Serialise one bundle (sorted keys — byte-deterministic)."""
    text = json.dumps(bundle, indent=1, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text
