"""Observability context: one tracer + one registry, propagated.

Cross-layer tracing needs the advisor, the evaluation cache, the
parallel executor, the profiler and the fault plane to find the
*current run's* tracer without threading it through every signature.
Since simulated runs are single-threaded by construction (one virtual
clock), propagation is a module-level current-context slot:

* :func:`get_obs` — the active :class:`Observability` (the shared
  :data:`NULL_OBS` when nothing is installed, so instrumented call
  sites never branch);
* :func:`obs_session` — install a context for the duration of a
  ``with`` block (the serving scheduler wraps each run in one).

Every instrumented module calls ``get_obs()`` at use time, so code
outside a session pays two attribute reads and a no-op call.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry
from .tracer import NULL_TRACER, NullTracer, SimTracer


class Observability:
    """A tracer and a registry travelling together.

    ``Observability()`` is the serving default: tracing off (the null
    tracer) but a real registry, because the serving stats are a view
    over it.  :data:`NULL_OBS` disables both.
    """

    __slots__ = ("tracer", "registry")

    def __init__(self, tracer=None, registry=None):
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.registry = MetricsRegistry() if registry is None else registry

    @property
    def tracing(self) -> bool:
        """Whether spans are actually being recorded."""
        return self.tracer.enabled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Observability(tracing={self.tracing}, "
                f"registry={type(self.registry).__name__})")


#: Fully disabled context — the process-wide default.
NULL_OBS = Observability(tracer=NULL_TRACER, registry=NULL_REGISTRY)

_current = NULL_OBS


def get_obs() -> Observability:
    """The active observability context (never None)."""
    return _current


def set_obs(obs: Optional[Observability]) -> Observability:
    """Install ``obs`` (None → :data:`NULL_OBS`); returns the previous
    context so callers can restore it."""
    global _current
    previous = _current
    _current = obs if obs is not None else NULL_OBS
    return previous


@contextmanager
def obs_session(obs: Observability):
    """Install ``obs`` for the duration of the block (restores the
    previous context on exit, exception or not)."""
    previous = set_obs(obs)
    try:
        yield obs
    finally:
        set_obs(previous)
