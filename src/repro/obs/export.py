"""Exporters: Chrome-trace/Perfetto JSON, JSONL event log, metrics.

The unified timeline this module writes is the cross-layer view the
profiler-only :mod:`repro.gpusim.trace` could not give: serving-side
spans (scheduler, plan lookups, advisor rankings, evalcache accesses)
and gpusim kernel leaves land in one document as separate Perfetto
*processes*, with fault injections as instant events on the affected
rows.  :mod:`repro.gpusim.trace` remains for profiler-session-only
exports and shares this module's row helpers.

All output is deterministic: events are emitted in depth-first span
order, sorted per row by ``(ts, -dur)`` (the Chrome convention for
nested complete events), and serialised with sorted keys — two
same-seed runs produce byte-identical files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .tracer import SimTracer, Span

#: Version stamped into the JSONL event log's header record and the
#: metrics-snapshot files.  Bump it when a record's shape changes so
#: the analyzer (:mod:`repro.obs.analyze`) rejects logs it would
#: misread instead of producing silently wrong reports.
SCHEMA_VERSION = 1

#: Versions the loaders accept (logs written before versioning carry
#: no header and are treated as version 1).
SUPPORTED_SCHEMA_VERSIONS = (1,)

#: Span category → (pid, process name, tid, thread name).  Everything
#: serving-side shares one process; gpusim kernel leaves get their own
#: so the GPU row reads like an nvprof timeline under the scheduler row.
_ROWS: Dict[str, Tuple[int, str, int, str]] = {
    "serve": (1, "serve", 1, "scheduler"),
    "advisor": (1, "serve", 1, "scheduler"),
    "evalcache": (1, "serve", 1, "scheduler"),
    "parallel": (1, "serve", 1, "scheduler"),
    "faults": (1, "serve", 1, "scheduler"),
    "gpu": (2, "gpusim", 1, "compute"),
    "memcpy": (2, "gpusim", 2, "copy engine"),
}
_DEFAULT_ROW = (1, "serve", 1, "scheduler")


def _row(cat: str) -> Tuple[int, str, int, str]:
    return _ROWS.get(cat, _DEFAULT_ROW)


def metadata_events(rows: Dict[int, Tuple[str, Dict[int, str]]]) -> List[dict]:
    """Perfetto ``M`` rows naming processes and threads.

    ``rows`` maps pid → (process name, {tid: thread name}).
    """
    events: List[dict] = []
    for pid in sorted(rows):
        process, tids = rows[pid]
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": process}})
        for tid in sorted(tids):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": tids[tid]}})
    return events


def ensure_monotonic(events: List[dict], step_us: float = 1e-3) -> List[dict]:
    """Sort timed events per ``(pid, tid)`` row and force strictly
    increasing timestamps (equal or regressing ``ts`` is nudged forward
    by ``step_us``).

    For flat rows — back-to-back kernels, transfer engines — this is
    exactly what Perfetto's JSON importer wants; rows with *nested*
    complete events should use :func:`sort_events` instead, which
    preserves containment.  Metadata (``M``) events pass through
    untouched, ahead of the timeline.
    """
    meta = [e for e in events if e.get("ph") == "M"]
    timed = [e for e in events if e.get("ph") != "M"]
    timed.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    last: Dict[Tuple[int, int], float] = {}
    out: List[dict] = []
    for e in timed:
        row = (e["pid"], e["tid"])
        ts = e["ts"]
        floor = last.get(row)
        if floor is not None and ts <= floor:
            ts = floor + step_us
            e = dict(e, ts=ts)
        last[row] = ts
        out.append(e)
    return meta + out


def sort_events(events: List[dict]) -> List[dict]:
    """Chrome ordering for rows that may nest: per row by
    ``(ts, -dur)`` so an enclosing span precedes the spans it
    contains.  Metadata rows stay in front."""
    meta = [e for e in events if e.get("ph") == "M"]
    timed = sorted((e for e in events if e.get("ph") != "M"),
                   key=lambda e: (e["pid"], e["tid"], e["ts"],
                                  -e.get("dur", 0.0)))
    return meta + timed


# ---------------------------------------------------------------------------
# span forest → trace events
# ---------------------------------------------------------------------------

def _span_event(span: Span) -> dict:
    pid, _, tid, _ = _row(span.cat)
    return {
        "name": span.name,
        "cat": span.cat,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": span.start_s * 1e6,          # microseconds
        "dur": span.duration_s * 1e6,
        "args": dict(span.attrs),
    }


def _instant(name: str, cat: str, t_s: float, attrs: dict,
             pid: int, tid: int) -> dict:
    return {"name": name, "cat": cat, "ph": "i", "s": "t",
            "pid": pid, "tid": tid, "ts": t_s * 1e6,
            "args": dict(attrs)}


def span_events(tracer: SimTracer) -> List[dict]:
    """Flatten a tracer's span forest into Chrome trace events
    (complete ``X`` events for spans, instant ``i`` events for span
    events), depth-first."""
    events: List[dict] = []
    for span in tracer.walk():
        pid, _, tid, _ = _row(span.cat)
        events.append(_span_event(span))
        for ev in span.events:
            events.append(_instant(ev.name, span.cat, ev.t_s, ev.attrs,
                                   pid, tid))
    pid, _, tid, _ = _DEFAULT_ROW
    for ev in tracer.orphan_events:
        events.append(_instant(ev.name, "orphan", ev.t_s, ev.attrs,
                               pid, tid))
    return events


# -- cluster exports: one Perfetto process per replica ----------------------

#: pid of the cluster router/autoscaler row in merged fleet exports.
CLUSTER_PID = 1
#: pid of the first replica row; replica ``i`` lands on this + ``i``.
REPLICA_PID_BASE = 10

#: Thread layout inside one remapped replica (or router) process:
#: serving-side categories share the scheduler thread, gpusim rows get
#: their own — the same reading order as the single-server export.
_REMAP_TIDS: Dict[str, Tuple[int, str]] = {
    "gpu": (2, "compute"),
    "memcpy": (3, "copy engine"),
}
_REMAP_DEFAULT_TID = (1, "scheduler")


def remapped_span_events(tracer: SimTracer, pid: int) -> List[dict]:
    """Flatten one tracer's span forest with every event forced onto
    Perfetto process ``pid`` — how each cluster replica (and the
    router itself) gets its own trace row in a merged export."""
    events: List[dict] = []
    for span in tracer.walk():
        tid, _ = _REMAP_TIDS.get(span.cat, _REMAP_DEFAULT_TID)
        e = _span_event(span)
        e["pid"], e["tid"] = pid, tid
        events.append(e)
        for ev in span.events:
            events.append(_instant(ev.name, span.cat, ev.t_s, ev.attrs,
                                   pid, tid))
    for ev in tracer.orphan_events:
        events.append(_instant(ev.name, "orphan", ev.t_s, ev.attrs,
                               pid, _REMAP_DEFAULT_TID[0]))
    return events


def cluster_chrome_trace(router_tracer: SimTracer,
                         replica_tracers: List[Tuple[str, SimTracer]],
                         registry: Optional[MetricsRegistry] = None,
                         **meta) -> dict:
    """One Chrome-trace document for a whole fleet run.

    The router/autoscaler timeline lands on pid :data:`CLUSTER_PID`
    (process ``cluster``); replica ``i`` of ``replica_tracers`` (an
    ordered ``[(name, tracer), ...]``) lands on its own process at pid
    ``REPLICA_PID_BASE + i`` — each replica is one Perfetto row group
    with scheduler/compute threads, exactly the acceptance shape.
    """
    events = remapped_span_events(router_tracer, CLUSTER_PID)
    processes: Dict[int, str] = {CLUSTER_PID: "cluster"}
    span_total = router_tracer.span_count()
    for i, (name, tracer) in enumerate(replica_tracers):
        pid = REPLICA_PID_BASE + i
        events.extend(remapped_span_events(tracer, pid))
        processes[pid] = name
        span_total += tracer.span_count()
    rows: Dict[int, Tuple[str, Dict[int, str]]] = {}
    tid_names = dict([_REMAP_DEFAULT_TID] + list(_REMAP_TIDS.values()))
    for e in events:
        pid, tid = e["pid"], e["tid"]
        thread = "router" if pid == CLUSTER_PID else \
            tid_names.get(tid, f"tid{tid}")
        rows.setdefault(pid, (processes[pid], {}))[1].setdefault(tid, thread)
    other = dict(sorted(meta.items()))
    other["spans"] = span_total
    other["replicas"] = [name for name, _ in replica_tracers]
    if registry is not None:
        other["metrics"] = registry.snapshot()
    return {
        "traceEvents": metadata_events(rows) + sort_events(events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_cluster_chrome_trace(path: str, router_tracer: SimTracer,
                               replica_tracers: List[Tuple[str, SimTracer]],
                               registry: Optional[MetricsRegistry] = None,
                               **meta) -> str:
    """Serialise :func:`cluster_chrome_trace` to ``path``."""
    text = json.dumps(cluster_chrome_trace(router_tracer, replica_tracers,
                                           registry, **meta),
                      indent=1, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text


def _used_rows(events: List[dict]) -> Dict[int, Tuple[str, Dict[int, str]]]:
    rows: Dict[int, Tuple[str, Dict[int, str]]] = {}
    names = {(pid, tid): (process, thread)
             for pid, process, tid, thread in _ROWS.values()}
    for e in events:
        pid, tid = e["pid"], e["tid"]
        process, thread = names.get((pid, tid), (f"pid{pid}", f"tid{tid}"))
        rows.setdefault(pid, (process, {}))[1].setdefault(tid, thread)
    return rows


def chrome_trace(tracer: SimTracer,
                 registry: Optional[MetricsRegistry] = None,
                 **meta) -> dict:
    """The full Chrome-trace document for one traced run.

    ``meta`` lands in ``otherData`` next to span/event totals; when a
    registry is given, its snapshot is embedded there too, so one file
    carries the timeline *and* the end-of-run metric state.
    """
    events = span_events(tracer)
    other = dict(sorted(meta.items()))
    other["spans"] = tracer.span_count()
    other["events"] = sum(len(s.events) for s in tracer.walk()) \
        + len(tracer.orphan_events)
    if registry is not None:
        other["metrics"] = registry.snapshot()
    return {
        "traceEvents": metadata_events(_used_rows(events))
        + sort_events(events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, tracer: SimTracer,
                       registry: Optional[MetricsRegistry] = None,
                       **meta) -> str:
    """Serialise :func:`chrome_trace` to ``path``; returns the JSON."""
    text = json.dumps(chrome_trace(tracer, registry, **meta),
                      indent=1, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text


# ---------------------------------------------------------------------------
# JSONL structured event log
# ---------------------------------------------------------------------------

def _jsonl_header() -> str:
    return json.dumps({"type": "header", "format": "repro-trace",
                       "schema_version": SCHEMA_VERSION}, sort_keys=True)


def _tracer_jsonl(tracer: SimTracer) -> List[str]:
    """One tracer's span/event records (no header), depth-first."""
    lines: List[str] = []
    for span in tracer.walk():
        lines.append(json.dumps(
            {"type": "span", "sid": span.sid, "parent": span.parent_sid,
             "name": span.name, "cat": span.cat, "start_s": span.start_s,
             "end_s": span.end_s, "attrs": dict(span.attrs)},
            sort_keys=True))
        for ev in span.events:
            lines.append(json.dumps(
                {"type": "event", "span": span.sid, "name": ev.name,
                 "t_s": ev.t_s, "attrs": dict(ev.attrs)}, sort_keys=True))
    for ev in tracer.orphan_events:
        lines.append(json.dumps(
            {"type": "event", "span": None, "name": ev.name,
             "t_s": ev.t_s, "attrs": dict(ev.attrs)}, sort_keys=True))
    return lines


def jsonl_lines(tracer: SimTracer) -> List[str]:
    """One JSON object per span and per span event, depth-first —
    the grep-able form of the same tree.  The first line is a header
    record carrying :data:`SCHEMA_VERSION` so offline loaders can
    refuse logs written by an incompatible exporter."""
    return [_jsonl_header()] + _tracer_jsonl(tracer)


def cluster_jsonl_lines(router_tracer: SimTracer,
                        replica_tracers: List[Tuple[str, SimTracer]]
                        ) -> List[str]:
    """One JSONL log for a whole fleet: the router's records followed
    by each replica's, under a single header.  Span ids are already
    disjoint (each replica's tracer gets its own ``first_sid`` block),
    so the analyzer loads the merged log as one multi-root forest."""
    lines = [_jsonl_header()] + _tracer_jsonl(router_tracer)
    for _, tracer in replica_tracers:
        lines.extend(_tracer_jsonl(tracer))
    return lines


def write_jsonl(path: str, tracer: SimTracer) -> int:
    """Write the JSONL event log; returns the line count."""
    lines = jsonl_lines(tracer)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def write_cluster_jsonl(path: str, router_tracer: SimTracer,
                        replica_tracers: List[Tuple[str, SimTracer]]) -> int:
    """Write the merged fleet JSONL event log; returns the line count."""
    lines = cluster_jsonl_lines(router_tracer, replica_tracers)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


# ---------------------------------------------------------------------------
# metrics snapshots
# ---------------------------------------------------------------------------

def render_metrics(registry: MetricsRegistry) -> str:
    """Plain-text snapshot (the ``--metrics`` console form)."""
    return registry.render()


def write_metrics(path: str, registry: MetricsRegistry) -> str:
    """Deterministic JSON snapshot of a registry; returns the JSON.

    The file carries ``schema_version`` next to the counter / gauge /
    histogram sections; :func:`load_metrics_snapshot` checks it.
    """
    doc = dict(registry.snapshot(), schema_version=SCHEMA_VERSION)
    text = json.dumps(doc, indent=2, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text


def cluster_metrics_doc(fleet_registry: MetricsRegistry,
                        replica_registries: List[Tuple[str, MetricsRegistry]]
                        ) -> dict:
    """One metrics document for a whole fleet: the fleet registry's
    snapshot (router / autoscaler / SLO series) under ``fleet``, each
    replica's private registry under ``replicas[<name>]``."""
    return {
        "schema_version": SCHEMA_VERSION,
        "fleet": fleet_registry.snapshot(),
        "replicas": {name: registry.snapshot()
                     for name, registry in replica_registries},
    }


def write_cluster_metrics(path: str, fleet_registry: MetricsRegistry,
                          replica_registries: List[Tuple[str,
                                                         MetricsRegistry]]
                          ) -> str:
    """Serialise :func:`cluster_metrics_doc` to ``path`` (stable key
    order — same-seed runs write byte-identical files)."""
    text = json.dumps(cluster_metrics_doc(fleet_registry,
                                          replica_registries),
                      indent=2, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text


def load_metrics_snapshot(path: str) -> dict:
    """Load a metrics snapshot written by :func:`write_metrics`.

    Also accepts a Chrome-trace document with an embedded snapshot
    (``otherData.metrics``).  Unknown ``schema_version`` values raise
    :class:`~repro.errors.TraceSchemaError`; files written before
    versioning (no field) load as version 1.
    """
    from ..errors import TraceSchemaError

    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(doc, dict) and "otherData" in doc:
        doc = doc["otherData"].get("metrics")
        if doc is None:
            raise TraceSchemaError(
                f"{path}: Chrome trace has no embedded metrics snapshot")
    if not isinstance(doc, dict) or "counters" not in doc:
        raise TraceSchemaError(f"{path}: not a metrics snapshot")
    version = doc.get("schema_version", SCHEMA_VERSION)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise TraceSchemaError(
            f"{path}: unsupported metrics schema_version {version!r} "
            f"(supported: {list(SUPPORTED_SCHEMA_VERSIONS)})")
    return doc
